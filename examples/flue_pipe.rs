//! The paper's motivating application (section 2, Figures 1–2): air blown
//! through a flue pipe — a jet impinges a sharp labium near a resonant
//! cavity, oscillates, and produces a tone. This example runs a scaled-down
//! Figure-1 geometry, prints ASCII vorticity snapshots, and estimates the
//! jet oscillation frequency from a probe near the labium.
//!
//! ```text
//! cargo run --release --bin flue_pipe [--steps N] [--fig2]
//! ```

use subsonic::prelude::diagnostics::{ascii_field, vorticity_2d, write_pgm, ProbeSeries};
use subsonic::prelude::*;
use subsonic_examples::{arg_num, has_flag, header};

fn main() {
    let steps: usize = arg_num("--steps", 3000);
    let fig2 = has_flag("--fig2");
    let (nx, ny) = (200usize, 120usize);

    let scenario = FluePipeScenario::new(nx, ny, 0.12, fig2);
    let geom = scenario.geometry();

    header("Decomposition");
    let decomp = Decomp2::new(nx, ny, 6, 4);
    let active = geom.active_tiles(&decomp);
    println!(
        "(6x4) decomposition: {} of {} subregions contain fluid{}",
        active.len(),
        decomp.tiles(),
        if fig2 {
            " (Figure-2 geometry: all-solid subregions need no workstation)"
        } else {
            ""
        }
    );

    let mut sim = Simulation2::builder()
        .geometry(geom.clone())
        .method(MethodKind::LatticeBoltzmann)
        .params(scenario.params)
        .decompose(2, 2)
        .build();

    header("Running");
    let (px, py) = scenario.probe;
    let mut probe = ProbeSeries::new(scenario.params.dt);
    let snapshots = [steps / 4, steps / 2, steps - 1];
    for s in 0..steps {
        sim.step();
        let (_, _, vy) = sim.probe(px, py);
        probe.push(vy);
        if snapshots.contains(&s) {
            let f = sim.fields();
            let w = vorticity_2d(&f.vx, &f.vy, &geom, scenario.params.dx);
            println!("\nequi-vorticity snapshot at step {s} (cf. the paper's Figure 1):");
            print!("{}", ascii_field(&w, &geom, 76, 22, 0.02));
            let img = std::env::temp_dir().join(format!("flue_pipe_vorticity_{s}.pgm"));
            if write_pgm(&w, &geom, 0.02, &img).is_ok() {
                println!("(full-resolution image written to {})", img.display());
            }
        }
    }

    header("Jet diagnostics");
    println!("probe at ({px},{py}), just off the labium tip");
    println!("transverse velocity rms: {:.5}", probe.rms());
    if let Some(freq) = probe.dominant_frequency() {
        println!(
            "dominant oscillation frequency: {freq:.5} per step (period {:.0} steps)",
            1.0 / freq
        );
        println!(
            "jet-drive scaling 0.3 U/W suggests ~{:.5} per step",
            scenario.expected_frequency_scale()
        );
        println!(
            "\nAt the paper's physical scale (800x500 nodes, ~170 kHz step rate)\n\
             this corresponds to a tone of roughly {:.0} Hz-equivalent.",
            freq * 170_000.0 / (nx as f64 / 800.0)
        );
    } else {
        println!("no oscillation detected (run longer with --steps)");
    }
}
