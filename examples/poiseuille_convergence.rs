//! Hagen–Poiseuille validation: drive a channel to steady state at several
//! resolutions with both numerical methods and compare against the exact
//! parabolic profile — the section-7 validation problem ("both methods
//! converge ... to the exact solution of the Hagen-Poiseuille flow problem").
//!
//! ```text
//! cargo run --release --bin poiseuille_convergence [--long]
//! ```

use subsonic::prelude::*;
use subsonic_examples::{has_flag, header};

/// Relative L∞ error of the steady channel profile at height `h` fluid rows.
fn profile_error(method: MethodKind, h: usize) -> f64 {
    let wall = 2usize;
    let ny = h + 2 * wall;
    let nx = 16usize;
    let nu = 0.12;
    let mut params = FluidParams::lattice_units(nu);
    // keep the peak velocity resolution-independent (fixed Mach)
    let umax = 0.02;
    let hh = h as f64;
    params.body_force[0] = umax * 8.0 * nu / (hh * hh);
    let mut sim = Simulation2::builder()
        .geometry(Geometry2::channel(nx, ny, wall))
        .method(method)
        .params(params)
        .build();
    // steady state after a few momentum-diffusion times
    let steps = (4.0 * hh * hh / nu) as usize;
    sim.run(steps);
    let f = sim.fields();
    // no-slip planes: FD at the last wall node; LB half a link outside it
    let (y0, y1) = match method {
        MethodKind::FiniteDifference => (wall as f64 - 1.0, (ny - wall) as f64),
        MethodKind::LatticeBoltzmann => (wall as f64 - 0.5, (ny - wall) as f64 - 0.5),
    };
    let mut err: f64 = 0.0;
    let mut umax_num: f64 = 0.0;
    for y in wall..(ny - wall) {
        let exact = analytic::poiseuille_u(y as f64, y0, y1, params.body_force[0], nu);
        err = err.max((f.vx[(nx / 2, y)] - exact).abs());
        umax_num = umax_num.max(f.vx[(nx / 2, y)]);
    }
    err / umax
}

fn main() {
    let long = has_flag("--long");
    let heights: &[usize] = if long {
        &[8, 12, 16, 24, 32]
    } else {
        &[8, 12, 16]
    };

    header("Steady Poiseuille profile error vs resolution");
    println!("{:>6} {:>14} {:>14}", "H", "LB rel Linf", "FD rel Linf");
    let mut errs_lb = Vec::new();
    let mut errs_fd = Vec::new();
    for &h in heights {
        let lb = profile_error(MethodKind::LatticeBoltzmann, h);
        let fd = profile_error(MethodKind::FiniteDifference, h);
        errs_lb.push(lb);
        errs_fd.push(fd);
        println!("{h:>6} {lb:>14.3e} {fd:>14.3e}");
    }

    header("Notes");
    println!(
        "A parabola is in the null space of the centred second-difference\n\
         operator, so once the drive balances viscosity both methods land on\n\
         the exact profile up to boundary placement and steady-state residue;\n\
         the spatial-order measurement on a non-polynomial solution is the\n\
         `conv` experiment of the reproduce harness (decaying shear wave)."
    );
    let ok = errs_lb.iter().chain(&errs_fd).all(|e| *e < 0.05);
    println!(
        "\nall profiles within 5% of exact: {}",
        if ok { "YES" } else { "NO" }
    );
}
