//! A day in the life of the non-dedicated cluster (sections 4–5): twenty
//! parallel subprocesses on twenty-five simulated workstations, with regular
//! users coming and going, background jobs landing on busy hosts, the
//! monitoring program triggering automatic migrations, and staggered
//! checkpoints every fifteen minutes.
//!
//! ```text
//! cargo run --release --bin cluster_day [--hours H] [--seed S]
//! ```

use subsonic::prelude::*;
use subsonic_examples::{arg_num, header};

fn main() {
    let hours: f64 = arg_num("--hours", 12.0);
    let seed: u64 = arg_num("--seed", 42);

    header("Workload");
    // the paper's typical production run: 800x500 nodes on a (5x4) grid
    let w = WorkloadSpec::new_2d(MethodKind::LatticeBoltzmann, 800, 500, 5, 4);
    println!(
        "800x500 lattice Boltzmann simulation, (5x4) = {} subregions of {} nodes",
        w.processes(),
        w.tiles[0].nodes
    );

    let cfg = ClusterConfig::production(w, seed);
    let mut sim = ClusterSim::new(cfg);
    let stats = sim.run(hours * 3600.0, None);

    header("Progress");
    let steps = stats.procs.iter().map(|p| p.steps).min().unwrap_or(0);
    println!(
        "{steps} integration steps in {hours} simulated hours \
         ({:.1} ms of simulated flow at the paper's 0.17 ms/step scale)",
        steps as f64 * 0.17
    );
    println!(
        "paper reference: '70,000 integration steps in 12 hours of run time' \
         for this problem on 20 HP9000/700s"
    );

    header("Utilisation");
    let mean_g = stats.mean_utilization();
    println!("mean processor utilisation g = {mean_g:.3}");
    let paused: f64 = stats.procs.iter().map(|p| p.t_paused).sum::<f64>()
        / (stats.procs.len() as f64 * hours * 3600.0);
    println!(
        "fraction of time paused (sync/migration/checkpoints): {:.2}%",
        100.0 * paused
    );

    header("Migrations (paper: ~1 per 45 min, ~30 s each)");
    println!("{} migrations in {hours} hours", stats.migrations.len());
    for m in stats.migrations.iter().take(12) {
        println!(
            "  t={:>7.0}s  proc {:>2}: host {:>2} -> {:>2}  (paused {:>5.1}s, total {:>5.1}s)",
            m.signal_time,
            m.proc_id,
            m.from_host,
            m.to_host,
            m.pause_duration(),
            m.total_duration()
        );
    }
    if let Some(interval) = stats.migration_interval(hours * 3600.0) {
        println!("mean interval: {:.0} minutes", interval / 60.0);
    }

    header("Checkpoints & network");
    println!(
        "{} staggered checkpoint rounds, {:.1} s total save pauses",
        stats.checkpoint_rounds, stats.checkpoint_pause_total
    );
    println!(
        "network: {:.1} GB in {} messages, {} TCP give-ups, busy {:.1}% of the day",
        stats.net_bytes / 1.0e9,
        stats.net_messages,
        stats.net_errors,
        100.0 * stats.net_busy / (hours * 3600.0)
    );
}
