//! Interactive-ish efficiency explorer: evaluates the section-8 model and
//! the event-simulated cluster side by side for a decomposition you choose,
//! and answers the design question the model was built for — how big must a
//! subregion be for a target efficiency?
//!
//! ```text
//! cargo run --release --bin efficiency_explorer [--px 5] [--py 4] [--side 150] [--target 0.8]
//! ```

use subsonic::prelude::*;
use subsonic_examples::{arg_num, header};

fn main() {
    let px: usize = arg_num("--px", 5);
    let py: usize = arg_num("--py", 4);
    let side: usize = arg_num("--side", 150);
    let target: f64 = arg_num("--target", 0.8);
    let p = px * py;

    header("Decomposition");
    let d = Decomp2::new(side * px, side * py, px, py);
    let m = d.m_factor();
    println!(
        "({px}x{py}) = {p} processors, {side}^2 nodes each; m: paper {} (mean faces {:.2}, max {})",
        m.paper, m.mean_faces, m.max_faces
    );

    header("Model vs simulated cluster (2D lattice Boltzmann)");
    println!(
        "{:>8} {:>12} {:>12} {:>12}",
        "side", "model f", "simulated f", "speedup"
    );
    for s in [side / 2, side, side * 2] {
        let model = EfficiencyModel::paper_2d(p, m.paper).efficiency((s * s) as f64);
        let w = WorkloadSpec::new_2d(MethodKind::LatticeBoltzmann, s * px, s * py, px, py);
        let meas = measure_efficiency(MeasureConfig::paper(w));
        println!(
            "{s:>8} {model:>12.3} {:>12.3} {:>12.2}",
            meas.efficiency, meas.speedup
        );
    }

    header("Inverse question");
    let model = EfficiencyModel::paper_2d(p, m.paper);
    let n = model.min_nodes_for_efficiency(target);
    println!(
        "for f >= {target}: subregions of at least {:.0} nodes (~{:.0}^2) per processor",
        n,
        n.sqrt()
    );
    let mem_mb = n * 96.0 / 1.0e6;
    println!(
        "at ~96 B/node of state that is {mem_mb:.1} MB per workstation \
         (the paper's practical limit was 15 MB, i.e. ~300^2 in 2D)"
    );

    header("And in 3D?");
    let model3 = EfficiencyModel::paper_3d(p, 2.0);
    let n3 = model3.min_nodes_for_efficiency(target);
    if n3.is_finite() {
        println!(
            "3D needs {:.0} nodes (~{:.0}^3) per processor for the same target — \
             {:.0}x the 2D grain ({})",
            n3,
            n3.cbrt(),
            n3 / n,
            if n3 * 96.0 / 1.0e6 > 15.0 {
                "beyond the 15 MB memory limit: the paper's 3D verdict"
            } else {
                "feasible"
            }
        );
    } else {
        println!("3D cannot reach f = {target} on the shared bus at any grain size");
    }
}
