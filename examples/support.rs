//! Shared helpers for the example binaries.

/// Parses `--flag value`-style options very simply: returns the value after
/// the given flag, if present.
pub fn arg_value(flag: &str) -> Option<String> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == flag {
            return args.next();
        }
    }
    None
}

/// Whether a bare flag is present.
pub fn has_flag(flag: &str) -> bool {
    std::env::args().skip(1).any(|a| a == flag)
}

/// Parses a numeric option with a default.
pub fn arg_num<T: std::str::FromStr>(flag: &str, default: T) -> T {
    arg_value(flag)
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Prints a section header.
pub fn header(title: &str) {
    println!("\n=== {title} ===");
}
