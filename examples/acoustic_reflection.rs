//! Acoustics: why subsonic flow wants explicit methods (section 6). A
//! Gaussian density pulse is released at rest in a closed box; it splits into
//! waves travelling at c_s, reflects off the walls and returns — all resolved
//! because the explicit time step obeys Δx ≈ c_s Δt (eq. 4).
//!
//! ```text
//! cargo run --release --bin acoustic_reflection [--method FD|LB]
//! ```

use subsonic::prelude::*;
use subsonic_examples::{arg_value, header};

fn main() {
    let method = match arg_value("--method").as_deref() {
        Some("FD") | Some("fd") => MethodKind::FiniteDifference,
        _ => MethodKind::LatticeBoltzmann,
    };
    let (nx, ny) = (200usize, 24usize);
    let params = FluidParams::lattice_units(0.02);
    let cs = params.cs;
    let x0 = nx / 2;
    let (amp, sigma) = (1.0e-3, 5.0);

    header(&format!("Pulse in a closed box, {} method", method.label()));
    println!("c_s = {cs:.4} nodes/step; box {nx}x{ny}; pulse at x = {x0}");

    let mut sim = Simulation2::builder()
        .geometry(Geometry2::enclosed_box(nx, ny, 2))
        .method(method)
        .params(params)
        .init(move |x, _| {
            let d = x as f64 - x0 as f64;
            (1.0 + amp * (-d * d / (2.0 * sigma * sigma)).exp(), 0.0, 0.0)
        })
        .build();

    // one full traversal: pulse reaches the wall and comes back to centre
    let to_wall = ((nx / 2 - 4) as f64 / cs) as usize;
    let row = ny / 2;
    let peak_x = |sim: &Simulation2| -> usize {
        let f = sim.fields();
        (x0..nx - 2)
            .max_by(|&a, &b| f.rho[(a, row)].total_cmp(&f.rho[(b, row)]))
            .unwrap()
    };

    println!(
        "\n{:>8} {:>10} {:>12} {:>14}",
        "step", "peak x", "expected", "peak rho-1"
    );
    let checkpoints = [
        to_wall / 4,
        to_wall / 2,
        (3 * to_wall) / 4,
        to_wall,
        to_wall * 3 / 2,
        to_wall * 2,
    ];
    let mut done = 0usize;
    for &target in &checkpoints {
        sim.run(target - done);
        done = target;
        let px = peak_x(&sim);
        // position of the right-going pulse, folding the wall reflection
        let travelled = cs * target as f64;
        let wall = (nx - 3) as f64 - x0 as f64;
        let expected = if travelled <= wall {
            x0 as f64 + travelled
        } else {
            (nx - 3) as f64 - (travelled - wall)
        };
        let f = sim.fields();
        println!(
            "{target:>8} {px:>10} {expected:>12.1} {:>14.3e}",
            f.rho[(px, row)] - 1.0
        );
    }

    header("Verdict");
    let f = sim.fields();
    let px = peak_x(&sim);
    let travelled = cs * (2 * to_wall) as f64;
    let wall = (nx - 3) as f64 - x0 as f64;
    let expected = (nx - 3) as f64 - (travelled - wall);
    let err = (px as f64 - expected).abs();
    println!(
        "after reflection the peak sits {err:.1} nodes from the linear-acoustics \
         prediction (pulse height {:.2e})",
        f.rho[(px, row)] - 1.0
    );
    println!(
        "{}",
        if err < 8.0 {
            "acoustic propagation and wall reflection REPRODUCED"
        } else {
            "acoustic prediction NOT met — inspect parameters"
        }
    );
}
