//! Quickstart: a body-force-driven channel flow (plane Poiseuille), the
//! paper's performance test problem, integrated with the lattice Boltzmann
//! method on a 2×2 decomposition — serially, then with one thread per
//! subregion, checking the two agree bit for bit.
//!
//! ```text
//! cargo run --release --bin quickstart [--steps N]
//! ```

use subsonic::prelude::*;
use subsonic_examples::{arg_num, header};

fn main() {
    let steps: usize = arg_num("--steps", 1600);
    let (nx, ny) = (96usize, 24usize);

    header("Problem");
    let mut params = FluidParams::lattice_units(0.1);
    params.body_force[0] = 1.0e-5; // the pressure-gradient drive
    println!(
        "channel {nx}x{ny}, nu = {}, body force {:.1e}",
        params.nu, params.body_force[0]
    );
    println!("stability: {:?}", params.stability_report(false));

    let mut sim = Simulation2::builder()
        .geometry(Geometry2::channel(nx, ny, 2))
        .method(MethodKind::LatticeBoltzmann)
        .params(params)
        .decompose(2, 2)
        .build();

    header("Serial (tile-by-tile) integration");
    sim.run(steps);
    let fields = sim.fields();
    let mid = ny / 2;
    println!("after {steps} steps:");
    for y in 2..ny - 2 {
        let bar = "#".repeat((fields.vx[(nx / 2, y)] * 1.2e4) as usize);
        println!("  y={y:>3} vx={:+.5e} {bar}", fields.vx[(nx / 2, y)]);
    }

    // compare against the analytic steady profile (walls at the half-link)
    let g = params.body_force[0];
    let (y0, y1) = (1.5f64, ny as f64 - 2.5);
    let u_exact = analytic::poiseuille_u(mid as f64, y0, y1, g, params.nu);
    let u_num = fields.vx[(nx / 2, mid)];
    println!(
        "centreline: numeric {u_num:.5e} vs analytic {u_exact:.5e} ({:.1}% off; steady state needs ~H^2/nu steps)",
        100.0 * (u_num - u_exact).abs() / u_exact
    );

    header("Threaded (one process per subregion)");
    let (threaded, timing) = sim.run_threaded(steps as u64);
    match sim.fields().first_difference(&threaded) {
        None => println!("threaded run is BITWISE IDENTICAL to the serial run"),
        Some((x, y, a, b)) => println!("MISMATCH at ({x},{y}): {a} vs {b}"),
    }
    for (tile, t) in &timing {
        println!(
            "  subregion {tile}: T_calc {:>8.2?}  T_com {:>8.2?}  utilisation g = {:.3}",
            t.t_calc,
            t.t_com,
            t.utilization()
        );
    }
    println!("\n(The paper's parallel efficiency f equals g for fully parallel problems, eq. 12.)");
}
