#!/usr/bin/env bash
# Tier-1 verification gate: everything a PR must pass before merging.
# Referenced from ROADMAP.md; run from the repo root.
#
# Usage: check.sh [STAGE ...]
#   No arguments runs every stage in order (the full gate, exactly as
#   before). Naming stages runs just those, so CI can fan the expensive
#   smokes out as parallel matrix jobs and developers can iterate on one
#   stage: `check.sh build test`, `check.sh dist`, `check.sh sched`, ...
#
# Stages: fmt build test bench-compile clippy faults partition trace engine
#         scale simd dist sched chaos guard
set -euo pipefail
cd "$(dirname "$0")/.."

stage_fmt() {
    echo "==> cargo fmt --check"
    cargo fmt --all -- --check
}

stage_build() {
    echo "==> cargo build --release"
    cargo build --release --workspace
}

stage_test() {
    echo "==> cargo test -q (including #[ignore]d tests)"
    cargo test -q --workspace -- --include-ignored
}

stage_bench_compile() {
    echo "==> cargo bench --no-run"
    cargo bench --no-run --workspace
}

stage_clippy() {
    echo "==> cargo clippy -D warnings"
    cargo clippy --workspace --all-targets -- -D warnings
}

stage_faults() {
    echo "==> fault suite (injection, detection, crash recovery)"
    cargo test --release -q -p subsonic-integration --test fault_recovery
    cargo run --release -q -p subsonic-bench --bin reproduce -- --quick --out /tmp/subsonic-fault-smoke faults
}

stage_partition() {
    echo "==> reliable transport + partition smoke"
    cargo test --release -q -p subsonic-integration --test transport_reliability
    cargo run --release -q -p subsonic-bench --bin reproduce -- --quick --out /tmp/subsonic-partition-smoke partition
}

stage_trace() {
    echo "==> trace export smoke (reproduce --trace)"
    cargo run --release -q -p subsonic-bench --bin reproduce -- --quick \
        --out /tmp/subsonic-trace-smoke --trace /tmp/subsonic-trace-smoke/trace.json partition
    test -s /tmp/subsonic-trace-smoke/trace.json || { echo "trace export produced no file"; exit 1; }
    python3 -c "import json,sys; json.load(open('/tmp/subsonic-trace-smoke/trace.json'))" \
        || { echo "trace export is not valid JSON"; exit 1; }
}

stage_engine() {
    echo "==> engine equivalence (PR 6 reference vs calendar queue / virtual-time bus)"
    cargo test --release -q -p subsonic-integration --test engine_equivalence
}

stage_scale() {
    echo "==> engine scale smoke (reproduce scale --quick)"
    cargo run --release -q -p subsonic-bench --bin reproduce -- --quick --out /tmp/subsonic-scale-smoke scale
}

stage_simd() {
    echo "==> SIMD/overlap equivalence smoke (2 intra-tile bands, overlap on)"
    SUBSONIC_INTRA_THREADS=2 cargo test --release -q -p subsonic-integration --test simd_equivalence
}

stage_dist() {
    echo "==> dist smoke (4 OS processes over loopback TCP, one SIGKILLed mid-run)"
    # hard wall-clock cap: a hung socket or deadlocked supervisor must fail
    # the gate, not wedge it
    timeout -k 5 240 cargo run --release -q -p subsonic-bench --bin reproduce -- \
        --quick --out /tmp/subsonic-dist-smoke dist \
        || { echo "dist smoke failed or timed out"; exit 1; }
}

stage_sched() {
    echo "==> scheduler smoke (multi-tenant trace replay + property tests)"
    cargo test --release -q -p subsonic-integration --test sched_properties
    # hard wall-clock cap: a policy that livelocks the queue (or an event
    # loop that stops draining) must fail the gate, not wedge it
    timeout -k 5 180 cargo run --release -q -p subsonic-bench --bin reproduce -- \
        --quick --out /tmp/subsonic-sched-smoke sched \
        || { echo "sched smoke failed or timed out"; exit 1; }
}

stage_chaos() {
    echo "==> chaos soak (seeded kill/loss/reorder/partition/migration schedules)"
    # link-level delivery contract under arbitrary wire-fault plans
    cargo test --release -q -p subsonic-integration --test net_runtime
    # short soak under a hard wall-clock cap: a fault schedule that deadlocks
    # the runtime must fail the gate, not wedge it. Artifacts (schedules.csv,
    # failing seeds + RunRecords) land where CI can upload them.
    mkdir -p /tmp/subsonic-chaos-smoke/artifacts
    SUBSONIC_CHAOS_ARTIFACTS=/tmp/subsonic-chaos-smoke/artifacts \
        timeout -k 5 300 cargo run --release -q -p subsonic-bench --bin reproduce -- \
        --quick --out /tmp/subsonic-chaos-smoke chaos \
        || { echo "chaos soak failed or timed out"; exit 1; }
}

stage_guard() {
    echo "==> bench regression guard"
    # A fresh quick report proves the reproduce binary runs and still emits
    # every guarded metric; if it crashes, that is a hard failure here — it
    # must not hide behind the non-blocking regression path below.
    timeout -k 5 300 cargo run --release -q -p subsonic-bench --bin reproduce -- \
        bench --quick --label ci-live --out /tmp/subsonic-bench-live/bench.json \
        || { echo "bench_guard: reproduce bench crashed or timed out"; exit 1; }
    # Exit 1 = regression: non-blocking, bench numbers are machine-state
    # snapshots. Exit >= 2 = harness failure (bad reports, vanished or
    # uncovered metrics): always blocking.
    rc=0
    ./scripts/bench_guard.sh --live /tmp/subsonic-bench-live/bench.json || rc=$?
    if (( rc == 1 )); then
        echo "bench_guard: WARNING — guarded metrics regressed (non-blocking)"
    elif (( rc >= 2 )); then
        echo "bench_guard: harness failure (exit $rc)"
        exit "$rc"
    fi
}

ALL_STAGES=(fmt build test bench-compile clippy faults partition trace engine scale simd dist sched chaos guard)

run_stage() {
    case "$1" in
        fmt)            stage_fmt ;;
        build)          stage_build ;;
        test)           stage_test ;;
        bench-compile)  stage_bench_compile ;;
        clippy)         stage_clippy ;;
        faults)         stage_faults ;;
        partition)      stage_partition ;;
        trace)          stage_trace ;;
        engine)         stage_engine ;;
        scale)          stage_scale ;;
        simd)           stage_simd ;;
        dist)           stage_dist ;;
        sched)          stage_sched ;;
        chaos)          stage_chaos ;;
        guard)          stage_guard ;;
        *)
            echo "check.sh: unknown stage '$1'" >&2
            echo "stages: ${ALL_STAGES[*]}" >&2
            exit 2
            ;;
    esac
}

if (( $# == 0 )); then
    for s in "${ALL_STAGES[@]}"; do
        run_stage "$s"
    done
    echo "All checks passed."
else
    for s in "$@"; do
        run_stage "$s"
    done
    echo "Requested stage(s) passed: $*"
fi
