#!/usr/bin/env bash
# Tier-1 verification gate: everything a PR must pass before merging.
# Referenced from ROADMAP.md; run from the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q (including #[ignore]d tests)"
cargo test -q --workspace -- --include-ignored

echo "==> cargo bench --no-run"
cargo bench --no-run --workspace

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> fault suite (injection, detection, crash recovery)"
cargo test --release -q -p subsonic-integration --test fault_recovery
cargo run --release -q -p subsonic-bench --bin reproduce -- --quick --out /tmp/subsonic-fault-smoke faults

echo "==> reliable transport + partition smoke"
cargo test --release -q -p subsonic-integration --test transport_reliability
cargo run --release -q -p subsonic-bench --bin reproduce -- --quick --out /tmp/subsonic-partition-smoke partition

echo "==> trace export smoke (reproduce --trace)"
cargo run --release -q -p subsonic-bench --bin reproduce -- --quick \
    --out /tmp/subsonic-trace-smoke --trace /tmp/subsonic-trace-smoke/trace.json partition
test -s /tmp/subsonic-trace-smoke/trace.json || { echo "trace export produced no file"; exit 1; }
python3 -c "import json,sys; json.load(open('/tmp/subsonic-trace-smoke/trace.json'))" \
    || { echo "trace export is not valid JSON"; exit 1; }

echo "==> engine equivalence (PR 6 reference vs calendar queue / virtual-time bus)"
cargo test --release -q -p subsonic-integration --test engine_equivalence

echo "==> engine scale smoke (reproduce scale --quick)"
cargo run --release -q -p subsonic-bench --bin reproduce -- --quick --out /tmp/subsonic-scale-smoke scale

echo "==> SIMD/overlap equivalence smoke (2 intra-tile bands, overlap on)"
SUBSONIC_INTRA_THREADS=2 cargo test --release -q -p subsonic-integration --test simd_equivalence

echo "==> dist smoke (4 OS processes over loopback TCP, one SIGKILLed mid-run)"
# hard wall-clock cap: a hung socket or deadlocked supervisor must fail the
# gate, not wedge it
timeout -k 5 240 cargo run --release -q -p subsonic-bench --bin reproduce -- \
    --quick --out /tmp/subsonic-dist-smoke dist \
    || { echo "dist smoke failed or timed out"; exit 1; }

echo "==> bench regression guard (non-blocking: bench numbers are machine snapshots)"
./scripts/bench_guard.sh || echo "bench_guard: WARNING — guarded metrics regressed (non-blocking)"

echo "All checks passed."
