#!/usr/bin/env bash
# Tier-1 verification gate: everything a PR must pass before merging.
# Referenced from ROADMAP.md; run from the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q (including #[ignore]d tests)"
cargo test -q --workspace -- --include-ignored

echo "==> cargo bench --no-run"
cargo bench --no-run --workspace

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> fault suite (injection, detection, crash recovery)"
cargo test --release -q -p subsonic-integration --test fault_recovery
cargo run --release -q -p subsonic-bench --bin reproduce -- --quick --out /tmp/subsonic-fault-smoke faults

echo "All checks passed."
