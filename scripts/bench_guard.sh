#!/usr/bin/env bash
# Bench regression guard: compares the two newest checked-in BENCH_*.json
# reports and fails when a guarded metric regressed by more than 15%. The
# guard is direction-aware: throughput metrics (node rates, halo
# pack/roundtrip) are higher-is-better and flag decreases; latency metrics
# (detect_*, recovery_*) are lower-is-better and flag increases. Bench
# numbers are machine-state snapshots, so this runs as a NON-blocking stage
# in check.sh — it flags the regression loudly but cannot tell a real
# slowdown from a different recording machine. Run it standalone to gate a
# perf-sensitive change.
set -euo pipefail
cd "$(dirname "$0")/.."

# newest two by PR number (BENCH_PR<N>.json sorts numerically via -V)
mapfile -t reports < <(ls BENCH_*.json 2>/dev/null | sort -V)
if (( ${#reports[@]} < 2 )); then
    echo "bench_guard: fewer than two BENCH_*.json reports, nothing to compare"
    exit 0
fi
prev="${reports[-2]}"
curr="${reports[-1]}"
echo "bench_guard: $prev -> $curr (threshold: 15%; higher-is-better: node_rate_*/halo*/threaded*/cluster_sim/scale_*;" \
     "lower-is-better: detect_*/recovery_*)"

python3 - "$prev" "$curr" <<'EOF'
import json, sys

prev_path, curr_path = sys.argv[1], sys.argv[2]
prev = json.load(open(prev_path))["entries"]
curr = json.load(open(curr_path))["entries"]

HIGHER_IS_BETTER = ("node_rate_", "halo2_pack", "halo2_roundtrip", "halo3_pack",
                    "halo3_roundtrip", "threaded2_", "threaded3_",
                    "cluster_sim_events", "scale_events_per_s_")
# simulated-latency metrics: deterministic, so ANY worsening is a real model
# change, but the same 15% bar keeps the two classes comparable
LOWER_IS_BETTER = ("detect_latency_", "recovery_cost_", "recovery_opt_interval")
THRESHOLD = 0.15

failures = []
for name in sorted(curr):
    if name.startswith(HIGHER_IS_BETTER):
        sign = 1.0   # regression = value went down
    elif name.startswith(LOWER_IS_BETTER):
        sign = -1.0  # regression = value went up
    else:
        continue
    if name not in prev:
        print(f"  {name:<24} new metric, skipped")
        continue
    old, new = prev[name]["value"], curr[name]["value"]
    if old <= 0:
        continue
    delta = (new - old) / old
    regressed = sign * delta < -THRESHOLD
    marker = "REGRESSION" if regressed else "ok"
    print(f"  {name:<24} {old:12.3e} -> {new:12.3e}  {delta:+7.1%}  {marker}")
    if regressed:
        failures.append(name)

if failures:
    print(f"bench_guard: {len(failures)} metric(s) regressed more than {THRESHOLD:.0%}: "
          + ", ".join(failures))
    sys.exit(1)
print("bench_guard: no guarded metric regressed")
EOF
