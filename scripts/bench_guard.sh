#!/usr/bin/env bash
# Bench regression guard: compares the two newest checked-in BENCH_*.json
# reports and fails when a guarded metric regressed by more than 15%. The
# guard is direction-aware: throughput metrics (node rates, halo
# pack/roundtrip, scheduler replay) are higher-is-better and flag decreases;
# latency/makespan metrics (detect_*, recovery_*, sched_makespan_*, chaos_*)
# are lower-is-better and flag increases.
#
# Exit codes (check.sh keys off the distinction):
#   0  no guarded metric regressed
#   1  regression: a guarded metric moved past the threshold. Bench numbers
#      are machine-state snapshots, so check.sh treats this as NON-blocking —
#      it flags the regression loudly but cannot tell a real slowdown from a
#      different recording machine. Run standalone to gate a perf change.
#   2+ harness failure: unreadable/invalid reports, a guarded metric that
#      vanished from the newest report, or (--live) a freshly generated
#      report missing guarded metrics. These mean the comparison itself is
#      broken and must ALWAYS fail the build — a crash may not hide behind
#      the non-blocking path.
#
# Usage: bench_guard.sh [--live FILE]
#   --live FILE  additionally require every guarded metric of the newest
#                checked-in report to be present in FILE (a freshly emitted
#                `reproduce bench --quick` report; values are ignored since
#                quick sizes are not comparable to baselines).
set -uo pipefail
cd "$(dirname "$0")/.."

live=""
while (( $# > 0 )); do
    case "$1" in
        --live)
            live="${2:?--live needs a file}"
            shift 2
            ;;
        *)
            echo "bench_guard: unknown argument $1" >&2
            exit 2
            ;;
    esac
done

if [[ -n "$live" && ! -r "$live" ]]; then
    echo "bench_guard: HARNESS FAILURE: live report $live is missing or unreadable" >&2
    exit 2
fi

# newest two by PR number (BENCH_PR<N>.json sorts numerically via -V)
mapfile -t reports < <(ls BENCH_*.json 2>/dev/null | sort -V)
if (( ${#reports[@]} < 2 )); then
    echo "bench_guard: fewer than two BENCH_*.json reports, nothing to compare"
    exit 0
fi
prev="${reports[-2]}"
curr="${reports[-1]}"
echo "bench_guard: $prev -> $curr (threshold: 15%;" \
     "higher-is-better: node_rate_*/halo*/threaded*/cluster_sim/scale_*/sched_jobs_*;" \
     "lower-is-better: detect_*/recovery_*/sched_makespan_*/chaos_*)"

python3 - "$prev" "$curr" "$live" <<'EOF'
import json, sys

prev_path, curr_path, live_path = sys.argv[1], sys.argv[2], sys.argv[3]

def load_entries(path):
    try:
        with open(path) as f:
            doc = json.load(f)
        entries = doc["entries"]
        if not isinstance(entries, dict) or not entries:
            raise ValueError("empty or malformed entries block")
        return entries
    except Exception as e:  # unreadable, invalid JSON, wrong shape
        print(f"bench_guard: HARNESS FAILURE: cannot load {path}: {e}",
              file=sys.stderr)
        sys.exit(2)

prev = load_entries(prev_path)
curr = load_entries(curr_path)

HIGHER_IS_BETTER = ("node_rate_", "halo2_pack", "halo2_roundtrip", "halo3_pack",
                    "halo3_roundtrip", "threaded2_", "threaded3_",
                    "cluster_sim_events", "scale_events_per_s_",
                    "sched_jobs_per_s")
# simulated-latency metrics: deterministic, so ANY worsening is a real model
# change, but the same 15% bar keeps the two classes comparable
LOWER_IS_BETTER = ("detect_latency_", "recovery_cost_", "recovery_opt_interval",
                   "sched_makespan_", "chaos_recovery_latency_",
                   "chaos_migration_cost")
THRESHOLD = 0.15

def guarded(name):
    if name.startswith(HIGHER_IS_BETTER):
        return 1.0   # regression = value went down
    if name.startswith(LOWER_IS_BETTER):
        return -1.0  # regression = value went up
    return None

# A guarded metric that existed in the previous report but vanished from the
# newest one means the suite silently stopped measuring it — that is a
# harness failure, not a skip.
vanished = [n for n in sorted(prev)
            if guarded(n) is not None and n not in curr]
if vanished:
    print("bench_guard: HARNESS FAILURE: guarded metric(s) missing from "
          f"{curr_path}: " + ", ".join(vanished), file=sys.stderr)
    sys.exit(2)

# --live: the freshly generated report must cover every guarded metric of
# the newest baseline, proving the current binary still measures them all.
if live_path:
    live = load_entries(live_path)
    missing = [n for n in sorted(curr)
               if guarded(n) is not None and n not in live]
    if missing:
        print("bench_guard: HARNESS FAILURE: live report missing guarded "
              "metric(s): " + ", ".join(missing), file=sys.stderr)
        sys.exit(2)
    print(f"  live coverage ok: all guarded metrics present in {live_path}")

failures = []
for name in sorted(curr):
    sign = guarded(name)
    if sign is None:
        continue
    if name not in prev:
        print(f"  {name:<24} new metric, skipped")
        continue
    old, new = prev[name]["value"], curr[name]["value"]
    if old <= 0:
        continue
    delta = (new - old) / old
    regressed = sign * delta < -THRESHOLD
    marker = "REGRESSION" if regressed else "ok"
    print(f"  {name:<24} {old:12.3e} -> {new:12.3e}  {delta:+7.1%}  {marker}")
    if regressed:
        failures.append(name)

if failures:
    print(f"bench_guard: {len(failures)} metric(s) regressed more than {THRESHOLD:.0%}: "
          + ", ".join(failures))
    sys.exit(1)
print("bench_guard: no guarded metric regressed")
EOF
