//! The job-stream simulation: trace in, schedule out.
//!
//! The engine replays a [`JobTrace`] against a [`HostPool`] under one
//! [`PolicyKind`], driven by the cluster crate's calendar event queue
//! ([`CalendarQueue`]) — the same engine the intra-job cluster simulation
//! runs on, instantiated here with the job-stream event vocabulary. Two
//! event kinds suffice: `Arrival` (chained — each arrival schedules the
//! next, so the queue never holds more than one future arrival) and `Finish`
//! (cancellable, because migration reschedules it).
//!
//! Admission control sits in front of the queue: a job wider than the whole
//! pool can never run and is rejected immediately; a queue past
//! `max_queue` sheds new arrivals (overload protection). Everything admitted
//! eventually runs — the acquire path can only place a job on hosts that are
//! actually free, so capacity is never over-committed.
//!
//! Migration rides along exactly as the paper's monitor does it: when a
//! finish frees fast hosts, the running job most throttled by a slow member
//! (smallest `rel_min`) may move that one subprocess to the best free host,
//! paying the ~search-duration pause, iff doing so strictly advances its
//! finish time. The finish event is cancelled and rescheduled through the
//! calendar queue's generation-slab handles.
//!
//! Every decision is a deterministic function of the trace: an identical
//! trace and config yield a bit-identical schedule, which
//! [`SchedOutcome::schedule_hash`] certifies (FNV-1a over every dispatch,
//! migration and completion).

use std::collections::{BTreeMap, VecDeque};

use subsonic_cluster::host::HostKind;
use subsonic_cluster::policy::SubmitPolicy;
use subsonic_cluster::CalendarQueue;
use subsonic_cluster::EventHandle;

use crate::policy::{PolicyKind, PolicyState};
use crate::pool::{reference_service_time, service_time, HostPool};
use crate::trace::{Fnv1a, JobTrace};

/// Job-stream event vocabulary for the calendar queue.
#[derive(Debug, Clone, Copy)]
enum SchedEvent {
    /// Job `idx` of the trace submits; schedules arrival `idx + 1`.
    Arrival { idx: u32 },
    /// Job `job` completes and frees its hosts.
    Finish { job: u32 },
}

/// Simulation configuration: the pool and the knobs around the policy.
#[derive(Debug, Clone)]
pub struct SchedConfig {
    /// Workstation models in the pool.
    pub hosts: Vec<HostKind>,
    /// Host-selection policy used for every placement (the paper's submit
    /// search; its `search_duration_s` is also the migration pause).
    pub submit: SubmitPolicy,
    /// Queue-ordering discipline.
    pub policy: PolicyKind,
    /// Admission: arrivals beyond this queue depth are shed.
    pub max_queue: usize,
    /// Whether finishing jobs may trigger a one-subprocess migration of the
    /// most-throttled running job onto the best freed host.
    pub migration: bool,
    /// How many jobs behind a blocked head EASY backfill examines.
    pub backfill_scan: usize,
}

impl SchedConfig {
    /// A pool of `multiple` copies of the paper's 25-host cluster under the
    /// given discipline, queue effectively unbounded, migration on.
    pub fn paper_pool(policy: PolicyKind, multiple: usize) -> Self {
        let mut hosts = Vec::new();
        for _ in 0..multiple.max(1) {
            hosts.extend(HostKind::paper_cluster());
        }
        Self {
            hosts,
            submit: SubmitPolicy::default(),
            policy,
            max_queue: usize::MAX,
            migration: true,
            backfill_scan: 128,
        }
    }
}

/// Per-job outcome. Rejected jobs keep `NaN` start/finish times.
#[derive(Debug, Clone, Copy)]
pub struct JobRecord {
    /// Trace job id.
    pub id: u32,
    /// Owning tenant.
    pub tenant: u16,
    /// Width (hosts held while running).
    pub procs: u32,
    /// Submission time.
    pub submit_s: f64,
    /// Dispatch time (`NaN` if rejected).
    pub start_s: f64,
    /// Completion time (`NaN` if rejected).
    pub finish_s: f64,
    /// Service time on an all-reference-speed placement — the denominator
    /// of the stretch/slowdown metrics.
    pub ref_service_s: f64,
}

impl JobRecord {
    /// Whether the job ran (was not shed by admission).
    pub fn completed(&self) -> bool {
        self.finish_s.is_finite()
    }

    /// Queue wait: dispatch minus submit.
    pub fn wait_s(&self) -> f64 {
        self.start_s - self.submit_s
    }

    /// Stretch (bounded slowdown): response time over reference service.
    pub fn stretch(&self) -> f64 {
        (self.finish_s - self.submit_s) / self.ref_service_s.max(1e-9)
    }
}

/// Per-tenant fairness rollup.
#[derive(Debug, Clone, Copy, Default)]
pub struct TenantMetrics {
    /// Jobs completed.
    pub jobs: u64,
    /// Jobs shed by admission control.
    pub rejected: u64,
    /// Mean queue wait over completed jobs, seconds.
    pub mean_wait_s: f64,
    /// Mean stretch over completed jobs.
    pub mean_stretch: f64,
    /// Worst stretch of any completed job.
    pub max_stretch: f64,
    /// Host-seconds of service delivered.
    pub service_host_s: f64,
}

/// One migration decision, for the timeline exporters.
#[derive(Debug, Clone, Copy)]
pub struct Migration {
    /// When the move happened.
    pub at_s: f64,
    /// Which job moved one subprocess.
    pub job: u32,
    /// Host vacated.
    pub from: u32,
    /// Host claimed.
    pub to: u32,
}

/// Everything a replay produces.
#[derive(Debug, Clone)]
pub struct SchedOutcome {
    /// Discipline that produced this schedule.
    pub policy: PolicyKind,
    /// Per-job outcomes, indexed by trace job id.
    pub records: Vec<JobRecord>,
    /// Per-tenant rollups, indexed by tenant id.
    pub tenants: Vec<TenantMetrics>,
    /// Migrations performed, in time order.
    pub migrations: Vec<Migration>,
    /// Last completion time, seconds.
    pub makespan_s: f64,
    /// Delivered host-seconds over `pool × makespan`.
    pub utilization: f64,
    /// Mean queue wait over all completed jobs.
    pub mean_wait_s: f64,
    /// Mean stretch over all completed jobs.
    pub mean_stretch: f64,
    /// Worst stretch over all completed jobs.
    pub max_stretch: f64,
    /// Jobs completed.
    pub completed: u64,
    /// Jobs shed by admission control.
    pub rejected: u64,
    /// Jobs started ahead of a blocked head by EASY backfill.
    pub backfills: u64,
    /// Largest number of simultaneously busy hosts observed.
    pub peak_busy_hosts: usize,
    /// Pool size the trace ran against.
    pub pool_hosts: usize,
    /// FNV-1a over every dispatch, migration and completion — two replays
    /// produced the same schedule iff these match.
    pub schedule_hash: u64,
    /// Fingerprint of the trace that was replayed.
    pub trace_fingerprint: u64,
}

/// A job currently holding hosts.
#[derive(Debug, Clone)]
struct Running {
    hosts: Vec<u32>,
    rel_min: f64,
    /// Fraction of the job's steps still pending at `seg_start_s`.
    frac_left: f64,
    /// Start of the current placement segment.
    seg_start_s: f64,
    /// Scheduled finish of the current placement segment.
    seg_finish_s: f64,
    handle: EventHandle,
}

/// The admitted-but-waiting jobs: a global arrival-order deque for the
/// globally-ordered disciplines plus per-tenant deques for the
/// tenant-ordered ones. Only the structure the active discipline reads is
/// consulted, but both are maintained (cheap, and keeps invariants simple).
#[derive(Debug)]
struct WaitQueue {
    global: VecDeque<u32>,
    per_tenant: Vec<VecDeque<u32>>,
}

impl WaitQueue {
    fn new(tenants: usize) -> Self {
        Self {
            global: VecDeque::new(),
            per_tenant: vec![VecDeque::new(); tenants],
        }
    }

    fn len(&self) -> usize {
        self.global.len()
    }

    fn push(&mut self, job: u32, tenant: u16) {
        self.global.push_back(job);
        self.per_tenant[tenant as usize].push_back(job);
    }

    /// Removes a job known to be its tenant's head-of-line (tenant-ordered
    /// dispatch path) or anywhere in the global deque (backfill path).
    fn remove(&mut self, job: u32, tenant: u16) {
        if self.per_tenant[tenant as usize].front() == Some(&job) {
            self.per_tenant[tenant as usize].pop_front();
        } else if let Some(i) = self.per_tenant[tenant as usize]
            .iter()
            .position(|&j| j == job)
        {
            self.per_tenant[tenant as usize].remove(i);
        }
        if self.global.front() == Some(&job) {
            self.global.pop_front();
        } else if let Some(i) = self.global.iter().position(|&j| j == job) {
            self.global.remove(i);
        }
    }
}

struct Engine<'a> {
    trace: &'a JobTrace,
    cfg: &'a SchedConfig,
    pool: HostPool,
    events: CalendarQueue<SchedEvent>,
    policy: PolicyState,
    queue: WaitQueue,
    running: BTreeMap<u32, Running>,
    records: Vec<JobRecord>,
    hash: Fnv1a,
    migrations: Vec<Migration>,
    backfills: u64,
    rejected: u64,
    busy_hosts: usize,
    peak_busy: usize,
}

impl<'a> Engine<'a> {
    fn new(trace: &'a JobTrace, cfg: &'a SchedConfig) -> Self {
        let weights: Vec<f64> = trace.tenants.iter().map(|t| t.weight).collect();
        let records = trace
            .jobs
            .iter()
            .map(|j| JobRecord {
                id: j.id,
                tenant: j.tenant,
                procs: j.procs,
                submit_s: j.submit_s,
                start_s: f64::NAN,
                finish_s: f64::NAN,
                ref_service_s: reference_service_time(j),
            })
            .collect();
        Self {
            trace,
            cfg,
            pool: HostPool::new(&cfg.hosts, cfg.submit),
            events: CalendarQueue::new(),
            policy: PolicyState::new(cfg.policy, &weights),
            queue: WaitQueue::new(trace.tenants.len()),
            running: BTreeMap::new(),
            records,
            hash: Fnv1a::new(),
            migrations: Vec::new(),
            backfills: 0,
            rejected: 0,
            busy_hosts: 0,
            peak_busy: 0,
        }
    }

    fn run(mut self) -> SchedOutcome {
        if let Some(first) = self.trace.jobs.first() {
            self.events
                .schedule_at(first.submit_s, SchedEvent::Arrival { idx: 0 });
        }
        while let Some((now, ev)) = self.events.pop() {
            match ev {
                SchedEvent::Arrival { idx } => self.on_arrival(now, idx),
                SchedEvent::Finish { job } => self.on_finish(now, job),
            }
        }
        debug_assert!(self.running.is_empty() && self.queue.len() == 0);
        self.summarise()
    }

    fn on_arrival(&mut self, now: f64, idx: u32) {
        // chain the next arrival before anything else touches the queue
        if let Some(next) = self.trace.jobs.get(idx as usize + 1) {
            self.events
                .schedule_at(next.submit_s, SchedEvent::Arrival { idx: idx + 1 });
        }
        let job = &self.trace.jobs[idx as usize];
        // admission control: impossible widths and overload are shed here,
        // so everything in the queue is guaranteed to fit *some day*
        if job.procs as usize > self.pool.len() || self.queue.len() >= self.cfg.max_queue {
            self.rejected += 1;
            self.records[idx as usize].start_s = f64::NAN;
            return;
        }
        self.queue.push(job.id, job.tenant);
        self.dispatch(now);
    }

    fn on_finish(&mut self, now: f64, job: u32) {
        let run = self.running.remove(&job).expect("finish for unknown job");
        self.pool.release(&run.hosts);
        self.busy_hosts -= run.hosts.len();
        self.records[job as usize].finish_s = now;
        self.hash.write_u64(job as u64);
        self.hash.write_f64(now);
        // queued work gets first claim on the freed hosts …
        self.dispatch(now);
        // … and only leftovers may improve a running placement
        if self.cfg.migration {
            self.try_migrate(now);
        }
    }

    /// Starts jobs until the discipline's choice no longer fits.
    fn dispatch(&mut self, now: f64) {
        loop {
            let Some(job) = self.next_choice() else {
                return;
            };
            if self.try_start(now, job) {
                continue;
            }
            // head-of-line blocked: only EASY may look past it
            if self.policy.kind() == PolicyKind::EasyBackfill {
                self.backfill(now, job);
            }
            return;
        }
    }

    /// The discipline's current head-of-line job, if any.
    fn next_choice(&mut self) -> Option<u32> {
        if self.policy.kind().is_tenant_ordered() {
            let backlogged: Vec<bool> = self
                .queue
                .per_tenant
                .iter()
                .map(|q| !q.is_empty())
                .collect();
            let t = self.policy.choose_tenant(&backlogged)?;
            self.queue.per_tenant[t].front().copied()
        } else {
            self.queue.global.front().copied()
        }
    }

    /// Tries to place and start `job` right now. On success the job leaves
    /// the queue and its finish event is scheduled.
    fn try_start(&mut self, now: f64, job: u32) -> bool {
        let spec = &self.trace.jobs[job as usize];
        let Some(hosts) = self.pool.acquire(now, spec.procs, job) else {
            return false;
        };
        let rel_min = self.pool.rel_min(&hosts, spec.method);
        let duration = service_time(spec, rel_min);
        let finish = now + duration;
        let handle = self
            .events
            .schedule_at_cancellable(finish, SchedEvent::Finish { job });
        self.queue.remove(job, spec.tenant);
        self.policy
            .on_dispatch(spec.tenant, duration * spec.procs as f64);
        self.busy_hosts += hosts.len();
        self.peak_busy = self.peak_busy.max(self.busy_hosts);
        self.records[job as usize].start_s = now;
        self.hash.write_u64(job as u64);
        self.hash.write_f64(now);
        for &h in &hosts {
            self.hash.write_u64(h as u64);
        }
        self.running.insert(
            job,
            Running {
                hosts,
                rel_min,
                frac_left: 1.0,
                seg_start_s: now,
                seg_finish_s: finish,
                handle,
            },
        );
        true
    }

    /// EASY backfill behind the blocked head: reserve the head's start, then
    /// let strictly-earlier finishers from the scan window jump the line.
    fn backfill(&mut self, now: f64, head: u32) {
        let reservation = self.head_reservation(now, head);
        // ids first: starting a job mutates the deque we'd be iterating
        let window: Vec<u32> = self
            .queue
            .global
            .iter()
            .skip(1)
            .take(self.cfg.backfill_scan)
            .copied()
            .collect();
        for cand in window {
            let spec = &self.trace.jobs[cand as usize];
            if spec.procs as usize > self.pool.free() {
                continue;
            }
            // tentative placement: the exact duration depends on which
            // hosts the submit search picks
            let Some(hosts) = self.pool.acquire(now, spec.procs, cand) else {
                continue;
            };
            let rel_min = self.pool.rel_min(&hosts, spec.method);
            let duration = service_time(spec, rel_min);
            if now + duration <= reservation + 1e-9 {
                // commit: provably finished before the head needs the hosts
                let finish = now + duration;
                let handle = self
                    .events
                    .schedule_at_cancellable(finish, SchedEvent::Finish { job: cand });
                self.queue.remove(cand, spec.tenant);
                self.policy
                    .on_dispatch(spec.tenant, duration * spec.procs as f64);
                self.busy_hosts += hosts.len();
                self.peak_busy = self.peak_busy.max(self.busy_hosts);
                self.records[cand as usize].start_s = now;
                self.hash.write_u64(cand as u64);
                self.hash.write_f64(now);
                for &h in &hosts {
                    self.hash.write_u64(h as u64);
                }
                self.running.insert(
                    cand,
                    Running {
                        hosts,
                        rel_min,
                        frac_left: 1.0,
                        seg_start_s: now,
                        seg_finish_s: finish,
                        handle,
                    },
                );
                self.backfills += 1;
            } else {
                self.pool.release(&hosts);
            }
        }
    }

    /// Earliest time the blocked head can have enough free hosts: walk the
    /// exactly-known finish times in order, accumulating freed capacity.
    fn head_reservation(&self, now: f64, head: u32) -> f64 {
        let need = self.trace.jobs[head as usize].procs as usize;
        let mut free = self.pool.free();
        if free >= need {
            return now;
        }
        let mut finishes: Vec<(f64, usize)> = self
            .running
            .values()
            .map(|r| (r.seg_finish_s, r.hosts.len()))
            .collect();
        finishes.sort_by(|a, b| a.0.total_cmp(&b.0));
        for (t, procs) in finishes {
            free += procs;
            if free >= need {
                return t;
            }
        }
        // unreachable while admission rejects procs > pool, but stay safe
        f64::INFINITY
    }

    /// One-subprocess migration of the most-throttled running job onto the
    /// best free host, iff it strictly advances that job's finish.
    fn try_migrate(&mut self, now: f64) {
        let Some(target) = self.pool.best_free(now) else {
            return;
        };
        // most-throttled running job first; (rel_min, id) is a total order,
        // so the pick is deterministic whatever the map iteration does
        let Some((&job, _)) = self
            .running
            .iter()
            .filter(|(_, r)| r.rel_min < 1.0)
            .min_by(|a, b| a.1.rel_min.total_cmp(&b.1.rel_min).then(a.0.cmp(b.0)))
        else {
            return;
        };
        let spec = self.trace.jobs[job as usize];
        let target_rel = self.pool.rel(target as usize, spec.method);
        let run = self.running.get(&job).expect("chosen job is running");
        if target_rel <= run.rel_min {
            return;
        }
        let slowest = self.pool.slowest_of(&run.hosts, spec.method);
        // rel_min with the slowest member swapped for the target
        let mut new_hosts = run.hosts.clone();
        let from = new_hosts[slowest];
        new_hosts[slowest] = target;
        let new_rel = self.pool.rel_min(&new_hosts, spec.method);
        // work left now, as a fraction of the job's total steps
        let seg = run.seg_finish_s - run.seg_start_s;
        let frac_now = if seg > 0.0 {
            run.frac_left * (run.seg_finish_s - now) / seg
        } else {
            0.0
        };
        let pause = self.cfg.submit.search_duration_s;
        let new_finish = now + pause + frac_now * service_time(&spec, new_rel);
        if new_finish + 1e-9 >= run.seg_finish_s {
            return; // the pause eats the speedup: stay put
        }
        let run = self.running.get_mut(&job).expect("chosen job is running");
        let old_handle = run.handle;
        run.hosts = new_hosts;
        run.rel_min = new_rel;
        run.frac_left = frac_now;
        run.seg_start_s = now;
        run.seg_finish_s = new_finish;
        self.pool.release(&[from]);
        self.pool.acquire_specific(target, job);
        let cancelled = self.events.cancel(old_handle);
        debug_assert!(cancelled, "stale finish handle for migrating job");
        let handle = self
            .events
            .schedule_at_cancellable(new_finish, SchedEvent::Finish { job });
        self.running
            .get_mut(&job)
            .expect("chosen job is running")
            .handle = handle;
        self.migrations.push(Migration {
            at_s: now,
            job,
            from,
            to: target,
        });
        self.hash.write_u64(0x4D49_4752); // "MIGR" domain separator
        self.hash.write_u64(job as u64);
        self.hash.write_f64(now);
        self.hash.write_u64(from as u64);
        self.hash.write_u64(target as u64);
    }

    fn summarise(self) -> SchedOutcome {
        let mut tenants = vec![TenantMetrics::default(); self.trace.tenants.len()];
        let mut makespan: f64 = 0.0;
        let mut wait_sum = 0.0;
        let mut stretch_sum = 0.0;
        let mut max_stretch: f64 = 0.0;
        let mut completed = 0u64;
        let mut service_sum = 0.0;
        for r in &self.records {
            let t = &mut tenants[r.tenant as usize];
            if !r.completed() {
                t.rejected += 1;
                continue;
            }
            completed += 1;
            makespan = makespan.max(r.finish_s);
            let service = (r.finish_s - r.start_s) * r.procs as f64;
            wait_sum += r.wait_s();
            stretch_sum += r.stretch();
            max_stretch = max_stretch.max(r.stretch());
            service_sum += service;
            t.jobs += 1;
            t.mean_wait_s += r.wait_s();
            t.mean_stretch += r.stretch();
            t.max_stretch = t.max_stretch.max(r.stretch());
            t.service_host_s += service;
        }
        for t in &mut tenants {
            if t.jobs > 0 {
                t.mean_wait_s /= t.jobs as f64;
                t.mean_stretch /= t.jobs as f64;
            }
        }
        let pool_hosts = self.cfg.hosts.len();
        SchedOutcome {
            policy: self.cfg.policy,
            tenants,
            migrations: self.migrations,
            makespan_s: makespan,
            utilization: if makespan > 0.0 {
                service_sum / (pool_hosts as f64 * makespan)
            } else {
                0.0
            },
            mean_wait_s: if completed > 0 {
                wait_sum / completed as f64
            } else {
                0.0
            },
            mean_stretch: if completed > 0 {
                stretch_sum / completed as f64
            } else {
                0.0
            },
            max_stretch,
            completed,
            rejected: self.rejected,
            backfills: self.backfills,
            peak_busy_hosts: self.peak_busy,
            pool_hosts,
            schedule_hash: self.hash.finish(),
            trace_fingerprint: self.trace.fingerprint(),
            records: self.records,
        }
    }
}

/// Replays `trace` under `cfg` and returns the complete schedule outcome.
pub fn run(trace: &JobTrace, cfg: &SchedConfig) -> SchedOutcome {
    assert!(!cfg.hosts.is_empty(), "a schedule needs at least one host");
    Engine::new(trace, cfg).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{TenantSpec, TraceConfig};

    fn trace(jobs: usize, seed: u64) -> JobTrace {
        JobTrace::generate(&TraceConfig {
            tenants: vec![TenantSpec::light(0.02), TenantSpec::batch(0.004)],
            jobs,
            seed,
        })
    }

    fn outcome(policy: PolicyKind, jobs: usize, seed: u64) -> SchedOutcome {
        run(&trace(jobs, seed), &SchedConfig::paper_pool(policy, 1))
    }

    #[test]
    fn every_admitted_job_completes_in_order() {
        for policy in PolicyKind::ALL {
            let out = outcome(policy, 400, 11);
            assert_eq!(out.completed + out.rejected, 400, "{policy:?}");
            for r in out.records.iter().filter(|r| r.completed()) {
                assert!(r.start_s >= r.submit_s - 1e-9, "{policy:?} starts early");
                assert!(r.finish_s > r.start_s, "{policy:?} zero-length run");
            }
            assert!(out.peak_busy_hosts <= out.pool_hosts, "{policy:?}");
            assert!(out.utilization > 0.0 && out.utilization <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn replay_is_bit_identical() {
        for policy in PolicyKind::ALL {
            let a = outcome(policy, 300, 5);
            let b = outcome(policy, 300, 5);
            assert_eq!(a.schedule_hash, b.schedule_hash, "{policy:?}");
            assert_eq!(a.trace_fingerprint, b.trace_fingerprint);
            // and a different seed really changes the schedule
            let c = outcome(policy, 300, 6);
            assert_ne!(a.schedule_hash, c.schedule_hash, "{policy:?}");
        }
    }

    #[test]
    fn policies_disagree_on_heavy_traffic() {
        let fifo = outcome(PolicyKind::Fifo, 600, 3);
        let bf = outcome(PolicyKind::EasyBackfill, 600, 3);
        assert!(bf.backfills > 0, "heavy traffic must trigger backfill");
        assert!(
            bf.makespan_s <= fifo.makespan_s + 1e-6,
            "EASY never delays the head, so its makespan cannot exceed FIFO's \
             ({} vs {})",
            bf.makespan_s,
            fifo.makespan_s
        );
        assert!(
            bf.mean_wait_s < fifo.mean_wait_s,
            "backfill should cut waits"
        );
    }

    #[test]
    fn admission_sheds_impossible_and_overflow_jobs() {
        let t = trace(200, 8);
        // a pool too narrow for the batch tenant's widest jobs
        let cfg = SchedConfig {
            hosts: vec![HostKind::Hp715_50; 8],
            ..SchedConfig::paper_pool(PolicyKind::Fifo, 1)
        };
        let out = run(&t, &cfg);
        let impossible = t.jobs.iter().filter(|j| j.procs > 8).count() as u64;
        assert!(impossible > 0, "trace should contain wide jobs");
        assert!(out.rejected >= impossible);
        assert_eq!(out.completed + out.rejected, 200);
        // a zero-depth queue sheds every arrival
        let capped = run(
            &t,
            &SchedConfig {
                max_queue: 0,
                ..cfg.clone()
            },
        );
        assert_eq!(capped.rejected, 200);
        assert_eq!(capped.completed, 0);
    }

    #[test]
    fn migration_moves_work_off_slow_hosts() {
        // all-720 pool except a few fast hosts: placements start mixed, and
        // finishes free fast hosts for the throttled survivors
        let mut hosts = vec![HostKind::Hp710; 20];
        hosts.extend(vec![HostKind::Hp715_50; 5]);
        let cfg = SchedConfig {
            hosts,
            ..SchedConfig::paper_pool(PolicyKind::Fifo, 1)
        };
        let with = run(&trace(300, 21), &cfg);
        let without = run(
            &trace(300, 21),
            &SchedConfig {
                migration: false,
                ..cfg
            },
        );
        assert!(!with.migrations.is_empty(), "no migrations triggered");
        for m in &with.migrations {
            assert_ne!(m.from, m.to);
        }
        // migration must never hurt the migrated schedule's total makespan
        // by more than the pauses it inserted
        assert!(with.makespan_s <= without.makespan_s + 1e-6);
    }

    #[test]
    fn fair_share_tracks_weights() {
        // two identical tenants, one with 4x the weight, saturating queue
        let t = JobTrace::generate(&TraceConfig {
            tenants: vec![
                TenantSpec {
                    weight: 4.0,
                    ..TenantSpec::light(0.2)
                },
                TenantSpec::light(0.2),
            ],
            jobs: 400,
            seed: 17,
        });
        let out = run(&t, &SchedConfig::paper_pool(PolicyKind::FairShare, 1));
        let heavy = &out.tenants[0];
        let light = &out.tenants[1];
        assert!(heavy.jobs > 0 && light.jobs > 0);
        assert!(
            heavy.mean_wait_s < light.mean_wait_s,
            "the weighted tenant should wait less ({} vs {})",
            heavy.mean_wait_s,
            light.mean_wait_s
        );
    }
}
