//! Pluggable job-ordering policies for the multi-tenant queue.
//!
//! A policy answers one question: *which tenant's head-of-line job, if any,
//! may start next?* The simulation owns the queue (per-tenant FIFOs plus a
//! global arrival order) and the host pool; the policy owns the ordering
//! discipline and whatever per-tenant accounting that discipline needs. All
//! four disciplines are **non-bypassing by default** — if the chosen job
//! does not fit, dispatch stops rather than skipping ahead — which makes
//! FIFO, round-robin and weighted fair-share trivially starvation-free. EASY
//! backfill is the one deliberate exception: it may move short jobs ahead of
//! a blocked head, but only when they provably finish before the head's
//! reservation, so the head is never delayed (Lifka's EASY rule; durations
//! are exactly known in the simulator, so the proof is exact rather than
//! estimate-based).

use serde::{Deserialize, Serialize};

/// The ordering discipline of the queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PolicyKind {
    /// Strict arrival order; a wide head blocks everything behind it.
    Fifo,
    /// Tenant rotation: each successful dispatch advances a cursor over the
    /// tenants, so one chatty tenant cannot monopolise the cluster.
    RoundRobin,
    /// Weighted fair share: always serve the tenant with the smallest
    /// `delivered_service / weight` (a virtual-time scheduler over
    /// host-seconds). A backlogged tenant's virtual time freezes while it
    /// waits, so it becomes the minimum in bounded time — no starvation.
    FairShare,
    /// FIFO plus EASY backfill: the head gets a reservation at the earliest
    /// instant enough hosts will be free; shorter jobs behind it may run now
    /// iff they finish before that reservation.
    EasyBackfill,
}

impl PolicyKind {
    /// Every discipline, in the order experiments report them.
    pub const ALL: [PolicyKind; 4] = [
        PolicyKind::Fifo,
        PolicyKind::RoundRobin,
        PolicyKind::FairShare,
        PolicyKind::EasyBackfill,
    ];

    /// Stable lowercase identifier (metric names, report rows, CLI).
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::Fifo => "fifo",
            PolicyKind::RoundRobin => "rr",
            PolicyKind::FairShare => "fair",
            PolicyKind::EasyBackfill => "backfill",
        }
    }

    /// Parses the [`Self::name`] form.
    pub fn parse(s: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|p| p.name() == s)
    }

    /// Whether the discipline picks by tenant (round-robin, fair share)
    /// rather than by global arrival order (FIFO, backfill).
    pub fn is_tenant_ordered(self) -> bool {
        matches!(self, PolicyKind::RoundRobin | PolicyKind::FairShare)
    }
}

/// Mutable per-tenant state a discipline keeps between decisions.
#[derive(Debug, Clone)]
pub struct PolicyState {
    kind: PolicyKind,
    /// Fair-share: host-seconds delivered per tenant.
    used_service: Vec<f64>,
    /// Fair-share weights (from the tenant specs).
    weights: Vec<f64>,
    /// Round-robin: tenant the cursor points at.
    cursor: usize,
}

impl PolicyState {
    /// Fresh accounting for `weights.len()` tenants.
    pub fn new(kind: PolicyKind, weights: &[f64]) -> Self {
        assert!(!weights.is_empty());
        assert!(weights.iter().all(|&w| w > 0.0), "weights must be positive");
        Self {
            kind,
            used_service: vec![0.0; weights.len()],
            weights: weights.to_vec(),
            cursor: 0,
        }
    }

    /// The discipline this state serves.
    pub fn kind(&self) -> PolicyKind {
        self.kind
    }

    /// For tenant-ordered disciplines: which tenant's head-of-line job to
    /// try next, given which tenants have queued work. Round-robin takes the
    /// first backlogged tenant at or after the cursor; fair share takes the
    /// backlogged tenant with the least normalised service (ties to the
    /// lower id). Globally-ordered disciplines (FIFO, backfill) return
    /// `None` — the caller uses the arrival-order head instead.
    pub fn choose_tenant(&self, backlogged: &[bool]) -> Option<usize> {
        debug_assert_eq!(backlogged.len(), self.weights.len());
        match self.kind {
            PolicyKind::Fifo | PolicyKind::EasyBackfill => None,
            PolicyKind::RoundRobin => {
                let n = self.weights.len();
                (0..n)
                    .map(|off| (self.cursor + off) % n)
                    .find(|&t| backlogged[t])
            }
            PolicyKind::FairShare => {
                (0..self.weights.len())
                    .filter(|&t| backlogged[t])
                    .min_by(|&a, &b| {
                        self.virtual_time(a as u16)
                            .total_cmp(&self.virtual_time(b as u16))
                            .then(a.cmp(&b))
                    })
            }
        }
    }

    /// Records a dispatch: `tenant` received `host_seconds` of service.
    /// Advances the round-robin cursor past that tenant.
    pub fn on_dispatch(&mut self, tenant: u16, host_seconds: f64) {
        self.used_service[tenant as usize] += host_seconds;
        self.cursor = (tenant as usize + 1) % self.weights.len();
    }

    /// Fair-share virtual time of a tenant (normalised delivered service).
    pub fn virtual_time(&self, tenant: u16) -> f64 {
        self.used_service[tenant as usize] / self.weights[tenant as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for p in PolicyKind::ALL {
            assert_eq!(PolicyKind::parse(p.name()), Some(p));
        }
        assert_eq!(PolicyKind::parse("lifo"), None);
    }

    #[test]
    fn global_disciplines_do_not_pick_tenants() {
        for kind in [PolicyKind::Fifo, PolicyKind::EasyBackfill] {
            let s = PolicyState::new(kind, &[1.0, 1.0]);
            assert!(!kind.is_tenant_ordered());
            assert_eq!(s.choose_tenant(&[true, true]), None);
        }
    }

    #[test]
    fn round_robin_rotates_tenants() {
        let mut s = PolicyState::new(PolicyKind::RoundRobin, &[1.0, 1.0, 1.0]);
        // tenants 0 and 1 backlogged, 2 empty
        assert_eq!(s.choose_tenant(&[true, true, false]), Some(0));
        s.on_dispatch(0, 10.0); // cursor -> 1
        assert_eq!(s.choose_tenant(&[true, true, false]), Some(1));
        s.on_dispatch(1, 10.0); // cursor -> 2; tenant 2 empty, wraps to 0
        assert_eq!(s.choose_tenant(&[true, false, false]), Some(0));
        assert_eq!(s.choose_tenant(&[false, false, false]), None);
    }

    #[test]
    fn fair_share_serves_the_least_served_tenant() {
        let mut s = PolicyState::new(PolicyKind::FairShare, &[1.0, 2.0]);
        let all = [true, true];
        // equal virtual time 0: tie goes to tenant 0
        assert_eq!(s.choose_tenant(&all), Some(0));
        s.on_dispatch(0, 100.0); // v0 = 100, v1 = 0
        assert_eq!(s.choose_tenant(&all), Some(1));
        s.on_dispatch(1, 100.0); // v1 = 50 < v0 = 100: weight-2 tenant again
        assert_eq!(s.choose_tenant(&all), Some(1));
        s.on_dispatch(1, 150.0); // v1 = 125 > v0 = 100
        assert_eq!(s.choose_tenant(&all), Some(0));
        assert!((s.virtual_time(1) - 125.0).abs() < 1e-12);
        // an empty winner is skipped even with the lowest virtual time
        assert_eq!(s.choose_tenant(&[false, true]), Some(1));
    }
}
