//! Publication of schedule outcomes into the workspace observability stack.
//!
//! Two sinks, same [`SchedOutcome`]:
//!
//! * [`publish`] pushes the scalar rollups into a [`MetricsRegistry`] under
//!   `sched.<policy>.*` (global) and `sched.<policy>.tenant<i>.*`
//!   (per-tenant fairness), so `reproduce` runs emit them in `METRICS.json`
//!   alongside every other subsystem's counters.
//! * [`record_tracks`] replays the schedule into a [`FlightRecorder`] as one
//!   track per tenant — a queued-wait span ([`Category::Sync`]) and a run
//!   span ([`Category::Compute`]) per job, migration instants on the track
//!   of the migrating job's tenant — so `reproduce sched --trace out.json`
//!   yields a Perfetto timeline of the whole job stream.

use subsonic_obs::{Category, FlightRecorder, MetricsRegistry};

use crate::sim::SchedOutcome;

/// Pushes an outcome's rollups into the registry under `sched.<policy>.*`.
pub fn publish(out: &SchedOutcome, reg: &MetricsRegistry) {
    let p = out.policy.name();
    reg.counter_add(&format!("sched.{p}.jobs_completed"), out.completed);
    reg.counter_add(&format!("sched.{p}.jobs_rejected"), out.rejected);
    reg.counter_add(&format!("sched.{p}.backfills"), out.backfills);
    reg.counter_add(
        &format!("sched.{p}.migrations"),
        out.migrations.len() as u64,
    );
    reg.gauge_set(&format!("sched.{p}.makespan_s"), out.makespan_s, "s");
    reg.gauge_set(&format!("sched.{p}.utilization"), out.utilization, "ratio");
    reg.gauge_set(&format!("sched.{p}.mean_wait_s"), out.mean_wait_s, "s");
    reg.gauge_set(&format!("sched.{p}.mean_stretch"), out.mean_stretch, "x");
    reg.gauge_set(&format!("sched.{p}.max_stretch"), out.max_stretch, "x");
    for (i, t) in out.tenants.iter().enumerate() {
        reg.counter_add(&format!("sched.{p}.tenant{i}.jobs"), t.jobs);
        reg.counter_add(&format!("sched.{p}.tenant{i}.rejected"), t.rejected);
        reg.gauge_set(
            &format!("sched.{p}.tenant{i}.mean_wait_s"),
            t.mean_wait_s,
            "s",
        );
        reg.gauge_set(
            &format!("sched.{p}.tenant{i}.mean_stretch"),
            t.mean_stretch,
            "x",
        );
        reg.gauge_set(
            &format!("sched.{p}.tenant{i}.max_stretch"),
            t.max_stretch,
            "x",
        );
        reg.gauge_set(
            &format!("sched.{p}.tenant{i}.service_host_s"),
            t.service_host_s,
            "s",
        );
    }
    for r in out.records.iter().filter(|r| r.completed()) {
        reg.histogram_observe(&format!("sched.{p}.wait_s"), r.wait_s(), "s");
        reg.histogram_observe(&format!("sched.{p}.stretch"), r.stretch(), "x");
    }
}

/// Replays the schedule into the recorder: one track per tenant, simulated
/// time. A disabled recorder makes this a no-op, like every other producer.
pub fn record_tracks(out: &SchedOutcome, rec: &FlightRecorder) {
    if !rec.is_enabled() {
        return;
    }
    let mut tracks: Vec<_> = (0..out.tenants.len())
        .map(|t| {
            rec.track(
                // pid 9000+policy keeps the four replays apart in one trace
                9000 + out.policy as u32,
                t as u32,
                out.policy.name(),
                "tenant",
            )
        })
        .collect();
    for r in out.records.iter().filter(|r| r.completed()) {
        let tr = &mut tracks[r.tenant as usize];
        if r.wait_s() > 0.0 {
            tr.span_sim_arg(
                Category::Sync,
                "queued",
                r.submit_s,
                r.start_s,
                Some(("job", r.id as f64)),
            );
        }
        tr.span_sim_arg(
            Category::Compute,
            "job",
            r.start_s,
            r.finish_s,
            Some(("procs", r.procs as f64)),
        );
    }
    for m in &out.migrations {
        let tenant = out.records[m.job as usize].tenant as usize;
        tracks[tenant].instant_sim_arg(
            Category::Migration,
            "migrate",
            m.at_s,
            Some(("job", m.job as f64)),
        );
    }
    for mut t in tracks {
        t.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicyKind;
    use crate::sim::{run, SchedConfig};
    use crate::trace::{JobTrace, TenantSpec, TraceConfig};

    fn outcome() -> SchedOutcome {
        let t = JobTrace::generate(&TraceConfig {
            tenants: vec![TenantSpec::light(0.02), TenantSpec::batch(0.004)],
            jobs: 200,
            seed: 4,
        });
        run(&t, &SchedConfig::paper_pool(PolicyKind::FairShare, 1))
    }

    #[test]
    fn registry_gets_global_and_per_tenant_series() {
        let out = outcome();
        let reg = MetricsRegistry::new();
        publish(&out, &reg);
        assert_eq!(
            reg.counter("sched.fair.jobs_completed"),
            Some(out.completed)
        );
        assert!(reg.gauge("sched.fair.makespan_s").unwrap_or(0.0) > 0.0);
        assert!(reg.gauge("sched.fair.tenant0.mean_wait_s").is_some());
        assert!(reg.gauge("sched.fair.tenant1.max_stretch").is_some());
        let h = reg.histogram("sched.fair.stretch").expect("histogram");
        assert_eq!(h.count, out.completed);
    }

    #[test]
    fn recorder_gets_one_track_per_tenant() {
        let out = outcome();
        let rec = FlightRecorder::enabled(1 << 14);
        record_tracks(&out, &rec);
        let tracks = rec.finished_tracks();
        assert_eq!(tracks.len(), out.tenants.len());
        let events: usize = tracks.iter().map(|t| t.events.len()).sum();
        assert!(events >= out.completed as usize, "one span per job minimum");
        // disabled recorder: nothing recorded, nothing panics
        record_tracks(&out, &FlightRecorder::disabled());
    }
}
