//! Trace-driven arrival generation: synthetic heavy-traffic job streams.
//!
//! A trace is a time-ordered list of [`Job`]s across multiple tenants. Each
//! tenant submits an independent Poisson stream (exponential inter-arrival
//! times at its configured rate); each job is a whole solver decomposition —
//! `procs` subprocesses of `nodes_per_proc` fluid nodes each, integrated for
//! `steps` steps — exactly the unit the paper's submit program places onto
//! the cluster. Widths and step counts are drawn log-uniformly, the
//! heavy-tailed shape cluster traces (e.g. the Alibaba and Google public
//! traces) show: many narrow short jobs, a few wide long ones.
//!
//! Generation is deterministic given the seed: per-tenant RNG streams are
//! salted with the tenant index, so adding a tenant never perturbs the
//! others' draws, and the k-way merge across tenants breaks submit-time ties
//! by tenant index. [`JobTrace::fingerprint`] hashes every field of every
//! job, so two traces are interchangeable iff their fingerprints match.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use subsonic_solvers::MethodKind;

/// Seed salt separating tenant `i`'s arrival stream from tenant `j`'s (and
/// from every RNG stream of the cluster simulation).
pub const TRACE_STREAM_SALT: u64 = 0x5CED_0123_4567_89AB;

/// One tenant's statistical job profile.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TenantSpec {
    /// Fair-share weight (higher = entitled to more of the cluster).
    pub weight: f64,
    /// Mean job submissions per second (Poisson arrivals).
    pub arrival_rate: f64,
    /// Smallest job width (subprocesses), inclusive.
    pub min_procs: u32,
    /// Largest job width (subprocesses), inclusive.
    pub max_procs: u32,
    /// Smallest integration-step count, inclusive.
    pub min_steps: u64,
    /// Largest integration-step count, inclusive.
    pub max_steps: u64,
    /// Subregion size per subprocess, fluid nodes.
    pub nodes_per_proc: f64,
    /// Numerical method of this tenant's solver jobs.
    pub method: MethodKind,
}

impl TenantSpec {
    /// A balanced interactive tenant: narrow, short jobs at a given rate.
    pub fn light(arrival_rate: f64) -> Self {
        Self {
            weight: 1.0,
            arrival_rate,
            min_procs: 1,
            max_procs: 4,
            min_steps: 50,
            max_steps: 400,
            nodes_per_proc: 2500.0,
            method: MethodKind::LatticeBoltzmann,
        }
    }

    /// A batch tenant: wide, long decompositions (the paper's overnight
    /// production runs), submitted aggressively.
    pub fn batch(arrival_rate: f64) -> Self {
        Self {
            weight: 1.0,
            arrival_rate,
            min_procs: 4,
            max_procs: 20,
            min_steps: 400,
            max_steps: 4000,
            nodes_per_proc: 2500.0,
            method: MethodKind::LatticeBoltzmann,
        }
    }
}

/// Trace generator configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Tenant profiles (index = tenant id).
    pub tenants: Vec<TenantSpec>,
    /// Total jobs to generate across all tenants.
    pub jobs: usize,
    /// RNG seed; identical seeds yield bit-identical traces.
    pub seed: u64,
}

/// One submitted solver job: a whole decomposition to place.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Job {
    /// Trace-wide id (also the submit order).
    pub id: u32,
    /// Owning tenant (index into the config's tenant list).
    pub tenant: u16,
    /// Submission time, seconds.
    pub submit_s: f64,
    /// Width: number of subprocesses (one host each).
    pub procs: u32,
    /// Fluid nodes per subprocess.
    pub nodes_per_proc: f64,
    /// Integration steps.
    pub steps: u64,
    /// Numerical method.
    pub method: MethodKind,
}

/// A generated, time-ordered job stream.
#[derive(Debug, Clone)]
pub struct JobTrace {
    /// Jobs sorted by `(submit_s, tenant)`.
    pub jobs: Vec<Job>,
    /// Tenant profiles the trace was drawn from.
    pub tenants: Vec<TenantSpec>,
    /// Seed the trace was drawn with.
    pub seed: u64,
}

/// FNV-1a over a byte stream — the workspace's dependency-free stable hash.
#[derive(Debug, Clone, Copy)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv1a {
    /// The FNV-1a offset basis.
    pub fn new() -> Self {
        Self(0xcbf2_9ce4_8422_2325)
    }

    /// Folds bytes into the hash.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x1000_0000_01b3);
        }
    }

    /// Folds a `u64` (little-endian) into the hash.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Folds an `f64` (bit pattern) into the hash.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// The digest.
    pub fn finish(self) -> u64 {
        self.0
    }
}

/// Log-uniform integer in `[lo, hi]`: `exp(U(ln lo, ln(hi+1)))` floored —
/// heavy-tailed toward small values, every bucket reachable.
fn log_uniform(rng: &mut SmallRng, lo: u64, hi: u64) -> u64 {
    if lo >= hi {
        return lo;
    }
    let (a, b) = ((lo as f64).ln(), ((hi + 1) as f64).ln());
    let v = (rng.gen_range(a..b)).exp() as u64;
    v.clamp(lo, hi)
}

/// Exponential inter-arrival sample with the given rate (events/second).
fn exp_interarrival(rng: &mut SmallRng, rate: f64) -> f64 {
    debug_assert!(rate > 0.0);
    let u: f64 = rng.gen::<f64>();
    // 1 − u ∈ (0, 1]: ln never sees zero
    -(1.0 - u).ln() / rate
}

impl JobTrace {
    /// Generates the trace: per-tenant Poisson streams merged in time order.
    pub fn generate(cfg: &TraceConfig) -> Self {
        assert!(!cfg.tenants.is_empty(), "a trace needs at least one tenant");
        // Per-tenant generator state: independent salted RNG + next arrival.
        let mut rngs: Vec<SmallRng> = (0..cfg.tenants.len())
            .map(|t| {
                SmallRng::seed_from_u64(
                    cfg.seed ^ TRACE_STREAM_SALT.wrapping_add(t as u64 * 0x9E37),
                )
            })
            .collect();
        let mut next_at: Vec<f64> = cfg
            .tenants
            .iter()
            .zip(rngs.iter_mut())
            .map(|(t, rng)| exp_interarrival(rng, t.arrival_rate))
            .collect();
        let mut jobs = Vec::with_capacity(cfg.jobs);
        while jobs.len() < cfg.jobs {
            // k-way merge: earliest next arrival, ties to the lower tenant id
            let t = (0..cfg.tenants.len())
                .min_by(|&a, &b| next_at[a].total_cmp(&next_at[b]).then(a.cmp(&b)))
                .expect("non-empty tenant list");
            let spec = &cfg.tenants[t];
            let rng = &mut rngs[t];
            let procs = log_uniform(rng, spec.min_procs as u64, spec.max_procs as u64) as u32;
            let steps = log_uniform(rng, spec.min_steps, spec.max_steps);
            jobs.push(Job {
                id: jobs.len() as u32,
                tenant: t as u16,
                submit_s: next_at[t],
                procs,
                nodes_per_proc: spec.nodes_per_proc,
                steps,
                method: spec.method,
            });
            next_at[t] += exp_interarrival(rng, spec.arrival_rate);
        }
        Self {
            jobs,
            tenants: cfg.tenants.clone(),
            seed: cfg.seed,
        }
    }

    /// Number of tenants in the trace.
    pub fn tenant_count(&self) -> usize {
        self.tenants.len()
    }

    /// Stable digest over every field of every job: two traces replay
    /// identically iff their fingerprints match.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.write_u64(self.seed);
        h.write_u64(self.jobs.len() as u64);
        for j in &self.jobs {
            h.write_u64(j.id as u64);
            h.write_u64(j.tenant as u64);
            h.write_f64(j.submit_s);
            h.write_u64(j.procs as u64);
            h.write_f64(j.nodes_per_proc);
            h.write_u64(j.steps);
            h.write_u64(matches!(j.method, MethodKind::FiniteDifference) as u64);
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg(seed: u64) -> TraceConfig {
        TraceConfig {
            tenants: vec![TenantSpec::light(0.05), TenantSpec::batch(0.01)],
            jobs: 500,
            seed,
        }
    }

    #[test]
    fn trace_is_time_ordered_and_complete() {
        let t = JobTrace::generate(&small_cfg(7));
        assert_eq!(t.jobs.len(), 500);
        for w in t.jobs.windows(2) {
            assert!(w[0].submit_s <= w[1].submit_s, "out of order");
        }
        for (i, j) in t.jobs.iter().enumerate() {
            assert_eq!(j.id as usize, i);
            assert!(j.procs >= 1 && j.steps >= 1);
            assert!(j.submit_s.is_finite() && j.submit_s > 0.0);
        }
        // both tenants contribute
        assert!(t.jobs.iter().any(|j| j.tenant == 0));
        assert!(t.jobs.iter().any(|j| j.tenant == 1));
    }

    #[test]
    fn trace_is_deterministic_per_seed() {
        let a = JobTrace::generate(&small_cfg(42));
        let b = JobTrace::generate(&small_cfg(42));
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.jobs, b.jobs);
        let c = JobTrace::generate(&small_cfg(43));
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn widths_respect_tenant_bounds() {
        let t = JobTrace::generate(&small_cfg(9));
        for j in &t.jobs {
            let spec = &t.tenants[j.tenant as usize];
            assert!(j.procs >= spec.min_procs && j.procs <= spec.max_procs);
            assert!(j.steps >= spec.min_steps && j.steps <= spec.max_steps);
        }
    }

    #[test]
    fn log_uniform_is_heavy_tailed_toward_small() {
        let mut rng = SmallRng::seed_from_u64(1);
        let draws: Vec<u64> = (0..4000).map(|_| log_uniform(&mut rng, 1, 64)).collect();
        let small = draws.iter().filter(|&&v| v <= 8).count();
        let large = draws.iter().filter(|&&v| v > 32).count();
        assert!(small > large, "log-uniform should favour small widths");
        assert!(draws.iter().all(|&v| (1..=64).contains(&v)));
    }
}
