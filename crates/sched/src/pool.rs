//! The placement layer: a pool of simulated workstations, selected through
//! the cluster simulation's own submit machinery.
//!
//! The scheduler does not reinvent host selection: every placement decision
//! goes through [`SubmitPolicy::select`] over real [`HostState`]s — the
//! paper's idle-user-first, faster-models-first search — so a job's
//! subprocesses land on the same hosts the section-4.1 submit program would
//! have chosen. Heterogeneity then prices the job: the per-step coupling of
//! the PR 2 model pins every subprocess to the slowest selected machine
//! ([`EfficiencyModel::t_step_hetero`]), which is what makes migration onto
//! freed faster hosts worth its ~30-second pause.

use subsonic_cluster::host::{HostKind, HostState};
use subsonic_cluster::policy::SubmitPolicy;
use subsonic_model::{EfficiencyModel, NetworkKind, PaperConstants};
use subsonic_solvers::MethodKind;

use crate::trace::Job;

/// Decomposition geometry factor for the strip decompositions the job
/// stream places (two exchange faces per interior subregion).
const STRIP_M: f64 = 2.0;

/// A pool of workstations jobs are placed onto, one subprocess per host.
#[derive(Debug, Clone)]
pub struct HostPool {
    hosts: Vec<HostState>,
    submit: SubmitPolicy,
    busy: usize,
}

impl HostPool {
    /// A quiet pool of the given models (every console idle since t = 0, no
    /// competing jobs), searched with `submit`.
    pub fn new(kinds: &[HostKind], submit: SubmitPolicy) -> Self {
        Self {
            hosts: kinds.iter().map(|&k| HostState::new(k)).collect(),
            submit,
            busy: 0,
        }
    }

    /// Total hosts in the pool.
    pub fn len(&self) -> usize {
        self.hosts.len()
    }

    /// Whether the pool has no hosts.
    pub fn is_empty(&self) -> bool {
        self.hosts.is_empty()
    }

    /// Hosts without an assigned subprocess.
    pub fn free(&self) -> usize {
        self.hosts.len() - self.busy
    }

    /// Relative speed of a host for a method (1.0 = the 715/50 reference).
    pub fn rel(&self, host: usize, method: MethodKind) -> f64 {
        let reference = HostKind::Hp715_50.node_rate(method, false);
        self.hosts[host].kind.node_rate(method, false) / reference
    }

    /// Places a `procs`-wide job: `procs` rounds of the submit program's
    /// host search, marking each pick assigned. Returns the selected hosts
    /// (in pick order — fastest tiers first) or `None`, releasing any
    /// partial picks, when fewer than `procs` hosts are free.
    pub fn acquire(&mut self, now: f64, procs: u32, job_id: u32) -> Option<Vec<u32>> {
        let mut picked = Vec::with_capacity(procs as usize);
        for _ in 0..procs {
            match self.submit.select(now, self.hosts.iter().enumerate()) {
                Some(h) => {
                    self.hosts[h].assigned_proc = Some(job_id as usize);
                    picked.push(h as u32);
                }
                None => {
                    for &h in &picked {
                        self.hosts[h as usize].assigned_proc = None;
                    }
                    return None;
                }
            }
        }
        self.busy += picked.len();
        Some(picked)
    }

    /// Claims one specific free host (a migration target the caller already
    /// chose through [`Self::best_free`]).
    pub fn acquire_specific(&mut self, host: u32, job_id: u32) {
        let h = &mut self.hosts[host as usize];
        assert!(h.assigned_proc.is_none(), "migration target already taken");
        h.assigned_proc = Some(job_id as usize);
        self.busy += 1;
    }

    /// Releases hosts back to the pool.
    pub fn release(&mut self, hosts: &[u32]) {
        for &h in hosts {
            let host = &mut self.hosts[h as usize];
            debug_assert!(host.assigned_proc.is_some(), "double release of host {h}");
            host.assigned_proc = None;
        }
        self.busy -= hosts.len();
    }

    /// The free host the submit search would pick right now, if any.
    pub fn best_free(&self, now: f64) -> Option<u32> {
        self.submit
            .select(now, self.hosts.iter().enumerate())
            .map(|h| h as u32)
    }

    /// Slowest selected host's relative speed for this method — the
    /// step-coupling bottleneck of the whole decomposition.
    pub fn rel_min(&self, hosts: &[u32], method: MethodKind) -> f64 {
        hosts
            .iter()
            .map(|&h| self.rel(h as usize, method))
            .fold(f64::INFINITY, f64::min)
    }

    /// Index (into `hosts`) of the slowest selected host.
    pub fn slowest_of(&self, hosts: &[u32], method: MethodKind) -> usize {
        let mut worst = 0;
        for (i, &h) in hosts.iter().enumerate() {
            if self.rel(h as usize, method) < self.rel(hosts[worst] as usize, method) {
                worst = i;
            }
        }
        worst
    }
}

/// The paper's per-step model for a placed decomposition.
fn step_model(job: &Job) -> EfficiencyModel {
    let c = PaperConstants::default();
    EfficiencyModel {
        dim: 2,
        m: STRIP_M,
        p: job.procs as usize,
        u_calc: HostKind::Hp715_50.node_rate(job.method, false),
        v_com: c.v_com(),
        network: NetworkKind::SharedBus,
        messages_per_step: match job.method {
            MethodKind::LatticeBoltzmann => 1.0,
            MethodKind::FiniteDifference => 2.0,
        },
        message_overhead: 0.0,
    }
}

/// Service time of a job on hosts whose slowest member runs at `rel_min`:
/// `steps × (T_calc/rel_min + T_com)` (PR 2's heterogeneous step coupling).
pub fn service_time(job: &Job, rel_min: f64) -> f64 {
    job.steps as f64 * step_model(job).t_step_hetero(job.nodes_per_proc, rel_min)
}

/// Service time on an all-reference-speed placement: the lower bound the
/// EASY reservation and the slowdown metrics are measured against.
pub fn reference_service_time(job: &Job) -> f64 {
    service_time(job, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use subsonic_solvers::MethodKind;

    fn mixed_pool() -> HostPool {
        let mut kinds = vec![HostKind::Hp715_50; 4];
        kinds.extend([HostKind::Hp720, HostKind::Hp710]);
        HostPool::new(&kinds, SubmitPolicy::default())
    }

    fn job(procs: u32, steps: u64) -> Job {
        Job {
            id: 0,
            tenant: 0,
            submit_s: 0.0,
            procs,
            nodes_per_proc: 2500.0,
            steps,
            method: MethodKind::LatticeBoltzmann,
        }
    }

    #[test]
    fn acquire_prefers_fast_hosts_and_rolls_back() {
        let mut p = mixed_pool();
        let now = 30.0 * 60.0;
        let picked = p.acquire(now, 4, 1).expect("4 of 6 free");
        // the four 715/50s (ids 0..4) go first — the paper's preference order
        assert_eq!(picked.len(), 4);
        assert!(picked.iter().all(|&h| h < 4), "{picked:?}");
        assert_eq!(p.free(), 2);
        // a 3-wide job no longer fits; the failed acquire must roll back
        assert!(p.acquire(now, 3, 2).is_none());
        assert_eq!(p.free(), 2);
        p.release(&picked);
        assert_eq!(p.free(), 6);
    }

    #[test]
    fn rel_min_is_the_slowest_member() {
        let p = mixed_pool();
        let m = MethodKind::LatticeBoltzmann;
        assert!((p.rel_min(&[0, 1], m) - 1.0).abs() < 1e-12);
        // host 5 is the 710 (rel 0.84 for LB 2D)
        assert!((p.rel_min(&[0, 5], m) - 0.84).abs() < 1e-9);
        assert_eq!(p.slowest_of(&[0, 5], m), 1);
    }

    #[test]
    fn service_time_scales_with_heterogeneity() {
        let j = job(4, 100);
        let fast = service_time(&j, 1.0);
        let slow = service_time(&j, 0.84);
        assert!(slow > fast, "slower bottleneck must lengthen the job");
        assert!((reference_service_time(&j) - fast).abs() < 1e-12);
        // T_calc/rel scaling: the compute share grows exactly by 1/rel
        let model = step_model(&j);
        let expect = j.steps as f64 * (model.t_calc(2500.0) / 0.84 + model.t_com(2500.0));
        assert!((slow - expect).abs() < 1e-9);
    }
}
