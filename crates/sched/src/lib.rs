//! Multi-tenant job-stream scheduling over the simulated cluster.
//!
//! The paper runs *one* parallel fluid computation on idle workstations;
//! this crate asks the operational question one layer up: what happens when
//! a whole user population submits such computations continuously? It turns
//! the existing machinery into a simulation *service*:
//!
//! * [`trace`] — synthetic heavy-traffic arrival generation: per-tenant
//!   Poisson streams of solver decompositions with log-uniform (heavy-tailed)
//!   widths and durations, deterministic per seed, 10⁴–10⁶ jobs.
//! * [`pool`] — placement through the cluster crate's own
//!   `SubmitPolicy::select` host search, priced by the PR 2 heterogeneous
//!   efficiency model (every subprocess runs at the slowest member's pace).
//! * [`policy`] — pluggable queue disciplines: FIFO, round-robin, weighted
//!   fair share and EASY backfill.
//! * [`sim`] — the event-driven replay engine on the cluster crate's
//!   calendar queue, with admission control and the paper's
//!   pause-and-restart migration as the intra-job layer.
//! * [`metrics`] — fairness/throughput rollups into `subsonic-obs`
//!   (`METRICS.json` series and per-tenant Perfetto tracks).
//!
//! The headline invariants, enforced by tests here and proptests in the
//! workspace test crate: admitted work is never over-committed (placements
//! only ever use actually-free hosts), no discipline starves a tenant
//! (non-bypassing dispatch; EASY's bypass provably never delays the head),
//! and a replay is a pure function of `(trace, config)` — identical inputs
//! give bit-identical schedules, certified by an FNV-1a schedule hash.

#![warn(clippy::unwrap_used)]

pub mod metrics;
pub mod policy;
pub mod pool;
pub mod sim;
pub mod trace;

pub use metrics::{publish, record_tracks};
pub use policy::{PolicyKind, PolicyState};
pub use pool::{reference_service_time, service_time, HostPool};
pub use sim::{run, JobRecord, Migration, SchedConfig, SchedOutcome, TenantMetrics};
pub use trace::{Fnv1a, Job, JobTrace, TenantSpec, TraceConfig};
