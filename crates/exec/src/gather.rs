//! Gathering tile interiors back into global fields.

use subsonic_grid::Array2;
use subsonic_solvers::{TileState2, TileState3};

/// Gathered global 2D fields.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalFields2 {
    /// Density.
    pub rho: Array2<f64>,
    /// x-velocity.
    pub vx: Array2<f64>,
    /// y-velocity.
    pub vy: Array2<f64>,
}

impl GlobalFields2 {
    /// Assembles global fields of size `nx × ny` from tile interiors; nodes
    /// not covered by any tile (inactive, all-solid subregions) read as
    /// `(rho0, 0, 0)`.
    pub fn gather<'a>(
        nx: usize,
        ny: usize,
        rho0: f64,
        tiles: impl IntoIterator<Item = &'a TileState2>,
    ) -> Self {
        let mut rho = Array2::new(nx, ny, rho0);
        let mut vx = Array2::new(nx, ny, 0.0);
        let mut vy = Array2::new(nx, ny, 0.0);
        for t in tiles {
            let (ox, oy) = t.offset;
            for j in 0..t.ny() {
                for i in 0..t.nx() {
                    let (gi, gj) = (ox + i, oy + j);
                    rho[(gi, gj)] = t.mac.rho[(i as isize, j as isize)];
                    vx[(gi, gj)] = t.mac.vx[(i as isize, j as isize)];
                    vy[(gi, gj)] = t.mac.vy[(i as isize, j as isize)];
                }
            }
        }
        Self { rho, vx, vy }
    }

    /// Bitwise equality check against another gather (used by the
    /// serial/parallel equivalence tests). Returns the first differing node.
    pub fn first_difference(&self, other: &Self) -> Option<(usize, usize, f64, f64)> {
        for y in 0..self.rho.ny() {
            for x in 0..self.rho.nx() {
                for (a, b) in [
                    (&self.rho, &other.rho),
                    (&self.vx, &other.vx),
                    (&self.vy, &other.vy),
                ] {
                    if a[(x, y)].to_bits() != b[(x, y)].to_bits() {
                        return Some((x, y, a[(x, y)], b[(x, y)]));
                    }
                }
            }
        }
        None
    }
}

/// Gathered global 3D fields (flattened storage via `Array2` per z-slab would
/// be awkward; we keep plain vectors indexed `(z·ny + y)·nx + x`).
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalFields3 {
    /// Grid extents.
    pub dims: (usize, usize, usize),
    /// Density, row-major x-fastest.
    pub rho: Vec<f64>,
    /// x-velocity.
    pub vx: Vec<f64>,
    /// y-velocity.
    pub vy: Vec<f64>,
    /// z-velocity.
    pub vz: Vec<f64>,
}

impl GlobalFields3 {
    /// Flat index of `(x, y, z)`.
    #[inline]
    pub fn idx(&self, x: usize, y: usize, z: usize) -> usize {
        (z * self.dims.1 + y) * self.dims.0 + x
    }

    /// Assembles global fields from tile interiors.
    pub fn gather<'a>(
        dims: (usize, usize, usize),
        rho0: f64,
        tiles: impl IntoIterator<Item = &'a TileState3>,
    ) -> Self {
        let n = dims.0 * dims.1 * dims.2;
        let mut out = Self {
            dims,
            rho: vec![rho0; n],
            vx: vec![0.0; n],
            vy: vec![0.0; n],
            vz: vec![0.0; n],
        };
        for t in tiles {
            let (ox, oy, oz) = t.offset;
            for k in 0..t.nz() {
                for j in 0..t.ny() {
                    for i in 0..t.nx() {
                        let g = out.idx(ox + i, oy + j, oz + k);
                        let l = (i as isize, j as isize, k as isize);
                        out.rho[g] = t.mac.rho[l];
                        out.vx[g] = t.mac.vx[l];
                        out.vy[g] = t.mac.vy[l];
                        out.vz[g] = t.mac.vz[l];
                    }
                }
            }
        }
        out
    }

    /// Returns the first node where the two gathers differ bitwise.
    pub fn first_difference(&self, other: &Self) -> Option<usize> {
        for (i, (a, b)) in self.rho.iter().zip(&other.rho).enumerate() {
            if a.to_bits() != b.to_bits() {
                return Some(i);
            }
        }
        for (i, (a, b)) in self.vx.iter().zip(&other.vx).enumerate() {
            if a.to_bits() != b.to_bits() {
                return Some(i);
            }
        }
        for (i, (a, b)) in self.vy.iter().zip(&other.vy).enumerate() {
            if a.to_bits() != b.to_bits() {
                return Some(i);
            }
        }
        for (i, (a, b)) in self.vz.iter().zip(&other.vz).enumerate() {
            if a.to_bits() != b.to_bits() {
                return Some(i);
            }
        }
        None
    }
}
