//! Thread-per-subregion runner for 3D problems (companion to
//! [`crate::threaded`]). Halo exchange runs in three stages (x, y, z) so
//! edge and corner ghosts fill transitively without diagonal messages.

use crate::checkpoint3::{load_tile3, save_tile3};
use crate::gather::GlobalFields3;
use crate::problem::Problem3;
use crate::threaded::{DrillReport, MigrationDrill};
use crate::timing::StepTiming;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;
use subsonic_grid::Face3;
use subsonic_solvers::{Solver3, StepOp, TileState3};

const NO_SYNC: u64 = u64::MAX;

/// Result of a 3D threaded run.
pub struct RunOutcome3 {
    /// Final tiles, in active-id order.
    pub tiles: Vec<TileState3>,
    /// Per-tile timing, `(tile_id, timing)`.
    pub timing: Vec<(usize, StepTiming)>,
    /// Drill report, if one was requested and fired.
    pub drill: Option<DrillReport>,
}

impl RunOutcome3 {
    /// Gathers the global fields from the final tiles.
    pub fn gather(&self, dims: (usize, usize, usize), rho0: f64) -> GlobalFields3 {
        GlobalFields3::gather(dims, rho0, self.tiles.iter())
    }
}

struct Control {
    published: Vec<AtomicU64>,
    sync_step: AtomicU64,
    state: Mutex<(usize, u64)>, // (paused, epoch)
    cv: Condvar,
}

impl Control {
    fn new(n: usize) -> Self {
        Self {
            published: (0..n).map(|_| AtomicU64::new(0)).collect(),
            sync_step: AtomicU64::new(NO_SYNC),
            state: Mutex::new((0, 0)),
            cv: Condvar::new(),
        }
    }

    fn max_published(&self) -> u64 {
        self.published.iter().map(|a| a.load(Ordering::SeqCst)).max().unwrap_or(0)
    }

    fn pause(&self) {
        let mut st = self.state.lock();
        let epoch = st.1;
        st.0 += 1;
        self.cv.notify_all();
        while st.1 == epoch {
            self.cv.wait(&mut st);
        }
    }

    fn wait_all_paused(&self, n: usize) {
        let mut st = self.state.lock();
        while st.0 < n {
            self.cv.wait(&mut st);
        }
    }

    fn resume_all(&self) {
        let mut st = self.state.lock();
        st.0 = 0;
        st.1 += 1;
        self.cv.notify_all();
        self.sync_step.store(NO_SYNC, Ordering::SeqCst);
    }
}

/// One thread per 3D subregion, channels as sockets.
pub struct ThreadedRunner3 {
    solver: Arc<dyn Solver3>,
    problem: Problem3,
}

impl ThreadedRunner3 {
    /// Creates a runner.
    pub fn new(solver: Arc<dyn Solver3>, problem: Problem3) -> Self {
        Self { solver, problem }
    }

    /// Runs `steps` integration steps on all active tiles in parallel.
    pub fn run(&self, steps: u64) -> RunOutcome3 {
        self.run_with_drill(steps, None)
    }

    /// Runs with an optional mid-run migration drill.
    pub fn run_with_drill(&self, steps: u64, drill: Option<MigrationDrill>) -> RunOutcome3 {
        let active = self.problem.active_tiles();
        let n = active.len();
        let index_of: HashMap<usize, usize> =
            active.iter().enumerate().map(|(k, &id)| (id, k)).collect();

        // Data channels paired with buffer-return channels, exactly as in the
        // 2D runner: consumed halo buffers flow back to their sender for
        // reuse, so the steady-state exchange allocates nothing.
        let mut senders: HashMap<(usize, Face3), Sender<Vec<f64>>> = HashMap::new();
        let mut receivers: HashMap<(usize, Face3), Receiver<Vec<f64>>> = HashMap::new();
        let mut ret_senders: HashMap<(usize, Face3), Sender<Vec<f64>>> = HashMap::new();
        let mut ret_receivers: HashMap<(usize, Face3), Receiver<Vec<f64>>> = HashMap::new();
        for &id in &active {
            for f in Face3::ALL {
                if let Some(nb) = self.problem.decomp.neighbor(id, f) {
                    if index_of.contains_key(&nb) {
                        let (s, r) = unbounded();
                        senders.insert((id, f), s);
                        receivers.insert((id, f), r);
                        let (rs, rr) = unbounded();
                        ret_senders.insert((id, f), rs);
                        ret_receivers.insert((id, f), rr);
                    }
                }
            }
        }

        // (face, data in, buffer-returns out) / (face, data out, returns in)
        type RxEdge = (Face3, Receiver<Vec<f64>>, Sender<Vec<f64>>);
        type TxEdge = (Face3, Sender<Vec<f64>>, Receiver<Vec<f64>>);
        struct Endpoints {
            rx: Vec<RxEdge>,
            tx: Vec<TxEdge>,
        }
        let mut endpoints: Vec<Endpoints> = Vec::with_capacity(n);
        for &id in &active {
            let mut rx = Vec::new();
            let mut tx = Vec::new();
            for f in Face3::ALL {
                if let Some(r) = receivers.remove(&(id, f)) {
                    let rs = ret_senders.remove(&(id, f)).unwrap();
                    rx.push((f, r, rs));
                }
                if let Some(nb) = self.problem.decomp.neighbor(id, f) {
                    if let Some(s) = senders.get(&(nb, f.opposite())) {
                        let rr = ret_receivers.remove(&(nb, f.opposite())).unwrap();
                        tx.push((f, s.clone(), rr));
                    }
                }
            }
            endpoints.push(Endpoints { rx, tx });
        }
        drop(senders);

        let control = Arc::new(Control::new(n));
        let drill_fired: Mutex<Option<DrillReport>> = Mutex::new(None);
        let solver = &self.solver;
        let plan = solver.plan();
        let mut results: Vec<Option<(TileState3, StepTiming)>> = (0..n).map(|_| None).collect();

        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(n);
            for (k, &id) in active.iter().enumerate() {
                let mut tile = self.problem.make_tile(solver.as_ref(), id);
                let ep = endpoints.remove(0);
                let control = Arc::clone(&control);
                let drill = drill.clone();
                let drill_fired = &drill_fired;
                handles.push(scope.spawn(move || {
                    let mut timing = StepTiming::default();
                    for s in 0..steps {
                        control.published[k].store(s, Ordering::SeqCst);
                        if control.sync_step.load(Ordering::SeqCst) == s {
                            if let Some(d) = drill.as_ref() {
                                if d.tile == id {
                                    let path =
                                        d.dump_dir.join(format!("tile3_{id}_step{s}.dump"));
                                    let bytes = save_tile3(&tile, &path)
                                        .expect("dump file write failed");
                                    tile = load_tile3(&path).expect("dump file read failed");
                                    *drill_fired.lock() = Some(DrillReport {
                                        sync_step: s,
                                        dump_bytes: bytes,
                                        dump_path: path,
                                    });
                                }
                            }
                            control.pause();
                        }
                        for op in plan {
                            match *op {
                                StepOp::Compute(p) => {
                                    let t0 = Instant::now();
                                    solver.compute(&mut tile, p);
                                    timing.t_calc += t0.elapsed();
                                }
                                StepOp::Exchange(x) => {
                                    let t0 = Instant::now();
                                    for stage in 0..3 {
                                        for (f, tx, ret) in
                                            ep.tx.iter().filter(|(f, ..)| f.stage() == stage)
                                        {
                                            let mut buf = match ret.try_recv() {
                                                Ok(mut b) => {
                                                    timing.buf_reuses += 1;
                                                    b.clear();
                                                    b
                                                }
                                                Err(_) => {
                                                    timing.buf_allocs += 1;
                                                    Vec::new()
                                                }
                                            };
                                            solver.pack(&tile, x, *f, &mut buf);
                                            timing.msgs_sent += 1;
                                            timing.doubles_sent += buf.len() as u64;
                                            tx.send(buf).expect("peer hung up");
                                        }
                                        for (f, rx, ret) in
                                            ep.rx.iter().filter(|(f, ..)| f.stage() == stage)
                                        {
                                            let buf = rx.recv().expect("peer hung up");
                                            solver.unpack(&mut tile, x, *f, &buf);
                                            let _ = ret.send(buf);
                                        }
                                    }
                                    timing.t_com += t0.elapsed();
                                }
                            }
                        }
                        timing.steps += 1;
                    }
                    control.published[k].store(steps, Ordering::SeqCst);
                    (tile, timing)
                }));
            }

            if let Some(d) = drill.as_ref() {
                std::fs::create_dir_all(&d.dump_dir).expect("cannot create dump dir");
                loop {
                    let m = control.max_published();
                    if m >= d.arm_step {
                        let sync = m + 2;
                        if sync >= steps {
                            break;
                        }
                        control.sync_step.store(sync, Ordering::SeqCst);
                        control.wait_all_paused(n);
                        control.resume_all();
                        break;
                    }
                    std::thread::yield_now();
                }
            }

            for (k, h) in handles.into_iter().enumerate() {
                results[k] = Some(h.join().expect("worker panicked"));
            }
        });

        let mut tiles = Vec::with_capacity(n);
        let mut timing = Vec::with_capacity(n);
        for (k, r) in results.into_iter().enumerate() {
            let (tile, t) = r.unwrap();
            tiles.push(tile);
            timing.push((active[k], t));
        }
        RunOutcome3 { tiles, timing, drill: drill_fired.into_inner() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::local::LocalRunner3;
    use subsonic_grid::Geometry3;
    use subsonic_solvers::{FluidParams, LatticeBoltzmann3};

    fn problem(px: usize, py: usize, pz: usize) -> Problem3 {
        let mut params = FluidParams::lattice_units(0.05);
        params.body_force[0] = 1e-5;
        Problem3::new(Geometry3::duct(12, 10, 10, 2), px, py, pz, params)
            .with_init(|x, y, z| (1.0 + 1e-4 * ((x + 2 * y + 3 * z) % 5) as f64, 0.0, 0.0, 0.0))
    }

    #[test]
    fn threaded3_matches_local_bitwise() {
        let solver: Arc<dyn Solver3> = Arc::new(LatticeBoltzmann3);
        let mut local = LocalRunner3::new(Arc::clone(&solver), problem(2, 1, 2));
        local.run(6);
        let a = local.gather();
        let out = ThreadedRunner3::new(Arc::clone(&solver), problem(2, 1, 2)).run(6);
        let b = out.gather((12, 10, 10), 1.0);
        assert_eq!(a.first_difference(&b), None, "threaded 3D diverged");
    }

    #[test]
    fn message_volume3_matches_solver() {
        let solver: Arc<dyn Solver3> = Arc::new(LatticeBoltzmann3);
        let steps = 5u64;
        let p = problem(2, 1, 2);
        let active = p.active_tiles();
        let mut per_step = 0u64;
        let mut edges = 0u64;
        for &id in &active {
            let t = p.make_tile(solver.as_ref(), id);
            for f in Face3::ALL {
                if let Some(nb) = p.decomp.neighbor(id, f) {
                    if active.contains(&nb) {
                        edges += 1;
                        for op in solver.plan() {
                            if let StepOp::Exchange(x) = *op {
                                per_step += solver.message_doubles(&t, x, f) as u64;
                            }
                        }
                    }
                }
            }
        }
        assert!(per_step > 0 && edges > 0);
        let out = ThreadedRunner3::new(Arc::clone(&solver), problem(2, 1, 2)).run(steps);
        let mut total = StepTiming::default();
        for (_, t) in &out.timing {
            total.merge(t);
        }
        assert_eq!(total.doubles_sent, per_step * steps);
        assert_eq!(total.buf_allocs + total.buf_reuses, total.msgs_sent);
        assert!(total.buf_allocs <= 2 * edges, "3D buffer recycling broken");
    }

    #[test]
    fn drill3_is_transparent() {
        let solver: Arc<dyn Solver3> = Arc::new(LatticeBoltzmann3);
        let clean = ThreadedRunner3::new(Arc::clone(&solver), problem(2, 2, 1)).run(16);
        let a = clean.gather((12, 10, 10), 1.0);
        let drill = MigrationDrill {
            tile: 2,
            arm_step: 4,
            dump_dir: std::env::temp_dir().join("subsonic_drill3_test"),
        };
        let out = ThreadedRunner3::new(Arc::clone(&solver), problem(2, 2, 1))
            .run_with_drill(16, Some(drill));
        let report = out.drill.clone().expect("drill did not fire");
        assert!(report.dump_bytes > 0);
        let b = out.gather((12, 10, 10), 1.0);
        assert_eq!(a.first_difference(&b), None, "3D drill changed results");
        let _ = std::fs::remove_file(&report.dump_path);
    }
}
