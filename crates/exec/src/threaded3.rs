//! Thread-per-subregion runner for 3D problems (companion to
//! [`crate::threaded`]). Halo exchange runs in three stages (x, y, z) so
//! edge and corner ghosts fill transitively without diagonal messages.
//!
//! Supports the same crash-recovery supervision as the 2D runner: segments
//! of `checkpoint_interval` steps with in-memory coordinated checkpoints at
//! the barriers, seeded [`KillSpec`] faults, and bitwise-identical replay
//! from the last snapshot.

use crate::checkpoint3::{load_tile3, save_tile3};
use crate::error::{note_failure, panic_message, RunError};
use crate::gather::GlobalFields3;
use crate::problem::Problem3;
use crate::threaded::{DrillReport, KillSpec, MigrationDrill, SupervisorConfig};
use crate::timing::StepTiming;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use subsonic_grid::Face3;
use subsonic_obs::{Category, FlightRecorder, TrackRecorder};
use subsonic_solvers::{Solver3, StepOp, TileState3};

const NO_SYNC: u64 = u64::MAX;

/// Flight-recorder process id for the 3D runner's tracks.
const TRACE_PID: u32 = 3;

/// Track id for the supervisor timeline (far above any real tile id).
const SUPERVISOR_TID: u32 = u32::MAX;

/// Result of a 3D threaded run.
pub struct RunOutcome3 {
    /// Final tiles, in active-id order.
    pub tiles: Vec<TileState3>,
    /// Per-tile timing, `(tile_id, timing)`. Under supervision this counts
    /// only committed segments.
    pub timing: Vec<(usize, StepTiming)>,
    /// Drill report, if one was requested and fired.
    pub drill: Option<DrillReport>,
    /// Segment replays performed by the supervisor (0 for unsupervised runs).
    pub restarts: u32,
}

impl RunOutcome3 {
    /// Gathers the global fields from the final tiles.
    pub fn gather(&self, dims: (usize, usize, usize), rho0: f64) -> GlobalFields3 {
        GlobalFields3::gather(dims, rho0, self.tiles.iter())
    }
}

struct Control {
    published: Vec<AtomicU64>,
    sync_step: AtomicU64,
    state: Mutex<(usize, u64)>, // (paused, epoch)
    cv: Condvar,
}

impl Control {
    fn new(n: usize) -> Self {
        Self {
            published: (0..n).map(|_| AtomicU64::new(0)).collect(),
            sync_step: AtomicU64::new(NO_SYNC),
            state: Mutex::new((0, 0)),
            cv: Condvar::new(),
        }
    }

    fn max_published(&self) -> u64 {
        self.published
            .iter()
            .map(|a| a.load(Ordering::SeqCst))
            .max()
            .unwrap_or(0)
    }

    fn pause(&self) {
        let mut st = self.state.lock();
        let epoch = st.1;
        st.0 += 1;
        self.cv.notify_all();
        while st.1 == epoch {
            self.cv.wait(&mut st);
        }
    }

    fn wait_all_paused(&self, n: usize) {
        let mut st = self.state.lock();
        while st.0 < n {
            self.cv.wait(&mut st);
        }
    }

    fn resume_all(&self) {
        let mut st = self.state.lock();
        st.0 = 0;
        st.1 += 1;
        self.cv.notify_all();
        self.sync_step.store(NO_SYNC, Ordering::SeqCst);
    }
}

/// Output of one supervised segment (or a whole unsupervised run).
struct Segment3 {
    tiles: Vec<TileState3>,
    timing: Vec<(usize, StepTiming)>,
    drill: Option<DrillReport>,
}

/// One thread per 3D subregion, channels as sockets.
pub struct ThreadedRunner3 {
    solver: Arc<dyn Solver3>,
    problem: Problem3,
    recorder: FlightRecorder,
    overlap: bool,
}

impl ThreadedRunner3 {
    /// Creates a runner.
    pub fn new(solver: Arc<dyn Solver3>, problem: Problem3) -> Self {
        Self {
            solver,
            problem,
            recorder: FlightRecorder::disabled(),
            overlap: false,
        }
    }

    /// Enables or disables compute/halo overlap (default: off in 3D); see
    /// [`ThreadedRunner2::with_overlap`](crate::threaded::ThreadedRunner2::with_overlap).
    /// With overlap on, the interior slab computes while the z-stage halo
    /// (the last of the three staged exchanges) is in flight. Unlike 2D —
    /// where the ghost frame is a few percent of a tile and overlap is the
    /// measured default — a practical 3D tile is boundary-heavy (a width-1
    /// frame of a 12×12×24 tile is ~35% of its sites), so the split
    /// interior/frame sweeps cost more than the receive they hide unless
    /// spare cores run the neighbours truly concurrently. Benches measure
    /// both schedules (`threaded3_*` vs `threaded3_*_overlap`); results are
    /// bitwise identical either way.
    pub fn with_overlap(mut self, on: bool) -> Self {
        self.overlap = on;
        self
    }

    /// Attaches a flight recorder (wall-clock tracks per worker, same
    /// zero-cost-when-disabled contract as the 2D runner).
    pub fn with_recorder(mut self, recorder: &FlightRecorder) -> Self {
        self.recorder = recorder.clone();
        self
    }

    /// Opens a per-tile trace track (inert when the recorder is disabled).
    fn tile_track(&self, id: usize) -> TrackRecorder {
        if self.recorder.is_enabled() {
            self.recorder
                .track(TRACE_PID, id as u32, "threaded3", &format!("tile {id}"))
        } else {
            TrackRecorder::disabled()
        }
    }

    /// Runs `steps` integration steps on all active tiles in parallel.
    pub fn run(&self, steps: u64) -> Result<RunOutcome3, RunError> {
        self.run_with_drill(steps, None)
    }

    /// Runs with an optional mid-run migration drill.
    pub fn run_with_drill(
        &self,
        steps: u64,
        drill: Option<MigrationDrill>,
    ) -> Result<RunOutcome3, RunError> {
        if let Some(d) = drill.as_ref() {
            std::fs::create_dir_all(&d.dump_dir)?;
        }
        let tiles = self.initial_tiles();
        let seg = self.run_segment(tiles, 0, steps, drill, Vec::new())?;
        Ok(RunOutcome3 {
            tiles: seg.tiles,
            timing: seg.timing,
            drill: seg.drill,
            restarts: 0,
        })
    }

    /// Runs `steps` steps under crash-recovery supervision; see
    /// [`ThreadedRunner2::run_supervised`](crate::threaded::ThreadedRunner2::run_supervised).
    pub fn run_supervised(
        &self,
        steps: u64,
        cfg: &SupervisorConfig,
        kill: Option<KillSpec>,
    ) -> Result<RunOutcome3, RunError> {
        self.run_supervised_kills(steps, cfg, kill.as_slice())
    }

    /// Like [`run_supervised`](Self::run_supervised), but with any number of
    /// seeded kills, including kills armed on a replay attempt
    /// ([`KillSpec::attempt`] > 0) — a crash during recovery.
    pub fn run_supervised_kills(
        &self,
        steps: u64,
        cfg: &SupervisorConfig,
        kills: &[KillSpec],
    ) -> Result<RunOutcome3, RunError> {
        let active = self.problem.active_tiles();
        let mut snapshot = self.initial_tiles();
        let interval = cfg.checkpoint_interval.max(1);
        let mut timing: Vec<(usize, StepTiming)> = active
            .iter()
            .map(|&id| (id, StepTiming::default()))
            .collect();
        let mut restarts = 0u32;
        let mut done = 0u64;
        let mut supervisor =
            self.recorder
                .track(TRACE_PID, SUPERVISOR_TID, "threaded3", "supervisor");
        let mut replaying = false;
        // Retry index of the current segment window; a kill arms only when
        // its window runs at exactly its attempt index (fires at most once).
        let mut window_attempt = 0u32;
        while done < steps {
            let end = (done + interval).min(steps);
            let armed: Vec<KillSpec> = kills
                .iter()
                .filter(|kl| kl.at_step >= done && kl.at_step < end && kl.attempt == window_attempt)
                .cloned()
                .collect();
            let seg0 = Instant::now();
            match self.run_segment(snapshot.clone(), done, end, None, armed) {
                Ok(seg) => {
                    snapshot = seg.tiles;
                    for (acc, (_, t)) in timing.iter_mut().zip(seg.timing) {
                        acc.1.append(&t);
                    }
                    done = end;
                    window_attempt = 0;
                    if replaying {
                        supervisor.span_wall_arg(
                            Category::Recovery,
                            "replay segment",
                            seg0,
                            Instant::now(),
                            Some(("end_step", end as f64)),
                        );
                        replaying = false;
                    }
                    supervisor.instant_wall(
                        Category::Checkpoint,
                        "checkpoint commit",
                        Instant::now(),
                    );
                }
                Err(e) => {
                    supervisor.instant_wall(Category::Fault, "segment failed", Instant::now());
                    replaying = true;
                    window_attempt += 1;
                    restarts += 1;
                    if restarts > cfg.max_restarts {
                        return Err(RunError::RetriesExhausted {
                            attempts: restarts,
                            last: Box::new(e),
                        });
                    }
                }
            }
        }
        Ok(RunOutcome3 {
            tiles: snapshot,
            timing,
            drill: None,
            restarts,
        })
    }

    fn initial_tiles(&self) -> Vec<TileState3> {
        self.problem
            .active_tiles()
            .iter()
            .map(|&id| self.problem.make_tile(self.solver.as_ref(), id))
            .collect()
    }

    /// Runs global steps `start..end` from `tiles_in`, one tile per active id.
    fn run_segment(
        &self,
        tiles_in: Vec<TileState3>,
        start: u64,
        end: u64,
        drill: Option<MigrationDrill>,
        kills: Vec<KillSpec>,
    ) -> Result<Segment3, RunError> {
        let active = self.problem.active_tiles();
        let n = active.len();
        let index_of: HashMap<usize, usize> =
            active.iter().enumerate().map(|(k, &id)| (id, k)).collect();

        // Data channels paired with buffer-return channels, exactly as in the
        // 2D runner: consumed halo buffers flow back to their sender for
        // reuse, so the steady-state exchange allocates nothing.
        let mut senders: HashMap<(usize, Face3), Sender<Vec<f64>>> = HashMap::new();
        let mut receivers: HashMap<(usize, Face3), Receiver<Vec<f64>>> = HashMap::new();
        let mut ret_senders: HashMap<(usize, Face3), Sender<Vec<f64>>> = HashMap::new();
        let mut ret_receivers: HashMap<(usize, Face3), Receiver<Vec<f64>>> = HashMap::new();
        for &id in &active {
            for f in Face3::ALL {
                if let Some(nb) = self.problem.decomp.neighbor(id, f) {
                    if index_of.contains_key(&nb) {
                        let (s, r) = unbounded();
                        senders.insert((id, f), s);
                        receivers.insert((id, f), r);
                        let (rs, rr) = unbounded();
                        ret_senders.insert((id, f), rs);
                        ret_receivers.insert((id, f), rr);
                    }
                }
            }
        }

        // (face, data in, buffer-returns out) / (face, data out, returns in)
        type RxEdge = (Face3, Receiver<Vec<f64>>, Sender<Vec<f64>>);
        type TxEdge = (Face3, Sender<Vec<f64>>, Receiver<Vec<f64>>);
        struct Endpoints {
            rx: Vec<RxEdge>,
            tx: Vec<TxEdge>,
        }
        let mut endpoints: Vec<Endpoints> = Vec::with_capacity(n);
        for &id in &active {
            let mut rx = Vec::new();
            let mut tx = Vec::new();
            for f in Face3::ALL {
                if let Some(r) = receivers.remove(&(id, f)) {
                    let rs = ret_senders.remove(&(id, f)).expect("return sender missing");
                    rx.push((f, r, rs));
                }
                if let Some(nb) = self.problem.decomp.neighbor(id, f) {
                    if let Some(s) = senders.get(&(nb, f.opposite())) {
                        let rr = ret_receivers
                            .remove(&(nb, f.opposite()))
                            .expect("return receiver missing");
                        tx.push((f, s.clone(), rr));
                    }
                }
            }
            endpoints.push(Endpoints { rx, tx });
        }
        drop(senders);

        let control = Arc::new(Control::new(n));
        let drill_fired: Mutex<Option<DrillReport>> = Mutex::new(None);
        let solver = &self.solver;
        let plan = solver.plan();
        let overlap = self.overlap;
        let mut results: Vec<Option<(TileState3, StepTiming)>> = (0..n).map(|_| None).collect();
        let mut failure: Option<RunError> = None;

        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(n);
            let mut tiles_in = tiles_in;
            for (k, &id) in active.iter().enumerate() {
                let mut tile = tiles_in.remove(0);
                let ep = endpoints.remove(0);
                let control = Arc::clone(&control);
                let drill = drill.clone();
                let kills = kills.clone();
                let drill_fired = &drill_fired;
                let mut track = self.tile_track(id);
                handles.push(
                    scope.spawn(move || -> Result<(TileState3, StepTiming), RunError> {
                        let mut timing = StepTiming::default();
                        // Stage-filtered halves of the halo exchange (the 3D
                        // protocol forwards edges/corners transitively through
                        // the x → y → z stages, so every pack must precede the
                        // interior compute; only the final stage's receive may
                        // be deferred behind it — see the 2D runner).
                        let send_stage = |tile: &TileState3,
                                          x: usize,
                                          stage: usize,
                                          timing: &mut StepTiming|
                         -> Result<Duration, RunError> {
                            let mut pack = Duration::ZERO;
                            for (f, tx, ret) in ep.tx.iter().filter(|(f, ..)| f.stage() == stage) {
                                let mut buf = match ret.try_recv() {
                                    Ok(mut b) => {
                                        timing.buf_reuses += 1;
                                        b.clear();
                                        b
                                    }
                                    Err(_) => {
                                        timing.buf_allocs += 1;
                                        Vec::new()
                                    }
                                };
                                let p0 = Instant::now();
                                solver.pack(tile, x, *f, &mut buf);
                                pack += p0.elapsed();
                                timing.msgs_sent += 1;
                                timing.doubles_sent += buf.len() as u64;
                                tx.send(buf)
                                    .map_err(|_| RunError::Disconnected { tile: id })?;
                            }
                            Ok(pack)
                        };
                        let recv_stage = |tile: &mut TileState3,
                                          x: usize,
                                          stage: usize|
                         -> Result<(), RunError> {
                            for (f, rx, ret) in ep.rx.iter().filter(|(f, ..)| f.stage() == stage) {
                                let buf =
                                    rx.recv().map_err(|_| RunError::Disconnected { tile: id })?;
                                solver.unpack(tile, x, *f, &buf);
                                let _ = ret.send(buf);
                            }
                            Ok(())
                        };
                        // Highest stage this tile has edges on; the overlapped
                        // schedule hides the interior behind its receive.
                        let last_stage = ep
                            .rx
                            .iter()
                            .map(|(f, ..)| f.stage())
                            .chain(ep.tx.iter().map(|(f, ..)| f.stage()))
                            .max()
                            .unwrap_or(0);
                        for s in start..end {
                            control.published[k].store(s, Ordering::SeqCst);
                            // seeded fault injection: this worker dies here
                            if let Some(kl) =
                                kills.iter().find(|kl| kl.tile == id && kl.at_step == s)
                            {
                                if kl.panic {
                                    panic!("injected fault: tile {id} killed at step {s}");
                                }
                                return Err(RunError::Injected { tile: id, step: s });
                            }
                            // Hold once at the arm step so workers cannot outrun
                            // the monitor's sync-step announcement (same guard as
                            // the 2D runner — Appendix B's margin assumes it).
                            if let Some(d) = drill.as_ref() {
                                if s == d.arm_step {
                                    while control.sync_step.load(Ordering::SeqCst) == NO_SYNC {
                                        std::thread::yield_now();
                                    }
                                }
                            }
                            if control.sync_step.load(Ordering::SeqCst) == s {
                                let mut drill_err: Option<RunError> = None;
                                if let Some(d) = drill.as_ref() {
                                    if d.tile == id {
                                        let path =
                                            d.dump_dir.join(format!("tile3_{id}_step{s}.dump"));
                                        let d0 = Instant::now();
                                        match save_tile3(&tile, &path)
                                            .and_then(|bytes| Ok((bytes, load_tile3(&path)?)))
                                        {
                                            Ok((bytes, restored)) => {
                                                tile = restored;
                                                track.span_wall_arg(
                                                    Category::Checkpoint,
                                                    "migration dump",
                                                    d0,
                                                    Instant::now(),
                                                    Some(("bytes", bytes as f64)),
                                                );
                                                *drill_fired.lock() = Some(DrillReport {
                                                    sync_step: s,
                                                    dump_bytes: bytes,
                                                    dump_path: path,
                                                });
                                            }
                                            Err(e) => drill_err = Some(RunError::Checkpoint(e)),
                                        }
                                    }
                                }
                                control.pause();
                                if let Some(e) = drill_err {
                                    return Err(e);
                                }
                            }
                            let mut op_i = 0;
                            while op_i < plan.len() {
                                match plan[op_i] {
                                    StepOp::Compute(p) => {
                                        let t0 = Instant::now();
                                        solver.compute(&mut tile, p);
                                        let t1 = Instant::now();
                                        timing.t_calc += t1 - t0;
                                        track.span_wall(Category::Compute, "compute", t0, t1);
                                    }
                                    StepOp::Exchange(x) => {
                                        // Fuse `Exchange(x); Compute(p)` into the
                                        // overlapped schedule when safe.
                                        let fused = if overlap {
                                            solver.overlapped_phase(x).filter(|&p| {
                                                matches!(
                                                    plan.get(op_i + 1),
                                                    Some(StepOp::Compute(q)) if *q == p
                                                )
                                            })
                                        } else {
                                            None
                                        };
                                        let t0 = Instant::now();
                                        // pack time: sub-component of the t_com
                                        // windows, accumulated into t_pack only
                                        let mut pack = Duration::ZERO;
                                        if let Some(p) = fused {
                                            for stage in 0..last_stage {
                                                pack += send_stage(&tile, x, stage, &mut timing)?;
                                                recv_stage(&mut tile, x, stage)?;
                                            }
                                            pack += send_stage(&tile, x, last_stage, &mut timing)?;
                                            let t1 = Instant::now();
                                            timing.t_com += t1 - t0;
                                            track.span_wall(Category::Halo, "halo send", t0, t1);
                                            let c0 = Instant::now();
                                            solver.compute_interior(&mut tile, p);
                                            let c1 = Instant::now();
                                            timing.t_calc += c1 - c0;
                                            track.span_wall(
                                                Category::Compute,
                                                "compute interior",
                                                c0,
                                                c1,
                                            );
                                            let r0 = Instant::now();
                                            recv_stage(&mut tile, x, last_stage)?;
                                            let r1 = Instant::now();
                                            timing.t_com += r1 - r0;
                                            track.span_wall(Category::Halo, "halo recv", r0, r1);
                                            let b0 = Instant::now();
                                            solver.compute_boundary(&mut tile, p);
                                            let b1 = Instant::now();
                                            timing.t_calc += b1 - b0;
                                            track.span_wall(
                                                Category::Compute,
                                                "compute boundary",
                                                b0,
                                                b1,
                                            );
                                            op_i += 1; // the fused Compute is done
                                        } else {
                                            for stage in 0..=last_stage {
                                                pack += send_stage(&tile, x, stage, &mut timing)?;
                                                recv_stage(&mut tile, x, stage)?;
                                            }
                                            let t1 = Instant::now();
                                            timing.t_com += t1 - t0;
                                            track.span_wall(Category::Halo, "exchange", t0, t1);
                                        }
                                        timing.t_pack += pack;
                                    }
                                }
                                op_i += 1;
                            }
                            timing.steps += 1;
                        }
                        control.published[k].store(end, Ordering::SeqCst);
                        Ok((tile, timing))
                    }),
                );
            }

            if let Some(d) = drill.as_ref() {
                loop {
                    let m = control.max_published();
                    if m >= d.arm_step {
                        let sync = m + 2;
                        if sync >= end {
                            // Too late; announce the unreachable step anyway
                            // so workers gated at the arm step are released.
                            control.sync_step.store(sync, Ordering::SeqCst);
                            break;
                        }
                        control.sync_step.store(sync, Ordering::SeqCst);
                        control.wait_all_paused(n);
                        control.resume_all();
                        break;
                    }
                    std::thread::yield_now();
                }
            }

            for (k, h) in handles.into_iter().enumerate() {
                match h.join() {
                    Ok(Ok(pair)) => results[k] = Some(pair),
                    Ok(Err(e)) => note_failure(&mut failure, e),
                    Err(payload) => note_failure(
                        &mut failure,
                        RunError::WorkerPanic {
                            tile: active[k],
                            message: panic_message(payload),
                        },
                    ),
                }
            }
        });

        if let Some(e) = failure {
            return Err(e);
        }
        let mut tiles = Vec::with_capacity(n);
        let mut timing = Vec::with_capacity(n);
        for (k, r) in results.into_iter().enumerate() {
            let (tile, t) = r.expect("worker result missing without a recorded failure");
            tiles.push(tile);
            timing.push((active[k], t));
        }
        Ok(Segment3 {
            tiles,
            timing,
            drill: drill_fired.into_inner(),
        })
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use crate::local::LocalRunner3;
    use subsonic_grid::Geometry3;
    use subsonic_solvers::{FiniteDifference3, FluidParams, LatticeBoltzmann3};

    fn problem(px: usize, py: usize, pz: usize) -> Problem3 {
        let mut params = FluidParams::lattice_units(0.05);
        params.body_force[0] = 1e-5;
        Problem3::new(Geometry3::duct(12, 10, 10, 2), px, py, pz, params)
            .with_init(|x, y, z| (1.0 + 1e-4 * ((x + 2 * y + 3 * z) % 5) as f64, 0.0, 0.0, 0.0))
    }

    #[test]
    fn threaded3_matches_local_bitwise() {
        let solver: Arc<dyn Solver3> = Arc::new(LatticeBoltzmann3);
        let mut local = LocalRunner3::new(Arc::clone(&solver), problem(2, 1, 2));
        local.run(6);
        let a = local.gather();
        let out = ThreadedRunner3::new(Arc::clone(&solver), problem(2, 1, 2))
            .run(6)
            .unwrap();
        let b = out.gather((12, 10, 10), 1.0);
        assert_eq!(a.first_difference(&b), None, "threaded 3D diverged");
    }

    /// Overlapped 3D schedule (interior slab hidden behind the z-stage halo)
    /// is bitwise identical to the non-overlapped runner and the serial
    /// reference, for both solver families.
    #[test]
    fn overlap3_matches_nonoverlap_bitwise() {
        for solver in [
            Arc::new(LatticeBoltzmann3) as Arc<dyn Solver3>,
            Arc::new(FiniteDifference3) as Arc<dyn Solver3>,
        ] {
            let mut local = LocalRunner3::new(Arc::clone(&solver), problem(2, 1, 2));
            local.run(6);
            let a = local.gather();
            let on = ThreadedRunner3::new(Arc::clone(&solver), problem(2, 1, 2))
                .with_overlap(true)
                .run(6)
                .unwrap()
                .gather((12, 10, 10), 1.0);
            let off = ThreadedRunner3::new(Arc::clone(&solver), problem(2, 1, 2))
                .with_overlap(false)
                .run(6)
                .unwrap()
                .gather((12, 10, 10), 1.0);
            assert_eq!(a.first_difference(&on), None);
            assert_eq!(a.first_difference(&off), None);
        }
    }

    #[test]
    fn message_volume3_matches_solver() {
        let solver: Arc<dyn Solver3> = Arc::new(LatticeBoltzmann3);
        let steps = 5u64;
        let p = problem(2, 1, 2);
        let active = p.active_tiles();
        let mut per_step = 0u64;
        let mut edges = 0u64;
        for &id in &active {
            let t = p.make_tile(solver.as_ref(), id);
            for f in Face3::ALL {
                if let Some(nb) = p.decomp.neighbor(id, f) {
                    if active.contains(&nb) {
                        edges += 1;
                        for op in solver.plan() {
                            if let StepOp::Exchange(x) = *op {
                                per_step += solver.message_doubles(&t, x, f) as u64;
                            }
                        }
                    }
                }
            }
        }
        assert!(per_step > 0 && edges > 0);
        let out = ThreadedRunner3::new(Arc::clone(&solver), problem(2, 1, 2))
            .run(steps)
            .unwrap();
        let mut total = StepTiming::default();
        for (_, t) in &out.timing {
            total.merge(t);
        }
        assert_eq!(total.doubles_sent, per_step * steps);
        assert_eq!(total.buf_allocs + total.buf_reuses, total.msgs_sent);
        assert!(total.buf_allocs <= 2 * edges, "3D buffer recycling broken");
    }

    #[test]
    fn drill3_is_transparent() {
        let solver: Arc<dyn Solver3> = Arc::new(LatticeBoltzmann3);
        let clean = ThreadedRunner3::new(Arc::clone(&solver), problem(2, 2, 1))
            .run(16)
            .unwrap();
        let a = clean.gather((12, 10, 10), 1.0);
        let drill = MigrationDrill {
            tile: 2,
            arm_step: 4,
            dump_dir: std::env::temp_dir().join("subsonic_drill3_test"),
        };
        let out = ThreadedRunner3::new(Arc::clone(&solver), problem(2, 2, 1))
            .run_with_drill(16, Some(drill))
            .unwrap();
        let report = out.drill.clone().expect("drill did not fire");
        assert!(report.dump_bytes > 0);
        let b = out.gather((12, 10, 10), 1.0);
        assert_eq!(a.first_difference(&b), None, "3D drill changed results");
        let _ = std::fs::remove_file(&report.dump_path);
    }

    #[test]
    fn recorder3_adds_no_hot_path_allocations() {
        // Same pool-bound invariant as the 2D runner's test: enabling the
        // recorder must keep buf_allocs within two per directed edge.
        let solver: Arc<dyn Solver3> = Arc::new(LatticeBoltzmann3);
        let p = problem(2, 1, 2);
        let active = p.active_tiles();
        let mut edges = 0u64;
        for &id in &active {
            for f in Face3::ALL {
                if let Some(nb) = p.decomp.neighbor(id, f) {
                    if active.contains(&nb) {
                        edges += 1;
                    }
                }
            }
        }
        let rec = FlightRecorder::enabled(4096);
        let traced = ThreadedRunner3::new(Arc::clone(&solver), problem(2, 1, 2))
            .with_recorder(&rec)
            .run(10)
            .unwrap();
        let mut b = StepTiming::default();
        for (_, t) in &traced.timing {
            b.merge(t);
        }
        assert!(
            b.buf_allocs <= 2 * edges,
            "recorder added 3D hot-path allocations: {} allocs for {} edges",
            b.buf_allocs,
            edges
        );
        assert!(b.t_pack <= b.t_com);
        assert!(b.t_pack.as_nanos() > 0);
        let tracks = rec.finished_tracks();
        assert_eq!(tracks.len(), 4);
        assert!(tracks.iter().all(|t| t.pid == TRACE_PID));
        assert!(tracks
            .iter()
            .all(|t| t.events.iter().any(|e| e.cat == Category::Halo)));
    }

    #[test]
    fn supervised3_recovers_bitwise_from_a_kill() {
        let solver: Arc<dyn Solver3> = Arc::new(LatticeBoltzmann3);
        let plain = ThreadedRunner3::new(Arc::clone(&solver), problem(2, 1, 2))
            .run(12)
            .unwrap();
        let sup = ThreadedRunner3::new(Arc::clone(&solver), problem(2, 1, 2))
            .run_supervised(
                12,
                &SupervisorConfig {
                    checkpoint_interval: 5,
                    max_restarts: 2,
                },
                Some(KillSpec {
                    tile: 2,
                    at_step: 7,
                    attempt: 0,
                    panic: false,
                }),
            )
            .unwrap();
        assert_eq!(sup.restarts, 1);
        let a = plain.gather((12, 10, 10), 1.0);
        let b = sup.gather((12, 10, 10), 1.0);
        assert_eq!(a.first_difference(&b), None, "3D recovery diverged");
    }
}
