//! Per-phase timing instrumentation (the `T_calc` / `T_com` of section 8).

use std::time::Duration;

/// Accumulated wall-clock time of one worker, split the way the paper's
/// efficiency analysis splits it: local computation vs waiting on
/// communication.
#[derive(Debug, Clone, Copy, Default)]
pub struct StepTiming {
    /// Time spent in local compute phases.
    pub t_calc: Duration,
    /// Time spent packing, sending, receiving and unpacking halos.
    pub t_com: Duration,
    /// Steps completed.
    pub steps: u64,
    /// Halo messages sent.
    pub msgs_sent: u64,
    /// Total `f64`s sent across all halo messages.
    pub doubles_sent: u64,
    /// Message buffers freshly allocated (return channel was empty).
    pub buf_allocs: u64,
    /// Message buffers recycled from the return channel.
    pub buf_reuses: u64,
}

impl StepTiming {
    /// Processor utilisation `g = T_calc / (T_calc + T_com)` (eq. 8) — equal
    /// to the parallel efficiency for completely parallelisable problems
    /// (eq. 12).
    pub fn utilization(&self) -> f64 {
        let c = self.t_calc.as_secs_f64();
        let m = self.t_com.as_secs_f64();
        if c + m == 0.0 {
            return 1.0;
        }
        c / (c + m)
    }

    /// Mean wall-clock duration of one integration step.
    pub fn per_step(&self) -> Duration {
        if self.steps == 0 {
            return Duration::ZERO;
        }
        (self.t_calc + self.t_com) / self.steps as u32
    }

    /// Merges another worker's timing into this one (summing; `steps` takes
    /// the max since peers run the same step range).
    pub fn merge(&mut self, other: &StepTiming) {
        self.t_calc += other.t_calc;
        self.t_com += other.t_com;
        self.steps = self.steps.max(other.steps);
        self.msgs_sent += other.msgs_sent;
        self.doubles_sent += other.doubles_sent;
        self.buf_allocs += other.buf_allocs;
        self.buf_reuses += other.buf_reuses;
    }

    /// Appends a *later segment of the same worker* (everything sums,
    /// including `steps`) — used by the supervised runners to accumulate
    /// committed segments across checkpoints.
    pub fn append(&mut self, other: &StepTiming) {
        self.t_calc += other.t_calc;
        self.t_com += other.t_com;
        self.steps += other.steps;
        self.msgs_sent += other.msgs_sent;
        self.doubles_sent += other.doubles_sent;
        self.buf_allocs += other.buf_allocs;
        self.buf_reuses += other.buf_reuses;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_limits() {
        let t = StepTiming::default();
        assert_eq!(t.utilization(), 1.0);
        let t = StepTiming {
            t_calc: Duration::from_secs(3),
            t_com: Duration::from_secs(1),
            steps: 4,
            ..Default::default()
        };
        assert!((t.utilization() - 0.75).abs() < 1e-12);
        assert_eq!(t.per_step(), Duration::from_secs(1));
    }

    #[test]
    fn merge_sums_times() {
        let mut a = StepTiming {
            t_calc: Duration::from_secs(1),
            t_com: Duration::from_secs(2),
            steps: 10,
            msgs_sent: 4,
            doubles_sent: 100,
            buf_allocs: 2,
            buf_reuses: 2,
        };
        let b = StepTiming {
            t_calc: Duration::from_secs(3),
            t_com: Duration::from_secs(4),
            steps: 10,
            msgs_sent: 6,
            doubles_sent: 200,
            buf_allocs: 1,
            buf_reuses: 5,
        };
        a.merge(&b);
        assert_eq!(a.t_calc, Duration::from_secs(4));
        assert_eq!(a.t_com, Duration::from_secs(6));
        assert_eq!(a.steps, 10);
        assert_eq!(a.msgs_sent, 10);
        assert_eq!(a.doubles_sent, 300);
        assert_eq!(a.buf_allocs, 3);
        assert_eq!(a.buf_reuses, 7);
    }
}
