//! Per-phase timing instrumentation (the `T_calc` / `T_com` of section 8).

use std::time::Duration;

/// Accumulated wall-clock time of one worker, split the way the paper's
/// efficiency analysis splits it: local computation vs waiting on
/// communication.
#[derive(Debug, Clone, Copy, Default)]
pub struct StepTiming {
    /// Time spent in local compute phases.
    pub t_calc: Duration,
    /// Time spent packing, sending, receiving and unpacking halos.
    pub t_com: Duration,
    /// Time spent packing halo faces into send buffers. This is a
    /// *sub-component* of `t_com`, measured exactly once per pack (the pack
    /// happens inside the timed exchange window, so it must never be added
    /// to `t_com` a second time by `merge`/`append`/`per_step`). The
    /// invariant `t_pack <= t_com` is pinned by unit tests and asserted by
    /// the runner integration tests.
    pub t_pack: Duration,
    /// Steps completed.
    pub steps: u64,
    /// Halo messages sent.
    pub msgs_sent: u64,
    /// Total `f64`s sent across all halo messages.
    pub doubles_sent: u64,
    /// Message buffers freshly allocated (return channel was empty).
    pub buf_allocs: u64,
    /// Message buffers recycled from the return channel.
    pub buf_reuses: u64,
}

impl StepTiming {
    /// Processor utilisation `g = T_calc / (T_calc + T_com)` (eq. 8) — equal
    /// to the parallel efficiency for completely parallelisable problems
    /// (eq. 12). `t_pack` is inside `t_com` and must not be added here.
    pub fn utilization(&self) -> f64 {
        let c = self.t_calc.as_secs_f64();
        let m = self.t_com.as_secs_f64();
        if c + m == 0.0 {
            return 1.0;
        }
        c / (c + m)
    }

    /// Mean wall-clock duration of one integration step. `t_pack` already
    /// lives inside `t_com`, so the total is `t_calc + t_com` — adding the
    /// pack time again would double-count it.
    pub fn per_step(&self) -> Duration {
        if self.steps == 0 {
            return Duration::ZERO;
        }
        (self.t_calc + self.t_com) / self.steps as u32
    }

    /// Fraction of communication time spent packing (as opposed to waiting
    /// on the wire / unpacking).
    pub fn pack_fraction(&self) -> f64 {
        let m = self.t_com.as_secs_f64();
        if m == 0.0 {
            return 0.0;
        }
        self.t_pack.as_secs_f64() / m
    }

    /// Merges another worker's timing into this one (summing; `steps` takes
    /// the max since peers run the same step range).
    pub fn merge(&mut self, other: &StepTiming) {
        self.t_calc += other.t_calc;
        self.t_com += other.t_com;
        self.t_pack += other.t_pack;
        self.steps = self.steps.max(other.steps);
        self.msgs_sent += other.msgs_sent;
        self.doubles_sent += other.doubles_sent;
        self.buf_allocs += other.buf_allocs;
        self.buf_reuses += other.buf_reuses;
    }

    /// Appends a *later segment of the same worker* (everything sums,
    /// including `steps`) — used by the supervised runners to accumulate
    /// committed segments across checkpoints.
    pub fn append(&mut self, other: &StepTiming) {
        self.t_calc += other.t_calc;
        self.t_com += other.t_com;
        self.t_pack += other.t_pack;
        self.steps += other.steps;
        self.msgs_sent += other.msgs_sent;
        self.doubles_sent += other.doubles_sent;
        self.buf_allocs += other.buf_allocs;
        self.buf_reuses += other.buf_reuses;
    }

    /// Publish this timing into a metrics registry under `prefix.*`.
    /// Times land as gauges in seconds, counters as counters.
    pub fn publish(&self, reg: &subsonic_obs::MetricsRegistry, prefix: &str) {
        reg.gauge_set(&format!("{prefix}.t_calc"), self.t_calc.as_secs_f64(), "s");
        reg.gauge_set(&format!("{prefix}.t_com"), self.t_com.as_secs_f64(), "s");
        reg.gauge_set(&format!("{prefix}.t_pack"), self.t_pack.as_secs_f64(), "s");
        reg.gauge_set(&format!("{prefix}.utilization"), self.utilization(), "");
        reg.counter_add(&format!("{prefix}.steps"), self.steps);
        reg.counter_add(&format!("{prefix}.msgs_sent"), self.msgs_sent);
        reg.counter_add(&format!("{prefix}.doubles_sent"), self.doubles_sent);
        reg.counter_add(&format!("{prefix}.buf_allocs"), self.buf_allocs);
        reg.counter_add(&format!("{prefix}.buf_reuses"), self.buf_reuses);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_limits() {
        let t = StepTiming::default();
        assert_eq!(t.utilization(), 1.0);
        let t = StepTiming {
            t_calc: Duration::from_secs(3),
            t_com: Duration::from_secs(1),
            steps: 4,
            ..Default::default()
        };
        assert!((t.utilization() - 0.75).abs() < 1e-12);
        assert_eq!(t.per_step(), Duration::from_secs(1));
    }

    #[test]
    fn merge_sums_times() {
        let mut a = StepTiming {
            t_calc: Duration::from_secs(1),
            t_com: Duration::from_secs(2),
            t_pack: Duration::from_millis(500),
            steps: 10,
            msgs_sent: 4,
            doubles_sent: 100,
            buf_allocs: 2,
            buf_reuses: 2,
        };
        let b = StepTiming {
            t_calc: Duration::from_secs(3),
            t_com: Duration::from_secs(4),
            t_pack: Duration::from_millis(250),
            steps: 10,
            msgs_sent: 6,
            doubles_sent: 200,
            buf_allocs: 1,
            buf_reuses: 5,
        };
        a.merge(&b);
        assert_eq!(a.t_calc, Duration::from_secs(4));
        assert_eq!(a.t_com, Duration::from_secs(6));
        assert_eq!(a.t_pack, Duration::from_millis(750));
        assert_eq!(a.steps, 10);
        assert_eq!(a.msgs_sent, 10);
        assert_eq!(a.doubles_sent, 300);
        assert_eq!(a.buf_allocs, 3);
        assert_eq!(a.buf_reuses, 7);
    }

    /// Pins the pack-time accounting: `t_pack` is a sub-component of `t_com`
    /// and must never be counted into the step total a second time — not by
    /// `per_step`, not by `utilization`, and not when segments are appended
    /// (the supervised-runner path, where the buffer-return channel being
    /// empty forces a fresh alloc inside the timed pack window).
    #[test]
    fn pack_time_is_not_double_counted() {
        let seg = StepTiming {
            t_calc: Duration::from_secs(6),
            t_com: Duration::from_secs(2),
            t_pack: Duration::from_secs(1), // half the com window was packing
            steps: 4,
            buf_allocs: 1, // return channel was empty: alloc inside pack
            ..Default::default()
        };
        // per_step uses t_calc + t_com only: (6+2)/4 = 2 s, NOT (6+2+1)/4.
        assert_eq!(seg.per_step(), Duration::from_secs(2));
        // utilization likewise: 6/(6+2), not 6/(6+2+1).
        assert!((seg.utilization() - 0.75).abs() < 1e-12);

        // Append two identical committed segments: every field doubles and
        // the invariant t_pack <= t_com is preserved exactly.
        let mut total = seg;
        total.append(&seg);
        assert_eq!(total.t_com, Duration::from_secs(4));
        assert_eq!(total.t_pack, Duration::from_secs(2));
        assert!(total.t_pack <= total.t_com);
        assert_eq!(total.per_step(), Duration::from_secs(2));
        assert!((total.pack_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn publish_lands_in_registry() {
        let reg = subsonic_obs::MetricsRegistry::new();
        let t = StepTiming {
            t_calc: Duration::from_secs(3),
            t_com: Duration::from_secs(1),
            t_pack: Duration::from_millis(100),
            steps: 7,
            msgs_sent: 14,
            doubles_sent: 700,
            buf_allocs: 2,
            buf_reuses: 12,
        };
        t.publish(&reg, "exec.threaded2");
        assert_eq!(reg.gauge("exec.threaded2.t_calc"), Some(3.0));
        assert_eq!(reg.counter("exec.threaded2.msgs_sent"), Some(14));
        assert_eq!(reg.counter("exec.threaded2.buf_allocs"), Some(2));
        let util = reg
            .gauge("exec.threaded2.utilization")
            .expect("utilization gauge");
        assert!((util - 0.75).abs() < 1e-12);
    }
}
