//! A bulk-synchronous (BSP) shared-memory runner built on rayon.
//!
//! The paper's design is message passing across workstations; the modern
//! shared-memory counterpart runs every tile's compute phase on a work-
//! stealing pool with a barrier at each exchange. Compute phases fan out with
//! `par_iter_mut`; exchanges are `memcpy`s done serially (they are a few
//! percent of the work).
//!
//! This runner is an *ablation* target, not the headline reproduction: it
//! answers "what does the same decomposition buy on one multi-core box?" and
//! demonstrates that the tile kernels are data-race-free by construction
//! (rayon guarantees no two tiles alias). Results are bitwise identical to
//! [`crate::local::LocalRunner2`] because every tile computes from the same
//! inputs in the same per-tile order — only the tile *scheduling* differs.

use crate::gather::GlobalFields2;
use crate::problem::Problem2;
use crate::timing::StepTiming;
use rayon::prelude::*;
use std::sync::Arc;
use std::time::Instant;
use subsonic_grid::Face2;
use subsonic_solvers::{Solver2, StepOp, TileState2};

/// Bulk-synchronous rayon runner for 2D problems.
pub struct RayonRunner2 {
    solver: Arc<dyn Solver2>,
    problem: Problem2,
    active: Vec<usize>,
    tiles: Vec<TileState2>,
    timing: StepTiming,
}

impl RayonRunner2 {
    /// Builds all active tiles of `problem`.
    pub fn new(solver: Arc<dyn Solver2>, problem: Problem2) -> Self {
        let active = problem.active_tiles();
        let tiles = active
            .iter()
            .map(|&id| problem.make_tile(solver.as_ref(), id))
            .collect();
        Self {
            solver,
            problem,
            active,
            tiles,
            timing: StepTiming::default(),
        }
    }

    /// Accumulated phase timing: compute fan-outs land in `t_calc`, the
    /// serial exchange barriers in `t_com` (with the pack copies in
    /// `t_pack`). Unlike the threaded runner this is one clock for the
    /// whole pool, not per worker — `t_calc + t_com` is the wall time of
    /// all steps so far.
    pub fn timing(&self) -> &StepTiming {
        &self.timing
    }

    /// Runs one integration step: compute phases in parallel over tiles,
    /// exchanges as serial copies between the barriers.
    pub fn step(&mut self) {
        let plan = self.solver.plan();
        for op in plan {
            match *op {
                StepOp::Compute(k) => {
                    let t0 = Instant::now();
                    let solver = Arc::clone(&self.solver);
                    self.tiles
                        .par_iter_mut()
                        .for_each(move |t| solver.compute(t, k));
                    self.timing.t_calc += t0.elapsed();
                }
                StepOp::Exchange(x) => {
                    let t0 = Instant::now();
                    self.exchange(x);
                    self.timing.t_com += t0.elapsed();
                }
            }
        }
        self.timing.steps += 1;
    }

    fn exchange(&mut self, xch: usize) {
        for stage in 0..2 {
            let mut msgs: Vec<(usize, Face2, Vec<f64>)> = Vec::new();
            for (k, &id) in self.active.iter().enumerate() {
                for f in Face2::ALL.iter().copied().filter(|f| f.stage() == stage) {
                    if let Some(nb) = self.problem.decomp.neighbor(id, f) {
                        if let Some(nb_idx) = self.active.iter().position(|&a| a == nb) {
                            let mut buf = Vec::new();
                            let p0 = Instant::now();
                            self.solver
                                .pack(&self.tiles[nb_idx], xch, f.opposite(), &mut buf);
                            self.timing.t_pack += p0.elapsed();
                            self.timing.msgs_sent += 1;
                            self.timing.doubles_sent += buf.len() as u64;
                            msgs.push((k, f, buf));
                        }
                    }
                }
            }
            for (idx, f, buf) in msgs {
                self.solver.unpack(&mut self.tiles[idx], xch, f, &buf);
            }
        }
    }

    /// Runs `n` steps.
    pub fn run(&mut self, n: usize) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Gathers the global fields.
    pub fn gather(&self) -> GlobalFields2 {
        GlobalFields2::gather(
            self.problem.geom.nx(),
            self.problem.geom.ny(),
            self.problem.params.rho0,
            self.tiles.iter(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::local::LocalRunner2;
    use subsonic_grid::Geometry2;
    use subsonic_solvers::{FiniteDifference2, FluidParams, LatticeBoltzmann2};

    fn problem(px: usize, py: usize) -> Problem2 {
        let mut params = FluidParams::lattice_units(0.05);
        params.body_force[0] = 1e-5;
        Problem2::new(Geometry2::channel(32, 20, 2), px, py, params)
            .with_init(|x, y| (1.0 + 1e-4 * ((3 * x + y) % 7) as f64, 0.0, 0.0))
    }

    #[test]
    fn rayon_matches_local_bitwise_lbm() {
        let solver: Arc<dyn Solver2> = Arc::new(LatticeBoltzmann2);
        let mut local = LocalRunner2::new(Arc::clone(&solver), problem(2, 2));
        let mut par = RayonRunner2::new(Arc::clone(&solver), problem(2, 2));
        local.run(10);
        par.run(10);
        assert_eq!(local.gather().first_difference(&par.gather()), None);
    }

    /// The BSP runner's phase clock: exchange wall time lands in `t_com`
    /// (with pack copies inside it in `t_pack`), compute fan-outs in
    /// `t_calc`, and the message counters match the edge count.
    #[test]
    fn rayon_records_exchange_wall_time() {
        let solver: Arc<dyn Solver2> = Arc::new(LatticeBoltzmann2);
        let mut par = RayonRunner2::new(Arc::clone(&solver), problem(2, 2));
        par.run(5);
        let t = par.timing();
        assert_eq!(t.steps, 5);
        assert!(t.t_calc.as_nanos() > 0, "compute time not recorded");
        assert!(t.t_com.as_nanos() > 0, "exchange time not recorded");
        assert!(t.t_pack <= t.t_com, "pack is a sub-component of t_com");
        assert!(t.msgs_sent > 0 && t.doubles_sent > 0);
        assert!(t.utilization() > 0.0 && t.utilization() <= 1.0);
    }

    #[test]
    fn rayon_matches_local_bitwise_fd() {
        let solver: Arc<dyn Solver2> = Arc::new(FiniteDifference2);
        let mut local = LocalRunner2::new(Arc::clone(&solver), problem(4, 2));
        let mut par = RayonRunner2::new(Arc::clone(&solver), problem(4, 2));
        local.run(10);
        par.run(10);
        assert_eq!(local.gather().first_difference(&par.gather()), None);
    }
}
