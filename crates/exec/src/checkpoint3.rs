//! Dump files for 3D tiles (companion to [`crate::checkpoint`], sharing its
//! version-2 self-validating format: FNV-1a checksum trailer over the whole
//! payload).

use crate::checkpoint::{seal, verify, write_atomic, DumpError};
use std::io::Read;
use std::path::Path;
use subsonic_grid::{Cell, PaddedGrid3};
use subsonic_solvers::{FluidParams, Macro3, TileState3};

const MAGIC: u64 = 0x5355_4253_4f4e_4943; // "SUBSONIC"
const VERSION: u32 = 2; // v2 = v1 + FNV-1a checksum trailer

struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn grid(&mut self, g: &PaddedGrid3<f64>) {
        let h = g.halo() as isize;
        for k in -h..(g.nz() as isize + h) {
            for j in -h..(g.ny() as isize + h) {
                for i in -h..(g.nx() as isize + h) {
                    self.f64(g[(i, j, k)]);
                }
            }
        }
    }
}

struct Dec<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Dec<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], DumpError> {
        if self.at + n > self.buf.len() {
            return Err(DumpError::Truncated);
        }
        let s = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }
    fn u32(&mut self) -> Result<u32, DumpError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
    fn u64(&mut self) -> Result<u64, DumpError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }
    fn f64(&mut self) -> Result<f64, DumpError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(f64::from_le_bytes(a))
    }
    fn grid(
        &mut self,
        nx: usize,
        ny: usize,
        nz: usize,
        halo: usize,
    ) -> Result<PaddedGrid3<f64>, DumpError> {
        let mut g = PaddedGrid3::new(nx, ny, nz, halo, 0.0f64);
        let h = halo as isize;
        for k in -h..(nz as isize + h) {
            for j in -h..(ny as isize + h) {
                for i in -h..(nx as isize + h) {
                    g[(i, j, k)] = self.f64()?;
                }
            }
        }
        Ok(g)
    }
}

fn cell_to_u8(c: Cell) -> u8 {
    match c {
        Cell::Fluid => 0,
        Cell::Wall => 1,
        Cell::Inlet => 2,
        Cell::Outlet => 3,
    }
}

fn cell_from_u8(v: u8) -> Result<Cell, DumpError> {
    Ok(match v {
        0 => Cell::Fluid,
        1 => Cell::Wall,
        2 => Cell::Inlet,
        3 => Cell::Outlet,
        _ => return Err(DumpError::BadField("cell tag")),
    })
}

/// Serialises a 3D tile into dump-file bytes.
pub fn dump_tile3(t: &TileState3) -> Vec<u8> {
    let mut e = Enc { buf: Vec::new() };
    e.u64(MAGIC);
    e.u32(VERSION);
    e.u32(3); // dimensionality
    e.u64(t.step);
    e.u64(t.nx() as u64);
    e.u64(t.ny() as u64);
    e.u64(t.nz() as u64);
    e.u64(t.halo() as u64);
    e.u64(t.offset.0 as u64);
    e.u64(t.offset.1 as u64);
    e.u64(t.offset.2 as u64);
    let p = &t.params;
    e.f64(p.cs);
    e.f64(p.nu);
    e.f64(p.dx);
    e.f64(p.dt);
    e.f64(p.rho0);
    for v in p.body_force {
        e.f64(v);
    }
    for v in p.inlet_velocity {
        e.f64(v);
    }
    e.f64(p.filter_eps);
    let h = t.halo() as isize;
    for k in -h..(t.nz() as isize + h) {
        for j in -h..(t.ny() as isize + h) {
            for i in -h..(t.nx() as isize + h) {
                e.buf.push(cell_to_u8(t.mask[(i, j, k)]));
            }
        }
    }
    e.grid(&t.mac.rho);
    e.grid(&t.mac.vx);
    e.grid(&t.mac.vy);
    e.grid(&t.mac.vz);
    e.u32(t.f.len() as u32);
    for fq in &t.f {
        e.grid(fq);
    }
    seal(e.buf)
}

/// Restores a 3D tile from dump-file bytes.
pub fn restore_tile3(bytes: &[u8]) -> Result<TileState3, DumpError> {
    let payload = verify(bytes)?;
    let mut d = Dec {
        buf: payload,
        at: 0,
    };
    if d.u64()? != MAGIC {
        return Err(DumpError::NotADump);
    }
    let version = d.u32()?;
    if version != VERSION {
        return Err(DumpError::UnsupportedVersion(version));
    }
    let dim = d.u32()?;
    if dim != 3 {
        return Err(DumpError::WrongDimensionality {
            expected: 3,
            found: dim,
        });
    }
    let step = d.u64()?;
    let nx = d.u64()? as usize;
    let ny = d.u64()? as usize;
    let nz = d.u64()? as usize;
    let halo = d.u64()? as usize;
    let offset = (d.u64()? as usize, d.u64()? as usize, d.u64()? as usize);
    let params = FluidParams {
        cs: d.f64()?,
        nu: d.f64()?,
        dx: d.f64()?,
        dt: d.f64()?,
        rho0: d.f64()?,
        body_force: [d.f64()?, d.f64()?, d.f64()?],
        inlet_velocity: [d.f64()?, d.f64()?, d.f64()?],
        filter_eps: d.f64()?,
    };
    let mut mask = PaddedGrid3::new(nx, ny, nz, halo, Cell::Fluid);
    let h = halo as isize;
    for k in -h..(nz as isize + h) {
        for j in -h..(ny as isize + h) {
            for i in -h..(nx as isize + h) {
                mask[(i, j, k)] = cell_from_u8(d.take(1)?[0])?;
            }
        }
    }
    let rho = d.grid(nx, ny, nz, halo)?;
    let vx = d.grid(nx, ny, nz, halo)?;
    let vy = d.grid(nx, ny, nz, halo)?;
    let vz = d.grid(nx, ny, nz, halo)?;
    let nf = d.u32()? as usize;
    let mut f = Vec::with_capacity(nf);
    for _ in 0..nf {
        f.push(d.grid(nx, ny, nz, halo)?);
    }
    let mac = Macro3 { rho, vx, vy, vz };
    let mac_new = mac.clone();
    let scratch = vec![
        PaddedGrid3::new(nx, ny, nz, halo, 0.0f64),
        PaddedGrid3::new(nx, ny, nz, halo, 0.0f64),
    ];
    Ok(TileState3 {
        mac,
        mac_new,
        f,
        mask,
        scratch,
        params,
        offset,
        step,
        // derived from the mask; rebuilt lazily by the solver
        shift_links: None,
    })
}

/// Writes a 3D tile dump to a file (temp file + atomic rename).
pub fn save_tile3(t: &TileState3, path: &Path) -> Result<u64, DumpError> {
    let bytes = dump_tile3(t);
    write_atomic(path, &bytes)?;
    Ok(bytes.len() as u64)
}

/// Reads a 3D tile dump from a file, verifying its checksum.
pub fn load_tile3(path: &Path) -> Result<TileState3, DumpError> {
    let mut bytes = Vec::new();
    std::fs::File::open(path)?.read_to_end(&mut bytes)?;
    restore_tile3(&bytes)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use subsonic_grid::{Decomp3, Geometry3};
    use subsonic_solvers::{InitialState3, LatticeBoltzmann3, Solver3};

    fn sample_tile() -> TileState3 {
        let geom = Geometry3::duct(10, 9, 9, 2);
        let d = Decomp3::with_periodicity(10, 9, 9, 1, 1, 1, [true, false, false]);
        let mut params = FluidParams::lattice_units(0.05);
        params.body_force[0] = 2e-5;
        let init =
            InitialState3::from_fn(|i, j, k| (1.0 + 0.001 * (i + j + k) as f64, 0.0, 0.0, 0.0));
        let s = LatticeBoltzmann3;
        s.make_tile(geom.tile_mask(&d, 0, s.halo()), params, (0, 0, 0), &init)
    }

    #[test]
    fn roundtrip_3d() {
        let t = sample_tile();
        let restored = restore_tile3(&dump_tile3(&t)).unwrap();
        assert_eq!(restored.step, t.step);
        assert_eq!(restored.offset, t.offset);
        let h = t.halo() as isize;
        for k in -h..(t.nz() as isize + h) {
            for j in -h..(t.ny() as isize + h) {
                for i in -h..(t.nx() as isize + h) {
                    assert_eq!(restored.mask[(i, j, k)], t.mask[(i, j, k)]);
                    assert_eq!(
                        restored.mac.rho[(i, j, k)].to_bits(),
                        t.mac.rho[(i, j, k)].to_bits()
                    );
                    for q in 0..t.f.len() {
                        assert_eq!(
                            restored.f[q][(i, j, k)].to_bits(),
                            t.f[q][(i, j, k)].to_bits()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn wrong_dimensionality_rejected() {
        let t = sample_tile();
        let bytes = dump_tile3(&t);
        // rewrite the dimensionality field (offset: magic 8 + version 4) and
        // re-seal so the checksum passes and only the dim check can fire
        let mut payload = bytes[..bytes.len() - 8].to_vec();
        payload[12] = 2;
        assert!(restore_tile3(&seal(payload)).is_err());
    }

    #[test]
    fn corrupt_3d_dump_is_detected_anywhere() {
        let t = sample_tile();
        let clean = dump_tile3(&t);
        for at in [40, clean.len() / 3, clean.len() - 10] {
            let mut bytes = clean.clone();
            bytes[at] ^= 0x10;
            assert!(restore_tile3(&bytes).is_err(), "flip at {at} missed");
        }
        assert!(
            restore_tile3(&clean[..clean.len() - 3]).is_err(),
            "truncation missed"
        );
    }

    #[test]
    fn file_roundtrip_3d() {
        let t = sample_tile();
        let dir = std::env::temp_dir().join("subsonic_ckpt3_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tile.dump");
        let n = save_tile3(&t, &path).unwrap();
        assert!(n > 0);
        let r = load_tile3(&path).unwrap();
        assert_eq!(r.nx(), t.nx());
        let _ = std::fs::remove_file(&path);
    }
}
