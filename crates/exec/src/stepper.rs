//! Runtime-agnostic tile stepping: one integration step against an abstract
//! halo endpoint.
//!
//! [`ThreadedRunner2`](crate::threaded::ThreadedRunner2) fuses its step loop
//! with crossbeam channels, buffer recycling and compute/halo overlap — fast,
//! but welded to one transport. The multi-process runtime needs the *same*
//! step semantics over TCP sockets, reliable UDP, or in-memory links, so this
//! module factors the per-step plan execution out behind the [`Halo2`] trait:
//! a runner implements `send`/`recv` for its wire and gets a step loop whose
//! results are bitwise identical to the threaded runner's (same staged
//! exchange order, same compute sequence — pinned by tests).
//!
//! The exchange runs in face stages (x axis, then y), posting every send of a
//! stage before receiving that stage, exactly like the non-overlapped path of
//! the threaded runner. Corner ghosts are forwarded transitively by the
//! staged order, so no diagonal neighbours are needed.

use crate::timing::StepTiming;
use std::io;
use std::time::Instant;
use subsonic_grid::Face2;
use subsonic_solvers::{Solver2, StepOp, TileState2};

/// One worker's view of its halo links for a 2D tile.
///
/// `send` must not block indefinitely on a healthy peer; `recv` blocks until
/// the strip for `(xch, face)` arrives (frames may arrive out of order on a
/// shared link — implementations buffer and match). Both surface transport
/// death as an `io::Error`, which aborts the step cleanly.
pub trait Halo2 {
    /// Whether this tile has a neighbour across `face`.
    fn has_neighbor(&self, face: Face2) -> bool;

    /// Sends the strip packed across the tile's own `face` (the peer unpacks
    /// it at `face.opposite()`).
    fn send(&mut self, xch: usize, face: Face2, data: &[f64]) -> io::Result<()>;

    /// Receives the strip arriving across the tile's own `face` for `xch`.
    fn recv(&mut self, xch: usize, face: Face2) -> io::Result<Vec<f64>>;
}

/// Runs one full integration step of `solver`'s plan on `tile`, moving halo
/// strips through `halo`. Accumulates calc/com wall time and message counts
/// into `timing`.
pub fn step_tile2(
    solver: &dyn Solver2,
    tile: &mut TileState2,
    halo: &mut impl Halo2,
    timing: &mut StepTiming,
) -> io::Result<()> {
    for op in solver.plan() {
        match *op {
            StepOp::Compute(p) => {
                let t0 = Instant::now();
                solver.compute(tile, p);
                timing.t_calc += t0.elapsed();
            }
            StepOp::Exchange(x) => {
                let t0 = Instant::now();
                for stage in 0..=1 {
                    // post every send of the stage before its receives, the
                    // staged protocol of the threaded runner (corner ghosts
                    // forward transitively: stage-1 strips span stage-0 ghosts)
                    for face in Face2::ALL {
                        if face.stage() == stage && halo.has_neighbor(face) {
                            let mut buf = Vec::new();
                            let p0 = Instant::now();
                            solver.pack(tile, x, face, &mut buf);
                            timing.t_pack += p0.elapsed();
                            timing.msgs_sent += 1;
                            timing.doubles_sent += buf.len() as u64;
                            halo.send(x, face, &buf)?;
                        }
                    }
                    for face in Face2::ALL {
                        if face.stage() == stage && halo.has_neighbor(face) {
                            let data = halo.recv(x, face)?;
                            solver.unpack(tile, x, face, &data);
                        }
                    }
                }
                timing.t_com += t0.elapsed();
            }
        }
    }
    timing.steps += 1;
    tile.step += 1;
    Ok(())
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use crate::problem::Problem2;
    use crate::threaded::ThreadedRunner2;
    use std::collections::HashMap;
    use std::sync::mpsc::{channel, Receiver, Sender};
    use std::sync::Arc;
    use subsonic_grid::Geometry2;
    use subsonic_solvers::{FluidParams, LatticeBoltzmann2};

    /// A halo frame in flight: (exchange index, receiver's face, payload).
    type Frame = (usize, Face2, Vec<f64>);

    /// In-memory endpoint: frames travel over mpsc channels keyed by the
    /// receiver's face, with an inbox so interleaved frames still match.
    struct MemHalo {
        tx: HashMap<Face2, Sender<Frame>>,
        rx: Receiver<Frame>,
        inbox: Vec<Frame>,
    }

    impl Halo2 for MemHalo {
        fn has_neighbor(&self, face: Face2) -> bool {
            self.tx.contains_key(&face)
        }
        fn send(&mut self, xch: usize, face: Face2, data: &[f64]) -> io::Result<()> {
            self.tx[&face]
                .send((xch, face.opposite(), data.to_vec()))
                .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "peer gone"))
        }
        fn recv(&mut self, xch: usize, face: Face2) -> io::Result<Vec<f64>> {
            if let Some(at) = self
                .inbox
                .iter()
                .position(|(x, f, _)| *x == xch && *f == face)
            {
                return Ok(self.inbox.remove(at).2);
            }
            loop {
                let frame = self
                    .rx
                    .recv()
                    .map_err(|_| io::Error::new(io::ErrorKind::UnexpectedEof, "peer gone"))?;
                if frame.0 == xch && frame.1 == face {
                    return Ok(frame.2);
                }
                self.inbox.push(frame);
            }
        }
    }

    fn problem(px: usize, py: usize) -> Problem2 {
        let geom = Geometry2::channel(24, 16, 2);
        let mut params = FluidParams::lattice_units(0.05);
        params.body_force[0] = 1.5e-5;
        Problem2::new(geom, px, py, params)
            .with_init(|x, y| (1.0 + 1e-3 * (x as f64) + 2e-3 * (y as f64), 0.0, 0.0))
    }

    #[test]
    fn stepper_matches_threaded_runner_bitwise() {
        let solver: Arc<dyn Solver2> = Arc::new(LatticeBoltzmann2);
        let p = problem(2, 2);
        let steps = 12u64;
        let reference = ThreadedRunner2::new(Arc::clone(&solver), p.clone())
            .run(steps)
            .unwrap();
        let a = reference.gather(24, 16, 1.0);

        // Drive the same decomposition through the abstract stepper, one
        // thread per tile over mpsc links.
        let active = p.active_tiles();
        let mut txs: HashMap<(usize, Face2), Sender<Frame>> = HashMap::new();
        let mut rxs: HashMap<usize, Receiver<Frame>> = HashMap::new();
        for &id in &active {
            let (tx, rx) = channel();
            rxs.insert(id, rx);
            for f in Face2::ALL {
                // the channel keyed by (receiver, its face) — senders clone it
                txs.insert((id, f), tx.clone());
            }
        }
        let mut tiles = Vec::new();
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for &id in &active {
                let mut tx = HashMap::new();
                for f in Face2::ALL {
                    if let Some(nb) = p.decomp.neighbor(id, f) {
                        tx.insert(f, txs[&(nb, f.opposite())].clone());
                    }
                }
                let rx = rxs.remove(&id).unwrap();
                let mut tile = p.make_tile(solver.as_ref(), id);
                let solver = Arc::clone(&solver);
                handles.push(scope.spawn(move || {
                    let mut halo = MemHalo {
                        tx,
                        rx,
                        inbox: Vec::new(),
                    };
                    let mut timing = StepTiming::default();
                    for _ in 0..steps {
                        step_tile2(solver.as_ref(), &mut tile, &mut halo, &mut timing).unwrap();
                    }
                    assert_eq!(timing.steps, steps);
                    assert!(timing.msgs_sent > 0);
                    tile
                }));
            }
            drop(txs);
            for h in handles {
                tiles.push(h.join().unwrap());
            }
        });
        let b = crate::gather::GlobalFields2::gather(24, 16, 1.0, tiles.iter());
        assert_eq!(
            a.first_difference(&b),
            None,
            "abstract stepper diverged from the threaded runner"
        );
    }
}
