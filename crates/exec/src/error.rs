//! Typed failures for the threaded runners.
//!
//! The paper's runtime distinguishes a subprocess that *died* (its host
//! crashed or rebooted) from one that merely lost its peer ("if any machine
//! or process fails, the whole system stops", section 4.1 — the failure of
//! one socket endpoint surfaces at every neighbour as a broken channel).
//! The in-process runners mirror that taxonomy instead of panicking: the
//! first fault is reported precisely, and the cascade it causes in the halo
//! graph is reported as [`RunError::Disconnected`].

use std::fmt;
use std::io;

/// Why a threaded run failed.
#[derive(Debug)]
pub enum RunError {
    /// A worker thread panicked mid-run — the in-process analogue of a
    /// subprocess dying on its host.
    WorkerPanic {
        /// Tile whose worker died.
        tile: usize,
        /// The panic payload, if it carried a message.
        message: String,
    },
    /// A worker found a peer channel closed mid-exchange: some other worker
    /// failed first and the loss is propagating through the halo graph.
    Disconnected {
        /// Tile that observed the broken channel (a casualty, not the cause).
        tile: usize,
    },
    /// A seeded fault-injection kill fired and the worker exited cleanly.
    Injected {
        /// Tile that was killed.
        tile: usize,
        /// Step at which the kill fired.
        step: u64,
    },
    /// The supervisor exhausted its restart budget.
    RetriesExhausted {
        /// Restarts attempted before giving up.
        attempts: u32,
        /// The failure that ended the final attempt.
        last: Box<RunError>,
    },
    /// A checkpoint/dump file operation failed.
    Io(io::Error),
    /// A checkpoint dump was unwritable, unreadable, or corrupt.
    Checkpoint(crate::checkpoint::DumpError),
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::WorkerPanic { tile, message } => {
                write!(f, "worker for tile {tile} panicked: {message}")
            }
            RunError::Disconnected { tile } => {
                write!(f, "worker for tile {tile} lost a peer channel")
            }
            RunError::Injected { tile, step } => {
                write!(f, "injected kill of tile {tile} at step {step}")
            }
            RunError::RetriesExhausted { attempts, last } => {
                write!(f, "gave up after {attempts} restarts; last failure: {last}")
            }
            RunError::Io(e) => write!(f, "dump file i/o failed: {e}"),
            RunError::Checkpoint(e) => write!(f, "checkpoint failed: {e}"),
        }
    }
}

impl std::error::Error for RunError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RunError::Io(e) => Some(e),
            RunError::Checkpoint(e) => Some(e),
            RunError::RetriesExhausted { last, .. } => Some(last),
            _ => None,
        }
    }
}

impl From<io::Error> for RunError {
    fn from(e: io::Error) -> Self {
        RunError::Io(e)
    }
}

impl From<crate::checkpoint::DumpError> for RunError {
    fn from(e: crate::checkpoint::DumpError) -> Self {
        RunError::Checkpoint(e)
    }
}

impl RunError {
    /// Whether this is the *root cause* of a failed run rather than
    /// collateral damage ([`RunError::Disconnected`] is what every surviving
    /// neighbour of a dead worker reports).
    pub fn is_root_cause(&self) -> bool {
        !matches!(self, RunError::Disconnected { .. })
    }
}

/// Keeps the most informative failure: the first root cause wins over any
/// number of secondary disconnects.
pub(crate) fn note_failure(slot: &mut Option<RunError>, e: RunError) {
    match slot {
        None => *slot = Some(e),
        Some(prev) if !prev.is_root_cause() && e.is_root_cause() => *slot = Some(e),
        _ => {}
    }
}

/// Extracts a human-readable message from a worker panic payload.
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;

    #[test]
    fn root_cause_beats_disconnects() {
        let mut slot = None;
        note_failure(&mut slot, RunError::Disconnected { tile: 1 });
        note_failure(&mut slot, RunError::Injected { tile: 3, step: 7 });
        note_failure(&mut slot, RunError::Disconnected { tile: 2 });
        assert!(matches!(
            slot,
            Some(RunError::Injected { tile: 3, step: 7 })
        ));
    }

    #[test]
    fn first_root_cause_is_kept() {
        let mut slot = None;
        note_failure(
            &mut slot,
            RunError::WorkerPanic {
                tile: 0,
                message: "a".into(),
            },
        );
        note_failure(&mut slot, RunError::Injected { tile: 1, step: 2 });
        assert!(matches!(slot, Some(RunError::WorkerPanic { tile: 0, .. })));
    }

    #[test]
    fn display_covers_every_variant() {
        let io = RunError::from(io::Error::other("disk gone"));
        let ckpt = RunError::from(crate::checkpoint::DumpError::ChecksumMismatch);
        let nested = RunError::RetriesExhausted {
            attempts: 3,
            last: Box::new(RunError::Disconnected { tile: 4 }),
        };
        for e in [
            RunError::WorkerPanic {
                tile: 0,
                message: "boom".into(),
            },
            RunError::Disconnected { tile: 1 },
            RunError::Injected { tile: 2, step: 9 },
            nested,
            io,
            ckpt,
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
