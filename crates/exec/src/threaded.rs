//! Thread-per-subregion parallel runner.
//!
//! Each active subregion runs on its own OS thread; halo strips travel over
//! unbounded crossbeam channels — the in-process analogue of the paper's
//! TCP/IP sockets ("the TCP/IP protocol behaves as if there are two
//! first-in-first-out channels for writing data in each direction between two
//! processes", section 4.2). Communication is asynchronous and
//! first-come-first-served within an exchange stage, which is the policy the
//! paper recommends in Appendix C.
//!
//! Halo buffers are recycled: every data channel is paired with a return
//! channel, the receiver sends each consumed buffer back, and the sender
//! reuses it for the next message on that edge. At most two buffers circulate
//! per directed edge, so the steady-state exchange performs no heap
//! allocation; [`StepTiming`] counts messages, doubles and buffer
//! allocations/reuses so tests can assert both properties exactly.
//!
//! The runner also implements the synchronisation machinery of section 5 /
//! Appendix B as a *migration drill*: a monitor picks a synchronisation step
//! just past the furthest process (every process publishes its integration
//! step, the maximum plus a safety margin becomes the barrier — the
//! shared-file max-step algorithm of Appendix B), all workers run exactly to
//! that step and pause, the migrating worker saves its state to a dump file
//! and restores from it (stop on the busy host / restart on a free host), and
//! the computation resumes. The drill is bitwise transparent: a run with a
//! drill produces exactly the fields of an undisturbed run, which the
//! integration tests assert.
//!
//! Finally, [`ThreadedRunner2::run_supervised`] is the crash-recovery mode:
//! the run is cut into segments of `checkpoint_interval` steps, the tiles are
//! snapshotted in memory at every segment barrier (a coordinated checkpoint),
//! and a worker that dies — a panic, or a seeded [`KillSpec`] — discards the
//! broken segment and replays it from the last snapshot. Because each segment
//! starts from a complete same-step snapshot and the solvers are
//! deterministic, a recovered run is *bitwise identical* to an undisturbed
//! one, which the fault-recovery tests assert property-style.

use crate::checkpoint::{load_tile2, save_tile2};
use crate::error::{note_failure, panic_message, RunError};
use crate::gather::GlobalFields2;
use crate::problem::Problem2;
use crate::timing::StepTiming;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use subsonic_grid::Face2;
use subsonic_obs::{Category, FlightRecorder, TrackRecorder};
use subsonic_solvers::{Solver2, StepOp, TileState2};

/// No synchronisation requested.
const NO_SYNC: u64 = u64::MAX;

/// Flight-recorder process id for this runner's tracks.
const TRACE_PID: u32 = 2;

/// Track id for the supervisor timeline (far above any real tile id).
const SUPERVISOR_TID: u32 = u32::MAX;

/// A planned mid-run migration exercise.
#[derive(Debug, Clone)]
pub struct MigrationDrill {
    /// Tile that "migrates" (its worker saves state to a dump file and
    /// restores from it while everyone is paused).
    pub tile: usize,
    /// Arm the drill once any worker has completed this many steps.
    pub arm_step: u64,
    /// Directory for the dump file.
    pub dump_dir: PathBuf,
}

/// What the drill actually did.
#[derive(Debug, Clone)]
pub struct DrillReport {
    /// The synchronisation step every process paused at.
    pub sync_step: u64,
    /// Size of the dump file in bytes.
    pub dump_bytes: u64,
    /// Path of the dump file.
    pub dump_path: PathBuf,
}

/// Supervisor policy for [`ThreadedRunner2::run_supervised`] (and the 3D
/// counterpart).
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Steps between in-memory coordinated checkpoints: the supervisor runs
    /// the workers in segments of this length and snapshots every tile at the
    /// segment barrier. A crash costs at most this many steps of recompute.
    pub checkpoint_interval: u64,
    /// Restarts allowed before the supervisor gives up with
    /// [`RunError::RetriesExhausted`].
    pub max_restarts: u32,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        Self {
            checkpoint_interval: 8,
            max_restarts: 2,
        }
    }
}

/// A seeded worker kill, the in-process analogue of the cluster layer's
/// host-crash fault. Fires at most once per supervised run: when the segment
/// window containing `at_step` executes for the `attempt`-th time.
#[derive(Debug, Clone)]
pub struct KillSpec {
    /// Tile whose worker dies.
    pub tile: usize,
    /// Global step at which it dies (before computing that step).
    pub at_step: u64,
    /// Which execution of the surrounding segment window the kill arms on:
    /// `0` kills the first attempt, `1` kills the *replay* of a segment that
    /// already failed once (a crash during recovery), and so on. Unsupervised
    /// segments always run at attempt 0.
    pub attempt: u32,
    /// `true`: the worker panics (unwinds mid-flight, peers see broken
    /// channels); `false`: it exits cleanly with [`RunError::Injected`].
    pub panic: bool,
}

/// Result of a threaded run.
pub struct RunOutcome2 {
    /// Final tiles, in active-id order.
    pub tiles: Vec<TileState2>,
    /// Per-tile timing, `(tile_id, timing)`. Under supervision this counts
    /// only committed segments — work thrown away by a rollback is excluded,
    /// exactly like the cluster simulation's per-process accounting.
    pub timing: Vec<(usize, StepTiming)>,
    /// Drill report, if a drill was requested and fired.
    pub drill: Option<DrillReport>,
    /// Segment replays performed by the supervisor (0 for unsupervised runs).
    pub restarts: u32,
}

impl RunOutcome2 {
    /// Gathers the global fields from the final tiles.
    pub fn gather(&self, nx: usize, ny: usize, rho0: f64) -> GlobalFields2 {
        GlobalFields2::gather(nx, ny, rho0, self.tiles.iter())
    }
}

struct Barrier {
    state: Mutex<(usize, u64)>, // (paused count, resume epoch)
    cv: Condvar,
}

struct Control {
    published: Vec<AtomicU64>,
    sync_step: AtomicU64,
    barrier: Barrier,
}

impl Control {
    fn new(n: usize) -> Self {
        Self {
            published: (0..n).map(|_| AtomicU64::new(0)).collect(),
            sync_step: AtomicU64::new(NO_SYNC),
            barrier: Barrier {
                state: Mutex::new((0, 0)),
                cv: Condvar::new(),
            },
        }
    }

    fn max_published(&self) -> u64 {
        self.published
            .iter()
            .map(|a| a.load(Ordering::SeqCst))
            .max()
            .unwrap_or(0)
    }

    /// Worker-side: pause at the barrier until the monitor resumes everyone.
    fn pause(&self) {
        let mut st = self.barrier.state.lock();
        let epoch = st.1;
        st.0 += 1;
        self.barrier.cv.notify_all();
        while st.1 == epoch {
            self.barrier.cv.wait(&mut st);
        }
    }

    /// Monitor-side: wait until `n` workers are paused.
    fn wait_all_paused(&self, n: usize) {
        let mut st = self.barrier.state.lock();
        while st.0 < n {
            self.barrier.cv.wait(&mut st);
        }
    }

    /// Monitor-side: release all paused workers (the CONT signal).
    fn resume_all(&self) {
        let mut st = self.barrier.state.lock();
        st.0 = 0;
        st.1 += 1;
        self.barrier.cv.notify_all();
        // clear the sync request so workers run freely again
        self.sync_step.store(NO_SYNC, Ordering::SeqCst);
    }
}

/// Output of one supervised segment (or a whole unsupervised run).
struct Segment2 {
    tiles: Vec<TileState2>,
    timing: Vec<(usize, StepTiming)>,
    drill: Option<DrillReport>,
}

/// One thread per subregion, channels as sockets.
pub struct ThreadedRunner2 {
    solver: Arc<dyn Solver2>,
    problem: Problem2,
    recorder: FlightRecorder,
    overlap: bool,
}

impl ThreadedRunner2 {
    /// Creates a runner for `problem` using `solver`.
    pub fn new(solver: Arc<dyn Solver2>, problem: Problem2) -> Self {
        Self {
            solver,
            problem,
            recorder: FlightRecorder::disabled(),
            overlap: true,
        }
    }

    /// Enables or disables compute/halo overlap (default: on).
    ///
    /// When the solver declares [`Solver2::overlapped_phase`]`(x) == Some(p)`
    /// and the plan has `Exchange(x)` immediately followed by `Compute(p)`,
    /// the worker posts *all* halo sends, computes the interior band while
    /// the final exchange stage is still in flight, then unpacks it and
    /// applies the boundary bands. Results are bitwise identical either way
    /// (pinned by `overlap_matches_nonoverlap_bitwise_*`).
    pub fn with_overlap(mut self, on: bool) -> Self {
        self.overlap = on;
        self
    }

    /// Attaches a flight recorder: each worker gets a wall-clock track
    /// (compute / halo-exchange spans, checkpoint and recovery events).
    /// With a disabled recorder — the default — every record call is a
    /// no-op and the step hot path allocates nothing extra, which the
    /// buffer-recycling test pins via the alloc counters.
    pub fn with_recorder(mut self, recorder: &FlightRecorder) -> Self {
        self.recorder = recorder.clone();
        self
    }

    /// Opens a per-tile trace track (inert when the recorder is disabled;
    /// the name is only formatted when actually recording).
    fn tile_track(&self, id: usize) -> TrackRecorder {
        if self.recorder.is_enabled() {
            self.recorder
                .track(TRACE_PID, id as u32, "threaded2", &format!("tile {id}"))
        } else {
            TrackRecorder::disabled()
        }
    }

    /// Runs `steps` integration steps on all active tiles in parallel.
    pub fn run(&self, steps: u64) -> Result<RunOutcome2, RunError> {
        self.run_with_drill(steps, None)
    }

    /// Runs `steps` steps, optionally performing a migration drill mid-run.
    pub fn run_with_drill(
        &self,
        steps: u64,
        drill: Option<MigrationDrill>,
    ) -> Result<RunOutcome2, RunError> {
        if let Some(d) = drill.as_ref() {
            std::fs::create_dir_all(&d.dump_dir)?;
        }
        let tiles = self.initial_tiles();
        let seg = self.run_segment(tiles, 0, steps, drill, Vec::new())?;
        Ok(RunOutcome2 {
            tiles: seg.tiles,
            timing: seg.timing,
            drill: seg.drill,
            restarts: 0,
        })
    }

    /// Runs `steps` steps under crash-recovery supervision: the run proceeds
    /// in segments of `cfg.checkpoint_interval` steps with an in-memory
    /// coordinated checkpoint at every segment barrier. A worker death —
    /// a panic, or the seeded `kill` — aborts the segment; the supervisor
    /// rolls back to the last checkpoint and replays, up to
    /// `cfg.max_restarts` times. The recovered result is bitwise identical
    /// to an undisturbed run.
    pub fn run_supervised(
        &self,
        steps: u64,
        cfg: &SupervisorConfig,
        kill: Option<KillSpec>,
    ) -> Result<RunOutcome2, RunError> {
        self.run_supervised_kills(steps, cfg, kill.as_slice())
    }

    /// Like [`run_supervised`](Self::run_supervised), but with any number of
    /// seeded kills — including kills armed on a *replay* attempt
    /// ([`KillSpec::attempt`] > 0), i.e. a crash that strikes while recovery
    /// from an earlier crash is still in flight.
    pub fn run_supervised_kills(
        &self,
        steps: u64,
        cfg: &SupervisorConfig,
        kills: &[KillSpec],
    ) -> Result<RunOutcome2, RunError> {
        let active = self.problem.active_tiles();
        let mut snapshot = self.initial_tiles();
        let interval = cfg.checkpoint_interval.max(1);
        let mut timing: Vec<(usize, StepTiming)> = active
            .iter()
            .map(|&id| (id, StepTiming::default()))
            .collect();
        let mut restarts = 0u32;
        let mut done = 0u64;
        let mut supervisor =
            self.recorder
                .track(TRACE_PID, SUPERVISOR_TID, "threaded2", "supervisor");
        let mut replaying = false;
        // How many times the *current* segment window has already failed:
        // a kill arms only when its window runs at exactly its attempt index,
        // so each spec fires at most once.
        let mut window_attempt = 0u32;
        while done < steps {
            let end = (done + interval).min(steps);
            let armed: Vec<KillSpec> = kills
                .iter()
                .filter(|kl| kl.at_step >= done && kl.at_step < end && kl.attempt == window_attempt)
                .cloned()
                .collect();
            let seg0 = Instant::now();
            match self.run_segment(snapshot.clone(), done, end, None, armed) {
                Ok(seg) => {
                    snapshot = seg.tiles;
                    for (acc, (_, t)) in timing.iter_mut().zip(seg.timing) {
                        acc.1.append(&t);
                    }
                    done = end;
                    window_attempt = 0;
                    if replaying {
                        // this segment was a rollback replay: the recompute
                        // cost of the crash, distinct from normal progress
                        supervisor.span_wall_arg(
                            Category::Recovery,
                            "replay segment",
                            seg0,
                            Instant::now(),
                            Some(("end_step", end as f64)),
                        );
                        replaying = false;
                    }
                    supervisor.instant_wall(
                        Category::Checkpoint,
                        "checkpoint commit",
                        Instant::now(),
                    );
                }
                Err(e) => {
                    supervisor.instant_wall(Category::Fault, "segment failed", Instant::now());
                    replaying = true;
                    window_attempt += 1;
                    restarts += 1;
                    if restarts > cfg.max_restarts {
                        return Err(RunError::RetriesExhausted {
                            attempts: restarts,
                            last: Box::new(e),
                        });
                    }
                    // snapshot untouched — replay the segment from the last
                    // coordinated checkpoint
                }
            }
        }
        Ok(RunOutcome2 {
            tiles: snapshot,
            timing,
            drill: None,
            restarts,
        })
    }

    /// Builds the step-0 tiles in active-id order.
    fn initial_tiles(&self) -> Vec<TileState2> {
        self.problem
            .active_tiles()
            .iter()
            .map(|&id| self.problem.make_tile(self.solver.as_ref(), id))
            .collect()
    }

    /// Runs global steps `start..end` from `tiles_in` (one tile per active
    /// id, in order). The whole channel fabric is rebuilt per segment; a
    /// worker failure tears it down and every survivor unwinds through
    /// [`RunError::Disconnected`].
    fn run_segment(
        &self,
        tiles_in: Vec<TileState2>,
        start: u64,
        end: u64,
        drill: Option<MigrationDrill>,
        kills: Vec<KillSpec>,
    ) -> Result<Segment2, RunError> {
        let active = self.problem.active_tiles();
        let n = active.len();
        let index_of: HashMap<usize, usize> =
            active.iter().enumerate().map(|(k, &id)| (id, k)).collect();

        // Channels: key (receiver tile id, receiver face). Each data channel
        // is paired with a *return* channel flowing the other way: the
        // receiver hands consumed buffers back to the sender, which reuses
        // them for the next message on that edge. In steady state no halo
        // buffer is ever allocated (at most two circulate per edge).
        let mut senders: HashMap<(usize, Face2), Sender<Vec<f64>>> = HashMap::new();
        let mut receivers: HashMap<(usize, Face2), Receiver<Vec<f64>>> = HashMap::new();
        let mut ret_senders: HashMap<(usize, Face2), Sender<Vec<f64>>> = HashMap::new();
        let mut ret_receivers: HashMap<(usize, Face2), Receiver<Vec<f64>>> = HashMap::new();
        for &id in &active {
            for f in Face2::ALL {
                if let Some(nb) = self.problem.decomp.neighbor(id, f) {
                    if index_of.contains_key(&nb) {
                        let (s, r) = unbounded();
                        senders.insert((id, f), s);
                        receivers.insert((id, f), r);
                        let (rs, rr) = unbounded();
                        ret_senders.insert((id, f), rs);
                        ret_receivers.insert((id, f), rr);
                    }
                }
            }
        }

        let control = Arc::new(Control::new(n));
        let drill_fired: Mutex<Option<DrillReport>> = Mutex::new(None);

        // Per-worker endpoints: my receivers (face -> data rx + buffer-return
        // tx), my senders into each neighbour's ghost (face -> data tx of
        // (nb, f.opposite()) + the matching buffer-return rx).
        // (face, data in, buffer-returns out) / (face, data out, returns in)
        type RxEdge = (Face2, Receiver<Vec<f64>>, Sender<Vec<f64>>);
        type TxEdge = (Face2, Sender<Vec<f64>>, Receiver<Vec<f64>>);
        struct Endpoints {
            rx: Vec<RxEdge>,
            tx: Vec<TxEdge>,
        }
        let mut endpoints: Vec<Endpoints> = Vec::with_capacity(n);
        for &id in &active {
            let mut rx = Vec::new();
            let mut tx = Vec::new();
            for f in Face2::ALL {
                if let Some(r) = receivers.remove(&(id, f)) {
                    let rs = ret_senders.remove(&(id, f)).expect("return sender missing");
                    rx.push((f, r, rs));
                }
                if let Some(nb) = self.problem.decomp.neighbor(id, f) {
                    if let Some(s) = senders.get(&(nb, f.opposite())) {
                        let rr = ret_receivers
                            .remove(&(nb, f.opposite()))
                            .expect("return receiver missing");
                        tx.push((f, s.clone(), rr));
                    }
                }
            }
            endpoints.push(Endpoints { rx, tx });
        }
        drop(senders);

        let solver = &self.solver;
        let plan = solver.plan();
        let overlap = self.overlap;
        let mut results: Vec<Option<(TileState2, StepTiming)>> = (0..n).map(|_| None).collect();
        let mut failure: Option<RunError> = None;

        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(n);
            let mut tiles_in = tiles_in;
            for (k, &id) in active.iter().enumerate() {
                let mut tile = tiles_in.remove(0);
                let ep = endpoints.remove(0);
                let control = Arc::clone(&control);
                let drill = drill.clone();
                let kills = kills.clone();
                let drill_fired = &drill_fired;
                let mut track = self.tile_track(id);
                handles.push(
                    scope.spawn(move || -> Result<(TileState2, StepTiming), RunError> {
                        let mut timing = StepTiming::default();
                        // Stage-filtered halves of the halo exchange. The
                        // staged protocol forwards corners transitively:
                        // stage-1 packs read ghosts written by stage-0
                        // unpacks *and* pre-compute boundary strips, so
                        // every pack must run before the interior compute
                        // starts; only the final stage's receive may be
                        // deferred behind it.
                        let send_stage = |tile: &TileState2,
                                          x: usize,
                                          stage: usize,
                                          timing: &mut StepTiming|
                         -> Result<Duration, RunError> {
                            let mut pack = Duration::ZERO;
                            for (f, tx, ret) in ep.tx.iter().filter(|(f, ..)| f.stage() == stage) {
                                let mut buf = match ret.try_recv() {
                                    Ok(mut b) => {
                                        timing.buf_reuses += 1;
                                        b.clear();
                                        b
                                    }
                                    Err(_) => {
                                        timing.buf_allocs += 1;
                                        Vec::new()
                                    }
                                };
                                let p0 = Instant::now();
                                solver.pack(tile, x, *f, &mut buf);
                                pack += p0.elapsed();
                                timing.msgs_sent += 1;
                                timing.doubles_sent += buf.len() as u64;
                                tx.send(buf)
                                    .map_err(|_| RunError::Disconnected { tile: id })?;
                            }
                            Ok(pack)
                        };
                        let recv_stage = |tile: &mut TileState2,
                                          x: usize,
                                          stage: usize|
                         -> Result<(), RunError> {
                            for (f, rx, ret) in ep.rx.iter().filter(|(f, ..)| f.stage() == stage) {
                                let buf =
                                    rx.recv().map_err(|_| RunError::Disconnected { tile: id })?;
                                solver.unpack(tile, x, *f, &buf);
                                // hand the buffer back for reuse; a peer that
                                // already finished its run has dropped the
                                // other end, in which case the buffer is
                                // simply freed
                                let _ = ret.send(buf);
                            }
                            Ok(())
                        };
                        // Highest stage this tile actually has edges on: the
                        // overlapped schedule hides the interior compute
                        // behind that stage's receive.
                        let last_stage = ep
                            .rx
                            .iter()
                            .map(|(f, ..)| f.stage())
                            .chain(ep.tx.iter().map(|(f, ..)| f.stage()))
                            .max()
                            .unwrap_or(0);
                        for s in start..end {
                            control.published[k].store(s, Ordering::SeqCst);
                            // seeded fault injection: this worker dies here
                            // (the supervisor pre-filters kills by attempt)
                            if let Some(kl) =
                                kills.iter().find(|kl| kl.tile == id && kl.at_step == s)
                            {
                                if kl.panic {
                                    panic!("injected fault: tile {id} killed at step {s}");
                                }
                                return Err(RunError::Injected { tile: id, step: s });
                            }
                            // Appendix B picks the sync step with a margin so it
                            // lands in every process's future; that only holds if
                            // workers cannot outrun the monitor. Hold once, at the
                            // arm step, until the step is announced (it is cleared
                            // again at resume, so later steps must not re-gate).
                            if let Some(d) = drill.as_ref() {
                                if s == d.arm_step {
                                    while control.sync_step.load(Ordering::SeqCst) == NO_SYNC {
                                        std::thread::yield_now();
                                    }
                                }
                            }
                            // Synchronisation point of section 5: when a sync step
                            // is announced, run exactly to it and pause.
                            if control.sync_step.load(Ordering::SeqCst) == s {
                                // A failed dump must still reach the barrier
                                // (otherwise the monitor waits forever), so the
                                // error is carried across the pause.
                                let mut drill_err: Option<RunError> = None;
                                if let Some(d) = drill.as_ref() {
                                    if d.tile == id {
                                        // migrate: save state, "move host", restore
                                        let path =
                                            d.dump_dir.join(format!("tile{id}_step{s}.dump"));
                                        let d0 = Instant::now();
                                        match save_tile2(&tile, &path)
                                            .and_then(|bytes| Ok((bytes, load_tile2(&path)?)))
                                        {
                                            Ok((bytes, restored)) => {
                                                tile = restored;
                                                track.span_wall_arg(
                                                    Category::Checkpoint,
                                                    "migration dump",
                                                    d0,
                                                    Instant::now(),
                                                    Some(("bytes", bytes as f64)),
                                                );
                                                *drill_fired.lock() = Some(DrillReport {
                                                    sync_step: s,
                                                    dump_bytes: bytes,
                                                    dump_path: path,
                                                });
                                            }
                                            Err(e) => drill_err = Some(RunError::Checkpoint(e)),
                                        }
                                    }
                                }
                                control.pause();
                                if let Some(e) = drill_err {
                                    return Err(e);
                                }
                            }
                            // one integration step
                            let mut op_i = 0;
                            while op_i < plan.len() {
                                match plan[op_i] {
                                    StepOp::Compute(p) => {
                                        let t0 = Instant::now();
                                        solver.compute(&mut tile, p);
                                        let t1 = Instant::now();
                                        timing.t_calc += t1 - t0;
                                        track.span_wall(Category::Compute, "compute", t0, t1);
                                    }
                                    StepOp::Exchange(x) => {
                                        // Fuse `Exchange(x); Compute(p)` into the
                                        // overlapped schedule when the solver
                                        // declares the pair safe to split.
                                        let fused = if overlap {
                                            solver.overlapped_phase(x).filter(|&p| {
                                                matches!(
                                                    plan.get(op_i + 1),
                                                    Some(StepOp::Compute(q)) if *q == p
                                                )
                                            })
                                        } else {
                                            None
                                        };
                                        let t0 = Instant::now();
                                        // Pack time is a sub-component of the
                                        // t_com windows below; it is accumulated
                                        // into t_pack only, never added to t_com
                                        // a second time.
                                        let mut pack = Duration::ZERO;
                                        if let Some(p) = fused {
                                            // Post every send before the compute
                                            // touches the tile, then hide the
                                            // interior sweep behind the last
                                            // stage's receive.
                                            for stage in 0..last_stage {
                                                pack += send_stage(&tile, x, stage, &mut timing)?;
                                                recv_stage(&mut tile, x, stage)?;
                                            }
                                            pack += send_stage(&tile, x, last_stage, &mut timing)?;
                                            let t1 = Instant::now();
                                            timing.t_com += t1 - t0;
                                            track.span_wall(Category::Halo, "halo send", t0, t1);
                                            let c0 = Instant::now();
                                            solver.compute_interior(&mut tile, p);
                                            let c1 = Instant::now();
                                            timing.t_calc += c1 - c0;
                                            track.span_wall(
                                                Category::Compute,
                                                "compute interior",
                                                c0,
                                                c1,
                                            );
                                            let r0 = Instant::now();
                                            recv_stage(&mut tile, x, last_stage)?;
                                            let r1 = Instant::now();
                                            timing.t_com += r1 - r0;
                                            track.span_wall(Category::Halo, "halo recv", r0, r1);
                                            let b0 = Instant::now();
                                            solver.compute_boundary(&mut tile, p);
                                            let b1 = Instant::now();
                                            timing.t_calc += b1 - b0;
                                            track.span_wall(
                                                Category::Compute,
                                                "compute boundary",
                                                b0,
                                                b1,
                                            );
                                            op_i += 1; // the fused Compute is done
                                        } else {
                                            for stage in 0..=last_stage {
                                                pack += send_stage(&tile, x, stage, &mut timing)?;
                                                recv_stage(&mut tile, x, stage)?;
                                            }
                                            let t1 = Instant::now();
                                            timing.t_com += t1 - t0;
                                            track.span_wall(Category::Halo, "exchange", t0, t1);
                                        }
                                        timing.t_pack += pack;
                                    }
                                }
                                op_i += 1;
                            }
                            timing.steps += 1;
                        }
                        // final publish so the monitor sees completion
                        control.published[k].store(end, Ordering::SeqCst);
                        Ok((tile, timing))
                    }),
                );
            }

            // The monitoring program (section 4.1 / 5.1): arm the drill, pick
            // the synchronisation step, wait for global pause, "find a free
            // host", send CONT.
            if let Some(d) = drill.as_ref() {
                loop {
                    let m = control.max_published();
                    if m >= d.arm_step {
                        // Appendix B: everyone posts its step; the largest
                        // plus a margin becomes the synchronisation step
                        // (+2 covers the step in flight at read time).
                        let sync = m + 2;
                        if sync >= end {
                            // Too late in the run; announce the (unreachable)
                            // step anyway so gated workers are released.
                            control.sync_step.store(sync, Ordering::SeqCst);
                            break; // drill skipped
                        }
                        control.sync_step.store(sync, Ordering::SeqCst);
                        control.wait_all_paused(n);
                        // host selection delay would go here
                        control.resume_all();
                        break;
                    }
                    std::thread::yield_now();
                }
            }

            for (k, h) in handles.into_iter().enumerate() {
                match h.join() {
                    Ok(Ok(pair)) => results[k] = Some(pair),
                    Ok(Err(e)) => note_failure(&mut failure, e),
                    Err(payload) => note_failure(
                        &mut failure,
                        RunError::WorkerPanic {
                            tile: active[k],
                            message: panic_message(payload),
                        },
                    ),
                }
            }
        });

        if let Some(e) = failure {
            return Err(e);
        }
        let mut tiles = Vec::with_capacity(n);
        let mut timing = Vec::with_capacity(n);
        for (k, r) in results.into_iter().enumerate() {
            let (tile, t) = r.expect("worker result missing without a recorded failure");
            tiles.push(tile);
            timing.push((active[k], t));
        }
        Ok(Segment2 {
            tiles,
            timing,
            drill: drill_fired.into_inner(),
        })
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use crate::local::LocalRunner2;
    use subsonic_grid::Geometry2;
    use subsonic_solvers::{FiniteDifference2, FluidParams, LatticeBoltzmann2};

    fn problem(px: usize, py: usize) -> Problem2 {
        let mut params = FluidParams::lattice_units(0.05);
        params.body_force[0] = 1e-5;
        Problem2::new(Geometry2::channel(24, 16, 2), px, py, params)
            .with_init(|x, y| (1.0 + 1e-4 * ((x * 7 + y * 13) % 5) as f64, 0.0, 0.0))
    }

    #[test]
    fn threaded_matches_local_bitwise_fd() {
        let solver: Arc<dyn Solver2> = Arc::new(FiniteDifference2);
        let mut local = LocalRunner2::new(Arc::clone(&solver), problem(2, 2));
        local.run(10);
        let a = local.gather();
        let out = ThreadedRunner2::new(Arc::clone(&solver), problem(2, 2))
            .run(10)
            .unwrap();
        let b = out.gather(24, 16, 1.0);
        assert_eq!(a.first_difference(&b), None);
    }

    #[test]
    fn threaded_matches_local_bitwise_lbm() {
        let solver: Arc<dyn Solver2> = Arc::new(LatticeBoltzmann2);
        let mut local = LocalRunner2::new(Arc::clone(&solver), problem(3, 1));
        local.run(10);
        let a = local.gather();
        let out = ThreadedRunner2::new(Arc::clone(&solver), problem(3, 1))
            .run(10)
            .unwrap();
        let b = out.gather(24, 16, 1.0);
        assert_eq!(a.first_difference(&b), None);
    }

    /// Compute/halo overlap must not change a single bit: the interior
    /// sweep runs off data the exchange never touches, and every pack is
    /// posted before the compute starts. Pinned against both the
    /// non-overlapped runner and the serial reference.
    #[test]
    fn overlap_matches_nonoverlap_bitwise() {
        for solver in [
            Arc::new(LatticeBoltzmann2) as Arc<dyn Solver2>,
            Arc::new(FiniteDifference2) as Arc<dyn Solver2>,
        ] {
            let mut local = LocalRunner2::new(Arc::clone(&solver), problem(2, 2));
            local.run(10);
            let a = local.gather();
            let on = ThreadedRunner2::new(Arc::clone(&solver), problem(2, 2))
                .with_overlap(true)
                .run(10)
                .unwrap()
                .gather(24, 16, 1.0);
            let off = ThreadedRunner2::new(Arc::clone(&solver), problem(2, 2))
                .with_overlap(false)
                .run(10)
                .unwrap()
                .gather(24, 16, 1.0);
            assert_eq!(a.first_difference(&on), None);
            assert_eq!(a.first_difference(&off), None);
        }
    }

    #[test]
    fn timing_is_recorded() {
        let solver: Arc<dyn Solver2> = Arc::new(LatticeBoltzmann2);
        let out = ThreadedRunner2::new(solver, problem(2, 1)).run(5).unwrap();
        assert_eq!(out.timing.len(), 2);
        for (_, t) in &out.timing {
            assert_eq!(t.steps, 5);
            assert!(t.t_calc.as_nanos() > 0);
        }
    }

    #[test]
    fn message_volume_matches_solver_message_doubles() {
        // The new StepTiming counters must account for every double on the
        // wire: a J x K run sends exactly sum(message_doubles) per step.
        let solver: Arc<dyn Solver2> = Arc::new(LatticeBoltzmann2);
        let steps = 7u64;
        let p = problem(3, 2);
        let active = p.active_tiles();
        let mut per_step = 0u64;
        let mut edges = 0u64;
        for &id in &active {
            let t = p.make_tile(solver.as_ref(), id);
            for f in Face2::ALL {
                if let Some(nb) = p.decomp.neighbor(id, f) {
                    if active.contains(&nb) {
                        edges += 1;
                        for op in solver.plan() {
                            if let StepOp::Exchange(x) = *op {
                                per_step += solver.message_doubles(&t, x, f) as u64;
                            }
                        }
                    }
                }
            }
        }
        assert!(per_step > 0 && edges > 0);

        let out = ThreadedRunner2::new(Arc::clone(&solver), problem(3, 2))
            .run(steps)
            .unwrap();
        let mut total = StepTiming::default();
        for (_, t) in &out.timing {
            total.merge(t);
        }
        let exchanges = solver
            .plan()
            .iter()
            .filter(|op| matches!(op, StepOp::Exchange(_)))
            .count() as u64;
        assert_eq!(total.doubles_sent, per_step * steps);
        assert_eq!(total.msgs_sent, edges * exchanges * steps);
    }

    #[test]
    fn halo_buffers_are_recycled() {
        // Zero steady-state allocation: at most two buffers ever circulate
        // per directed edge, no matter how many steps run.
        let solver: Arc<dyn Solver2> = Arc::new(FiniteDifference2);
        let p = problem(2, 2);
        let active = p.active_tiles();
        let mut edges = 0u64;
        for &id in &active {
            for f in Face2::ALL {
                if let Some(nb) = p.decomp.neighbor(id, f) {
                    if active.contains(&nb) {
                        edges += 1;
                    }
                }
            }
        }
        let out = ThreadedRunner2::new(Arc::clone(&solver), problem(2, 2))
            .run(30)
            .unwrap();
        let mut total = StepTiming::default();
        for (_, t) in &out.timing {
            total.merge(t);
        }
        // every message either reused a returned buffer or allocated one
        assert_eq!(total.buf_allocs + total.buf_reuses, total.msgs_sent);
        assert!(
            total.buf_allocs <= 2 * edges,
            "pool allocated {} buffers for {} edges — recycling broken",
            total.buf_allocs,
            edges
        );
        assert!(total.buf_reuses > total.buf_allocs);
    }

    /// The acceptance pin for "zero-cost when disabled": recording must not
    /// add any allocation to the step hot path, measured with the same alloc
    /// counters the recycling test uses. The exact buf_allocs value is
    /// scheduling-dependent (a returned buffer may or may not be back in
    /// time), so the invariant is the steady-state pool bound — at most two
    /// buffers per directed edge — which must hold identically with the
    /// recorder disabled (the default) and enabled.
    #[test]
    fn recorder_adds_no_hot_path_allocations() {
        let solver: Arc<dyn Solver2> = Arc::new(FiniteDifference2);
        let p = problem(2, 2);
        let active = p.active_tiles();
        let mut edges = 0u64;
        for &id in &active {
            for f in Face2::ALL {
                if let Some(nb) = p.decomp.neighbor(id, f) {
                    if active.contains(&nb) {
                        edges += 1;
                    }
                }
            }
        }
        let totals = |out: &RunOutcome2| {
            let mut total = StepTiming::default();
            for (_, t) in &out.timing {
                total.merge(t);
            }
            total
        };

        let plain = ThreadedRunner2::new(Arc::clone(&solver), problem(2, 2))
            .run(30)
            .unwrap();

        let rec = FlightRecorder::enabled(4096);
        let traced = ThreadedRunner2::new(Arc::clone(&solver), problem(2, 2))
            .with_recorder(&rec)
            .run(30)
            .unwrap();

        let a = totals(&plain);
        let b = totals(&traced);
        assert!(a.buf_allocs <= 2 * edges, "baseline exceeded buffer pool");
        assert!(
            b.buf_allocs <= 2 * edges,
            "recorder added hot-path allocations: {} allocs for {} edges",
            b.buf_allocs,
            edges
        );
        assert_eq!(a.msgs_sent, b.msgs_sent);
        // pack time is measured inside the t_com window, never beyond it
        assert!(
            a.t_pack <= a.t_com,
            "t_pack {:?} > t_com {:?}",
            a.t_pack,
            a.t_com
        );
        assert!(b.t_pack <= b.t_com);
        assert!(a.t_pack.as_nanos() > 0);

        // and the traced run actually produced per-tile compute/halo tracks
        let tracks = rec.finished_tracks();
        assert_eq!(tracks.len(), 4, "one track per tile");
        for t in &tracks {
            assert_eq!(t.pid, TRACE_PID);
            assert!(t.events.iter().any(|e| e.cat == Category::Compute));
            assert!(t.events.iter().any(|e| e.cat == Category::Halo));
        }
        assert_eq!(rec.dropped_events(), 0);
    }

    /// A supervised run with an injected kill leaves a supervisor track with
    /// the failure instant, the rollback replay span and checkpoint commits.
    #[test]
    fn supervised_trace_shows_recovery() {
        let solver: Arc<dyn Solver2> = Arc::new(LatticeBoltzmann2);
        let rec = FlightRecorder::enabled(4096);
        let cfg = SupervisorConfig {
            checkpoint_interval: 5,
            max_restarts: 3,
        };
        let kill = KillSpec {
            tile: 1,
            at_step: 7,
            attempt: 0,
            panic: false,
        };
        let out = ThreadedRunner2::new(Arc::clone(&solver), problem(2, 2))
            .with_recorder(&rec)
            .run_supervised(20, &cfg, Some(kill))
            .unwrap();
        assert_eq!(out.restarts, 1);
        let tracks = rec.finished_tracks();
        let sup = tracks
            .iter()
            .find(|t| t.tid == SUPERVISOR_TID)
            .expect("supervisor track missing");
        assert!(sup
            .events
            .iter()
            .any(|e| e.cat == Category::Fault && e.is_instant()));
        assert!(sup
            .events
            .iter()
            .any(|e| e.cat == Category::Recovery && !e.is_instant()));
        assert_eq!(
            sup.events
                .iter()
                .filter(|e| e.cat == Category::Checkpoint)
                .count(),
            4,
            "one commit per completed segment"
        );
    }

    #[test]
    fn migration_drill_is_transparent() {
        let solver: Arc<dyn Solver2> = Arc::new(LatticeBoltzmann2);
        let undisturbed = ThreadedRunner2::new(Arc::clone(&solver), problem(2, 2))
            .run(20)
            .unwrap();
        let a = undisturbed.gather(24, 16, 1.0);

        let dir = std::env::temp_dir().join("subsonic_drill_test");
        let drill = MigrationDrill {
            tile: 1,
            arm_step: 5,
            dump_dir: dir,
        };
        let out = ThreadedRunner2::new(Arc::clone(&solver), problem(2, 2))
            .run_with_drill(20, Some(drill))
            .unwrap();
        let report = out.drill.clone().expect("drill did not fire");
        assert!(report.sync_step >= 5 && report.sync_step < 20);
        assert!(report.dump_bytes > 0);
        let b = out.gather(24, 16, 1.0);
        assert_eq!(
            a.first_difference(&b),
            None,
            "migration drill changed the results"
        );
        let _ = std::fs::remove_file(&report.dump_path);
    }

    #[test]
    fn supervised_run_without_faults_is_bit_identical() {
        let solver: Arc<dyn Solver2> = Arc::new(LatticeBoltzmann2);
        let plain = ThreadedRunner2::new(Arc::clone(&solver), problem(2, 2))
            .run(20)
            .unwrap();
        let sup = ThreadedRunner2::new(Arc::clone(&solver), problem(2, 2))
            .run_supervised(
                20,
                &SupervisorConfig {
                    checkpoint_interval: 6,
                    max_restarts: 2,
                },
                None,
            )
            .unwrap();
        assert_eq!(sup.restarts, 0);
        let a = plain.gather(24, 16, 1.0);
        let b = sup.gather(24, 16, 1.0);
        assert_eq!(
            a.first_difference(&b),
            None,
            "supervision changed the results"
        );
        // committed timing covers the whole run
        for (_, t) in &sup.timing {
            assert_eq!(t.steps, 20);
        }
    }

    #[test]
    fn clean_kill_recovers_to_the_bitwise_result() {
        let solver: Arc<dyn Solver2> = Arc::new(LatticeBoltzmann2);
        let plain = ThreadedRunner2::new(Arc::clone(&solver), problem(2, 2))
            .run(20)
            .unwrap();
        let kill = KillSpec {
            tile: 1,
            at_step: 13,
            attempt: 0,
            panic: false,
        };
        let sup = ThreadedRunner2::new(Arc::clone(&solver), problem(2, 2))
            .run_supervised(
                20,
                &SupervisorConfig {
                    checkpoint_interval: 6,
                    max_restarts: 2,
                },
                Some(kill),
            )
            .unwrap();
        assert_eq!(sup.restarts, 1, "the kill should cost exactly one replay");
        let a = plain.gather(24, 16, 1.0);
        let b = sup.gather(24, 16, 1.0);
        assert_eq!(
            a.first_difference(&b),
            None,
            "recovery diverged from clean run"
        );
    }

    #[test]
    fn worker_panic_recovers_to_the_bitwise_result() {
        let solver: Arc<dyn Solver2> = Arc::new(FiniteDifference2);
        let plain = ThreadedRunner2::new(Arc::clone(&solver), problem(3, 1))
            .run(15)
            .unwrap();
        // silence the default panic hook for the injected unwind
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let sup = ThreadedRunner2::new(Arc::clone(&solver), problem(3, 1)).run_supervised(
            15,
            &SupervisorConfig {
                checkpoint_interval: 4,
                max_restarts: 2,
            },
            Some(KillSpec {
                tile: 2,
                at_step: 9,
                attempt: 0,
                panic: true,
            }),
        );
        std::panic::set_hook(prev);
        let sup = sup.unwrap();
        assert_eq!(sup.restarts, 1);
        let a = plain.gather(24, 16, 1.0);
        let b = sup.gather(24, 16, 1.0);
        assert_eq!(a.first_difference(&b), None, "panic recovery diverged");
    }

    #[test]
    fn crash_during_recovery_still_recovers_bitwise() {
        // A second kill fires on the *replay* of the segment the first kill
        // aborted: recovery itself crashes, and the supervisor must roll back
        // again and still converge to the undisturbed result.
        let solver: Arc<dyn Solver2> = Arc::new(LatticeBoltzmann2);
        let plain = ThreadedRunner2::new(Arc::clone(&solver), problem(2, 2))
            .run(20)
            .unwrap();
        let kills = [
            KillSpec {
                tile: 1,
                at_step: 13,
                attempt: 0,
                panic: false,
            },
            KillSpec {
                tile: 2,
                at_step: 14,
                attempt: 1,
                panic: false,
            },
        ];
        let sup = ThreadedRunner2::new(Arc::clone(&solver), problem(2, 2))
            .run_supervised_kills(
                20,
                &SupervisorConfig {
                    checkpoint_interval: 6,
                    max_restarts: 3,
                },
                &kills,
            )
            .unwrap();
        assert_eq!(sup.restarts, 2, "both kills should fire exactly once");
        let a = plain.gather(24, 16, 1.0);
        let b = sup.gather(24, 16, 1.0);
        assert_eq!(
            a.first_difference(&b),
            None,
            "crash-during-recovery diverged from clean run"
        );
    }

    #[test]
    fn restart_budget_is_enforced() {
        let solver: Arc<dyn Solver2> = Arc::new(LatticeBoltzmann2);
        let err = match ThreadedRunner2::new(Arc::clone(&solver), problem(2, 1)).run_supervised(
            10,
            &SupervisorConfig {
                checkpoint_interval: 4,
                max_restarts: 0,
            },
            Some(KillSpec {
                tile: 0,
                at_step: 2,
                attempt: 0,
                panic: false,
            }),
        ) {
            Err(e) => e,
            Ok(_) => panic!("a zero-restart budget should not survive a kill"),
        };
        match err {
            RunError::RetriesExhausted { attempts, last } => {
                assert_eq!(attempts, 1);
                assert!(
                    matches!(*last, RunError::Injected { tile: 0, step: 2 }),
                    "root cause should be the injected kill, got {last}"
                );
            }
            other => panic!("expected RetriesExhausted, got {other}"),
        }
    }

    #[test]
    fn kill_root_cause_beats_peer_disconnects() {
        // The killed worker's neighbours die of Disconnected; the error the
        // caller sees must still be the injected kill.
        let solver: Arc<dyn Solver2> = Arc::new(LatticeBoltzmann2);
        let runner = ThreadedRunner2::new(Arc::clone(&solver), problem(2, 2));
        let tiles = runner.initial_tiles();
        let err = match runner.run_segment(
            tiles,
            0,
            10,
            None,
            vec![KillSpec {
                tile: 3,
                at_step: 5,
                attempt: 0,
                panic: false,
            }],
        ) {
            Err(e) => e,
            Ok(_) => panic!("the injected kill should abort the segment"),
        };
        assert!(
            matches!(err, RunError::Injected { tile: 3, step: 5 }),
            "got {err}"
        );
    }
}
