//! Thread-per-subregion parallel runner.
//!
//! Each active subregion runs on its own OS thread; halo strips travel over
//! unbounded crossbeam channels — the in-process analogue of the paper's
//! TCP/IP sockets ("the TCP/IP protocol behaves as if there are two
//! first-in-first-out channels for writing data in each direction between two
//! processes", section 4.2). Communication is asynchronous and
//! first-come-first-served within an exchange stage, which is the policy the
//! paper recommends in Appendix C.
//!
//! Halo buffers are recycled: every data channel is paired with a return
//! channel, the receiver sends each consumed buffer back, and the sender
//! reuses it for the next message on that edge. At most two buffers circulate
//! per directed edge, so the steady-state exchange performs no heap
//! allocation; [`StepTiming`] counts messages, doubles and buffer
//! allocations/reuses so tests can assert both properties exactly.
//!
//! The runner also implements the synchronisation machinery of section 5 /
//! Appendix B as a *migration drill*: a monitor picks a synchronisation step
//! just past the furthest process (every process publishes its integration
//! step, the maximum plus a safety margin becomes the barrier — the
//! shared-file max-step algorithm of Appendix B), all workers run exactly to
//! that step and pause, the migrating worker saves its state to a dump file
//! and restores from it (stop on the busy host / restart on a free host), and
//! the computation resumes. The drill is bitwise transparent: a run with a
//! drill produces exactly the fields of an undisturbed run, which the
//! integration tests assert.

use crate::checkpoint::{load_tile2, save_tile2};
use crate::gather::GlobalFields2;
use crate::problem::Problem2;
use crate::timing::StepTiming;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;
use subsonic_grid::Face2;
use subsonic_solvers::{Solver2, StepOp, TileState2};

/// No synchronisation requested.
const NO_SYNC: u64 = u64::MAX;

/// A planned mid-run migration exercise.
#[derive(Debug, Clone)]
pub struct MigrationDrill {
    /// Tile that "migrates" (its worker saves state to a dump file and
    /// restores from it while everyone is paused).
    pub tile: usize,
    /// Arm the drill once any worker has completed this many steps.
    pub arm_step: u64,
    /// Directory for the dump file.
    pub dump_dir: PathBuf,
}

/// What the drill actually did.
#[derive(Debug, Clone)]
pub struct DrillReport {
    /// The synchronisation step every process paused at.
    pub sync_step: u64,
    /// Size of the dump file in bytes.
    pub dump_bytes: u64,
    /// Path of the dump file.
    pub dump_path: PathBuf,
}

/// Result of a threaded run.
pub struct RunOutcome2 {
    /// Final tiles, in active-id order.
    pub tiles: Vec<TileState2>,
    /// Per-tile timing, `(tile_id, timing)`.
    pub timing: Vec<(usize, StepTiming)>,
    /// Drill report, if a drill was requested and fired.
    pub drill: Option<DrillReport>,
}

impl RunOutcome2 {
    /// Gathers the global fields from the final tiles.
    pub fn gather(&self, nx: usize, ny: usize, rho0: f64) -> GlobalFields2 {
        GlobalFields2::gather(nx, ny, rho0, self.tiles.iter())
    }
}

struct Barrier {
    state: Mutex<(usize, u64)>, // (paused count, resume epoch)
    cv: Condvar,
}

struct Control {
    published: Vec<AtomicU64>,
    sync_step: AtomicU64,
    barrier: Barrier,
}

impl Control {
    fn new(n: usize) -> Self {
        Self {
            published: (0..n).map(|_| AtomicU64::new(0)).collect(),
            sync_step: AtomicU64::new(NO_SYNC),
            barrier: Barrier { state: Mutex::new((0, 0)), cv: Condvar::new() },
        }
    }

    fn max_published(&self) -> u64 {
        self.published
            .iter()
            .map(|a| a.load(Ordering::SeqCst))
            .max()
            .unwrap_or(0)
    }

    /// Worker-side: pause at the barrier until the monitor resumes everyone.
    fn pause(&self) {
        let mut st = self.barrier.state.lock();
        let epoch = st.1;
        st.0 += 1;
        self.barrier.cv.notify_all();
        while st.1 == epoch {
            self.barrier.cv.wait(&mut st);
        }
    }

    /// Monitor-side: wait until `n` workers are paused.
    fn wait_all_paused(&self, n: usize) {
        let mut st = self.barrier.state.lock();
        while st.0 < n {
            self.barrier.cv.wait(&mut st);
        }
    }

    /// Monitor-side: release all paused workers (the CONT signal).
    fn resume_all(&self) {
        let mut st = self.barrier.state.lock();
        st.0 = 0;
        st.1 += 1;
        self.barrier.cv.notify_all();
        // clear the sync request so workers run freely again
        self.sync_step.store(NO_SYNC, Ordering::SeqCst);
    }
}

/// One thread per subregion, channels as sockets.
pub struct ThreadedRunner2 {
    solver: Arc<dyn Solver2>,
    problem: Problem2,
}

impl ThreadedRunner2 {
    /// Creates a runner for `problem` using `solver`.
    pub fn new(solver: Arc<dyn Solver2>, problem: Problem2) -> Self {
        Self { solver, problem }
    }

    /// Runs `steps` integration steps on all active tiles in parallel.
    pub fn run(&self, steps: u64) -> RunOutcome2 {
        self.run_with_drill(steps, None)
    }

    /// Runs `steps` steps, optionally performing a migration drill mid-run.
    pub fn run_with_drill(&self, steps: u64, drill: Option<MigrationDrill>) -> RunOutcome2 {
        let active = self.problem.active_tiles();
        let n = active.len();
        let index_of: HashMap<usize, usize> =
            active.iter().enumerate().map(|(k, &id)| (id, k)).collect();

        // Channels: key (receiver tile id, receiver face). Each data channel
        // is paired with a *return* channel flowing the other way: the
        // receiver hands consumed buffers back to the sender, which reuses
        // them for the next message on that edge. In steady state no halo
        // buffer is ever allocated (at most two circulate per edge).
        let mut senders: HashMap<(usize, Face2), Sender<Vec<f64>>> = HashMap::new();
        let mut receivers: HashMap<(usize, Face2), Receiver<Vec<f64>>> = HashMap::new();
        let mut ret_senders: HashMap<(usize, Face2), Sender<Vec<f64>>> = HashMap::new();
        let mut ret_receivers: HashMap<(usize, Face2), Receiver<Vec<f64>>> = HashMap::new();
        for &id in &active {
            for f in Face2::ALL {
                if let Some(nb) = self.problem.decomp.neighbor(id, f) {
                    if index_of.contains_key(&nb) {
                        let (s, r) = unbounded();
                        senders.insert((id, f), s);
                        receivers.insert((id, f), r);
                        let (rs, rr) = unbounded();
                        ret_senders.insert((id, f), rs);
                        ret_receivers.insert((id, f), rr);
                    }
                }
            }
        }

        let control = Arc::new(Control::new(n));
        let drill_fired: Mutex<Option<DrillReport>> = Mutex::new(None);

        // Per-worker endpoints: my receivers (face -> data rx + buffer-return
        // tx), my senders into each neighbour's ghost (face -> data tx of
        // (nb, f.opposite()) + the matching buffer-return rx).
        // (face, data in, buffer-returns out) / (face, data out, returns in)
        type RxEdge = (Face2, Receiver<Vec<f64>>, Sender<Vec<f64>>);
        type TxEdge = (Face2, Sender<Vec<f64>>, Receiver<Vec<f64>>);
        struct Endpoints {
            rx: Vec<RxEdge>,
            tx: Vec<TxEdge>,
        }
        let mut endpoints: Vec<Endpoints> = Vec::with_capacity(n);
        for &id in &active {
            let mut rx = Vec::new();
            let mut tx = Vec::new();
            for f in Face2::ALL {
                if let Some(r) = receivers.remove(&(id, f)) {
                    let rs = ret_senders.remove(&(id, f)).unwrap();
                    rx.push((f, r, rs));
                }
                if let Some(nb) = self.problem.decomp.neighbor(id, f) {
                    if let Some(s) = senders.get(&(nb, f.opposite())) {
                        let rr = ret_receivers.remove(&(nb, f.opposite())).unwrap();
                        tx.push((f, s.clone(), rr));
                    }
                }
            }
            endpoints.push(Endpoints { rx, tx });
        }
        drop(senders);

        let solver = &self.solver;
        let plan = solver.plan();
        let mut results: Vec<Option<(TileState2, StepTiming)>> = (0..n).map(|_| None).collect();

        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(n);
            for (k, &id) in active.iter().enumerate() {
                let mut tile = self.problem.make_tile(solver.as_ref(), id);
                let ep = endpoints.remove(0);
                let control = Arc::clone(&control);
                let drill = drill.clone();
                let drill_fired = &drill_fired;
                handles.push(scope.spawn(move || {
                    let mut timing = StepTiming::default();
                    for s in 0..steps {
                        control.published[k].store(s, Ordering::SeqCst);
                        // Appendix B picks the sync step with a margin so it
                        // lands in every process's future; that only holds if
                        // workers cannot outrun the monitor. Hold once, at the
                        // arm step, until the step is announced (it is cleared
                        // again at resume, so later steps must not re-gate).
                        if let Some(d) = drill.as_ref() {
                            if s == d.arm_step {
                                while control.sync_step.load(Ordering::SeqCst) == NO_SYNC {
                                    std::thread::yield_now();
                                }
                            }
                        }
                        // Synchronisation point of section 5: when a sync step
                        // is announced, run exactly to it and pause.
                        if control.sync_step.load(Ordering::SeqCst) == s {
                            if let Some(d) = drill.as_ref() {
                                if d.tile == id {
                                    // migrate: save state, "move host", restore
                                    let path =
                                        d.dump_dir.join(format!("tile{id}_step{s}.dump"));
                                    let bytes = save_tile2(&tile, &path)
                                        .expect("dump file write failed");
                                    tile = load_tile2(&path).expect("dump file read failed");
                                    *drill_fired.lock() = Some(DrillReport {
                                        sync_step: s,
                                        dump_bytes: bytes,
                                        dump_path: path,
                                    });
                                }
                            }
                            control.pause();
                        }
                        // one integration step
                        for op in plan {
                            match *op {
                                StepOp::Compute(p) => {
                                    let t0 = Instant::now();
                                    solver.compute(&mut tile, p);
                                    timing.t_calc += t0.elapsed();
                                }
                                StepOp::Exchange(x) => {
                                    let t0 = Instant::now();
                                    for stage in 0..2 {
                                        for (f, tx, ret) in
                                            ep.tx.iter().filter(|(f, ..)| f.stage() == stage)
                                        {
                                            let mut buf = match ret.try_recv() {
                                                Ok(mut b) => {
                                                    timing.buf_reuses += 1;
                                                    b.clear();
                                                    b
                                                }
                                                Err(_) => {
                                                    timing.buf_allocs += 1;
                                                    Vec::new()
                                                }
                                            };
                                            solver.pack(&tile, x, *f, &mut buf);
                                            timing.msgs_sent += 1;
                                            timing.doubles_sent += buf.len() as u64;
                                            tx.send(buf).expect("peer hung up");
                                        }
                                        for (f, rx, ret) in
                                            ep.rx.iter().filter(|(f, ..)| f.stage() == stage)
                                        {
                                            let buf = rx.recv().expect("peer hung up");
                                            solver.unpack(&mut tile, x, *f, &buf);
                                            // hand the buffer back for reuse; a
                                            // peer that already finished its run
                                            // has dropped the other end, in which
                                            // case the buffer is simply freed
                                            let _ = ret.send(buf);
                                        }
                                    }
                                    timing.t_com += t0.elapsed();
                                }
                            }
                        }
                        timing.steps += 1;
                    }
                    // final publish so the monitor sees completion
                    control.published[k].store(steps, Ordering::SeqCst);
                    (tile, timing)
                }));
            }

            // The monitoring program (section 4.1 / 5.1): arm the drill, pick
            // the synchronisation step, wait for global pause, "find a free
            // host", send CONT.
            if let Some(d) = drill.as_ref() {
                std::fs::create_dir_all(&d.dump_dir).expect("cannot create dump dir");
                loop {
                    let m = control.max_published();
                    if m >= d.arm_step {
                        // Appendix B: everyone posts its step; the largest
                        // plus a margin becomes the synchronisation step
                        // (+2 covers the step in flight at read time).
                        let sync = m + 2;
                        if sync >= steps {
                            // Too late in the run; announce the (unreachable)
                            // step anyway so gated workers are released.
                            control.sync_step.store(sync, Ordering::SeqCst);
                            break; // drill skipped
                        }
                        control.sync_step.store(sync, Ordering::SeqCst);
                        control.wait_all_paused(n);
                        // host selection delay would go here
                        control.resume_all();
                        break;
                    }
                    std::thread::yield_now();
                }
            }

            for (k, h) in handles.into_iter().enumerate() {
                results[k] = Some(h.join().expect("worker panicked"));
            }
        });

        let mut tiles = Vec::with_capacity(n);
        let mut timing = Vec::with_capacity(n);
        for (k, r) in results.into_iter().enumerate() {
            let (tile, t) = r.unwrap();
            tiles.push(tile);
            timing.push((active[k], t));
        }
        RunOutcome2 { tiles, timing, drill: drill_fired.into_inner() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::local::LocalRunner2;
    use subsonic_grid::Geometry2;
    use subsonic_solvers::{FiniteDifference2, FluidParams, LatticeBoltzmann2};

    fn problem(px: usize, py: usize) -> Problem2 {
        let mut params = FluidParams::lattice_units(0.05);
        params.body_force[0] = 1e-5;
        Problem2::new(Geometry2::channel(24, 16, 2), px, py, params)
            .with_init(|x, y| (1.0 + 1e-4 * ((x * 7 + y * 13) % 5) as f64, 0.0, 0.0))
    }

    #[test]
    fn threaded_matches_local_bitwise_fd() {
        let solver: Arc<dyn Solver2> = Arc::new(FiniteDifference2);
        let mut local = LocalRunner2::new(Arc::clone(&solver), problem(2, 2));
        local.run(10);
        let a = local.gather();
        let out = ThreadedRunner2::new(Arc::clone(&solver), problem(2, 2)).run(10);
        let b = out.gather(24, 16, 1.0);
        assert_eq!(a.first_difference(&b), None);
    }

    #[test]
    fn threaded_matches_local_bitwise_lbm() {
        let solver: Arc<dyn Solver2> = Arc::new(LatticeBoltzmann2);
        let mut local = LocalRunner2::new(Arc::clone(&solver), problem(3, 1));
        local.run(10);
        let a = local.gather();
        let out = ThreadedRunner2::new(Arc::clone(&solver), problem(3, 1)).run(10);
        let b = out.gather(24, 16, 1.0);
        assert_eq!(a.first_difference(&b), None);
    }

    #[test]
    fn timing_is_recorded() {
        let solver: Arc<dyn Solver2> = Arc::new(LatticeBoltzmann2);
        let out = ThreadedRunner2::new(solver, problem(2, 1)).run(5);
        assert_eq!(out.timing.len(), 2);
        for (_, t) in &out.timing {
            assert_eq!(t.steps, 5);
            assert!(t.t_calc.as_nanos() > 0);
        }
    }

    #[test]
    fn message_volume_matches_solver_message_doubles() {
        // The new StepTiming counters must account for every double on the
        // wire: a J x K run sends exactly sum(message_doubles) per step.
        let solver: Arc<dyn Solver2> = Arc::new(LatticeBoltzmann2);
        let steps = 7u64;
        let p = problem(3, 2);
        let active = p.active_tiles();
        let mut per_step = 0u64;
        let mut edges = 0u64;
        for &id in &active {
            let t = p.make_tile(solver.as_ref(), id);
            for f in Face2::ALL {
                if let Some(nb) = p.decomp.neighbor(id, f) {
                    if active.contains(&nb) {
                        edges += 1;
                        for op in solver.plan() {
                            if let StepOp::Exchange(x) = *op {
                                per_step += solver.message_doubles(&t, x, f) as u64;
                            }
                        }
                    }
                }
            }
        }
        assert!(per_step > 0 && edges > 0);

        let out = ThreadedRunner2::new(Arc::clone(&solver), problem(3, 2)).run(steps);
        let mut total = StepTiming::default();
        for (_, t) in &out.timing {
            total.merge(t);
        }
        let exchanges = solver
            .plan()
            .iter()
            .filter(|op| matches!(op, StepOp::Exchange(_)))
            .count() as u64;
        assert_eq!(total.doubles_sent, per_step * steps);
        assert_eq!(total.msgs_sent, edges * exchanges * steps);
    }

    #[test]
    fn halo_buffers_are_recycled() {
        // Zero steady-state allocation: at most two buffers ever circulate
        // per directed edge, no matter how many steps run.
        let solver: Arc<dyn Solver2> = Arc::new(FiniteDifference2);
        let p = problem(2, 2);
        let active = p.active_tiles();
        let mut edges = 0u64;
        for &id in &active {
            for f in Face2::ALL {
                if let Some(nb) = p.decomp.neighbor(id, f) {
                    if active.contains(&nb) {
                        edges += 1;
                    }
                }
            }
        }
        let out = ThreadedRunner2::new(Arc::clone(&solver), problem(2, 2)).run(30);
        let mut total = StepTiming::default();
        for (_, t) in &out.timing {
            total.merge(t);
        }
        // every message either reused a returned buffer or allocated one
        assert_eq!(total.buf_allocs + total.buf_reuses, total.msgs_sent);
        assert!(
            total.buf_allocs <= 2 * edges,
            "pool allocated {} buffers for {} edges — recycling broken",
            total.buf_allocs,
            edges
        );
        assert!(total.buf_reuses > total.buf_allocs);
    }

    #[test]
    fn migration_drill_is_transparent() {
        let solver: Arc<dyn Solver2> = Arc::new(LatticeBoltzmann2);
        let undisturbed = ThreadedRunner2::new(Arc::clone(&solver), problem(2, 2)).run(20);
        let a = undisturbed.gather(24, 16, 1.0);

        let dir = std::env::temp_dir().join("subsonic_drill_test");
        let drill = MigrationDrill { tile: 1, arm_step: 5, dump_dir: dir };
        let out = ThreadedRunner2::new(Arc::clone(&solver), problem(2, 2))
            .run_with_drill(20, Some(drill));
        let report = out.drill.clone().expect("drill did not fire");
        assert!(report.sync_step >= 5 && report.sync_step < 20);
        assert!(report.dump_bytes > 0);
        let b = out.gather(24, 16, 1.0);
        assert_eq!(
            a.first_difference(&b),
            None,
            "migration drill changed the results"
        );
        let _ = std::fs::remove_file(&report.dump_path);
    }
}
