//! Problem descriptors: geometry + decomposition + parameters + initial state.
//!
//! A `Problem` plays the role of the paper's *initialization* and
//! *decomposition* programs (section 4.1): it produces the initial state "as
//! if there was only one workstation" and slices it into per-subregion tiles,
//! each carrying everything a parallel subprocess needs.

use std::sync::Arc;
use subsonic_grid::{Decomp2, Decomp3, Geometry2, Geometry3};
use subsonic_solvers::{
    FluidParams, InitialState2, InitialState3, Solver2, Solver3, TileState2, TileState3,
};

/// Global initial condition for 2D problems: node `(x, y)` → `(ρ, vx, vy)`.
pub type GlobalInit2 = Arc<dyn Fn(usize, usize) -> (f64, f64, f64) + Send + Sync>;

/// Global initial condition for 3D problems.
pub type GlobalInit3 = Arc<dyn Fn(usize, usize, usize) -> (f64, f64, f64, f64) + Send + Sync>;

/// A decomposed 2D flow problem.
#[derive(Clone)]
pub struct Problem2 {
    /// Global geometry (also defines periodicity).
    pub geom: Arc<Geometry2>,
    /// The rectangular decomposition. Periodicity must match the geometry.
    pub decomp: Decomp2,
    /// Fluid and numerical parameters.
    pub params: FluidParams,
    /// Global initial condition.
    pub init: GlobalInit2,
}

impl Problem2 {
    /// Creates a problem over `geom` decomposed `px × py`, at rest with the
    /// reference density unless a custom init is supplied later.
    pub fn new(geom: Geometry2, px: usize, py: usize, params: FluidParams) -> Self {
        let decomp = Decomp2::with_periodicity(
            geom.nx(),
            geom.ny(),
            px,
            py,
            geom.periodic_x(),
            geom.periodic_y(),
        );
        let rho0 = params.rho0;
        Self {
            geom: Arc::new(geom),
            decomp,
            params,
            init: Arc::new(move |_, _| (rho0, 0.0, 0.0)),
        }
    }

    /// Replaces the initial condition.
    pub fn with_init(
        mut self,
        f: impl Fn(usize, usize) -> (f64, f64, f64) + Send + Sync + 'static,
    ) -> Self {
        self.init = Arc::new(f);
        self
    }

    /// Tiles that contain at least one non-wall node (Figure-2 optimisation:
    /// all-solid subregions are not assigned to any worker).
    pub fn active_tiles(&self) -> Vec<usize> {
        self.geom.active_tiles(&self.decomp)
    }

    /// Builds the tile for subregion `id` with the solver's halo width,
    /// evaluating the global init through periodic wrap where applicable.
    ///
    /// # Panics
    /// Panics if the tile is thinner than the solver's halo in any direction
    /// (the exchange packs interior strips of halo width, so a subregion must
    /// be at least that wide — decompose more coarsely otherwise).
    pub fn make_tile(&self, solver: &dyn Solver2, id: usize) -> TileState2 {
        let b = self.decomp.tile_box(id);
        assert!(
            b.x.len >= solver.halo() && b.y.len >= solver.halo(),
            "tile {id} ({}x{}) thinner than the solver halo ({}); use fewer subregions",
            b.x.len,
            b.y.len,
            solver.halo()
        );
        let mask = self.geom.tile_mask(&self.decomp, id, solver.halo());
        let geom = Arc::clone(&self.geom);
        let init_fn = Arc::clone(&self.init);
        let (nx, ny) = (geom.nx() as isize, geom.ny() as isize);
        let (px, py) = (geom.periodic_x(), geom.periodic_y());
        let (ox, oy) = (b.x.start as isize, b.y.start as isize);
        let local = InitialState2::from_fn(move |i, j| {
            let gx = if px {
                (ox + i).rem_euclid(nx)
            } else {
                (ox + i).clamp(0, nx - 1)
            };
            let gy = if py {
                (oy + j).rem_euclid(ny)
            } else {
                (oy + j).clamp(0, ny - 1)
            };
            init_fn(gx as usize, gy as usize)
        });
        solver.make_tile(mask, self.params, (b.x.start, b.y.start), &local)
    }

    /// Total fluid nodes in the problem.
    pub fn fluid_nodes(&self) -> usize {
        self.geom.fluid_nodes()
    }
}

/// A decomposed 3D flow problem.
#[derive(Clone)]
pub struct Problem3 {
    /// Global geometry (also defines periodicity).
    pub geom: Arc<Geometry3>,
    /// The rectangular decomposition.
    pub decomp: Decomp3,
    /// Fluid and numerical parameters.
    pub params: FluidParams,
    /// Global initial condition.
    pub init: GlobalInit3,
}

impl Problem3 {
    /// Creates a problem over `geom` decomposed `px × py × pz`, at rest.
    pub fn new(geom: Geometry3, px: usize, py: usize, pz: usize, params: FluidParams) -> Self {
        let (nx, ny, nz) = geom.dims();
        let decomp = Decomp3::with_periodicity(nx, ny, nz, px, py, pz, geom.periodic());
        let rho0 = params.rho0;
        Self {
            geom: Arc::new(geom),
            decomp,
            params,
            init: Arc::new(move |_, _, _| (rho0, 0.0, 0.0, 0.0)),
        }
    }

    /// Replaces the initial condition.
    pub fn with_init(
        mut self,
        f: impl Fn(usize, usize, usize) -> (f64, f64, f64, f64) + Send + Sync + 'static,
    ) -> Self {
        self.init = Arc::new(f);
        self
    }

    /// Tiles containing at least one non-wall node.
    pub fn active_tiles(&self) -> Vec<usize> {
        self.geom.active_tiles(&self.decomp)
    }

    /// Builds the tile for subregion `id`.
    ///
    /// # Panics
    /// Panics if the tile is thinner than the solver's halo in any direction.
    pub fn make_tile(&self, solver: &dyn Solver3, id: usize) -> TileState3 {
        let b = self.decomp.tile_box(id);
        assert!(
            b.x.len >= solver.halo() && b.y.len >= solver.halo() && b.z.len >= solver.halo(),
            "tile {id} ({}x{}x{}) thinner than the solver halo ({}); use fewer subregions",
            b.x.len,
            b.y.len,
            b.z.len,
            solver.halo()
        );
        let mask = self.geom.tile_mask(&self.decomp, id, solver.halo());
        let geom = Arc::clone(&self.geom);
        let init_fn = Arc::clone(&self.init);
        let (nx, ny, nz) = geom.dims();
        let (nx, ny, nz) = (nx as isize, ny as isize, nz as isize);
        let per = geom.periodic();
        let (ox, oy, oz) = (b.x.start as isize, b.y.start as isize, b.z.start as isize);
        let local = InitialState3::from_fn(move |i, j, k| {
            let wrap = |v: isize, n: isize, p: bool| {
                if p {
                    v.rem_euclid(n)
                } else {
                    v.clamp(0, n - 1)
                }
            };
            let gx = wrap(ox + i, nx, per[0]);
            let gy = wrap(oy + j, ny, per[1]);
            let gz = wrap(oz + k, nz, per[2]);
            init_fn(gx as usize, gy as usize, gz as usize)
        });
        solver.make_tile(mask, self.params, (b.x.start, b.y.start, b.z.start), &local)
    }

    /// Total fluid nodes in the problem.
    pub fn fluid_nodes(&self) -> usize {
        self.geom.fluid_nodes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subsonic_solvers::{FiniteDifference2, LatticeBoltzmann3};

    #[test]
    fn tiles_inherit_global_init() {
        let geom = Geometry2::channel(24, 12, 2);
        let p = Problem2::new(geom, 3, 1, FluidParams::lattice_units(0.05))
            .with_init(|x, y| (1.0 + 0.001 * x as f64, 0.0, 0.001 * y as f64));
        let solver = FiniteDifference2;
        let t1 = p.make_tile(&solver, 1);
        // tile 1 covers x in [8, 16); its local (0, 5) is global (8, 5)
        assert_eq!(t1.offset, (8, 0));
        assert!((t1.mac.rho[(0, 5)] - 1.008).abs() < 1e-12);
        assert!((t1.mac.vy[(0, 5)] - 0.005).abs() < 1e-12);
        // its west ghost (-1, 5) is global (7, 5)
        assert!((t1.mac.rho[(-1, 5)] - 1.007).abs() < 1e-12);
    }

    #[test]
    fn periodic_wrap_in_init() {
        let geom = Geometry2::channel(16, 10, 2);
        let p = Problem2::new(geom, 2, 1, FluidParams::lattice_units(0.05))
            .with_init(|x, _| (1.0 + x as f64, 0.0, 0.0));
        let solver = FiniteDifference2;
        let t0 = p.make_tile(&solver, 0);
        // west ghost of tile 0 wraps to x = 15
        assert!((t0.mac.rho[(-1, 5)] - 16.0).abs() < 1e-12);
    }

    #[test]
    fn active_tiles_all_fluid() {
        let geom = Geometry2::channel(24, 12, 2);
        let p = Problem2::new(geom, 3, 2, FluidParams::lattice_units(0.05));
        assert_eq!(p.active_tiles().len(), 6);
    }

    #[test]
    #[should_panic(expected = "thinner than the solver halo")]
    fn over_decomposition_is_rejected() {
        // 16 columns over 8 tiles: 2-wide tiles cannot carry a 4-wide halo
        let geom = Geometry2::channel(16, 12, 2);
        let p = Problem2::new(geom, 8, 1, FluidParams::lattice_units(0.05));
        let _ = p.make_tile(&FiniteDifference2, 0);
    }

    #[test]
    fn problem3_tile_offsets() {
        let geom = Geometry3::duct(12, 9, 9, 2);
        let p = Problem3::new(geom, 2, 1, 1, FluidParams::lattice_units(0.05));
        let solver = LatticeBoltzmann3;
        let t1 = p.make_tile(&solver, 1);
        assert_eq!(t1.offset, (6, 0, 0));
        assert_eq!(t1.nx(), 6);
    }
}
