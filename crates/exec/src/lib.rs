//! Runners that execute decomposed flow problems for real.
//!
//! Three execution modes, all running the *same* solver plans from
//! `subsonic-solvers`:
//!
//! * [`LocalRunner2`]/[`LocalRunner3`] — all tiles stepped sequentially in one
//!   thread, halos moved by `memcpy`. With a `1×1` decomposition this is the
//!   serial program; with more tiles it is the reference for the bitwise
//!   serial/parallel equivalence tests.
//! * [`ThreadedRunner2`] — one OS thread per subregion, halos moved over
//!   crossbeam channels (the in-process analogue of the paper's TCP/IP
//!   sockets), with per-phase `T_calc`/`T_com` instrumentation, the
//!   Appendix-B synchronisation protocol, and a checkpoint/restore "migration
//!   drill".
//! * checkpointing ([`checkpoint`]) — binary dump files carrying everything a
//!   process needs to resume, the in-process equivalent of the paper's dump
//!   files ("these files contain all the information that is needed by a
//!   workstation to participate in a distributed computation").
//!
//! The cluster-of-workstations *runtime* (hosts, Ethernet, monitoring,
//! automatic migration) is modelled in `subsonic-cluster`; this crate is the
//! real data-plane.
//!
//! Failure handling is typed: worker deaths surface as [`RunError`] instead
//! of panics, and the supervised runners
//! ([`ThreadedRunner2::run_supervised`](threaded::ThreadedRunner2::run_supervised))
//! recover from them via in-memory coordinated checkpoints.

#![warn(clippy::unwrap_used)]

pub mod checkpoint;
pub mod checkpoint3;
pub mod error;
pub mod gather;
pub mod local;
pub mod problem;
pub mod rayon_runner;
pub mod stepper;
pub mod threaded;
pub mod threaded3;
pub mod timing;

pub use checkpoint::DumpError;
pub use error::RunError;
pub use gather::{GlobalFields2, GlobalFields3};
pub use local::{LocalRunner2, LocalRunner3};
pub use problem::{Problem2, Problem3};
pub use rayon_runner::RayonRunner2;
pub use stepper::{step_tile2, Halo2};
pub use threaded::{KillSpec, MigrationDrill, RunOutcome2, SupervisorConfig, ThreadedRunner2};
pub use threaded3::{RunOutcome3, ThreadedRunner3};
pub use timing::StepTiming;
