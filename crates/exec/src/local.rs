//! Single-threaded runners: all tiles stepped sequentially.
//!
//! With a `1×1` decomposition this is the serial program of the paper ("we
//! have developed a fluid dynamics code which can produce either a parallel
//! program or a serial program", section 4.2). With more tiles it executes
//! the identical decomposed computation without threads — the reference
//! implementation for equivalence tests, and the `T_1` measurement.

use crate::gather::{GlobalFields2, GlobalFields3};
use crate::problem::{Problem2, Problem3};
use std::sync::Arc;
use subsonic_grid::{Face2, Face3};
use subsonic_solvers::{Solver2, Solver3, StepOp, TileState2, TileState3};

/// Sequential multi-tile runner for 2D problems.
pub struct LocalRunner2 {
    solver: Arc<dyn Solver2>,
    problem: Problem2,
    active: Vec<usize>,
    tiles: Vec<Option<TileState2>>,
}

impl LocalRunner2 {
    /// Builds all active tiles of `problem`.
    pub fn new(solver: Arc<dyn Solver2>, problem: Problem2) -> Self {
        let active = problem.active_tiles();
        let mut tiles: Vec<Option<TileState2>> =
            (0..problem.decomp.tiles()).map(|_| None).collect();
        for &id in &active {
            tiles[id] = Some(problem.make_tile(solver.as_ref(), id));
        }
        Self {
            solver,
            problem,
            active,
            tiles,
        }
    }

    /// Tile ids being integrated.
    pub fn active(&self) -> &[usize] {
        &self.active
    }

    /// Immutable access to a tile.
    pub fn tile(&self, id: usize) -> Option<&TileState2> {
        self.tiles[id].as_ref()
    }

    /// Mutable access to a tile (e.g. to inject a perturbation in tests).
    pub fn tile_mut(&mut self, id: usize) -> Option<&mut TileState2> {
        self.tiles[id].as_mut()
    }

    /// Runs one integration step on every active tile.
    pub fn step(&mut self) {
        let plan = self.solver.plan();
        for op in plan {
            match *op {
                StepOp::Compute(k) => {
                    for &id in &self.active {
                        self.solver
                            .compute(self.tiles[id].as_mut().expect("active tile missing"), k);
                    }
                }
                StepOp::Exchange(x) => self.exchange(x),
            }
        }
    }

    fn exchange(&mut self, xch: usize) {
        let d = &self.problem.decomp;
        for stage in 0..2 {
            // pack (immutably), then deliver (mutably)
            let mut msgs: Vec<(usize, Face2, Vec<f64>)> = Vec::new();
            for &id in &self.active {
                for f in Face2::ALL.iter().copied().filter(|f| f.stage() == stage) {
                    if let Some(nb) = d.neighbor(id, f) {
                        if let Some(nb_tile) = self.tiles[nb].as_ref() {
                            let mut buf = Vec::new();
                            self.solver.pack(nb_tile, xch, f.opposite(), &mut buf);
                            msgs.push((id, f, buf));
                        }
                    }
                }
            }
            for (id, f, buf) in msgs {
                self.solver.unpack(
                    self.tiles[id].as_mut().expect("active tile missing"),
                    xch,
                    f,
                    &buf,
                );
            }
        }
    }

    /// Runs `n` steps.
    pub fn run(&mut self, n: usize) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Gathers the global fields.
    pub fn gather(&self) -> GlobalFields2 {
        GlobalFields2::gather(
            self.problem.geom.nx(),
            self.problem.geom.ny(),
            self.problem.params.rho0,
            self.active
                .iter()
                .map(|&id| self.tiles[id].as_ref().expect("active tile missing")),
        )
    }

    /// Consumes the runner, returning the active tiles.
    pub fn into_tiles(self) -> Vec<TileState2> {
        self.tiles.into_iter().flatten().collect()
    }
}

/// Sequential multi-tile runner for 3D problems.
pub struct LocalRunner3 {
    solver: Arc<dyn Solver3>,
    problem: Problem3,
    active: Vec<usize>,
    tiles: Vec<Option<TileState3>>,
}

impl LocalRunner3 {
    /// Builds all active tiles of `problem`.
    pub fn new(solver: Arc<dyn Solver3>, problem: Problem3) -> Self {
        let active = problem.active_tiles();
        let mut tiles: Vec<Option<TileState3>> =
            (0..problem.decomp.tiles()).map(|_| None).collect();
        for &id in &active {
            tiles[id] = Some(problem.make_tile(solver.as_ref(), id));
        }
        Self {
            solver,
            problem,
            active,
            tiles,
        }
    }

    /// Tile ids being integrated.
    pub fn active(&self) -> &[usize] {
        &self.active
    }

    /// Immutable access to a tile.
    pub fn tile(&self, id: usize) -> Option<&TileState3> {
        self.tiles[id].as_ref()
    }

    /// Runs one integration step on every active tile.
    pub fn step(&mut self) {
        let plan = self.solver.plan();
        for op in plan {
            match *op {
                StepOp::Compute(k) => {
                    for &id in &self.active {
                        self.solver
                            .compute(self.tiles[id].as_mut().expect("active tile missing"), k);
                    }
                }
                StepOp::Exchange(x) => self.exchange(x),
            }
        }
    }

    fn exchange(&mut self, xch: usize) {
        let d = &self.problem.decomp;
        for stage in 0..3 {
            let mut msgs: Vec<(usize, Face3, Vec<f64>)> = Vec::new();
            for &id in &self.active {
                for f in Face3::ALL.iter().copied().filter(|f| f.stage() == stage) {
                    if let Some(nb) = d.neighbor(id, f) {
                        if let Some(nb_tile) = self.tiles[nb].as_ref() {
                            let mut buf = Vec::new();
                            self.solver.pack(nb_tile, xch, f.opposite(), &mut buf);
                            msgs.push((id, f, buf));
                        }
                    }
                }
            }
            for (id, f, buf) in msgs {
                self.solver.unpack(
                    self.tiles[id].as_mut().expect("active tile missing"),
                    xch,
                    f,
                    &buf,
                );
            }
        }
    }

    /// Runs `n` steps.
    pub fn run(&mut self, n: usize) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Gathers the global fields.
    pub fn gather(&self) -> GlobalFields3 {
        GlobalFields3::gather(
            self.problem.geom.dims(),
            self.problem.params.rho0,
            self.active
                .iter()
                .map(|&id| self.tiles[id].as_ref().expect("active tile missing")),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subsonic_grid::Geometry2;
    use subsonic_solvers::{FiniteDifference2, FluidParams, LatticeBoltzmann2};

    fn poiseuille_problem(nx: usize, ny: usize, px: usize, py: usize) -> Problem2 {
        let mut params = FluidParams::lattice_units(0.05);
        params.body_force[0] = 1e-5;
        Problem2::new(Geometry2::channel(nx, ny, 2), px, py, params)
    }

    #[test]
    fn decomposed_fd_matches_serial_bitwise() {
        let solver: Arc<dyn Solver2> = Arc::new(FiniteDifference2);
        let mut serial = LocalRunner2::new(Arc::clone(&solver), poiseuille_problem(24, 16, 1, 1));
        let mut tiled = LocalRunner2::new(Arc::clone(&solver), poiseuille_problem(24, 16, 3, 2));
        serial.run(15);
        tiled.run(15);
        let a = serial.gather();
        let b = tiled.gather();
        assert_eq!(
            a.first_difference(&b),
            None,
            "FD decomposed run diverged from serial"
        );
    }

    #[test]
    fn decomposed_lbm_matches_serial_bitwise() {
        let solver: Arc<dyn Solver2> = Arc::new(LatticeBoltzmann2);
        let mut serial = LocalRunner2::new(Arc::clone(&solver), poiseuille_problem(24, 16, 1, 1));
        let mut tiled = LocalRunner2::new(Arc::clone(&solver), poiseuille_problem(24, 16, 2, 2));
        serial.run(15);
        tiled.run(15);
        let a = serial.gather();
        let b = tiled.gather();
        assert_eq!(
            a.first_difference(&b),
            None,
            "LBM decomposed run diverged from serial"
        );
    }

    #[test]
    fn inactive_tiles_are_skipped() {
        use subsonic_grid::Cell;
        // channel whose right half is entirely wall: the right tiles go idle
        let mut geom = Geometry2::channel(24, 12, 2);
        geom.fill_rect(12, 24, 0, 12, Cell::Wall);
        let params = FluidParams::lattice_units(0.05);
        let problem = Problem2::new(geom, 2, 1, params);
        let runner = LocalRunner2::new(Arc::new(FiniteDifference2), problem);
        assert_eq!(runner.active(), &[0]);
    }
}
