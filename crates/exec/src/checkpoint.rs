//! Dump files: binary checkpoints of tile state.
//!
//! The paper's dump files "contain all the information that is needed by a
//! workstation to participate in a distributed computation" (section 4.1) and
//! are reused for periodic fault-tolerance saves ("a new simulation is
//! started from the last state which is saved automatically every 10–20
//! minutes") and for migration. The format here is a simple little-endian
//! binary codec: header, parameters, geometry mask, macroscopic fields, and —
//! for the lattice Boltzmann method — the populations.
//!
//! Because a dump may be read back after a host crash, the file must be
//! self-validating: version 2 appends a 64-bit FNV-1a checksum over the whole
//! payload, so a truncated or bit-rotted dump is rejected with a clean
//! [`io::Error`] instead of resurrecting silently-corrupt fields.

use std::io::{self, Read, Write};
use std::path::Path;
use subsonic_grid::{Cell, PaddedGrid2};
use subsonic_solvers::{FluidParams, Macro2, TileState2};

const MAGIC: u64 = 0x5355_4253_4f4e_4943; // "SUBSONIC"
const VERSION: u32 = 2; // v2 = v1 + FNV-1a checksum trailer

/// 64-bit FNV-1a over `bytes`.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Appends the checksum trailer over everything encoded so far.
pub(crate) fn seal(mut buf: Vec<u8>) -> Vec<u8> {
    let sum = fnv1a(&buf);
    buf.extend_from_slice(&sum.to_le_bytes());
    buf
}

/// Validates and strips the checksum trailer, returning the payload.
pub(crate) fn verify(bytes: &[u8]) -> io::Result<&[u8]> {
    if bytes.len() < 8 {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "dump shorter than its checksum",
        ));
    }
    let (payload, trailer) = bytes.split_at(bytes.len() - 8);
    let mut sum = [0u8; 8];
    sum.copy_from_slice(trailer);
    if fnv1a(payload) != u64::from_le_bytes(sum) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "dump checksum mismatch (corrupt or truncated)",
        ));
    }
    Ok(payload)
}

struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn grid(&mut self, g: &PaddedGrid2<f64>) {
        let h = g.halo() as isize;
        for j in -h..(g.ny() as isize + h) {
            for i in -h..(g.nx() as isize + h) {
                self.f64(g[(i, j)]);
            }
        }
    }
}

struct Dec<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Dec<'a> {
    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        if self.at + n > self.buf.len() {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "short dump file",
            ));
        }
        let s = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }
    fn u32(&mut self) -> io::Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
    fn u64(&mut self) -> io::Result<u64> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }
    fn f64(&mut self) -> io::Result<f64> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(f64::from_le_bytes(a))
    }
    fn grid(&mut self, nx: usize, ny: usize, halo: usize) -> io::Result<PaddedGrid2<f64>> {
        let mut g = PaddedGrid2::new(nx, ny, halo, 0.0f64);
        let h = halo as isize;
        for j in -h..(ny as isize + h) {
            for i in -h..(nx as isize + h) {
                g[(i, j)] = self.f64()?;
            }
        }
        Ok(g)
    }
}

fn cell_to_u8(c: Cell) -> u8 {
    match c {
        Cell::Fluid => 0,
        Cell::Wall => 1,
        Cell::Inlet => 2,
        Cell::Outlet => 3,
    }
}

fn cell_from_u8(v: u8) -> io::Result<Cell> {
    Ok(match v {
        0 => Cell::Fluid,
        1 => Cell::Wall,
        2 => Cell::Inlet,
        3 => Cell::Outlet,
        _ => return Err(io::Error::new(io::ErrorKind::InvalidData, "bad cell tag")),
    })
}

fn params_to(enc: &mut Enc, p: &FluidParams) {
    enc.f64(p.cs);
    enc.f64(p.nu);
    enc.f64(p.dx);
    enc.f64(p.dt);
    enc.f64(p.rho0);
    for v in p.body_force {
        enc.f64(v);
    }
    for v in p.inlet_velocity {
        enc.f64(v);
    }
    enc.f64(p.filter_eps);
}

fn params_from(dec: &mut Dec) -> io::Result<FluidParams> {
    Ok(FluidParams {
        cs: dec.f64()?,
        nu: dec.f64()?,
        dx: dec.f64()?,
        dt: dec.f64()?,
        rho0: dec.f64()?,
        body_force: [dec.f64()?, dec.f64()?, dec.f64()?],
        inlet_velocity: [dec.f64()?, dec.f64()?, dec.f64()?],
        filter_eps: dec.f64()?,
    })
}

/// Serialises a 2D tile into a dump-file byte buffer.
pub fn dump_tile2(t: &TileState2) -> Vec<u8> {
    let mut e = Enc { buf: Vec::new() };
    e.u64(MAGIC);
    e.u32(VERSION);
    e.u32(2); // dimensionality
    e.u64(t.step);
    e.u64(t.nx() as u64);
    e.u64(t.ny() as u64);
    e.u64(t.halo() as u64);
    e.u64(t.offset.0 as u64);
    e.u64(t.offset.1 as u64);
    params_to(&mut e, &t.params);
    // geometry mask over the full padded region
    let h = t.halo() as isize;
    for j in -h..(t.ny() as isize + h) {
        for i in -h..(t.nx() as isize + h) {
            e.buf.push(cell_to_u8(t.mask[(i, j)]));
        }
    }
    e.grid(&t.mac.rho);
    e.grid(&t.mac.vx);
    e.grid(&t.mac.vy);
    e.u32(t.f.len() as u32);
    for fq in &t.f {
        e.grid(fq);
    }
    seal(e.buf)
}

/// Restores a 2D tile from dump-file bytes.
pub fn restore_tile2(bytes: &[u8]) -> io::Result<TileState2> {
    let payload = verify(bytes)?;
    let mut d = Dec {
        buf: payload,
        at: 0,
    };
    if d.u64()? != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not a subsonic dump file",
        ));
    }
    if d.u32()? != VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "unsupported dump version",
        ));
    }
    if d.u32()? != 2 {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "not a 2D dump"));
    }
    let step = d.u64()?;
    let nx = d.u64()? as usize;
    let ny = d.u64()? as usize;
    let halo = d.u64()? as usize;
    let offset = (d.u64()? as usize, d.u64()? as usize);
    let params = params_from(&mut d)?;
    let mut mask = PaddedGrid2::new(nx, ny, halo, Cell::Fluid);
    let h = halo as isize;
    for j in -h..(ny as isize + h) {
        for i in -h..(nx as isize + h) {
            mask[(i, j)] = cell_from_u8(d.take(1)?[0])?;
        }
    }
    let rho = d.grid(nx, ny, halo)?;
    let vx = d.grid(nx, ny, halo)?;
    let vy = d.grid(nx, ny, halo)?;
    let nf = d.u32()? as usize;
    let mut f = Vec::with_capacity(nf);
    for _ in 0..nf {
        f.push(d.grid(nx, ny, halo)?);
    }
    let mac = Macro2 { rho, vx, vy };
    let mac_new = mac.clone();
    let scratch = vec![PaddedGrid2::new(nx, ny, halo, 0.0f64)];
    Ok(TileState2 {
        mac,
        mac_new,
        f,
        mask,
        scratch,
        params,
        offset,
        step,
        // derived from the mask; rebuilt lazily by the solver
        shift_links: None,
    })
}

/// Writes a tile dump to a file.
pub fn save_tile2(t: &TileState2, path: &Path) -> io::Result<u64> {
    let bytes = dump_tile2(t);
    let mut file = std::fs::File::create(path)?;
    file.write_all(&bytes)?;
    Ok(bytes.len() as u64)
}

/// Reads a tile dump from a file.
pub fn load_tile2(path: &Path) -> io::Result<TileState2> {
    let mut bytes = Vec::new();
    std::fs::File::open(path)?.read_to_end(&mut bytes)?;
    restore_tile2(&bytes)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use subsonic_grid::{Decomp2, Geometry2};
    use subsonic_solvers::{FiniteDifference2, InitialState2, LatticeBoltzmann2, Solver2};

    fn sample_tile(lbm: bool) -> TileState2 {
        let geom = Geometry2::channel(16, 12, 2);
        let d = Decomp2::with_periodicity(16, 12, 1, 1, true, false);
        let mut params = FluidParams::lattice_units(0.05);
        params.body_force[0] = 2e-5;
        let init = InitialState2::from_fn(|i, j| (1.0 + 0.001 * (i + j) as f64, 0.0, 0.0));
        if lbm {
            let s = LatticeBoltzmann2;
            s.make_tile(geom.tile_mask(&d, 0, s.halo()), params, (0, 0), &init)
        } else {
            let s = FiniteDifference2;
            s.make_tile(geom.tile_mask(&d, 0, s.halo()), params, (0, 0), &init)
        }
    }

    fn assert_tiles_equal(a: &TileState2, b: &TileState2) {
        assert_eq!(a.step, b.step);
        assert_eq!(a.offset, b.offset);
        assert_eq!((a.nx(), a.ny(), a.halo()), (b.nx(), b.ny(), b.halo()));
        let h = a.halo() as isize;
        for j in -h..(a.ny() as isize + h) {
            for i in -h..(a.nx() as isize + h) {
                assert_eq!(a.mask[(i, j)], b.mask[(i, j)]);
                assert_eq!(a.mac.rho[(i, j)].to_bits(), b.mac.rho[(i, j)].to_bits());
                assert_eq!(a.mac.vx[(i, j)].to_bits(), b.mac.vx[(i, j)].to_bits());
                assert_eq!(a.mac.vy[(i, j)].to_bits(), b.mac.vy[(i, j)].to_bits());
            }
        }
        assert_eq!(a.f.len(), b.f.len());
        for (fa, fb) in a.f.iter().zip(&b.f) {
            for j in -h..(a.ny() as isize + h) {
                for i in -h..(a.nx() as isize + h) {
                    assert_eq!(fa[(i, j)].to_bits(), fb[(i, j)].to_bits());
                }
            }
        }
    }

    #[test]
    fn fd_tile_roundtrips() {
        let t = sample_tile(false);
        let restored = restore_tile2(&dump_tile2(&t)).unwrap();
        assert_tiles_equal(&t, &restored);
    }

    #[test]
    fn lbm_tile_roundtrips_with_populations() {
        let t = sample_tile(true);
        let bytes = dump_tile2(&t);
        assert!(
            bytes.len() > 9 * 8 * 16 * 12,
            "populations missing from dump"
        );
        let restored = restore_tile2(&bytes).unwrap();
        assert_tiles_equal(&t, &restored);
    }

    #[test]
    fn corrupt_magic_is_rejected() {
        let t = sample_tile(false);
        let mut bytes = dump_tile2(&t);
        bytes[0] ^= 0xff;
        assert!(restore_tile2(&bytes).is_err());
    }

    #[test]
    fn truncated_dump_is_rejected() {
        let t = sample_tile(false);
        let bytes = dump_tile2(&t);
        assert!(restore_tile2(&bytes[..bytes.len() / 2]).is_err());
        // even losing a single trailing byte must fail the checksum
        assert!(restore_tile2(&bytes[..bytes.len() - 1]).is_err());
        assert!(
            restore_tile2(&bytes[..4]).is_err(),
            "shorter than the trailer"
        );
    }

    #[test]
    fn bit_rot_in_the_payload_is_detected() {
        // Version 1 validated only the header: a flipped bit deep inside a
        // field grid restored "successfully" as corrupt physics. The v2
        // checksum must catch it anywhere in the file.
        let t = sample_tile(true);
        let clean = dump_tile2(&t);
        for at in [100, clean.len() / 2, clean.len() - 9] {
            let mut bytes = clean.clone();
            bytes[at] ^= 0x04;
            let err = restore_tile2(&bytes).expect_err("corruption missed");
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "flip at {at}");
        }
    }

    #[test]
    fn version_1_dumps_are_rejected() {
        // Fake an old dump: rewrite the version field and re-seal so only
        // the version check can fail.
        let t = sample_tile(false);
        let bytes = dump_tile2(&t);
        let mut payload = bytes[..bytes.len() - 8].to_vec();
        payload[8..12].copy_from_slice(&1u32.to_le_bytes());
        let err = restore_tile2(&seal(payload)).expect_err("version check missed");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // standard FNV-1a test vectors
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn file_roundtrip() {
        let t = sample_tile(true);
        let dir = std::env::temp_dir().join("subsonic_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tile0.dump");
        let n = save_tile2(&t, &path).unwrap();
        assert!(n > 0);
        let restored = load_tile2(&path).unwrap();
        assert_tiles_equal(&t, &restored);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn restored_tile_continues_identically() {
        // step a tile 5 times, dump, step 5 more; vs restore-then-step-5.
        let solver = LatticeBoltzmann2;
        let mut t = sample_tile(true);
        let step = |s: &LatticeBoltzmann2, t: &mut TileState2| {
            use subsonic_grid::Face2;
            use subsonic_solvers::StepOp;
            for op in s.plan() {
                match *op {
                    StepOp::Compute(k) => s.compute(t, k),
                    StepOp::Exchange(x) => {
                        for face in [Face2::West, Face2::East] {
                            let mut buf = Vec::new();
                            s.pack(t, x, face.opposite(), &mut buf);
                            s.unpack(t, x, face, &buf);
                        }
                    }
                }
            }
        };
        for _ in 0..5 {
            step(&solver, &mut t);
        }
        let dump = dump_tile2(&t);
        let mut branch = restore_tile2(&dump).unwrap();
        for _ in 0..5 {
            step(&solver, &mut t);
            step(&solver, &mut branch);
        }
        assert_tiles_equal(&t, &branch);
    }
}
