//! Dump files: binary checkpoints of tile state.
//!
//! The paper's dump files "contain all the information that is needed by a
//! workstation to participate in a distributed computation" (section 4.1) and
//! are reused for periodic fault-tolerance saves ("a new simulation is
//! started from the last state which is saved automatically every 10–20
//! minutes") and for migration. The format here is a simple little-endian
//! binary codec: header, parameters, geometry mask, macroscopic fields, and —
//! for the lattice Boltzmann method — the populations.
//!
//! Because a dump may be read back after a host crash, the file must be
//! self-validating: version 2 appends a 64-bit FNV-1a checksum over the whole
//! payload, so a truncated or bit-rotted dump is rejected with a typed
//! [`DumpError`] instead of resurrecting silently-corrupt fields. Saves are
//! torn-write-safe: bytes land in a temp file that is fsynced and atomically
//! renamed over the target, so a worker killed mid-checkpoint can never
//! destroy the last good checkpoint.

use std::fmt;
use std::io::{self, Read, Write};
use std::path::Path;
use subsonic_grid::{Cell, PaddedGrid2};
use subsonic_solvers::{FluidParams, Macro2, TileState2};

const MAGIC: u64 = 0x5355_4253_4f4e_4943; // "SUBSONIC"
const VERSION: u32 = 2; // v2 = v1 + FNV-1a checksum trailer

/// Why a dump could not be written or restored.
///
/// Every corruption mode a crash can produce has its own variant so callers
/// (the supervisor deciding whether an on-disk checkpoint is usable) can
/// distinguish "file missing" from "file damaged" without string matching.
#[derive(Debug)]
pub enum DumpError {
    /// The underlying file operation failed (open/read/write/rename).
    Io(io::Error),
    /// The magic number does not identify a subsonic dump.
    NotADump,
    /// The dump was written by an unsupported format version.
    UnsupportedVersion(u32),
    /// The dump holds a tile of the wrong dimensionality.
    WrongDimensionality {
        /// Dimensionality this decoder expects (2 or 3).
        expected: u32,
        /// Dimensionality recorded in the dump header.
        found: u32,
    },
    /// The FNV-1a trailer does not match the payload: bit rot or a torn
    /// write somewhere in the file.
    ChecksumMismatch,
    /// The dump ends before the payload does (truncated file).
    Truncated,
    /// A field decoded to an impossible value (names the field).
    BadField(&'static str),
}

impl fmt::Display for DumpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DumpError::Io(e) => write!(f, "dump file i/o failed: {e}"),
            DumpError::NotADump => write!(f, "not a subsonic dump file"),
            DumpError::UnsupportedVersion(v) => write!(f, "unsupported dump version {v}"),
            DumpError::WrongDimensionality { expected, found } => {
                write!(f, "expected a {expected}D dump, found {found}D")
            }
            DumpError::ChecksumMismatch => {
                write!(f, "dump checksum mismatch (corrupt or truncated)")
            }
            DumpError::Truncated => write!(f, "dump ends before its payload does"),
            DumpError::BadField(name) => write!(f, "dump field `{name}` holds a bad value"),
        }
    }
}

impl std::error::Error for DumpError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DumpError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for DumpError {
    fn from(e: io::Error) -> Self {
        DumpError::Io(e)
    }
}

/// Writes `bytes` to `path` torn-write-safely: temp file in the same
/// directory, fsync, atomic rename. A crash at any instant leaves either the
/// old file or the new one, never a hybrid.
pub(crate) fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let mut tmp_name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "dump path has no file name"))?
        .to_os_string();
    tmp_name.push(format!(".tmp.{}", std::process::id()));
    let tmp = path.with_file_name(tmp_name);
    let write = (|| {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
        std::fs::rename(&tmp, path)
    })();
    if write.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    write?;
    // Make the rename itself durable where the filesystem allows it.
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// 64-bit FNV-1a over `bytes`.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Appends the checksum trailer over everything encoded so far.
pub(crate) fn seal(mut buf: Vec<u8>) -> Vec<u8> {
    let sum = fnv1a(&buf);
    buf.extend_from_slice(&sum.to_le_bytes());
    buf
}

/// Validates and strips the checksum trailer, returning the payload.
pub(crate) fn verify(bytes: &[u8]) -> Result<&[u8], DumpError> {
    if bytes.len() < 8 {
        return Err(DumpError::Truncated);
    }
    let (payload, trailer) = bytes.split_at(bytes.len() - 8);
    let mut sum = [0u8; 8];
    sum.copy_from_slice(trailer);
    if fnv1a(payload) != u64::from_le_bytes(sum) {
        return Err(DumpError::ChecksumMismatch);
    }
    Ok(payload)
}

struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn grid(&mut self, g: &PaddedGrid2<f64>) {
        let h = g.halo() as isize;
        for j in -h..(g.ny() as isize + h) {
            for i in -h..(g.nx() as isize + h) {
                self.f64(g[(i, j)]);
            }
        }
    }
}

struct Dec<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Dec<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], DumpError> {
        if self.at + n > self.buf.len() {
            return Err(DumpError::Truncated);
        }
        let s = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }
    fn u32(&mut self) -> Result<u32, DumpError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
    fn u64(&mut self) -> Result<u64, DumpError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }
    fn f64(&mut self) -> Result<f64, DumpError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(f64::from_le_bytes(a))
    }
    fn grid(&mut self, nx: usize, ny: usize, halo: usize) -> Result<PaddedGrid2<f64>, DumpError> {
        let mut g = PaddedGrid2::new(nx, ny, halo, 0.0f64);
        let h = halo as isize;
        for j in -h..(ny as isize + h) {
            for i in -h..(nx as isize + h) {
                g[(i, j)] = self.f64()?;
            }
        }
        Ok(g)
    }
}

fn cell_to_u8(c: Cell) -> u8 {
    match c {
        Cell::Fluid => 0,
        Cell::Wall => 1,
        Cell::Inlet => 2,
        Cell::Outlet => 3,
    }
}

fn cell_from_u8(v: u8) -> Result<Cell, DumpError> {
    Ok(match v {
        0 => Cell::Fluid,
        1 => Cell::Wall,
        2 => Cell::Inlet,
        3 => Cell::Outlet,
        _ => return Err(DumpError::BadField("cell tag")),
    })
}

fn params_to(enc: &mut Enc, p: &FluidParams) {
    enc.f64(p.cs);
    enc.f64(p.nu);
    enc.f64(p.dx);
    enc.f64(p.dt);
    enc.f64(p.rho0);
    for v in p.body_force {
        enc.f64(v);
    }
    for v in p.inlet_velocity {
        enc.f64(v);
    }
    enc.f64(p.filter_eps);
}

fn params_from(dec: &mut Dec) -> Result<FluidParams, DumpError> {
    Ok(FluidParams {
        cs: dec.f64()?,
        nu: dec.f64()?,
        dx: dec.f64()?,
        dt: dec.f64()?,
        rho0: dec.f64()?,
        body_force: [dec.f64()?, dec.f64()?, dec.f64()?],
        inlet_velocity: [dec.f64()?, dec.f64()?, dec.f64()?],
        filter_eps: dec.f64()?,
    })
}

/// Serialises a 2D tile into a dump-file byte buffer.
pub fn dump_tile2(t: &TileState2) -> Vec<u8> {
    let mut e = Enc { buf: Vec::new() };
    e.u64(MAGIC);
    e.u32(VERSION);
    e.u32(2); // dimensionality
    e.u64(t.step);
    e.u64(t.nx() as u64);
    e.u64(t.ny() as u64);
    e.u64(t.halo() as u64);
    e.u64(t.offset.0 as u64);
    e.u64(t.offset.1 as u64);
    params_to(&mut e, &t.params);
    // geometry mask over the full padded region
    let h = t.halo() as isize;
    for j in -h..(t.ny() as isize + h) {
        for i in -h..(t.nx() as isize + h) {
            e.buf.push(cell_to_u8(t.mask[(i, j)]));
        }
    }
    e.grid(&t.mac.rho);
    e.grid(&t.mac.vx);
    e.grid(&t.mac.vy);
    e.u32(t.f.len() as u32);
    for fq in &t.f {
        e.grid(fq);
    }
    seal(e.buf)
}

/// Restores a 2D tile from dump-file bytes.
pub fn restore_tile2(bytes: &[u8]) -> Result<TileState2, DumpError> {
    let payload = verify(bytes)?;
    let mut d = Dec {
        buf: payload,
        at: 0,
    };
    if d.u64()? != MAGIC {
        return Err(DumpError::NotADump);
    }
    let version = d.u32()?;
    if version != VERSION {
        return Err(DumpError::UnsupportedVersion(version));
    }
    let dim = d.u32()?;
    if dim != 2 {
        return Err(DumpError::WrongDimensionality {
            expected: 2,
            found: dim,
        });
    }
    let step = d.u64()?;
    let nx = d.u64()? as usize;
    let ny = d.u64()? as usize;
    let halo = d.u64()? as usize;
    let offset = (d.u64()? as usize, d.u64()? as usize);
    let params = params_from(&mut d)?;
    let mut mask = PaddedGrid2::new(nx, ny, halo, Cell::Fluid);
    let h = halo as isize;
    for j in -h..(ny as isize + h) {
        for i in -h..(nx as isize + h) {
            mask[(i, j)] = cell_from_u8(d.take(1)?[0])?;
        }
    }
    let rho = d.grid(nx, ny, halo)?;
    let vx = d.grid(nx, ny, halo)?;
    let vy = d.grid(nx, ny, halo)?;
    let nf = d.u32()? as usize;
    let mut f = Vec::with_capacity(nf);
    for _ in 0..nf {
        f.push(d.grid(nx, ny, halo)?);
    }
    let mac = Macro2 { rho, vx, vy };
    let mac_new = mac.clone();
    let scratch = vec![PaddedGrid2::new(nx, ny, halo, 0.0f64)];
    Ok(TileState2 {
        mac,
        mac_new,
        f,
        mask,
        scratch,
        params,
        offset,
        step,
        // derived from the mask; rebuilt lazily by the solver
        shift_links: None,
    })
}

/// Writes a tile dump to a file (temp file + atomic rename).
pub fn save_tile2(t: &TileState2, path: &Path) -> Result<u64, DumpError> {
    let bytes = dump_tile2(t);
    write_atomic(path, &bytes)?;
    Ok(bytes.len() as u64)
}

/// Reads a tile dump from a file, verifying its checksum.
pub fn load_tile2(path: &Path) -> Result<TileState2, DumpError> {
    let mut bytes = Vec::new();
    std::fs::File::open(path)?.read_to_end(&mut bytes)?;
    restore_tile2(&bytes)
}

/// Atomically persists pre-encoded, sealed dump bytes (2D or 3D) to `path`.
///
/// This is the checkpoint-shipping path of the multi-process supervisor: the
/// bytes arrived over a control socket already sealed by the worker, so the
/// checksum is verified before anything touches the disk — a corrupted ship
/// must never replace a good checkpoint.
pub fn save_dump_bytes(path: &Path, bytes: &[u8]) -> Result<(), DumpError> {
    verify(bytes)?;
    write_atomic(path, bytes)?;
    Ok(())
}

/// Reads raw dump bytes from `path`, verifying the checksum trailer but not
/// decoding the payload — the counterpart of [`save_dump_bytes`] for shipping
/// a stored checkpoint back out over a wire.
pub fn load_dump_bytes(path: &Path) -> Result<Vec<u8>, DumpError> {
    let mut bytes = Vec::new();
    std::fs::File::open(path)?.read_to_end(&mut bytes)?;
    verify(&bytes)?;
    Ok(bytes)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use subsonic_grid::{Decomp2, Geometry2};
    use subsonic_solvers::{FiniteDifference2, InitialState2, LatticeBoltzmann2, Solver2};

    fn sample_tile(lbm: bool) -> TileState2 {
        let geom = Geometry2::channel(16, 12, 2);
        let d = Decomp2::with_periodicity(16, 12, 1, 1, true, false);
        let mut params = FluidParams::lattice_units(0.05);
        params.body_force[0] = 2e-5;
        let init = InitialState2::from_fn(|i, j| (1.0 + 0.001 * (i + j) as f64, 0.0, 0.0));
        if lbm {
            let s = LatticeBoltzmann2;
            s.make_tile(geom.tile_mask(&d, 0, s.halo()), params, (0, 0), &init)
        } else {
            let s = FiniteDifference2;
            s.make_tile(geom.tile_mask(&d, 0, s.halo()), params, (0, 0), &init)
        }
    }

    fn assert_tiles_equal(a: &TileState2, b: &TileState2) {
        assert_eq!(a.step, b.step);
        assert_eq!(a.offset, b.offset);
        assert_eq!((a.nx(), a.ny(), a.halo()), (b.nx(), b.ny(), b.halo()));
        let h = a.halo() as isize;
        for j in -h..(a.ny() as isize + h) {
            for i in -h..(a.nx() as isize + h) {
                assert_eq!(a.mask[(i, j)], b.mask[(i, j)]);
                assert_eq!(a.mac.rho[(i, j)].to_bits(), b.mac.rho[(i, j)].to_bits());
                assert_eq!(a.mac.vx[(i, j)].to_bits(), b.mac.vx[(i, j)].to_bits());
                assert_eq!(a.mac.vy[(i, j)].to_bits(), b.mac.vy[(i, j)].to_bits());
            }
        }
        assert_eq!(a.f.len(), b.f.len());
        for (fa, fb) in a.f.iter().zip(&b.f) {
            for j in -h..(a.ny() as isize + h) {
                for i in -h..(a.nx() as isize + h) {
                    assert_eq!(fa[(i, j)].to_bits(), fb[(i, j)].to_bits());
                }
            }
        }
    }

    #[test]
    fn fd_tile_roundtrips() {
        let t = sample_tile(false);
        let restored = restore_tile2(&dump_tile2(&t)).unwrap();
        assert_tiles_equal(&t, &restored);
    }

    #[test]
    fn lbm_tile_roundtrips_with_populations() {
        let t = sample_tile(true);
        let bytes = dump_tile2(&t);
        assert!(
            bytes.len() > 9 * 8 * 16 * 12,
            "populations missing from dump"
        );
        let restored = restore_tile2(&bytes).unwrap();
        assert_tiles_equal(&t, &restored);
    }

    #[test]
    fn corrupt_magic_is_rejected() {
        let t = sample_tile(false);
        let mut bytes = dump_tile2(&t);
        bytes[0] ^= 0xff;
        assert!(restore_tile2(&bytes).is_err());
    }

    #[test]
    fn truncated_dump_is_rejected() {
        let t = sample_tile(false);
        let bytes = dump_tile2(&t);
        assert!(restore_tile2(&bytes[..bytes.len() / 2]).is_err());
        // even losing a single trailing byte must fail the checksum
        assert!(restore_tile2(&bytes[..bytes.len() - 1]).is_err());
        assert!(
            restore_tile2(&bytes[..4]).is_err(),
            "shorter than the trailer"
        );
    }

    #[test]
    fn bit_rot_in_the_payload_is_detected() {
        // Version 1 validated only the header: a flipped bit deep inside a
        // field grid restored "successfully" as corrupt physics. The v2
        // checksum must catch it anywhere in the file.
        let t = sample_tile(true);
        let clean = dump_tile2(&t);
        for at in [100, clean.len() / 2, clean.len() - 9] {
            let mut bytes = clean.clone();
            bytes[at] ^= 0x04;
            let err = restore_tile2(&bytes).expect_err("corruption missed");
            assert!(matches!(err, DumpError::ChecksumMismatch), "flip at {at}");
        }
    }

    #[test]
    fn version_1_dumps_are_rejected() {
        // Fake an old dump: rewrite the version field and re-seal so only
        // the version check can fail.
        let t = sample_tile(false);
        let bytes = dump_tile2(&t);
        let mut payload = bytes[..bytes.len() - 8].to_vec();
        payload[8..12].copy_from_slice(&1u32.to_le_bytes());
        let err = restore_tile2(&seal(payload)).expect_err("version check missed");
        assert!(matches!(err, DumpError::UnsupportedVersion(1)));
    }

    #[test]
    fn typed_errors_name_the_corruption() {
        let t = sample_tile(false);
        let bytes = dump_tile2(&t);
        assert!(matches!(
            restore_tile2(&bytes[..4]),
            Err(DumpError::Truncated)
        ));
        let mut wrong_magic = bytes[..bytes.len() - 8].to_vec();
        wrong_magic[0] ^= 0xff;
        assert!(matches!(
            restore_tile2(&seal(wrong_magic)),
            Err(DumpError::NotADump)
        ));
        let missing = load_tile2(Path::new("/nonexistent/subsonic/tile.dump"));
        assert!(matches!(missing, Err(DumpError::Io(_))));
        for e in [
            DumpError::NotADump,
            DumpError::UnsupportedVersion(7),
            DumpError::WrongDimensionality {
                expected: 2,
                found: 3,
            },
            DumpError::ChecksumMismatch,
            DumpError::Truncated,
            DumpError::BadField("cell tag"),
            DumpError::Io(io::Error::other("disk gone")),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn save_replaces_a_torn_file_atomically() {
        // Simulate a worker killed mid-checkpoint under the OLD scheme: the
        // target path holds a half-written dump. Loading detects it with a
        // typed error, and a fresh save replaces it whole (no temp residue).
        let t = sample_tile(true);
        let dir = std::env::temp_dir().join("subsonic_ckpt_torn_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tile0.dump");
        let clean = dump_tile2(&t);
        std::fs::write(&path, &clean[..clean.len() / 3]).unwrap();
        let err = load_tile2(&path).expect_err("torn dump accepted");
        assert!(matches!(
            err,
            DumpError::Truncated | DumpError::ChecksumMismatch
        ));
        save_tile2(&t, &path).unwrap();
        let restored = load_tile2(&path).unwrap();
        assert_tiles_equal(&t, &restored);
        let residue: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.contains(".tmp."))
            .collect();
        assert!(residue.is_empty(), "temp files left behind: {residue:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // standard FNV-1a test vectors
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn file_roundtrip() {
        let t = sample_tile(true);
        let dir = std::env::temp_dir().join("subsonic_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tile0.dump");
        let n = save_tile2(&t, &path).unwrap();
        assert!(n > 0);
        let restored = load_tile2(&path).unwrap();
        assert_tiles_equal(&t, &restored);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn restored_tile_continues_identically() {
        // step a tile 5 times, dump, step 5 more; vs restore-then-step-5.
        let solver = LatticeBoltzmann2;
        let mut t = sample_tile(true);
        let step = |s: &LatticeBoltzmann2, t: &mut TileState2| {
            use subsonic_grid::Face2;
            use subsonic_solvers::StepOp;
            for op in s.plan() {
                match *op {
                    StepOp::Compute(k) => s.compute(t, k),
                    StepOp::Exchange(x) => {
                        for face in [Face2::West, Face2::East] {
                            let mut buf = Vec::new();
                            s.pack(t, x, face.opposite(), &mut buf);
                            s.unpack(t, x, face, &buf);
                        }
                    }
                }
            }
        };
        for _ in 0..5 {
            step(&solver, &mut t);
        }
        let dump = dump_tile2(&t);
        let mut branch = restore_tile2(&dump).unwrap();
        for _ in 0..5 {
            step(&solver, &mut t);
            step(&solver, &mut branch);
        }
        assert_tiles_equal(&t, &branch);
    }
}
