//! Calibration constants taken directly from the paper.

use serde::{Deserialize, Serialize};

/// The measured constants of the paper's testbed (section 7 and 8).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PaperConstants {
    /// Computational speed of the reference HP9000/715-50 workstation for 2D
    /// lattice Boltzmann: "the relative speed of 1.0 corresponds to 39132
    /// fluid nodes integrated per second".
    pub u_calc_lb2d: f64,
    /// `U_calc / V_com = 2/3`, the single fitted ratio of Figures 12–13.
    pub ucalc_over_vcom: f64,
    /// Relative speed of each workstation model for (method, dimension),
    /// from the section-7 table. Index with [`HostModelKind`]-like order:
    /// `[715/50, 710, 720]`.
    pub rel_speed_lb2d: [f64; 3],
    /// Relative speeds, LB 3D row of the table.
    pub rel_speed_lb3d: [f64; 3],
    /// Relative speeds, FD 2D row of the table.
    pub rel_speed_fd2d: [f64; 3],
    /// Relative speeds, FD 3D row of the table.
    pub rel_speed_fd3d: [f64; 3],
    /// Shared-bus Ethernet peak bandwidth in bits per second (10 Mbps).
    pub ethernet_bps: f64,
    /// Field values communicated per boundary node: 2D (both methods).
    pub vars_per_node_2d: f64,
    /// Field values per boundary node, FD in 3D.
    pub vars_per_node_fd3d: f64,
    /// Field values per boundary node, LB in 3D.
    pub vars_per_node_lb3d: f64,
}

impl Default for PaperConstants {
    fn default() -> Self {
        Self {
            u_calc_lb2d: 39_132.0,
            ucalc_over_vcom: 2.0 / 3.0,
            rel_speed_lb2d: [1.0, 0.84, 0.86],
            rel_speed_lb3d: [0.51, 0.40, 0.42],
            rel_speed_fd2d: [1.24, 1.08, 1.17],
            rel_speed_fd3d: [1.0, 0.85, 0.94],
            ethernet_bps: 10.0e6,
            vars_per_node_2d: 3.0,
            vars_per_node_fd3d: 4.0,
            vars_per_node_lb3d: 5.0,
        }
    }
}

impl PaperConstants {
    /// `V_com` in boundary nodes per second implied by the fitted ratio,
    /// using the LB-2D reference computational speed (the units of
    /// Figures 12–13).
    pub fn v_com(&self) -> f64 {
        self.u_calc_lb2d / self.ucalc_over_vcom
    }

    /// Sanity cross-check: the fitted `V_com` corresponds to a wire rate of
    /// `V_com × vars/node × 8 bytes`, which should be of the order of the
    /// 10 Mbps Ethernet. Returns that rate in bits per second.
    pub fn v_com_implied_bps(&self) -> f64 {
        self.v_com() * self.vars_per_node_2d * 8.0 * 8.0
    }

    /// The paper's eq.-21 prefactor for 3D: data per node grows by 5/3 and
    /// the computational speed halves, giving `(5/3) / 2 = 5/6` relative to
    /// the 2D `U_calc / V_com`.
    pub fn factor_3d(&self) -> f64 {
        (self.vars_per_node_lb3d / self.vars_per_node_2d) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_table() {
        let c = PaperConstants::default();
        assert_eq!(c.u_calc_lb2d, 39132.0);
        assert_eq!(c.rel_speed_lb3d[0], 0.51);
        assert_eq!(c.rel_speed_fd2d[0], 1.24);
        assert!((c.factor_3d() - 5.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn vcom_is_of_ethernet_order() {
        let c = PaperConstants::default();
        let bps = c.v_com_implied_bps();
        // fitted communication speed lands near the 10 Mbps wire rate
        assert!(bps > 5.0e6 && bps < 20.0e6, "implied rate {bps} b/s");
    }
}
