//! Appendix A: bounds on the "un-synchronization" of parallel processes.
//!
//! Communication only *nearly* synchronises neighbours: a stopped process
//! lets its nearest neighbour run one more step, the next-nearest two more,
//! and so on. For a `(J × K)` decomposition the largest possible difference
//! in integration step between two processes is
//!
//! * `ΔN = max(J, K) − 1` when neighbours depend on each other diagonally
//!   (full stencil, eq. 22), because dependence spreads along diagonals;
//! * `ΔN = (J − 1) + (K − 1)` when only horizontal/vertical neighbours
//!   interact (star stencil, eq. 23), the Manhattan diameter of the grid.
//!
//! These bounds matter for migration: the synchronisation algorithm of
//! Appendix B must let every process run forward to `T_max + 1`, and the
//! bound caps how much forward running that can be.

/// Eq. (22): maximum step skew across a `(J × K)` decomposition with a full
/// (diagonal-coupling) stencil.
pub fn max_skew_full_stencil(j: usize, k: usize) -> usize {
    j.max(k).saturating_sub(1)
}

/// Eq. (23): maximum step skew with a star (axis-coupling-only) stencil.
pub fn max_skew_star_stencil(j: usize, k: usize) -> usize {
    j.saturating_sub(1) + k.saturating_sub(1)
}

/// Maximum step skew for a 3D `(J × K × L)` decomposition, by the same
/// arguments: Chebyshev diameter for the full stencil, Manhattan diameter for
/// the star stencil.
pub fn max_skew_full_stencil_3d(j: usize, k: usize, l: usize) -> usize {
    j.max(k).max(l).saturating_sub(1)
}

/// 3D star-stencil skew bound (Manhattan diameter).
pub fn max_skew_star_stencil_3d(j: usize, k: usize, l: usize) -> usize {
    j.saturating_sub(1) + k.saturating_sub(1) + l.saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_formulas() {
        // (5 x 4): full stencil allows 4 steps of drift, star allows 7.
        assert_eq!(max_skew_full_stencil(5, 4), 4);
        assert_eq!(max_skew_star_stencil(5, 4), 7);
    }

    #[test]
    fn single_tile_cannot_drift() {
        assert_eq!(max_skew_full_stencil(1, 1), 0);
        assert_eq!(max_skew_star_stencil(1, 1), 0);
        assert_eq!(max_skew_full_stencil_3d(1, 1, 1), 0);
    }

    #[test]
    fn star_bound_dominates_full_bound() {
        for j in 1..8 {
            for k in 1..8 {
                assert!(max_skew_star_stencil(j, k) >= max_skew_full_stencil(j, k));
            }
        }
    }

    #[test]
    fn pipeline_decomposition() {
        // (J x 1): both stencils give J-1.
        assert_eq!(max_skew_full_stencil(6, 1), 5);
        assert_eq!(max_skew_star_stencil(6, 1), 5);
    }

    #[test]
    fn three_d_bounds() {
        assert_eq!(max_skew_full_stencil_3d(3, 2, 2), 2);
        assert_eq!(max_skew_star_stencil_3d(3, 2, 2), 4);
    }
}
