//! Equations (5)–(21): parallel efficiency of local-interaction problems.

use serde::{Deserialize, Serialize};

/// How the network serialises traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NetworkKind {
    /// Shared-bus Ethernet: all processors share the wire, so the per-step
    /// communication time scales with `(P − 1)` (eq. 19).
    SharedBus,
    /// Point-to-point (switched) links: `T_com` is independent of `P`
    /// (eq. 14 with a constant `U_com`) — the paper's outlook for "Ethernet
    /// switches, FDDI and ATM networks".
    PointToPoint,
}

/// Efficiency from raw per-step times (eq. 12): `f = (1 + T_com/T_calc)^-1`.
pub fn efficiency_from_times(t_calc: f64, t_com: f64) -> f64 {
    1.0 / (1.0 + t_com / t_calc)
}

/// Speedup implied by an efficiency at `p` processors (eq. 5): `S = f P`.
pub fn speedup(efficiency: f64, p: usize) -> f64 {
    efficiency * p as f64
}

/// Eq. (20): 2D efficiency on a shared bus.
///
/// `f = (1 + N^{-1/2} (P−1) m U_calc/V_com)^{-1}` for subregions of `N`
/// nodes, `P` processors, decomposition factor `m` and the fitted speed ratio
/// `U_calc/V_com`.
pub fn efficiency_2d_bus(n: f64, p: usize, m: f64, ucalc_over_vcom: f64) -> f64 {
    let t_ratio = n.powf(-0.5) * (p as f64 - 1.0) * m * ucalc_over_vcom;
    1.0 / (1.0 + t_ratio)
}

/// Eq. (21): 3D efficiency on a shared bus, with the paper's 5/6 prefactor
/// (3D computes at half the 2D speed and moves 5/3 the data per node, while
/// the fitted ratio is the 2D one).
pub fn efficiency_3d_bus(n: f64, p: usize, m: f64, ucalc_over_vcom: f64) -> f64 {
    let t_ratio = (5.0 / 6.0) * n.powf(-1.0 / 3.0) * (p as f64 - 1.0) * m * ucalc_over_vcom;
    1.0 / (1.0 + t_ratio)
}

/// Eqs. (17)–(18): efficiency with a point-to-point network (no `(P−1)`
/// contention factor). `dim` must be 2 or 3.
pub fn efficiency_point_to_point(n: f64, m: f64, ucalc_over_ucom: f64, dim: u32) -> f64 {
    let exponent = match dim {
        2 => -0.5,
        3 => -1.0 / 3.0,
        _ => panic!("dim must be 2 or 3"),
    };
    1.0 / (1.0 + n.powf(exponent) * m * ucalc_over_ucom)
}

/// The full parametric model, including the small-message-overhead extension
/// the paper leaves as future work.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct EfficiencyModel {
    /// Problem dimensionality (2 or 3).
    pub dim: u32,
    /// Decomposition geometry factor `m`.
    pub m: f64,
    /// Number of processors.
    pub p: usize,
    /// Computational speed `U_calc` in nodes/second.
    pub u_calc: f64,
    /// Two-processor communication speed `V_com` in boundary nodes/second.
    pub v_com: f64,
    /// Network kind (bus contention or point-to-point).
    pub network: NetworkKind,
    /// Messages sent per neighbour per step (2 for FD, 1 for LB).
    pub messages_per_step: f64,
    /// Fixed per-message overhead in seconds (0 recovers the paper's model).
    pub message_overhead: f64,
}

impl EfficiencyModel {
    /// The paper's 2D lattice Boltzmann model with the fitted constants
    /// (`U_calc/V_com = 2/3`), no overhead term.
    pub fn paper_2d(p: usize, m: f64) -> Self {
        let c = crate::constants::PaperConstants::default();
        Self {
            dim: 2,
            m,
            p,
            u_calc: c.u_calc_lb2d,
            v_com: c.v_com(),
            network: NetworkKind::SharedBus,
            messages_per_step: 1.0,
            message_overhead: 0.0,
        }
    }

    /// The paper's 3D model (eq. 21): half the computational speed, 5/3 the
    /// data per node.
    pub fn paper_3d(p: usize, m: f64) -> Self {
        let c = crate::constants::PaperConstants::default();
        Self {
            dim: 3,
            m,
            p,
            u_calc: c.u_calc_lb2d / 2.0,
            v_com: c.v_com() / (5.0 / 3.0),
            network: NetworkKind::SharedBus,
            messages_per_step: 1.0,
            message_overhead: 0.0,
        }
    }

    /// Surface nodes `N_c = m N^{1−1/dim}` (eqs. 15–16).
    pub fn surface_nodes(&self, n: f64) -> f64 {
        self.m * n.powf(1.0 - 1.0 / self.dim as f64)
    }

    /// Per-step computation time `T_calc = N / U_calc` (eq. 13).
    pub fn t_calc(&self, n: f64) -> f64 {
        n / self.u_calc
    }

    /// Per-step communication time: eq. (14) or (19) depending on the
    /// network, plus the per-message overhead extension. The overhead term is
    /// `messages_per_step × faces × overhead`, with `faces = m` as the
    /// per-processor message count, and it too contends for the bus.
    pub fn t_com(&self, n: f64) -> f64 {
        let contention = match self.network {
            NetworkKind::SharedBus => (self.p as f64 - 1.0).max(1.0),
            NetworkKind::PointToPoint => 1.0,
        };
        let volume = self.surface_nodes(n) / self.v_com;
        let overhead = self.messages_per_step * self.m * self.message_overhead;
        (volume + overhead) * contention
    }

    /// Parallel efficiency `f` (eq. 12 with the chosen `T_com`).
    pub fn efficiency(&self, n: f64) -> f64 {
        efficiency_from_times(self.t_calc(n), self.t_com(n))
    }

    /// Section-7 heterogeneous-pool step time: the per-step dependency
    /// coupling pins every process to the *slowest* machine's compute time
    /// (each step needs the previous step's boundary from every neighbour),
    /// so a pool whose slowest member runs at `rel_min ≤ 1` times the
    /// reference speed steps in `T_p = T_calc/rel_min + T_com`. With the
    /// paper's pool this reproduces the measured t16 = 0.728 s
    /// (`rel_min = 1`, sixteen 715/50s) and t20 = 0.863 s (`rel_min = 0.86`
    /// once the 720s join).
    pub fn t_step_hetero(&self, n: f64, rel_min: f64) -> f64 {
        assert!(rel_min > 0.0 && rel_min <= 1.0, "rel_min must be in (0, 1]");
        self.t_calc(n) / rel_min + self.t_com(n)
    }

    /// Efficiency of the heterogeneous pool referenced to the reference
    /// processor (the paper normalises speedup to the 715/50, eq. 5):
    /// `f = (N/U_calc) / T_p`.
    pub fn efficiency_hetero(&self, n: f64, rel_min: f64) -> f64 {
        self.t_calc(n) / self.t_step_hetero(n, rel_min)
    }

    /// Speedup `S = f P`.
    pub fn speedup(&self, n: f64) -> f64 {
        speedup(self.efficiency(n), self.p)
    }

    /// Smallest subregion (nodes) achieving the target efficiency, by
    /// bisection over `N` (inverse problem: how coarse must the grain be).
    pub fn min_nodes_for_efficiency(&self, target: f64) -> f64 {
        assert!((0.0..1.0).contains(&target));
        let (mut lo, mut hi) = (1.0f64, 1.0e15f64);
        if self.efficiency(hi) < target {
            return f64::INFINITY;
        }
        for _ in 0..200 {
            let mid = (lo * hi).sqrt();
            if self.efficiency(mid) < target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        hi
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq20_matches_direct_formula() {
        let m = EfficiencyModel::paper_2d(20, 4.0);
        let n = 150.0 * 150.0;
        let direct = efficiency_2d_bus(n, 20, 4.0, 2.0 / 3.0);
        assert!((m.efficiency(n) - direct).abs() < 1e-12);
    }

    #[test]
    fn eq21_matches_direct_formula() {
        let m = EfficiencyModel::paper_3d(10, 2.0);
        let n = 25.0f64.powi(3);
        let direct = efficiency_3d_bus(n, 10, 2.0, 2.0 / 3.0);
        assert!(
            (m.efficiency(n) - direct).abs() < 1e-12,
            "{} vs {direct}",
            m.efficiency(n)
        );
    }

    #[test]
    fn paper_operating_point_reaches_eighty_percent() {
        // Headline claim: ~80% efficiency with 20 workstations at the
        // typical operating point (subregions >= 150^2 in a (5x4) decomp).
        let f = efficiency_2d_bus(160.0 * 160.0, 20, 4.0, 2.0 / 3.0);
        assert!(f > 0.75 && f < 0.95, "f = {f}");
    }

    #[test]
    fn efficiency_increases_with_grain_size() {
        let m = EfficiencyModel::paper_2d(16, 4.0);
        let mut prev = 0.0;
        for side in [20.0, 50.0, 100.0, 200.0, 300.0] {
            let f = m.efficiency(side * side);
            assert!(f > prev);
            prev = f;
        }
    }

    #[test]
    fn three_d_needs_much_larger_subregions() {
        // paper: "the size of the subregion N must increase much faster in 3D
        // than in 2D to achieve similar improvements in efficiency"
        let m2 = EfficiencyModel::paper_2d(12, 2.0);
        let m3 = EfficiencyModel::paper_3d(12, 2.0);
        let n2 = m2.min_nodes_for_efficiency(0.8);
        let n3 = m3.min_nodes_for_efficiency(0.8);
        assert!(n3 > 10.0 * n2, "N2 = {n2}, N3 = {n3}");
    }

    #[test]
    fn point_to_point_beats_bus() {
        let bus = EfficiencyModel::paper_3d(20, 2.0);
        let mut sw = bus;
        sw.network = NetworkKind::PointToPoint;
        let n = 25.0f64.powi(3);
        assert!(sw.efficiency(n) > bus.efficiency(n) + 0.2);
    }

    #[test]
    fn overhead_hurts_small_subregions_most() {
        let clean = EfficiencyModel::paper_2d(9, 3.0);
        let mut noisy = clean;
        noisy.message_overhead = 2.0e-3;
        noisy.messages_per_step = 2.0;
        let small = 30.0 * 30.0;
        let large = 300.0 * 300.0;
        let drop_small = clean.efficiency(small) - noisy.efficiency(small);
        let drop_large = clean.efficiency(large) - noisy.efficiency(large);
        assert!(
            drop_small > 4.0 * drop_large,
            "{drop_small} vs {drop_large}"
        );
    }

    #[test]
    fn speedup_saturates_on_bus_in_3d() {
        // Figure 11: "the speedup does not improve when finer decompositions
        // are employed because the network is the bottleneck" — at a FIXED
        // total problem size, halving the subregion while doubling P barely
        // moves the speedup.
        let total = 32.0f64.powi(3);
        let s8 = EfficiencyModel::paper_3d(8, 4.0).speedup(total / 8.0);
        let s16 = EfficiencyModel::paper_3d(16, 4.0).speedup(total / 16.0);
        assert!(s16 < s8 * 1.2, "s8 = {s8}, s16 = {s16}");
        // ... whereas in 2D the same doubling still helps substantially
        let total2 = 480.0 * 480.0;
        let t8 = EfficiencyModel::paper_2d(8, 4.0).speedup(total2 / 8.0);
        let t16 = EfficiencyModel::paper_2d(16, 4.0).speedup(total2 / 16.0);
        assert!(t16 > t8 * 1.3, "t8 = {t8}, t16 = {t16}");
    }

    #[test]
    fn hetero_model_reproduces_section_seven_step_times() {
        // 150^2 subregions: sixteen 715/50s step in 0.728 s; adding the
        // 0.86-relative 720s stretches the step to 0.863 s (ratio 1.185).
        let n = 150.0 * 150.0;
        let m16 = EfficiencyModel::paper_2d(16, 4.0);
        let m20 = EfficiencyModel::paper_2d(20, 4.0);
        let t16 = m16.t_step_hetero(n, 1.0);
        let t20 = m20.t_step_hetero(n, 0.86);
        assert!((t16 - 0.728).abs() < 0.01, "t16 = {t16}");
        assert!((t20 - 0.863).abs() < 0.01, "t20 = {t20}");
        assert!((1.10..1.25).contains(&(t20 / t16)), "ratio {}", t20 / t16);
        // homogeneous pools recover the plain model
        assert!((m16.t_step_hetero(n, 1.0) - (m16.t_calc(n) + m16.t_com(n))).abs() < 1e-12);
    }

    #[test]
    fn hetero_efficiency_is_referenced_to_the_fast_machine() {
        let n = 150.0 * 150.0;
        let m20 = EfficiencyModel::paper_2d(20, 4.0);
        let f = m20.efficiency_hetero(n, 0.86);
        assert!(f < m20.efficiency(n), "slow hosts must cost efficiency");
        assert!((f - 0.666).abs() < 0.01, "f = {f}");
    }

    #[test]
    fn min_nodes_bisection_is_consistent() {
        let m = EfficiencyModel::paper_2d(20, 4.0);
        let n = m.min_nodes_for_efficiency(0.8);
        assert!(m.efficiency(n) >= 0.8);
        assert!(m.efficiency(n * 0.9) < 0.8);
    }

    #[test]
    fn single_processor_is_fully_efficient() {
        // P = 1 on a bus: the (P-1) factor floors at 1 in t_com, but with no
        // neighbours m = 0 so T_com = 0 and f = 1.
        let mut m = EfficiencyModel::paper_2d(1, 0.0);
        m.m = 0.0;
        assert_eq!(m.efficiency(10_000.0), 1.0);
    }
}
