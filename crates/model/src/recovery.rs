//! Closed-form cost model for checkpointing and crash recovery.
//!
//! The paper saves the whole computation "automatically every 10–20 minutes"
//! so that a crashed run can restart from the last dump (section 4.1). This
//! module prices that policy: the steady-state overhead of a periodic
//! coordinated checkpoint follows Young's first-order model,
//!
//! ```text
//! overhead(I) = C / I  +  (I/2 + D + R) / MTBF
//! ```
//!
//! where `I` is the checkpoint interval, `C` the cost of one coordinated
//! round, `D` the failure-detection latency, `R` the restart cost (search for
//! a free host, reload the dump, handshake), and `MTBF` the mean time between
//! failures of the pool. The first term is what checkpoints cost when nothing
//! fails; the second is the expected recompute (half an interval on average)
//! plus downtime per failure. The optimum is Young's square-root rule,
//! `I* = sqrt(2 C · MTBF)`.
//!
//! A third term prices detector *false positives*: a congestion-starved
//! heartbeat schedule can declare a live process dead and trigger a needless
//! rollback. Each spurious declaration costs the expected recompute `I/2`
//! plus the restart `R` (the detection latency is not an extra loss — the
//! "victim" was computing the whole time), at a rate `f` of false positives
//! per second:
//!
//! ```text
//! overhead(I) = C / I  +  (I/2 + D + R) / MTBF  +  (I/2 + R) · f
//! ```
//!
//! which shifts the optimum to `I* = sqrt(2 C / (1/MTBF + f))`: a trigger-
//! happy detector demands *tighter* checkpoints, quantifying how detector
//! quality and checkpoint policy trade against each other.
//!
//! Alongside the stochastic model there is a deterministic single-fault
//! predictor used to validate the event simulation: given the exact crash
//! time of an injected fault, it predicts the extra wall-clock the run pays,
//! which the `faults` experiment compares against the simulated runs.

use serde::{Deserialize, Serialize};

/// Calibrated inputs of the recovery-cost model.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RecoveryModel {
    /// Wall-clock cost of one coordinated checkpoint round, seconds (`C`).
    pub checkpoint_cost_s: f64,
    /// Failure-detection latency, seconds (`D`) — the heartbeat schedule's
    /// worst case from loss to declaration.
    pub detection_s: f64,
    /// Restart cost, seconds (`R`): host search + dump reload + handshake.
    pub restart_s: f64,
    /// Mean time between failures of the whole pool, seconds.
    pub mtbf_s: f64,
    /// Detector false positives per second (`f`): how often congestion alone
    /// convicts a live process and forces a spurious rollback. Zero for an
    /// accrual detector whose proof-of-life probes ride a healthy control
    /// link; potentially large for a fixed-timeout detector under load.
    pub fp_rate_per_s: f64,
}

impl RecoveryModel {
    /// Fractional overhead of checkpointing every `interval_s` seconds:
    /// Young's `C/I + (I/2 + D + R)/MTBF` plus the false-positive term
    /// `(I/2 + R) · f`.
    pub fn overhead_rate(&self, interval_s: f64) -> f64 {
        self.checkpoint_cost_s / interval_s
            + (interval_s / 2.0 + self.detection_s + self.restart_s) / self.mtbf_s
            + (interval_s / 2.0 + self.restart_s) * self.fp_rate_per_s
    }

    /// The overhead-minimising interval `sqrt(2 C / (1/MTBF + f))` — Young's
    /// `sqrt(2 C · MTBF)` when the detector never lies (`f = 0`).
    pub fn optimal_interval_s(&self) -> f64 {
        (2.0 * self.checkpoint_cost_s / (1.0 / self.mtbf_s + self.fp_rate_per_s)).sqrt()
    }

    /// Fraction of wall-clock doing useful work at `interval_s`
    /// (`1 / (1 + overhead)`).
    pub fn availability(&self, interval_s: f64) -> f64 {
        1.0 / (1.0 + self.overhead_rate(interval_s))
    }

    /// Deterministic predictor for a *single* injected crash: the extra
    /// wall-clock a run pays, given the time `since_checkpoint_s` elapsed
    /// between the last completed checkpoint round and the fault.
    ///
    /// The run loses the recompute back to the checkpoint plus the detection
    /// and restart latencies; checkpoint rounds themselves are priced
    /// separately by the `C/I` term.
    pub fn single_fault_cost_s(&self, since_checkpoint_s: f64) -> f64 {
        since_checkpoint_s + self.detection_s + self.restart_s
    }

    /// Total predicted wall-clock for a run of `faultless_s` seconds of pure
    /// computation, checkpointing every `interval_s`, hit by `n_faults`
    /// crashes each losing `since_checkpoint_s` of work.
    pub fn predicted_runtime_s(
        &self,
        faultless_s: f64,
        interval_s: f64,
        n_faults: u64,
        since_checkpoint_s: f64,
    ) -> f64 {
        let rounds = (faultless_s / interval_s).floor();
        faultless_s
            + rounds * self.checkpoint_cost_s
            + n_faults as f64 * self.single_fault_cost_s(since_checkpoint_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> RecoveryModel {
        RecoveryModel {
            checkpoint_cost_s: 12.0,
            detection_s: 35.0,
            restart_s: 20.0,
            mtbf_s: 8.0 * 3600.0,
            fp_rate_per_s: 0.0,
        }
    }

    #[test]
    fn optimal_interval_minimises_the_overhead() {
        let m = model();
        let i_star = m.optimal_interval_s();
        assert!((i_star - (2.0_f64 * 12.0 * 8.0 * 3600.0).sqrt()).abs() < 1e-9);
        let at_opt = m.overhead_rate(i_star);
        for factor in [0.25, 0.5, 2.0, 4.0] {
            assert!(
                at_opt < m.overhead_rate(i_star * factor),
                "overhead not minimal at I* (factor {factor})"
            );
        }
    }

    #[test]
    fn overhead_has_the_two_young_terms() {
        let m = model();
        // very frequent checkpoints: dominated by C/I
        assert!(m.overhead_rate(24.0) > 0.5 * (12.0 / 24.0));
        // very rare checkpoints: dominated by lost work I/2/MTBF
        let rare = m.overhead_rate(4.0 * 3600.0);
        assert!((rare - (12.0 / 14400.0 + (7200.0 + 55.0) / 28800.0)).abs() < 1e-12);
        // availability is the reciprocal mapping
        let i = 600.0;
        assert!((m.availability(i) - 1.0 / (1.0 + m.overhead_rate(i))).abs() < 1e-15);
    }

    #[test]
    fn single_fault_predictor_is_linear_in_lost_work() {
        let m = model();
        assert_eq!(m.single_fault_cost_s(0.0), 55.0);
        assert_eq!(m.single_fault_cost_s(100.0), 155.0);
        let base = m.predicted_runtime_s(1000.0, 250.0, 0, 0.0);
        assert!((base - (1000.0 + 4.0 * 12.0)).abs() < 1e-9);
        let faulted = m.predicted_runtime_s(1000.0, 250.0, 1, 80.0);
        assert!((faulted - base - 135.0).abs() < 1e-9);
    }

    #[test]
    fn false_positives_raise_overhead_and_tighten_the_optimum() {
        let honest = model();
        let jumpy = RecoveryModel {
            fp_rate_per_s: 1.0 / 1800.0, // one spurious conviction per 30 min
            ..honest
        };
        let i = 600.0;
        let extra = jumpy.overhead_rate(i) - honest.overhead_rate(i);
        assert!(
            (extra - (i / 2.0 + 20.0) / 1800.0).abs() < 1e-12,
            "fp term is (I/2 + R) · f"
        );
        assert!(
            jumpy.optimal_interval_s() < honest.optimal_interval_s(),
            "a lying detector demands tighter checkpoints"
        );
        // f = 0 reduces exactly to Young's rule
        assert!(
            (honest.optimal_interval_s() - (2.0_f64 * 12.0 * 8.0 * 3600.0).sqrt()).abs() < 1e-9
        );
        // the optimum still minimises the fp-aware overhead
        let i_star = jumpy.optimal_interval_s();
        for factor in [0.5, 2.0] {
            assert!(jumpy.overhead_rate(i_star) < jumpy.overhead_rate(i_star * factor));
        }
    }
}
