//! Closed-form model of parallel efficiency for local-interaction
//! computations — section 8 of P. A. Skordos, *"Parallel simulation of
//! subsonic fluid dynamics on a cluster of workstations"* (1994).
//!
//! The model rests on two assumptions: (i) the computation is completely
//! parallelisable, and (ii) communication does not overlap computation. Then
//! the parallel efficiency equals the processor utilisation (eq. 12):
//!
//! ```text
//! f = g = (1 + T_com / T_calc)^-1
//! ```
//!
//! with `T_calc = N / U_calc` (eq. 13) and `T_com = N_c / U_com` (eq. 14),
//! where the communicating surface is `N_c = m N^(1/2)` in 2D and
//! `m N^(2/3)` in 3D (eqs. 15–16). On a shared-bus network every processor
//! shares the wire, so `T_com` grows with `(P − 1)` (eq. 19), giving eq. (20)
//! in 2D and, with the paper's 3D cost factors (half the computational speed,
//! 5/3 the data per node), eq. (21) in 3D.
//!
//! This crate also implements the paper's Appendix-A bounds on how far apart
//! neighbouring processes can drift ("un-synchronization"), and a
//! message-overhead extension the paper mentions but leaves unmodelled ("we
//! have not attempted to model the overhead of small messages here") — our
//! event simulation exhibits that overhead, and the extension reproduces it in
//! closed form.

pub mod constants;
pub mod efficiency;
pub mod recovery;
pub mod skew;

pub use constants::PaperConstants;
pub use efficiency::{
    efficiency_2d_bus, efficiency_3d_bus, efficiency_from_times, efficiency_point_to_point,
    speedup, EfficiencyModel, NetworkKind,
};
pub use recovery::RecoveryModel;
pub use skew::{
    max_skew_full_stencil, max_skew_full_stencil_3d, max_skew_star_stencil,
    max_skew_star_stencil_3d,
};
