//! Stochastic model of the regular users and background jobs.
//!
//! The paper classifies workstation utilisation into three cases
//! (section 5.1): idle, interactive user (fast response, few cycles), and a
//! competing full-time process. We model each host independently:
//!
//! * the console user alternates between *active* and *idle* periods with
//!   exponential durations (interactive use costs the nice'd subprocess
//!   nothing, but disqualifies the host from the idle-user preference tier);
//! * full-time CPU-bound jobs arrive as a Poisson process and run for an
//!   exponential duration — these are what trigger migration.
//!
//! Defaults are calibrated so that a 20-of-25-host computation sees roughly
//! one migration every 45 minutes, the paper's observed rate.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Parameters of the per-host user/job model.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct UserModelConfig {
    /// Whether the model runs at all (performance measurements use a quiet
    /// cluster, "to avoid situations where the Ethernet network is
    /// overloaded ... we repeat each measurement twice and select the best").
    pub enabled: bool,
    /// Mean length of an active console session, seconds.
    pub mean_active_s: f64,
    /// Mean length of an idle period, seconds.
    pub mean_idle_s: f64,
    /// Poisson rate of full-time job arrivals per host, per second.
    pub job_rate_per_s: f64,
    /// Mean duration of a full-time job, seconds.
    pub mean_job_s: f64,
}

impl Default for UserModelConfig {
    fn default() -> Self {
        Self {
            enabled: true,
            mean_active_s: 30.0 * 60.0,
            mean_idle_s: 90.0 * 60.0,
            // ~1 migration per 45 min across 20 busy hosts: a job landing on
            // a busy host triggers one migration, so the per-host rate is
            // roughly 1 / (45 min × 20) ≈ 1 / 54000 s (plus a margin for
            // jobs on unused hosts, which trigger nothing).
            job_rate_per_s: 1.0 / 50_000.0,
            mean_job_s: 40.0 * 60.0,
        }
    }
}

impl UserModelConfig {
    /// A silent cluster (no users, no jobs) for performance measurement.
    pub fn quiet() -> Self {
        Self {
            enabled: false,
            ..Self::default()
        }
    }
}

/// Samples an exponential duration with the given mean.
pub fn exp_sample(rng: &mut impl Rng, mean: f64) -> f64 {
    let u: f64 = rng.gen_range(1.0e-12..1.0);
    -mean * u.ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn exponential_sample_mean() {
        let mut rng = SmallRng::seed_from_u64(7);
        let n = 20_000;
        let mean = 300.0;
        let sum: f64 = (0..n).map(|_| exp_sample(&mut rng, mean)).sum();
        let est = sum / n as f64;
        assert!((est - mean).abs() / mean < 0.05, "estimated mean {est}");
    }

    #[test]
    fn samples_are_positive() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..1000 {
            assert!(exp_sample(&mut rng, 10.0) > 0.0);
        }
    }

    #[test]
    fn default_rates_target_the_paper_migration_frequency() {
        let c = UserModelConfig::default();
        // expected job arrivals on 20 busy hosts over 45 minutes ≈ 1
        let expected = c.job_rate_per_s * 20.0 * 45.0 * 60.0;
        assert!((expected - 1.0).abs() < 0.3, "expected {expected}");
    }
}
