//! The per-message reliable transport (Appendix D, taken seriously).
//!
//! The legacy bus model *samples* unreliability as extra cost and lets every
//! transfer magically reach its receiver. This module is the protocol the
//! paper says the distributed program must actually run: "the distributed
//! program must check that messages are delivered, and resend messages if
//! necessary". Every halo exchange becomes an explicit DATA message with a
//! per-link sequence number; the receiver returns an ACK on the reverse
//! link; the sender keeps an RTT estimate (SRTT/RTTVAR, RFC-6298 style) and
//! retransmits on timeout with exponential backoff bounded by
//! [`TransportConfig::max_rto_s`]; duplicates are suppressed by sequence
//! number at the receiver; and after [`TransportConfig::max_attempts`]
//! transmissions the sender *reports* the link to the monitor as a delivery
//! failure — the observable event section 7 describes as "the TCP/IP
//! protocol fails to deliver messages after excessive retransmissions" —
//! while continuing to retransmit at the capped timeout so a healed
//! partition lets the run complete.
//!
//! The state machine only engages when the fault plan contains message-level
//! faults ([`crate::FaultPlan::has_message_faults`]); otherwise the
//! simulation keeps the legacy statistical wire path and this module draws
//! nothing — the bit-identity contract for fault-free plans.
//!
//! All state lives in ordered maps (`BTreeMap`/`BTreeSet`): iteration order
//! feeds event scheduling, so hash-map nondeterminism would leak into
//! simulated time.

use crate::fault::{FaultEvent, FaultPlan};
use std::collections::{BTreeMap, BTreeSet};

/// Tuning knobs of the reliable-transport state machine.
#[derive(Debug, Clone, Copy)]
pub struct TransportConfig {
    /// Wire size of an acknowledgement, bytes (header-only datagram).
    pub ack_bytes: f64,
    /// Wire size of a detector probe / probe reply, bytes.
    pub probe_bytes: f64,
    /// Retransmission-timeout floor, seconds.
    pub min_rto_s: f64,
    /// Retransmission-timeout cap, seconds — the bound on exponential
    /// backoff (and the retry period after a give-up).
    pub max_rto_s: f64,
    /// RTO before any RTT sample exists on a link, seconds.
    pub initial_rto_s: f64,
    /// Backoff multiplier applied to the RTO after each unanswered attempt.
    pub rto_backoff: f64,
    /// Transmissions after which the sender declares a delivery failure to
    /// the monitor (it keeps retransmitting at `max_rto_s` so the message
    /// still arrives if the network heals).
    pub max_attempts: u32,
    /// Upper bound on the injected reordering delay, seconds (a reordered
    /// DATA transmission is held back by a uniform draw below this before
    /// entering the wire).
    pub reorder_delay_s: f64,
}

impl Default for TransportConfig {
    fn default() -> Self {
        Self {
            ack_bytes: 64.0,
            probe_bytes: 128.0,
            min_rto_s: 0.2,
            max_rto_s: 15.0,
            initial_rto_s: 1.0,
            rto_backoff: 2.0,
            max_attempts: 8,
            reorder_delay_s: 0.05,
        }
    }
}

/// SRTT/RTTVAR round-trip estimator (RFC 6298 smoothing).
#[derive(Debug, Clone, Copy, Default)]
pub struct RttEstimator {
    /// Smoothed RTT, seconds (`None` until the first sample).
    pub srtt: Option<f64>,
    /// Smoothed mean deviation, seconds.
    pub rttvar: f64,
}

impl RttEstimator {
    /// Feeds one round-trip sample.
    pub fn sample(&mut self, rtt: f64) {
        match self.srtt {
            None => {
                self.srtt = Some(rtt);
                self.rttvar = rtt / 2.0;
            }
            Some(srtt) => {
                self.rttvar = 0.75 * self.rttvar + 0.25 * (srtt - rtt).abs();
                self.srtt = Some(0.875 * srtt + 0.125 * rtt);
            }
        }
    }

    /// The retransmission timeout this estimate implies:
    /// `clamp(srtt + 4·rttvar, min, max)`, or the initial RTO before any
    /// sample exists.
    pub fn rto(&self, cfg: &TransportConfig) -> f64 {
        match self.srtt {
            None => cfg.initial_rto_s,
            Some(srtt) => (srtt + 4.0 * self.rttvar).clamp(cfg.min_rto_s, cfg.max_rto_s),
        }
    }

    /// `srtt + k·rttvar` — the accrual detector's expected-arrival horizon
    /// (zero until a sample exists, so callers fall back to their fixed
    /// timeout).
    pub fn expected(&self, k: f64) -> f64 {
        self.srtt.map_or(0.0, |s| s + k * self.rttvar)
    }
}

/// One unacknowledged DATA message on a link.
#[derive(Debug, Clone, Copy)]
pub struct OutMsg {
    /// Payload bytes of the halo.
    pub bytes: f64,
    /// Integration step the halo belongs to.
    pub step: u64,
    /// Exchange id within the step plan.
    pub xch: usize,
    /// Simulated time of the first transmission.
    pub first_sent: f64,
    /// Transmissions so far.
    pub attempts: u32,
    /// Current retransmission timeout, seconds.
    pub rto: f64,
    /// The give-up threshold was crossed and the failure reported; further
    /// retransmissions continue at the capped RTO.
    pub gave_up: bool,
}

/// Sender/receiver state of the reliable transport, keyed by process-level
/// links `(from_proc, to_proc)`.
#[derive(Debug, Default)]
pub struct TransportState {
    /// Next sequence number per link (first message gets 1).
    next_seq: BTreeMap<(usize, usize), u64>,
    /// Unacknowledged DATA messages: `(from, to, seq) → state`.
    pub outstanding: BTreeMap<(usize, usize, u64), OutMsg>,
    /// Receiver-side duplicate suppression: sequence numbers already
    /// delivered to the solver, per link.
    delivered: BTreeMap<(usize, usize), BTreeSet<u64>>,
    /// Per-link RTT estimate (fed by first-attempt ACKs only — Karn's
    /// algorithm: a retransmitted message's ACK is ambiguous).
    rtt: BTreeMap<(usize, usize), RttEstimator>,
}

impl TransportState {
    /// Allocates the next sequence number on `from → to`.
    pub fn alloc_seq(&mut self, from: usize, to: usize) -> u64 {
        let seq = self.next_seq.entry((from, to)).or_insert(0);
        *seq += 1;
        *seq
    }

    /// The RTO a fresh message on `from → to` should be armed with.
    pub fn rto(&self, cfg: &TransportConfig, from: usize, to: usize) -> f64 {
        self.rtt
            .get(&(from, to))
            .copied()
            .unwrap_or_default()
            .rto(cfg)
    }

    /// Registers a freshly sent message keyed by `(from, to, seq)` and
    /// returns its armed RTO.
    pub fn register(
        &mut self,
        cfg: &TransportConfig,
        key: (usize, usize, u64),
        bytes: f64,
        step: u64,
        xch: usize,
        now: f64,
    ) -> f64 {
        let rto = self.rto(cfg, key.0, key.1);
        self.outstanding.insert(
            key,
            OutMsg {
                bytes,
                step,
                xch,
                first_sent: now,
                attempts: 1,
                rto,
                gave_up: false,
            },
        );
        rto
    }

    /// Processes an ACK for `(from, to, seq)` arriving at `now`. Returns the
    /// settled message, or `None` for a late/duplicate ACK. RTT is sampled
    /// only when the message was never retransmitted (Karn's algorithm).
    pub fn on_ack(&mut self, from: usize, to: usize, seq: u64, now: f64) -> Option<OutMsg> {
        let msg = self.outstanding.remove(&(from, to, seq))?;
        if msg.attempts == 1 {
            self.rtt
                .entry((from, to))
                .or_default()
                .sample(now - msg.first_sent);
        }
        Some(msg)
    }

    /// Receiver-side dedup: records delivery of `seq` on `from → to`,
    /// returning `true` if it was new (deliver to the solver) or `false`
    /// for a duplicate (suppress, but re-ACK).
    pub fn mark_delivered(&mut self, from: usize, to: usize, seq: u64) -> bool {
        self.delivered.entry((from, to)).or_default().insert(seq)
    }

    /// Crash recovery rolled the world back: every in-flight message will be
    /// re-sent with a fresh sequence number, so outstanding sender state is
    /// void (stale retransmission timers become no-ops when their lookup
    /// fails). Receiver dedup sets survive — they absorb stale wire
    /// arrivals from before the rollback.
    pub fn clear_outstanding(&mut self) {
        self.outstanding.clear();
    }
}

/// One `FaultEvent::MsgFault` window, tracked live by the simulation.
#[derive(Debug, Clone, Copy)]
pub struct MsgFaultWindow {
    /// Sending-process filter (`None` = any).
    pub from_proc: Option<usize>,
    /// Receiving-process filter (`None` = any).
    pub to_proc: Option<usize>,
    /// Window start, seconds.
    pub at: f64,
    /// Window length, seconds.
    pub duration: f64,
    /// Loss probability for matching DATA transmissions.
    pub loss: f64,
    /// Duplication probability.
    pub dup: f64,
    /// Reorder (hold-back) probability.
    pub reorder: f64,
    /// Whether the window is currently open.
    pub active: bool,
}

impl MsgFaultWindow {
    /// Whether an open window applies to a DATA transmission on
    /// `from → to`.
    pub fn matches(&self, from: usize, to: usize) -> bool {
        self.active
            && self.from_proc.is_none_or(|f| f == from)
            && self.to_proc.is_none_or(|t| t == to)
    }

    /// Whether the window applies loss to the reverse-direction ACK of a
    /// DATA message on `from → to` (an ACK is a wire message on the link it
    /// travels, so a lossy `from → to` window drops ACKs sent `from → to`).
    pub fn matches_ack(&self, ack_from: usize, ack_to: usize) -> bool {
        self.matches(ack_from, ack_to)
    }
}

/// One `FaultEvent::NetPartition`, tracked live by the simulation. Hosts
/// listed in `groups[i]` form island `i + 1`; every unlisted host — and the
/// monitor / file server — stays on island `0`. Transport messages (DATA,
/// ACK, detector probes) crossing islands are lost deterministically; dump
/// transfers to the file server are *not* partitioned (the paper's shared
/// file system rides a path we do not model separately — see DESIGN.md §13).
#[derive(Debug, Clone)]
pub struct PartitionState {
    /// Disjoint host sets, one per non-zero island.
    pub groups: Vec<Vec<usize>>,
    /// Partition start, seconds.
    pub at: f64,
    /// Seconds until it heals (`None` = permanent).
    pub heal_after: Option<f64>,
    /// Whether the partition is currently in force.
    pub active: bool,
}

impl PartitionState {
    /// Island of `host` (0 = the unlisted/monitor island).
    pub fn island_of(&self, host: usize) -> usize {
        self.groups
            .iter()
            .position(|g| g.contains(&host))
            .map_or(0, |i| i + 1)
    }

    /// Whether traffic between two hosts is severed right now.
    pub fn severs(&self, a: usize, b: usize) -> bool {
        self.active && self.island_of(a) != self.island_of(b)
    }

    /// Whether the monitor (island 0) cannot reach `host` right now.
    pub fn severs_monitor(&self, host: usize) -> bool {
        self.active && self.island_of(host) != 0
    }
}

/// Splits a fault plan into the live message-fault and partition tables the
/// simulation schedules open/close events against (indices into these
/// vectors ride on the events).
pub fn windows_from_plan(plan: &FaultPlan) -> (Vec<MsgFaultWindow>, Vec<PartitionState>) {
    let mut windows = Vec::new();
    let mut partitions = Vec::new();
    for ev in &plan.events {
        match ev {
            FaultEvent::MsgFault {
                from_proc,
                to_proc,
                at,
                duration,
                loss,
                dup,
                reorder,
            } => windows.push(MsgFaultWindow {
                from_proc: *from_proc,
                to_proc: *to_proc,
                at: at.max(0.0),
                duration: duration.max(0.0),
                loss: loss.clamp(0.0, 1.0),
                dup: dup.clamp(0.0, 1.0),
                reorder: reorder.clamp(0.0, 1.0),
                active: false,
            }),
            FaultEvent::NetPartition {
                groups,
                at,
                heal_after,
            } => partitions.push(PartitionState {
                groups: groups.clone(),
                at: at.max(0.0),
                heal_after: *heal_after,
                active: false,
            }),
            _ => {}
        }
    }
    (windows, partitions)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;

    #[test]
    fn rtt_estimator_converges_and_clamps() {
        let cfg = TransportConfig::default();
        let mut e = RttEstimator::default();
        assert_eq!(e.rto(&cfg), cfg.initial_rto_s, "no sample: initial RTO");
        e.sample(0.01);
        assert!((e.srtt.unwrap() - 0.01).abs() < 1e-12);
        assert!((e.rttvar - 0.005).abs() < 1e-12);
        // srtt + 4·rttvar = 0.03 < min_rto → clamped up
        assert_eq!(e.rto(&cfg), cfg.min_rto_s);
        for _ in 0..50 {
            e.sample(100.0);
        }
        assert!(
            e.srtt.unwrap() > 90.0,
            "srtt should converge to the samples"
        );
        assert_eq!(e.rto(&cfg), cfg.max_rto_s, "huge RTT clamps to the cap");
    }

    #[test]
    fn karn_skips_retransmitted_samples() {
        let cfg = TransportConfig::default();
        let mut t = TransportState::default();
        let seq = t.alloc_seq(0, 1);
        t.register(&cfg, (0, 1, seq), 100.0, 3, 0, 10.0);
        t.outstanding.get_mut(&(0, 1, seq)).unwrap().attempts = 2;
        let msg = t.on_ack(0, 1, seq, 12.0).unwrap();
        assert_eq!(msg.attempts, 2);
        assert!(
            !t.rtt.contains_key(&(0, 1)),
            "retransmitted ACK must not feed the estimator"
        );
        // a clean first-attempt exchange does feed it
        let seq2 = t.alloc_seq(0, 1);
        t.register(&cfg, (0, 1, seq2), 100.0, 3, 0, 20.0);
        t.on_ack(0, 1, seq2, 20.5).unwrap();
        assert!((t.rtt.get(&(0, 1)).unwrap().srtt.unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sequence_numbers_are_per_link_and_dedup_works() {
        let mut t = TransportState::default();
        assert_eq!(t.alloc_seq(0, 1), 1);
        assert_eq!(t.alloc_seq(0, 1), 2);
        assert_eq!(t.alloc_seq(1, 0), 1, "links are independent");
        assert!(t.mark_delivered(0, 1, 1), "first delivery is fresh");
        assert!(!t.mark_delivered(0, 1, 1), "second is a duplicate");
        assert!(t.mark_delivered(1, 0, 1), "reverse link is separate");
    }

    #[test]
    fn late_ack_returns_none() {
        let cfg = TransportConfig::default();
        let mut t = TransportState::default();
        let seq = t.alloc_seq(2, 3);
        t.register(&cfg, (2, 3, seq), 50.0, 0, 0, 0.0);
        assert!(t.on_ack(2, 3, seq, 1.0).is_some());
        assert!(t.on_ack(2, 3, seq, 2.0).is_none(), "duplicate ACK");
        t.clear_outstanding();
        assert!(t.outstanding.is_empty());
    }

    #[test]
    fn partition_islands() {
        let p = PartitionState {
            groups: vec![vec![3, 4], vec![7]],
            at: 0.0,
            heal_after: None,
            active: true,
        };
        assert_eq!(p.island_of(0), 0);
        assert_eq!(p.island_of(3), 1);
        assert_eq!(p.island_of(7), 2);
        assert!(p.severs(0, 3));
        assert!(p.severs(3, 7));
        assert!(!p.severs(3, 4));
        assert!(!p.severs(0, 1));
        assert!(p.severs_monitor(4));
        assert!(!p.severs_monitor(0));
        let healed = PartitionState { active: false, ..p };
        assert!(!healed.severs(0, 3));
    }

    #[test]
    fn window_matching_honours_filters() {
        let w = MsgFaultWindow {
            from_proc: Some(1),
            to_proc: None,
            at: 0.0,
            duration: 10.0,
            loss: 0.5,
            dup: 0.0,
            reorder: 0.0,
            active: true,
        };
        assert!(w.matches(1, 0));
        assert!(w.matches(1, 5));
        assert!(!w.matches(2, 0));
        let closed = MsgFaultWindow { active: false, ..w };
        assert!(!closed.matches(1, 0));
    }

    #[test]
    fn plan_splits_into_windows_and_partitions() {
        let plan = FaultPlan::empty()
            .crash(0, 5.0, None)
            .msg_fault(Some(1), Some(2), 3.0, 4.0, 0.9, 0.1, 0.2)
            .partition(vec![vec![0, 1]], 6.0, Some(10.0));
        let (w, p) = windows_from_plan(&plan);
        assert_eq!(w.len(), 1);
        assert_eq!(p.len(), 1);
        assert_eq!(w[0].from_proc, Some(1));
        assert!(!w[0].active && !p[0].active, "windows start closed");
        assert_eq!(p[0].heal_after, Some(10.0));
    }
}
