//! The discrete-event queue: a time-ordered heap with stable tie-breaking.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Events the cluster simulation processes.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A process finishes its current compute phase (guarded by its epoch).
    ComputeDone { proc_id: usize, epoch: u64 },
    /// The earliest in-flight network transfer completes (guarded by the
    /// network epoch).
    NetDone { epoch: u64 },
    /// The user of a host switches between active and idle.
    UserFlip { host: usize },
    /// A full-time background job arrives on a host.
    JobArrival { host: usize },
    /// A full-time background job finishes on a host.
    JobDeparture { host: usize },
    /// Re-plan the compute rate on a host whose smoothed CPU demand is still
    /// relaxing toward the instantaneous competitor count (the
    /// processor-sharing rate follows the 1-minute load average, so the rate
    /// keeps drifting between job arrivals/departures).
    CpuRelax { host: usize },
    /// Periodic check of the monitoring program.
    MonitorTick,
    /// Periodic checkpoint trigger.
    CheckpointTick,
    /// The staggered-save token reaches the next process.
    CheckpointToken { order_index: usize },
    /// A paused process finishes saving / loading its dump file.
    DumpTransferDone { proc_id: usize, epoch: u64 },
    /// The job-submit program retries its search for free hosts.
    SubmitRetry,
    /// A UDP halo datagram was lost; the acknowledgement timeout expired and
    /// the application resends it (Appendix D).
    ResendHalo {
        /// Receiving process.
        to_proc: usize,
        /// Step of the lost message.
        step: u64,
        /// Exchange id of the lost message.
        xch: usize,
        /// Sending process.
        from_proc: usize,
    },
    /// A slow receiver finishes the CPU-bound catch-up of deferred protocol
    /// work and the held-back halo below finally goes onto the wire (the
    /// rendezvous step-coupling's heterogeneity penalty).
    StagedCatchup {
        /// Receiving process (the one that paid the catch-up).
        to_proc: usize,
        /// Sending process whose staged halo is released.
        from_proc: usize,
        /// Payload bytes of the released halo.
        bytes: f64,
        /// Integration step of the message.
        step: u64,
        /// Exchange id of the message.
        xch: usize,
    },
    /// A UDP dump transfer was lost; resend it.
    ResendDump {
        /// The saving/loading process.
        proc_id: usize,
    },
    /// Channel reopening handshake completes, computation resumes (CONT).
    ResumeAll,
    /// An injected fault: the host goes down and its subprocess dies.
    HostCrash {
        /// Host index.
        host: usize,
    },
    /// A crashed host finishes rebooting and rejoins the pool.
    HostReboot {
        /// Host index.
        host: usize,
    },
    /// An injected transient stall begins on a host.
    HostFreezeStart {
        /// Host index.
        host: usize,
    },
    /// The transient stall ends; the host resumes making progress.
    HostFreezeEnd {
        /// Host index.
        host: usize,
    },
    /// An injected bus-saturation burst begins (every transfer started during
    /// the burst behaves as if the shared bus were congested).
    BusBurstStart,
    /// The bus-saturation burst ends.
    BusBurstEnd,
    /// The failure detector probes a suspect host for a heartbeat. The chain
    /// is guarded by the host's `probe_epoch`; `misses` counts consecutive
    /// unanswered probes so far (this probe included if it goes unanswered).
    HeartbeatProbe {
        /// Suspect host.
        host: usize,
        /// Consecutive misses including this probe.
        misses: u32,
        /// Guard against stale chains (host recovered, chain restarted).
        probe_epoch: u64,
    },
    /// Reliable transport: the retransmission timeout for an outstanding
    /// DATA message expired without an ACK. Stale timers (message already
    /// acknowledged, or a newer attempt re-armed the timer) are recognised
    /// by the `(seq, attempt)` pair and ignored.
    RetxTimer {
        /// Sending process.
        from_proc: usize,
        /// Receiving process.
        to_proc: usize,
        /// Per-link sequence number of the outstanding message.
        seq: u64,
        /// Attempt number this timer was armed for.
        attempt: u32,
    },
    /// Reliable transport: a DATA transmission held back by a reorder fault
    /// finally enters the wire. The loss decision was sampled at send time
    /// (so the RNG draw order is independent of the hold-back) and rides
    /// along in `lost`.
    TransportSend {
        /// Sending process.
        from_proc: usize,
        /// Receiving process.
        to_proc: usize,
        /// Per-link sequence number.
        seq: u64,
        /// Attempt number of the delayed transmission.
        attempt: u32,
        /// Pre-sampled loss verdict for this transmission.
        lost: bool,
    },
    /// An injected message-fault window opens (`idx` into the fault plan's
    /// message-fault table).
    MsgFaultStart {
        /// Window index.
        idx: usize,
    },
    /// The message-fault window closes.
    MsgFaultEnd {
        /// Window index.
        idx: usize,
    },
    /// An injected network partition begins (`idx` into the plan's
    /// partition table).
    PartitionStart {
        /// Partition index.
        idx: usize,
    },
    /// The network partition heals.
    PartitionEnd {
        /// Partition index.
        idx: usize,
    },
    /// End of the simulated measurement window.
    Stop,
}

#[derive(Debug, Clone)]
struct Scheduled {
    time: f64,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Scheduled {}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: invert so the earliest time pops first;
        // ties break by insertion order for determinism.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic discrete-event queue.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Scheduled>,
    now: f64,
    seq: u64,
}

impl EventQueue {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current simulation time in seconds.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Schedules `kind` to fire `delay` seconds from now.
    pub fn schedule(&mut self, delay: f64, kind: EventKind) {
        debug_assert!(delay >= 0.0 && delay.is_finite(), "bad delay {delay}");
        self.heap.push(Scheduled {
            time: self.now + delay,
            seq: self.seq,
            kind,
        });
        self.seq += 1;
    }

    /// Schedules `kind` at an absolute time (must not be in the past).
    pub fn schedule_at(&mut self, time: f64, kind: EventKind) {
        debug_assert!(time >= self.now, "scheduling into the past");
        self.heap.push(Scheduled {
            time,
            seq: self.seq,
            kind,
        });
        self.seq += 1;
    }

    /// Pops the next event, advancing the clock.
    pub fn pop(&mut self) -> Option<(f64, EventKind)> {
        let ev = self.heap.pop()?;
        debug_assert!(ev.time >= self.now);
        self.now = ev.time;
        Some((ev.time, ev.kind))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(5.0, EventKind::MonitorTick);
        q.schedule(1.0, EventKind::Stop);
        q.schedule(3.0, EventKind::CheckpointTick);
        let order: Vec<f64> = std::iter::from_fn(|| q.pop()).map(|(t, _)| t).collect();
        assert_eq!(order, vec![1.0, 3.0, 5.0]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule(2.0, EventKind::JobArrival { host: 0 });
        q.schedule(2.0, EventKind::JobArrival { host: 1 });
        q.schedule(2.0, EventKind::JobArrival { host: 2 });
        let hosts: Vec<usize> = std::iter::from_fn(|| q.pop())
            .map(|(_, k)| match k {
                EventKind::JobArrival { host } => host,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(hosts, vec![0, 1, 2]);
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule(1.0, EventKind::Stop);
        q.pop();
        assert_eq!(q.now(), 1.0);
        q.schedule(0.5, EventKind::Stop);
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, 1.5);
    }
}
