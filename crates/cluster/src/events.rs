//! The discrete-event core: a calendar/bucket queue with inline event
//! payloads.
//!
//! The queue keeps a *window* of `RING_BUCKETS` equal-width time buckets
//! covering `[base, horizon)`; events inside the window go into their bucket
//! (an unsorted `Vec` of nodes), events outside it into an overflow
//! min-heap. Scheduling is O(1) for in-window events; popping scans an
//! occupancy bitmap to the first non-empty bucket and takes that bucket's
//! `(time, seq)` minimum — O(bucket occupancy), which the adaptive bucket
//! width keeps at a handful of nodes. A bucket that grows past a small
//! threshold anyway (a synchronised burst — every host of a homogeneous
//! cluster finishing a phase at the same instant) is promoted once into a
//! *front min-heap*, turning what would be an O(k²) drain into O(k log k);
//! see `front`/`FRONT_HEAP_MIN`. When the window drains, the queue
//! re-anchors it at the overflow heap's minimum and re-tunes the width to
//! the smoothed inter-event gap, so both dense event storms and sparse idle
//! stretches stay cheap. Event payloads are `Copy` and live inline in the
//! nodes; only cancellable events carry a claim on the generation slab, so
//! the common schedule/pop path touches no indirect storage at all.
//!
//! Determinism: events fire in `(time, insertion seq)` order — exactly the
//! PR 6 `BinaryHeap` contract (`reference::ReferenceEventQueue` pins it, and
//! `tests/engine_equivalence.rs` checks the two against each other on random
//! schedules). Bucketing never reorders: buckets partition the time axis into
//! ascending disjoint intervals and the per-bucket scan takes the full
//! `(time, seq)` minimum.
//!
//! Time travel is a hard error: `schedule_at` into the past panics in every
//! build profile. The PR 6 queue only `debug_assert`ed, so a release build
//! would silently rewind `now` and corrupt every elapsed-time charge taken
//! downstream (`t_calc`, `t_com`, load-average decay, busy-time integrals).
//!
//! The `_cancellable` scheduling variants return an [`EventHandle`];
//! [`EventQueue::cancel`] invalidates
//! the event in O(1) (generation bump — the node is discarded lazily when a
//! scan meets it). The simulator's hot path keeps the PR 6 epoch-guard
//! pattern for `NetDone`/`ComputeDone` supersession — a stale pop costs
//! ~10 ns and keeps the event stream identical to PR 6 — and uses handles
//! where no epoch exists (e.g. the run loop's own `Stop` sentinel, which
//! earlier could leak into a subsequent `run()` call and end it early).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Events the cluster simulation processes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// A process finishes its current compute phase (guarded by its epoch).
    ComputeDone { proc_id: usize, epoch: u64 },
    /// The earliest in-flight network transfer completes (guarded by the
    /// network epoch).
    NetDone { epoch: u64 },
    /// The user of a host switches between active and idle.
    UserFlip { host: usize },
    /// A full-time background job arrives on a host.
    JobArrival { host: usize },
    /// A full-time background job finishes on a host.
    JobDeparture { host: usize },
    /// Re-plan the compute rate on a host whose smoothed CPU demand is still
    /// relaxing toward the instantaneous competitor count (the
    /// processor-sharing rate follows the 1-minute load average, so the rate
    /// keeps drifting between job arrivals/departures).
    CpuRelax { host: usize },
    /// Periodic check of the monitoring program.
    MonitorTick,
    /// Periodic checkpoint trigger.
    CheckpointTick,
    /// The staggered-save token reaches the next process.
    CheckpointToken { order_index: usize },
    /// A paused process finishes saving / loading its dump file.
    DumpTransferDone { proc_id: usize, epoch: u64 },
    /// The job-submit program retries its search for free hosts.
    SubmitRetry,
    /// A UDP halo datagram was lost; the acknowledgement timeout expired and
    /// the application resends it (Appendix D).
    ResendHalo {
        /// Receiving process.
        to_proc: usize,
        /// Step of the lost message.
        step: u64,
        /// Exchange id of the lost message.
        xch: usize,
        /// Sending process.
        from_proc: usize,
    },
    /// A slow receiver finishes the CPU-bound catch-up of deferred protocol
    /// work and the held-back halo below finally goes onto the wire (the
    /// rendezvous step-coupling's heterogeneity penalty).
    StagedCatchup {
        /// Receiving process (the one that paid the catch-up).
        to_proc: usize,
        /// Sending process whose staged halo is released.
        from_proc: usize,
        /// Payload bytes of the released halo.
        bytes: f64,
        /// Integration step of the message.
        step: u64,
        /// Exchange id of the message.
        xch: usize,
    },
    /// A UDP dump transfer was lost; resend it.
    ResendDump {
        /// The saving/loading process.
        proc_id: usize,
    },
    /// Channel reopening handshake completes, computation resumes (CONT).
    ResumeAll,
    /// An injected fault: the host goes down and its subprocess dies.
    HostCrash {
        /// Host index.
        host: usize,
    },
    /// A crashed host finishes rebooting and rejoins the pool.
    HostReboot {
        /// Host index.
        host: usize,
    },
    /// An injected transient stall begins on a host.
    HostFreezeStart {
        /// Host index.
        host: usize,
    },
    /// The transient stall ends; the host resumes making progress.
    HostFreezeEnd {
        /// Host index.
        host: usize,
    },
    /// An injected bus-saturation burst begins (every transfer started during
    /// the burst behaves as if the shared bus were congested).
    BusBurstStart,
    /// The bus-saturation burst ends.
    BusBurstEnd,
    /// The failure detector probes a suspect host for a heartbeat. The chain
    /// is guarded by the host's `probe_epoch`; `misses` counts consecutive
    /// unanswered probes so far (this probe included if it goes unanswered).
    HeartbeatProbe {
        /// Suspect host.
        host: usize,
        /// Consecutive misses including this probe.
        misses: u32,
        /// Guard against stale chains (host recovered, chain restarted).
        probe_epoch: u64,
    },
    /// Reliable transport: the retransmission timeout for an outstanding
    /// DATA message expired without an ACK. Stale timers (message already
    /// acknowledged, or a newer attempt re-armed the timer) are recognised
    /// by the `(seq, attempt)` pair and ignored.
    RetxTimer {
        /// Sending process.
        from_proc: usize,
        /// Receiving process.
        to_proc: usize,
        /// Per-link sequence number of the outstanding message.
        seq: u64,
        /// Attempt number this timer was armed for.
        attempt: u32,
    },
    /// Reliable transport: a DATA transmission held back by a reorder fault
    /// finally enters the wire. The loss decision was sampled at send time
    /// (so the RNG draw order is independent of the hold-back) and rides
    /// along in `lost`.
    TransportSend {
        /// Sending process.
        from_proc: usize,
        /// Receiving process.
        to_proc: usize,
        /// Per-link sequence number.
        seq: u64,
        /// Attempt number of the delayed transmission.
        attempt: u32,
        /// Pre-sampled loss verdict for this transmission.
        lost: bool,
    },
    /// An injected message-fault window opens (`idx` into the fault plan's
    /// message-fault table).
    MsgFaultStart {
        /// Window index.
        idx: usize,
    },
    /// The message-fault window closes.
    MsgFaultEnd {
        /// Window index.
        idx: usize,
    },
    /// An injected network partition begins (`idx` into the plan's
    /// partition table).
    PartitionStart {
        /// Partition index.
        idx: usize,
    },
    /// The network partition heals.
    PartitionEnd {
        /// Partition index.
        idx: usize,
    },
    /// End of the simulated measurement window.
    Stop,
}

/// A claim on a scheduled event, for O(1) cancellation. Stale handles (the
/// event already fired or was cancelled) are recognised and ignored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventHandle {
    slot: u32,
    gen: u32,
}

/// Slot marker for events scheduled without a handle: no liveness slot, the
/// node is unconditionally live and never touches the generation slab.
const NO_SLOT: u32 = u32::MAX;

/// A queue node. The payload is `Copy` and lives inline — the common
/// (non-cancellable) schedule/pop path therefore never takes the random
/// slab access an indirect payload would cost. Only cancellable events
/// carry a `(slot, gen)` claim into the generation slab.
#[derive(Debug, Clone, Copy)]
struct Node<K> {
    time: f64,
    seq: u64,
    kind: K,
    slot: u32,
    gen: u32,
}

impl<K> Node<K> {
    #[inline]
    fn key(&self) -> (f64, u64) {
        (self.time, self.seq)
    }
}

/// Overflow-heap ordering: earliest `(time, seq)` pops first.
#[derive(Debug, Clone, Copy)]
struct FarNode<K>(Node<K>);

impl<K> PartialEq for FarNode<K> {
    fn eq(&self, other: &Self) -> bool {
        self.0.time == other.0.time && self.0.seq == other.0.seq
    }
}
impl<K> Eq for FarNode<K> {}
impl<K> PartialOrd for FarNode<K> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<K> Ord for FarNode<K> {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .0
            .time
            .total_cmp(&self.0.time)
            .then_with(|| other.0.seq.cmp(&self.0.seq))
    }
}

/// Number of buckets in the calendar window. Power of two, sized so the
/// occupancy bitmap is 16 machine words.
const RING_BUCKETS: usize = 1024;
const BITMAP_WORDS: usize = RING_BUCKETS / 64;
/// Smoothing factor (1/2^k) of the inter-event-gap estimate driving the
/// adaptive bucket width.
const GAP_EWMA_SHIFT: u32 = 6;
/// Target bucket width as a multiple of the mean inter-event gap (a few
/// events per bucket keeps the per-pop scan short without wasting buckets).
const WIDTH_GAIN: f64 = 4.0;
/// Buckets at most this big are drained by linear scan; bigger ones (a
/// synchronised event burst the adaptive width cannot spread) are promoted
/// to the front min-heap. Scan beats heapify while a bucket fits in a
/// couple of cache lines.
const FRONT_HEAP_MIN: usize = 9;

/// The cluster simulation's event queue (the calendar queue specialised to
/// [`EventKind`] — the name every pre-PR 9 call site uses).
pub type EventQueue = CalendarQueue<EventKind>;

/// A deterministic discrete-event queue: calendar buckets for the near
/// window, an overflow heap for everything beyond it, payloads in a slab.
///
/// Generic over the inline `Copy` payload so other event-driven layers (the
/// `subsonic-sched` job stream) reuse the engine with their own event types;
/// [`EventQueue`] is the cluster simulation's specialisation.
#[derive(Debug)]
pub struct CalendarQueue<K: Copy> {
    /// Liveness generations of cancellable events (cancel/fire bumps the
    /// generation, invalidating outstanding handles and nodes).
    slab: Vec<u32>,
    free: Vec<u32>,
    buckets: Vec<Vec<Node<K>>>,
    /// One bit per bucket: does it hold any node?
    occupied: [u64; BITMAP_WORDS],
    /// Nodes (live or stale) currently in the buckets.
    bucket_nodes: usize,
    /// Events outside the window (before `base` or at/after `horizon`).
    far: BinaryHeap<FarNode<K>>,
    /// Window start. The window covers `[base, horizon)`.
    base: f64,
    /// Bucket width in seconds.
    width: f64,
    /// `1.0 / width`, so `bucket_of` multiplies instead of divides. Bucket
    /// boundaries may land one ulp off a true division's, which is harmless:
    /// the mapping stays monotone in time and insert/pop use the same one.
    inv_width: f64,
    /// Window end: `base + RING_BUCKETS * width`.
    horizon: f64,
    /// The *front* bucket — the one pops are currently draining — promoted
    /// into a min-heap, while all other buckets stay unsorted push-only
    /// `Vec`s. Without this, a burst of synchronised events (every host of a
    /// big homogeneous cluster finishing its compute phase at the same
    /// instant) lands in one bucket and every pop re-walks it — an O(n²)
    /// stall per step at 4096 hosts. Promotion heapifies the bucket once
    /// (O(k)); pops and same-bucket inserts are then O(log k).
    front: BinaryHeap<FarNode<K>>,
    /// Which bucket `front` holds, or `usize::MAX`.
    front_bucket: usize,
    /// Smoothed gap between consecutive distinct pop times.
    gap_ewma: f64,
    now: f64,
    seq: u64,
    live: usize,
    /// Cancelled-but-not-yet-removed nodes still sitting in a bucket or the
    /// overflow heap. While zero (the common case — the simulator mostly
    /// supersedes by epoch instead of cancelling), scans skip the per-node
    /// slab generation check and run over the contiguous node vector alone.
    stale: usize,
}

impl<K: Copy> Default for CalendarQueue<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Copy> CalendarQueue<K> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        let width = 1e-3;
        Self {
            slab: Vec::new(),
            free: Vec::new(),
            buckets: (0..RING_BUCKETS).map(|_| Vec::new()).collect(),
            occupied: [0; BITMAP_WORDS],
            bucket_nodes: 0,
            far: BinaryHeap::new(),
            base: 0.0,
            width,
            inv_width: 1.0 / width,
            horizon: RING_BUCKETS as f64 * width,
            front: BinaryHeap::new(),
            front_bucket: usize::MAX,
            gap_ewma: 0.0,
            now: 0.0,
            seq: 0,
            live: 0,
            stale: 0,
        }
    }

    /// Current simulation time in seconds.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Number of pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether the queue has no pending events.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Schedules `kind` to fire `delay` seconds from now. A negative or
    /// non-finite delay is a hard error in every build profile.
    pub fn schedule(&mut self, delay: f64, kind: K) {
        assert!(
            delay >= 0.0 && delay.is_finite(),
            "event scheduled with bad delay {delay} (now {})",
            self.now
        );
        // `now + delay` can round down to `now` for tiny delays but never
        // below it, so the schedule_at guard holds by construction.
        self.insert(self.now + delay, kind, NO_SLOT, 0);
    }

    /// Schedules `kind` at an absolute time. Scheduling into the past is a
    /// hard error in every build profile: the PR 6 queue only checked this
    /// under `debug_assertions`, so release builds would silently rewind the
    /// clock at pop time and corrupt every elapsed-time charge downstream.
    pub fn schedule_at(&mut self, time: f64, kind: K) {
        // `time >= now` rejects NaN and -inf too; `+inf` stays legal as the
        // "no deadline" sentinel (`run(f64::INFINITY, ..)`) and parks in the
        // overflow heap, popping after every finite event.
        assert!(
            time >= self.now,
            "event scheduled into the past: t={time} < now={}",
            self.now
        );
        self.insert(time, kind, NO_SLOT, 0);
    }

    /// [`Self::schedule`], returning a handle for O(1) cancellation.
    pub fn schedule_cancellable(&mut self, delay: f64, kind: K) -> EventHandle {
        assert!(
            delay >= 0.0 && delay.is_finite(),
            "event scheduled with bad delay {delay} (now {})",
            self.now
        );
        let h = self.claim_slot();
        self.insert(self.now + delay, kind, h.slot, h.gen);
        h
    }

    /// [`Self::schedule_at`], returning a handle for O(1) cancellation.
    pub fn schedule_at_cancellable(&mut self, time: f64, kind: K) -> EventHandle {
        assert!(
            time >= self.now,
            "event scheduled into the past: t={time} < now={}",
            self.now
        );
        let h = self.claim_slot();
        self.insert(time, kind, h.slot, h.gen);
        h
    }

    /// Cancels a scheduled event in O(1). Returns `true` if the event was
    /// still pending; stale handles (already fired or cancelled) return
    /// `false` and do nothing. The queue node is discarded lazily when a
    /// bucket scan or heap pop meets it.
    pub fn cancel(&mut self, h: EventHandle) -> bool {
        match self.slab.get_mut(h.slot as usize) {
            Some(g) if *g == h.gen => {
                *g += 1;
                self.free.push(h.slot);
                self.live -= 1;
                self.stale += 1;
                true
            }
            _ => false,
        }
    }

    /// Pops the next event, advancing the clock.
    pub fn pop(&mut self) -> Option<(f64, K)> {
        loop {
            // Drop stale overflow tops so the window/far comparison below
            // sees a live minimum.
            if self.stale > 0 {
                while let Some(&FarNode(n)) = self.far.peek() {
                    if self.is_live(&n) {
                        break;
                    }
                    self.far.pop();
                    self.stale -= 1;
                }
            }
            if self.bucket_nodes == 0 {
                let &FarNode(top) = self.far.peek()?;
                // A non-finite top (the +inf Stop sentinel) can't anchor a
                // window — take it directly instead of re-anchoring at inf.
                if top.time.is_finite() && (top.time >= self.horizon || top.time < self.base) {
                    self.rewindow(top.time);
                    continue;
                }
                // A live far node inside the window can only appear through
                // rewindow itself, which drains them; nothing to do but take
                // it directly.
                self.far.pop();
                return Some(self.take(top));
            }
            // Buckets partition ascending time intervals, so the first
            // occupied bucket holds the global (time, seq) minimum among
            // bucketed nodes.
            let start = self.bucket_of(self.now.max(self.base));
            let Some(b) = self.next_occupied(start) else {
                // Only stale-marked counts remained; fall back to a full
                // rebuild of the invariant by clearing the counter.
                debug_assert_eq!(self.bucket_nodes, 0);
                self.bucket_nodes = 0;
                continue;
            };
            if self.front_bucket != b {
                // An insert between `now` and the old front's range can make
                // an earlier bucket the new front; demote the old heap back
                // to its (unsorted) bucket first.
                if !self.front.is_empty() {
                    let old = std::mem::take(&mut self.front);
                    self.buckets[self.front_bucket].extend(old.into_iter().map(|f| f.0));
                }
                if self.buckets[b].len() < FRONT_HEAP_MIN {
                    // Common case: a handful of nodes — take the minimum by
                    // linear scan, no promotion.
                    if let Some((min, pos)) = self.scan_bucket(b) {
                        if let Some(&FarNode(top)) = self.far.peek() {
                            if top.time < self.base && top.key() < min.key() {
                                self.far.pop();
                                return Some(self.take(top));
                            }
                        }
                        let bucket = &mut self.buckets[b];
                        bucket.swap_remove(pos);
                        self.bucket_nodes -= 1;
                        if bucket.is_empty() {
                            self.occupied[b / 64] &= !(1u64 << (b % 64));
                        }
                        return Some(self.take(min));
                    }
                    // only stale nodes lived here
                    self.occupied[b / 64] &= !(1u64 << (b % 64));
                    continue;
                }
                // Synchronised burst: heapify once, then O(log k) drains.
                self.front = std::mem::take(&mut self.buckets[b])
                    .into_iter()
                    .map(FarNode)
                    .collect();
                self.front_bucket = b;
            }
            while let Some(&FarNode(min)) = self.front.peek() {
                if self.stale > 0 && !self.is_live(&min) {
                    self.front.pop();
                    self.bucket_nodes -= 1;
                    self.stale -= 1;
                    continue;
                }
                // An out-of-window event parked in `far` can precede the
                // bucket minimum only if it lies before `base`.
                if let Some(&FarNode(top)) = self.far.peek() {
                    if top.time < self.base && top.key() < min.key() {
                        self.far.pop();
                        return Some(self.take(top));
                    }
                }
                self.front.pop();
                self.bucket_nodes -= 1;
                if self.front.is_empty() {
                    self.occupied[b / 64] &= !(1u64 << (b % 64));
                }
                return Some(self.take(min));
            }
            // only stale nodes lived here; clear the bucket's bit and rescan
            self.occupied[b / 64] &= !(1u64 << (b % 64));
        }
    }

    /// Approximate resident bytes of the queue's structures (capacity-based;
    /// the scale experiment uses this for its per-host memory bound).
    pub fn approx_bytes(&self) -> usize {
        let nodes: usize = self.buckets.iter().map(|b| b.capacity()).sum::<usize>()
            + self.far.capacity()
            + self.front.capacity();
        (self.slab.capacity() + self.free.capacity()) * std::mem::size_of::<u32>()
            + nodes * std::mem::size_of::<Node<K>>()
            + RING_BUCKETS * std::mem::size_of::<Vec<Node<K>>>()
            + std::mem::size_of::<Self>()
    }

    // ------------------------------------------------------------------
    // internals
    // ------------------------------------------------------------------

    #[inline]
    fn bucket_of(&self, time: f64) -> usize {
        debug_assert!(time >= self.base && time < self.horizon);
        (((time - self.base) * self.inv_width) as usize).min(RING_BUCKETS - 1)
    }

    /// Whether a node is still pending (not cancelled). Handle-free nodes
    /// are always live.
    #[inline]
    fn is_live(&self, n: &Node<K>) -> bool {
        n.slot == NO_SLOT || self.slab[n.slot as usize] == n.gen
    }

    /// Allocates a liveness slot for a cancellable event.
    fn claim_slot(&mut self) -> EventHandle {
        match self.free.pop() {
            Some(slot) => EventHandle {
                slot,
                gen: self.slab[slot as usize],
            },
            None => {
                self.slab.push(0);
                EventHandle {
                    slot: (self.slab.len() - 1) as u32,
                    gen: 0,
                }
            }
        }
    }

    fn insert(&mut self, time: f64, kind: K, slot: u32, gen: u32) {
        let node = Node {
            time,
            seq: self.seq,
            kind,
            slot,
            gen,
        };
        self.seq += 1;
        self.live += 1;
        if time >= self.base && time < self.horizon {
            let b = self.bucket_of(time);
            if b == self.front_bucket {
                self.front.push(FarNode(node));
            } else {
                self.buckets[b].push(node);
            }
            self.occupied[b / 64] |= 1u64 << (b % 64);
            self.bucket_nodes += 1;
        } else {
            self.far.push(FarNode(node));
        }
    }

    /// Consumes a live node: frees its slot, advances the clock, returns the
    /// event.
    fn take(&mut self, node: Node<K>) -> (f64, K) {
        debug_assert!(self.is_live(&node), "take() on a stale node");
        if node.slot != NO_SLOT {
            // invalidate the outstanding handle now that the event fired
            self.slab[node.slot as usize] += 1;
            self.free.push(node.slot);
        }
        let kind = node.kind;
        self.live -= 1;
        assert!(
            node.time >= self.now,
            "event queue time travel: popping t={} behind now={}",
            node.time,
            self.now
        );
        let gap = node.time - self.now;
        if gap > 0.0 && gap.is_finite() {
            // EWMA of the inter-event gap drives the adaptive bucket width.
            self.gap_ewma += (gap - self.gap_ewma) / (1u64 << GAP_EWMA_SHIFT) as f64;
        }
        self.now = node.time;
        (node.time, kind)
    }

    /// First occupied bucket at or after `start`, via the occupancy bitmap.
    #[inline]
    fn next_occupied(&self, start: usize) -> Option<usize> {
        let mut w = start / 64;
        let mut word = self.occupied[w] & (!0u64 << (start % 64));
        loop {
            if word != 0 {
                return Some(w * 64 + word.trailing_zeros() as usize);
            }
            w += 1;
            if w == BITMAP_WORDS {
                return None;
            }
            word = self.occupied[w];
        }
    }

    /// Minimum live `(time, seq)` node in bucket `b` and its index, pruning
    /// stale nodes on the way. Returns `None` (with the bucket emptied of
    /// stale nodes) if nothing lives. The returned index stays valid: `best`
    /// is only ever set at already-visited positions, and `swap_remove` at
    /// the cursor moves elements only from the unvisited tail.
    fn scan_bucket(&mut self, b: usize) -> Option<(Node<K>, usize)> {
        let slab = &self.slab;
        let bucket = &mut self.buckets[b];
        let mut best: Option<(Node<K>, usize)> = None;
        if self.stale == 0 {
            // Fast path: nothing is cancelled anywhere, so every node is
            // live and the scan never touches the slab.
            for (i, n) in bucket.iter().enumerate() {
                if best.is_none_or(|(m, _)| n.key() < m.key()) {
                    best = Some((*n, i));
                }
            }
            return best;
        }
        let mut i = 0;
        while i < bucket.len() {
            let n = bucket[i];
            if n.slot != NO_SLOT && slab[n.slot as usize] != n.gen {
                bucket.swap_remove(i);
                self.bucket_nodes -= 1;
                self.stale -= 1;
                continue;
            }
            if best.is_none_or(|(m, _)| n.key() < m.key()) {
                best = Some((n, i));
            }
            i += 1;
        }
        best
    }

    /// Re-anchors the calendar window at `t_min` (the earliest pending far
    /// event), re-tunes the bucket width to the smoothed inter-event gap and
    /// pulls every overflow event that now fits into the window.
    fn rewindow(&mut self, t_min: f64) {
        debug_assert_eq!(self.bucket_nodes, 0);
        // the window re-maps bucket indices; the (empty) front heap must
        // not claim one of the new buckets
        self.front_bucket = usize::MAX;
        if self.gap_ewma > 0.0 {
            self.width = (self.gap_ewma * WIDTH_GAIN).clamp(1e-12, 1e15);
            self.inv_width = 1.0 / self.width;
        }
        self.base = t_min;
        self.horizon = t_min + RING_BUCKETS as f64 * self.width;
        while let Some(&FarNode(n)) = self.far.peek() {
            if self.stale > 0 && !self.is_live(&n) {
                self.far.pop();
                self.stale -= 1;
                continue;
            }
            if n.time >= self.horizon {
                break;
            }
            self.far.pop();
            let b = self.bucket_of(n.time);
            self.buckets[b].push(n);
            self.occupied[b / 64] |= 1u64 << (b % 64);
            self.bucket_nodes += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(5.0, EventKind::MonitorTick);
        q.schedule(1.0, EventKind::Stop);
        q.schedule(3.0, EventKind::CheckpointTick);
        let order: Vec<f64> = std::iter::from_fn(|| q.pop()).map(|(t, _)| t).collect();
        assert_eq!(order, vec![1.0, 3.0, 5.0]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule(2.0, EventKind::JobArrival { host: 0 });
        q.schedule(2.0, EventKind::JobArrival { host: 1 });
        q.schedule(2.0, EventKind::JobArrival { host: 2 });
        let hosts: Vec<usize> = std::iter::from_fn(|| q.pop())
            .map(|(_, k)| match k {
                EventKind::JobArrival { host } => host,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(hosts, vec![0, 1, 2]);
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule(1.0, EventKind::Stop);
        q.pop();
        assert_eq!(q.now(), 1.0);
        q.schedule(0.5, EventKind::Stop);
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, 1.5);
    }

    #[test]
    #[should_panic(expected = "scheduled into the past")]
    fn past_time_scheduling_is_a_hard_error() {
        let mut q = EventQueue::new();
        q.schedule(1.0, EventKind::Stop);
        q.pop();
        q.schedule_at(0.5, EventKind::Stop);
    }

    #[test]
    #[should_panic(expected = "bad delay")]
    fn negative_delay_is_a_hard_error() {
        let mut q = EventQueue::new();
        q.schedule(-1.0e-9, EventKind::Stop);
    }

    #[test]
    fn past_time_guard_is_not_debug_only() {
        // The regression the headline bugfix pins: the guard must fire with
        // `panic::catch_unwind` in *this* build profile, whatever it is —
        // check.sh runs this test in both dev and release.
        let caught = std::panic::catch_unwind(|| {
            let mut q = EventQueue::new();
            q.schedule(2.0, EventKind::Stop);
            q.pop();
            q.schedule_at(1.0, EventKind::MonitorTick);
        });
        assert!(
            caught.is_err(),
            "past-time schedule_at must panic in every build profile"
        );
    }

    #[test]
    fn cancellation_by_handle() {
        let mut q = EventQueue::new();
        let a = q.schedule_cancellable(1.0, EventKind::MonitorTick);
        let b = q.schedule_cancellable(2.0, EventKind::CheckpointTick);
        assert_eq!(q.len(), 2);
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double cancel is a stale no-op");
        assert_eq!(q.len(), 1);
        let (t, kind) = q.pop().unwrap();
        assert_eq!(t, 2.0);
        assert_eq!(kind, EventKind::CheckpointTick);
        assert!(!q.cancel(b), "fired events leave stale handles");
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancelled_slots_are_reused_safely() {
        let mut q = EventQueue::new();
        let a = q.schedule_cancellable(5.0, EventKind::MonitorTick);
        assert!(q.cancel(a));
        // the freed slot is recycled for a different event; the stale node
        // for `a` must not resurrect it
        q.schedule_cancellable(1.0, EventKind::Stop);
        let (t, kind) = q.pop().unwrap();
        assert_eq!((t, kind), (1.0, EventKind::Stop));
        assert!(q.pop().is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn far_events_cross_windows_in_order() {
        // events far beyond the initial window (incl. a 1e9 sentinel) pop in
        // global order across several re-anchorings
        let mut q = EventQueue::new();
        q.schedule_at(1.0e9, EventKind::Stop);
        q.schedule(0.5, EventKind::MonitorTick);
        q.schedule(2_000.0, EventKind::CheckpointTick);
        q.schedule(40.0, EventKind::SubmitRetry);
        let times: Vec<f64> = std::iter::from_fn(|| q.pop()).map(|(t, _)| t).collect();
        assert_eq!(times, vec![0.5, 40.0, 2_000.0, 1.0e9]);
    }

    #[test]
    fn dense_same_time_bursts_stay_fifo() {
        let mut q = EventQueue::new();
        for round in 0..50u64 {
            let t = round as f64 * 1e-4;
            for h in 0..20 {
                q.schedule_at(t, EventKind::JobArrival { host: h });
            }
            for want in 0..20 {
                let (pt, kind) = q.pop().unwrap();
                assert_eq!(pt, t);
                assert_eq!(kind, EventKind::JobArrival { host: want });
            }
        }
        assert!(q.is_empty());
    }

    #[test]
    fn infinite_deadline_sentinel_pops_last_and_is_cancellable() {
        // `run(f64::INFINITY, ..)` schedules its Stop sentinel at +inf; the
        // queue must accept it, keep it behind every finite event, and not
        // hang trying to anchor a bucket window at infinity.
        let mut q = EventQueue::new();
        let stop = q.schedule_at_cancellable(f64::INFINITY, EventKind::Stop);
        q.schedule(1.0, EventKind::MonitorTick);
        q.schedule(2.0, EventKind::CheckpointTick);
        assert_eq!(q.pop().unwrap().0, 1.0);
        assert_eq!(q.pop().unwrap().0, 2.0);
        assert!(q.cancel(stop));
        assert!(q.pop().is_none());

        let mut q = EventQueue::new();
        q.schedule_at(f64::INFINITY, EventKind::Stop);
        let (t, kind) = q.pop().unwrap();
        assert_eq!(t, f64::INFINITY);
        assert_eq!(kind, EventKind::Stop);
    }

    #[test]
    fn memory_footprint_is_reported() {
        let mut q = EventQueue::new();
        for i in 0..1000 {
            q.schedule(i as f64 * 0.01, EventKind::MonitorTick);
        }
        assert!(q.approx_bytes() > 1000 * std::mem::size_of::<Node<EventKind>>());
    }
}
