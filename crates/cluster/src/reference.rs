//! PR 6 reference implementations of the event queue and the network model,
//! pinned verbatim so the rewritten engine can be checked against them.
//!
//! The production [`crate::events::EventQueue`] (calendar/bucket queue over
//! slab-allocated events) and [`crate::bus::NetworkModel`] (virtual-service-
//! time bus with an indexed completion heap) replace these O(n)-per-event
//! structures, but their *observable* contracts — pop order, completion
//! order, completion times, counter and RNG-draw semantics — are defined by
//! the originals. `tests/engine_equivalence.rs` runs both side by side on
//! randomized workloads (the `ScalarReference` pinning pattern from the
//! solver kernels applied to the discrete-event core).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use rand::Rng;

use crate::bus::{Completion, NetworkConfig, NetworkKindCfg, TransferPayload, Transport};
use crate::events::EventKind;

#[derive(Debug, Clone)]
struct Scheduled {
    time: f64,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Scheduled {}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: invert so the earliest time pops first;
        // ties break by insertion order for determinism.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The PR 6 event queue: a `BinaryHeap` of owned events.
#[derive(Debug, Default)]
pub struct ReferenceEventQueue {
    heap: BinaryHeap<Scheduled>,
    now: f64,
    seq: u64,
}

impl ReferenceEventQueue {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current simulation time in seconds.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Schedules `kind` to fire `delay` seconds from now.
    pub fn schedule(&mut self, delay: f64, kind: EventKind) {
        debug_assert!(delay >= 0.0 && delay.is_finite(), "bad delay {delay}");
        self.heap.push(Scheduled {
            time: self.now + delay,
            seq: self.seq,
            kind,
        });
        self.seq += 1;
    }

    /// Schedules `kind` at an absolute time.
    pub fn schedule_at(&mut self, time: f64, kind: EventKind) {
        debug_assert!(time >= self.now, "scheduling into the past");
        self.heap.push(Scheduled {
            time,
            seq: self.seq,
            kind,
        });
        self.seq += 1;
    }

    /// Pops the next event, advancing the clock.
    pub fn pop(&mut self) -> Option<(f64, EventKind)> {
        let ev = self.heap.pop()?;
        debug_assert!(ev.time >= self.now);
        self.now = ev.time;
        Some((ev.time, ev.kind))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[derive(Debug, Clone)]
struct RefTransfer {
    remaining: f64,
    rate_scale: f64,
    payload: TransferPayload,
    lost: bool,
    started: f64,
}

/// The PR 6 network model: per-transfer residual byte counters re-walked on
/// every event (`advance`/`next_completion` full scans, `Vec::remove`
/// compaction in `complete_due`).
#[derive(Debug)]
pub struct ReferenceNetworkModel {
    cfg: NetworkConfig,
    transfers: Vec<RefTransfer>,
    last_advance: f64,
    epoch: u64,
    forced_saturation: bool,
    /// Total payload bytes moved (excluding overhead and retransmissions).
    pub bytes_delivered: f64,
    /// Messages delivered.
    pub messages: u64,
    /// TCP give-up events.
    pub errors: u64,
    /// UDP datagrams lost.
    pub losses: u64,
    /// Integral of (active transfers > 0) — bus busy time in seconds.
    pub busy_time: f64,
}

impl ReferenceNetworkModel {
    /// Creates an idle network.
    pub fn new(cfg: NetworkConfig) -> Self {
        Self {
            cfg,
            transfers: Vec::new(),
            last_advance: 0.0,
            epoch: 0,
            forced_saturation: false,
            bytes_delivered: 0.0,
            messages: 0,
            errors: 0,
            losses: 0,
            busy_time: 0.0,
        }
    }

    /// Epoch guarding `NetDone` events.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of in-flight transfers.
    pub fn active(&self) -> usize {
        self.transfers.len()
    }

    /// Forces saturation behaviour regardless of the in-flight count.
    pub fn set_forced_saturation(&mut self, on: bool) {
        self.forced_saturation = on;
    }

    fn per_transfer_rate(&self) -> f64 {
        let b = self.cfg.bytes_per_sec();
        match self.cfg.kind {
            NetworkKindCfg::SharedBus => b / self.transfers.len().max(1) as f64,
            NetworkKindCfg::Switched => b,
        }
    }

    fn advance(&mut self, now: f64) {
        let dt = (now - self.last_advance).max(0.0);
        if dt > 0.0 && !self.transfers.is_empty() {
            let moved = dt * self.per_transfer_rate();
            for t in &mut self.transfers {
                t.remaining -= moved * t.rate_scale;
            }
            self.busy_time += dt;
        }
        self.last_advance = now;
    }

    /// Starts a transfer (saturation rounds sampled exactly like PR 6).
    pub fn start_transfer_faulted(
        &mut self,
        now: f64,
        bytes: f64,
        rate_scale: f64,
        payload: TransferPayload,
        rng: &mut impl Rng,
        force_lost: bool,
    ) {
        debug_assert!(
            rate_scale > 0.0 && rate_scale <= 1.0,
            "bad scale {rate_scale}"
        );
        self.advance(now);
        let saturated = self.cfg.kind == NetworkKindCfg::SharedBus
            && (self.forced_saturation || self.transfers.len() >= self.cfg.saturation_transfers);
        let (overhead_bytes, rounds, lost) = match self.cfg.transport {
            Transport::Tcp => {
                let overhead = self.cfg.overhead_s * self.cfg.bytes_per_sec();
                let mut rounds = 1u32;
                if saturated {
                    while rounds < self.cfg.max_transmissions + 2
                        && rng.gen::<f64>() < self.cfg.collision_prob
                    {
                        rounds += 1;
                    }
                }
                if rounds > self.cfg.max_transmissions {
                    self.errors += 1;
                    rounds = self.cfg.max_transmissions;
                }
                (overhead, rounds, false)
            }
            Transport::Udp => {
                let overhead = self.cfg.udp_overhead_s * self.cfg.bytes_per_sec();
                let lost = saturated && rng.gen::<f64>() < self.cfg.udp_loss_prob;
                if lost {
                    self.losses += 1;
                }
                (overhead, 1, lost)
            }
        };
        let lost = lost || force_lost;
        let total = (bytes + overhead_bytes) * rounds as f64;
        if !lost {
            self.bytes_delivered += bytes;
        }
        self.transfers.push(RefTransfer {
            remaining: total,
            rate_scale,
            payload,
            lost,
            started: now,
        });
        self.epoch += 1;
    }

    /// Absolute time at which the earliest in-flight transfer completes.
    pub fn next_completion(&self) -> Option<f64> {
        let rate = self.per_transfer_rate();
        let min = self
            .transfers
            .iter()
            .map(|t| t.remaining.max(0.0) / (rate * t.rate_scale))
            .fold(f64::INFINITY, f64::min);
        if min.is_finite() {
            Some(self.last_advance + min)
        } else {
            None
        }
    }

    /// Completes every transfer due at `now` (PR 6 milli-byte tolerance and
    /// sub-byte force-complete fallback).
    pub fn complete_due(&mut self, now: f64) -> Vec<Completion> {
        self.advance(now);
        let mut done = Vec::new();
        let mut i = 0;
        while i < self.transfers.len() {
            if self.transfers[i].remaining <= 1e-3 {
                let t = self.transfers.remove(i);
                self.messages += 1;
                done.push(Completion {
                    payload: t.payload,
                    delivered: !t.lost,
                    started: t.started,
                });
            } else {
                i += 1;
            }
        }
        if done.is_empty() && !self.transfers.is_empty() {
            let (idx, _) = self
                .transfers
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.remaining.total_cmp(&b.1.remaining))
                .unwrap();
            if self.transfers[idx].remaining < 1.0 {
                let t = self.transfers.remove(idx);
                self.messages += 1;
                done.push(Completion {
                    payload: t.payload,
                    delivered: !t.lost,
                    started: t.started,
                });
            }
        }
        if !done.is_empty() {
            self.epoch += 1;
        }
        done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn reference_queue_pops_in_order() {
        let mut q = ReferenceEventQueue::new();
        q.schedule(5.0, EventKind::MonitorTick);
        q.schedule(1.0, EventKind::Stop);
        q.schedule(3.0, EventKind::CheckpointTick);
        let order: Vec<f64> = std::iter::from_fn(|| q.pop()).map(|(t, _)| t).collect();
        assert_eq!(order, vec![1.0, 3.0, 5.0]);
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn reference_bus_matches_pr6_hand_calcs() {
        let cfg = NetworkConfig {
            overhead_s: 0.0,
            ..NetworkConfig::default()
        };
        let mut net = ReferenceNetworkModel::new(cfg);
        let mut rng = SmallRng::seed_from_u64(42);
        let p = |i| TransferPayload::Dump { proc_id: i };
        net.start_transfer_faulted(0.0, 125_000.0, 1.0, p(0), &mut rng, false);
        net.start_transfer_faulted(0.05, 125_000.0, 1.0, p(1), &mut rng, false);
        let t = net.next_completion().unwrap();
        assert!((t - 0.15).abs() < 1e-9, "completion at {t}");
        let done = net.complete_due(t);
        assert_eq!(done.len(), 1);
        assert_eq!(net.active(), 1);
        assert!(net.epoch() > 0);
        assert_eq!(net.messages, 1);
    }
}
