//! The parallel-subprocess state machine.

/// What a process is doing right now.
#[derive(Debug, Clone, PartialEq)]
pub enum ProcState {
    /// Executing a compute phase; `remaining` node-units of work left,
    /// progressing at `rate` nodes/second since `since`.
    Computing {
        /// Node-units of work left.
        remaining: f64,
        /// Current effective rate (host speed × nice share).
        rate: f64,
        /// When this rate took effect.
        since: f64,
    },
    /// Blocked in an exchange phase waiting for neighbour messages.
    WaitingRecv {
        /// Exchange id being waited on.
        xch: usize,
    },
    /// Paused at the synchronisation step (section 5, Appendix B).
    AtSyncBarrier,
    /// Saving its dump file prior to migrating.
    MigrSaving,
    /// Waiting for the submit program to find a free host.
    MigrWaitingHost,
    /// Loading its dump file on the new host.
    MigrLoading,
    /// Migration complete, waiting for everyone to resume.
    MigrReady,
    /// Interrupted mid-step to write a periodic checkpoint.
    CkptSaving {
        /// What to resume afterwards.
        resume: CkptResume,
    },
    /// The host is in a transient stall: the process is alive but frozen
    /// mid-step; `resume` says how to continue when the stall lifts.
    Frozen {
        /// What to resume when the host thaws.
        resume: CkptResume,
    },
    /// The process died with its host (or was declared dead by the failure
    /// detector) and awaits recovery.
    Failed,
    /// Reached the run's target step count.
    Done,
}

/// Continuation after a checkpoint save.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CkptResume {
    /// Resume computing with this much work left.
    Compute {
        /// Node-units of work left.
        remaining: f64,
    },
    /// Re-enter the receive wait of this exchange.
    Waiting {
        /// Exchange id.
        xch: usize,
    },
    /// The interrupted phase was invalidated (crash-recovery rolled the
    /// process back to an earlier step); restart the current phase from
    /// scratch instead of resuming mid-phase.
    Restart,
}

/// Received-but-unconsumed halo messages, keyed by `(step, xch)`.
///
/// A flat vector beats a hash map by an order of magnitude here: a process
/// holds only a handful of in-flight exchanges at once (the current one plus
/// whatever a fast neighbour ran ahead and delivered), each with at most a
/// stencil's worth of senders, and `receive`/`have_all` sit directly on the
/// halo-delivery hot path of the event loop, where SipHash dominated the
/// lookup cost. Sender ids live in a fixed inline array per entry (a stencil
/// has at most a few neighbours per exchange; a rare wider fan-in spills to
/// a heap vector), so the steady state is one contiguous scan with no
/// pointer chasing and no allocation.
#[derive(Debug, Clone, Default)]
pub struct Inbox {
    entries: Vec<InboxEntry>,
}

/// Senders stored inline before spilling; 8 covers a full 2-D Moore
/// neighbourhood in one exchange.
const INBOX_INLINE: usize = 8;

#[derive(Debug, Clone)]
struct InboxEntry {
    step: u64,
    xch: u32,
    n_inline: u32,
    inline: [u32; INBOX_INLINE],
    spill: Vec<u32>,
}

impl InboxEntry {
    #[inline]
    fn contains(&self, from: u32) -> bool {
        self.inline[..self.n_inline as usize].contains(&from) || self.spill.contains(&from)
    }

    #[inline]
    fn push(&mut self, from: u32) {
        if (self.n_inline as usize) < INBOX_INLINE {
            self.inline[self.n_inline as usize] = from;
            self.n_inline += 1;
        } else {
            self.spill.push(from);
        }
    }
}

impl Inbox {
    #[inline]
    fn find(&self, step: u64, xch: usize) -> Option<usize> {
        self.entries
            .iter()
            .position(|e| e.step == step && e.xch == xch as u32)
    }

    /// Records a sender for `(step, xch)`; returns `true` if it was new.
    pub fn insert(&mut self, step: u64, xch: usize, from: usize) -> bool {
        let from = from as u32;
        match self.find(step, xch) {
            Some(i) => {
                let e = &mut self.entries[i];
                if e.contains(from) {
                    false
                } else {
                    e.push(from);
                    true
                }
            }
            None => {
                let mut e = InboxEntry {
                    step,
                    xch: xch as u32,
                    n_inline: 0,
                    inline: [0; INBOX_INLINE],
                    spill: Vec::new(),
                };
                e.push(from);
                self.entries.push(e);
                true
            }
        }
    }

    /// Whether every sender in `needed` has delivered for `(step, xch)`.
    pub fn have_all(&self, step: u64, xch: usize, needed: &[usize]) -> bool {
        match self.find(step, xch) {
            Some(i) => {
                let e = &self.entries[i];
                needed.iter().all(|&n| e.contains(n as u32))
            }
            None => needed.is_empty(),
        }
    }

    /// Drops the `(step, xch)` entry.
    pub fn remove(&mut self, step: u64, xch: usize) {
        if let Some(i) = self.find(step, xch) {
            self.entries.swap_remove(i);
        }
    }

    /// Drops every entry (rollback).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

/// A halo send whose wire transmission is held back until the receiver posts
/// the matching receive (the rendezvous step-coupling: TCP's flow control
/// keeps a sender from streaming into a peer that is still computing, so the
/// bulk transfer effectively starts when the receiver asks for the data).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StagedHalo {
    /// Sending process.
    pub from: usize,
    /// Payload bytes.
    pub bytes: f64,
    /// Integration step the message belongs to.
    pub step: u64,
    /// Exchange id within the step plan.
    pub xch: usize,
    /// When the sender offered the message (for blocked-time accounting).
    pub since: f64,
}

/// One parallel subprocess.
#[derive(Debug, Clone)]
pub struct SimProcess {
    /// Index into the workload tiles.
    pub id: usize,
    /// Host currently running this process.
    pub host: usize,
    /// Completed integration steps.
    pub step: u64,
    /// Index into the workload plan (current phase).
    pub phase: usize,
    /// Current state.
    pub state: ProcState,
    /// Epoch guarding `ComputeDone`/`DumpTransferDone` events.
    pub epoch: u64,
    /// Received halo messages: `(step, xch) → set of sender ids`.
    pub inbox: Inbox,
    /// Sends deferred by strict ordering (Appendix C): `(peer, bytes, xch)`.
    pub deferred_sends: Vec<(usize, f64, usize)>,
    /// Inbound halo sends addressed to this process whose transmission waits
    /// for it to post the matching receive (rendezvous coupling).
    pub staged_in: Vec<StagedHalo>,
    /// A staged release is mid catch-up (the receiver is working through
    /// deferred protocol processing before the sender's bytes can flow);
    /// further staged releases wait until it completes.
    pub catchup_pending: bool,
    /// Last `(step, xch)` exchange this process consumed since the start (or
    /// the last rollback) — the witness for the transport's in-order
    /// contract: wire-level reordering may shuffle transmissions, but the
    /// solver must always consume exchanges in `(step, xch)` order.
    pub last_consumed: Option<(u64, usize)>,
    /// When the current receive wait began.
    pub wait_since: f64,
    /// When the current pause began.
    pub pause_since: f64,
    /// The monitor has asked this process to migrate.
    pub migrate_requested: bool,
    /// Running statistics.
    pub t_calc: f64,
    /// Time waiting on halos.
    pub t_com: f64,
    /// Time paused.
    pub t_paused: f64,
}

impl SimProcess {
    /// A fresh process at step 0 on `host`.
    pub fn new(id: usize, host: usize) -> Self {
        Self {
            id,
            host,
            step: 0,
            phase: 0,
            state: ProcState::Done, // overwritten by the sim at start
            epoch: 0,
            inbox: Inbox::default(),
            deferred_sends: Vec::new(),
            staged_in: Vec::new(),
            catchup_pending: false,
            last_consumed: None,
            wait_since: 0.0,
            pause_since: 0.0,
            migrate_requested: false,
            t_calc: 0.0,
            t_com: 0.0,
            t_paused: 0.0,
        }
    }

    /// Records an arrived message; returns `true` if it was new.
    pub fn receive(&mut self, step: u64, xch: usize, from: usize) -> bool {
        self.inbox.insert(step, xch, from)
    }

    /// Whether all `needed` senders have delivered for `(step, xch)`.
    pub fn have_all(&self, step: u64, xch: usize, needed: &[usize]) -> bool {
        self.inbox.have_all(step, xch, needed)
    }

    /// Drops the inbox entry for a completed exchange (bounded memory) and
    /// checks the in-order contract: returns `false` if this consumption is
    /// out of `(step, xch)` order relative to the previous one (which the
    /// reliable transport is supposed to make impossible).
    pub fn consume(&mut self, step: u64, xch: usize) -> bool {
        self.inbox.remove(step, xch);
        let in_order = self.last_consumed.is_none_or(|prev| prev < (step, xch));
        self.last_consumed = Some((step, xch));
        in_order
    }

    /// Invalidate outstanding timed events for this process.
    pub fn bump_epoch(&mut self) -> u64 {
        self.epoch += 1;
        self.epoch
    }

    /// Rewinds the process to the start of `step` (crash recovery): resets
    /// the phase and discards every in-flight message artefact — pending
    /// receives, staged rendezvous sends, deferred strict-ordering sends —
    /// because the whole computation re-executes from the checkpointed step
    /// and every needed message will be re-sent.
    pub fn rollback_to(&mut self, step: u64) {
        self.step = step;
        self.phase = 0;
        self.inbox.clear();
        self.staged_in.clear();
        self.deferred_sends.clear();
        self.catchup_pending = false;
        self.last_consumed = None;
        self.migrate_requested = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inbox_tracks_senders() {
        let mut p = SimProcess::new(0, 0);
        assert!(p.have_all(3, 0, &[]));
        assert!(!p.have_all(3, 0, &[1, 2]));
        assert!(p.receive(3, 0, 1));
        assert!(!p.receive(3, 0, 1), "duplicate delivery detected");
        assert!(!p.have_all(3, 0, &[1, 2]));
        p.receive(3, 0, 2);
        assert!(p.have_all(3, 0, &[1, 2]));
        p.consume(3, 0);
        assert!(!p.have_all(3, 0, &[1, 2]));
    }

    #[test]
    fn epochs_increment() {
        let mut p = SimProcess::new(0, 0);
        let e1 = p.bump_epoch();
        let e2 = p.bump_epoch();
        assert!(e2 > e1);
    }

    #[test]
    fn consume_detects_out_of_order() {
        let mut p = SimProcess::new(0, 0);
        assert!(p.consume(1, 0), "first consume is trivially in order");
        assert!(p.consume(1, 1), "same step, later exchange");
        assert!(p.consume(2, 0), "later step resets the exchange index");
        assert!(!p.consume(1, 1), "going backwards is out of order");
        p.rollback_to(0);
        assert!(p.consume(1, 0), "rollback resets the order witness");
    }

    #[test]
    fn messages_for_future_steps_are_retained() {
        // a fast neighbour may deliver step-7 data while we are at step 5
        let mut p = SimProcess::new(0, 0);
        p.receive(7, 0, 3);
        assert!(p.have_all(7, 0, &[3]));
        assert!(!p.have_all(5, 0, &[3]));
    }
}
