//! Efficiency measurement harness — the section-7 methodology.
//!
//! "We measure the times T_p and T_1 for integrating a problem by averaging
//! over 20 consecutive integration steps ... In our graphs of parallel
//! speedup and efficiency, we use the 715/50 workstation to represent the
//! single processor performance."

use crate::host::HostKind;
use crate::sim::{ClusterConfig, ClusterSim};
use crate::stats::ClusterStats;
use crate::workload::WorkloadSpec;
use serde::{Deserialize, Serialize};

/// Measurement parameters.
#[derive(Debug, Clone)]
pub struct MeasureConfig {
    /// The decomposed workload to time.
    pub workload: WorkloadSpec,
    /// Steps to average over (paper: 20).
    pub steps: u64,
    /// Cluster configuration template (network, hosts).
    pub cluster: ClusterConfig,
}

impl MeasureConfig {
    /// Default section-7 conditions: quiet paper cluster, 20 steps.
    pub fn paper(workload: WorkloadSpec) -> Self {
        let cluster = ClusterConfig::measurement(workload.clone());
        Self {
            workload,
            steps: 20,
            cluster,
        }
    }
}

/// One efficiency measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Measurement {
    /// Number of processors.
    pub p: usize,
    /// Subregion size (nodes per processor, largest tile).
    pub nodes_per_proc: usize,
    /// Measured elapsed time per integration step, seconds.
    pub t_step: f64,
    /// Reference serial time per step on a 715/50, seconds.
    pub t1_step: f64,
    /// Speedup `S = T_1 / T_p` (eq. 5).
    pub speedup: f64,
    /// Efficiency `f = S / P`.
    pub efficiency: f64,
    /// Mean utilisation `g` from the per-process clocks (should ≈ `f`).
    pub utilization: f64,
    /// Mean per-step compute time over processes (`T_calc / steps`).
    pub t_step_calc: f64,
    /// Mean per-step time blocked on halo receives (`T_com / steps`).
    pub t_step_blocked: f64,
    /// Bus busy time per step (cluster-wide, not per process).
    pub t_step_bus: f64,
    /// Network errors observed (the 3D failure mode of section 7).
    pub net_errors: u64,
    /// Raw statistics of the run.
    pub stats: ClusterStats,
}

impl Measurement {
    /// Publishes the headline efficiency numbers (and the underlying run
    /// stats) into a [`subsonic_obs::MetricsRegistry`] under `{prefix}.`.
    pub fn publish(&self, reg: &subsonic_obs::MetricsRegistry, prefix: &str) {
        reg.gauge_set(&format!("{prefix}.p"), self.p as f64, "procs");
        reg.gauge_set(
            &format!("{prefix}.nodes_per_proc"),
            self.nodes_per_proc as f64,
            "nodes",
        );
        reg.gauge_set(&format!("{prefix}.t_step"), self.t_step, "s");
        reg.gauge_set(&format!("{prefix}.t1_step"), self.t1_step, "s");
        reg.gauge_set(&format!("{prefix}.speedup"), self.speedup, "x");
        reg.gauge_set(&format!("{prefix}.efficiency"), self.efficiency, "ratio");
        reg.gauge_set(&format!("{prefix}.utilization"), self.utilization, "ratio");
        reg.gauge_set(&format!("{prefix}.t_step_calc"), self.t_step_calc, "s");
        reg.gauge_set(
            &format!("{prefix}.t_step_blocked"),
            self.t_step_blocked,
            "s",
        );
        reg.gauge_set(&format!("{prefix}.t_step_bus"), self.t_step_bus, "s");
        self.stats.publish(reg, prefix);
    }
}

/// Runs the workload on the simulated cluster and measures efficiency.
pub fn measure_efficiency(cfg: MeasureConfig) -> Measurement {
    let steps = cfg.steps;
    let p = cfg.workload.processes();
    let nodes_per_proc = cfg
        .workload
        .tiles
        .iter()
        .map(|t| t.nodes)
        .max()
        .unwrap_or(0);
    let u_ref = HostKind::Hp715_50.node_rate(cfg.workload.method, cfg.workload.three_d);
    let t1_step = cfg.workload.total_nodes as f64 / u_ref;

    let mut sim = ClusterSim::new(cfg.cluster);
    let stats = sim.run(f64::INFINITY, Some(steps));
    let t_step = stats.finished_at / steps as f64;
    let speedup = t1_step / t_step;
    let denom = (p as u64 * steps) as f64;
    let t_step_calc = stats.procs.iter().map(|pr| pr.t_calc).sum::<f64>() / denom;
    let t_step_blocked = stats.procs.iter().map(|pr| pr.t_com).sum::<f64>() / denom;
    let t_step_bus = stats.net_busy / steps as f64;
    Measurement {
        p,
        nodes_per_proc,
        t_step,
        t1_step,
        speedup,
        efficiency: speedup / p as f64,
        utilization: stats.mean_utilization(),
        t_step_calc,
        t_step_blocked,
        t_step_bus,
        net_errors: stats.net_errors,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subsonic_solvers::MethodKind;

    fn measure_2d(method: MethodKind, side: usize, px: usize, py: usize) -> Measurement {
        let w = WorkloadSpec::new_2d(method, side * px, side * py, px, py);
        measure_efficiency(MeasureConfig::paper(w))
    }

    #[test]
    fn large_2d_subregions_reach_paper_efficiency() {
        // Figure 5's headline is ~80% efficiency with 20 workstations, but a
        // 20-process run drafts the four slower 720/710 machines into the
        // pool and the step time tracks the slowest host (section 7's
        // heterogeneity penalty): t_model = n/u_min + comm gives f ≈ 0.67
        // when efficiency is referenced to the 715/50. Homogeneous 16-way
        // runs on 715/50s still reach ~0.76 (see the cluster_protocols
        // integration tests).
        let m = measure_2d(MethodKind::LatticeBoltzmann, 150, 5, 4);
        assert_eq!(m.p, 20);
        assert!(
            m.efficiency > 0.6 && m.efficiency < 0.8,
            "efficiency {}",
            m.efficiency
        );
    }

    #[test]
    fn small_2d_subregions_lose_efficiency() {
        let big = measure_2d(MethodKind::LatticeBoltzmann, 200, 4, 4);
        let small = measure_2d(MethodKind::LatticeBoltzmann, 30, 4, 4);
        assert!(
            small.efficiency < big.efficiency - 0.15,
            "small {} vs big {}",
            small.efficiency,
            big.efficiency
        );
    }

    #[test]
    fn fd_efficiency_falls_faster_than_lb_at_small_subregions() {
        // Figure 7 vs Figure 5: FD computes faster per step and sends two
        // messages, so its efficiency decreases more rapidly.
        let lb = measure_2d(MethodKind::LatticeBoltzmann, 40, 4, 4);
        let fd = measure_2d(MethodKind::FiniteDifference, 40, 4, 4);
        assert!(
            fd.efficiency < lb.efficiency,
            "FD {} should trail LB {}",
            fd.efficiency,
            lb.efficiency
        );
    }

    #[test]
    fn three_d_efficiency_collapses_on_the_bus() {
        // Figure 9: 2D stays high, 3D decays quickly with P. At P = 15 the
        // simulated gap is ~0.17 (the event simulation allows some
        // compute/communication overlap the paper's no-overlap model
        // excludes, so the 3D collapse is slightly milder than measured).
        let p = 15;
        let w2 = WorkloadSpec::new_2d(MethodKind::LatticeBoltzmann, 120 * p, 120, p, 1);
        let m2 = measure_efficiency(MeasureConfig::paper(w2));
        let w3 = WorkloadSpec::new_3d(MethodKind::LatticeBoltzmann, (25 * p, 25, 25), (p, 1, 1));
        let m3 = measure_efficiency(MeasureConfig::paper(w3));
        assert!(
            m2.efficiency > 0.78,
            "2D should stay high: {}",
            m2.efficiency
        );
        assert!(m3.efficiency < 0.72, "3D should degrade: {}", m3.efficiency);
        assert!(
            m3.efficiency < m2.efficiency - 0.12,
            "3D {} should collapse vs 2D {}",
            m3.efficiency,
            m2.efficiency
        );
    }

    #[test]
    fn switched_network_rescues_3d() {
        // Section 9's outlook: switches make 3D practical.
        let w = WorkloadSpec::new_3d(MethodKind::LatticeBoltzmann, (25 * 10, 25, 25), (10, 1, 1));
        let bus = measure_efficiency(MeasureConfig::paper(w.clone()));
        let mut cfg = MeasureConfig::paper(w);
        cfg.cluster.net = cfg.cluster.net.switched();
        let sw = measure_efficiency(cfg);
        assert!(
            sw.efficiency > bus.efficiency + 0.2,
            "switch {} vs bus {}",
            sw.efficiency,
            bus.efficiency
        );
    }

    #[test]
    fn utilization_approximates_efficiency() {
        let m = measure_2d(MethodKind::LatticeBoltzmann, 120, 3, 3);
        assert!(
            (m.utilization - m.efficiency).abs() < 0.15,
            "g = {}, f = {}",
            m.utilization,
            m.efficiency
        );
    }
}
