//! Network models: the shared-bus Ethernet and an idealised switch, tracked
//! in virtual service time.
//!
//! The shared bus is a processor-sharing queue: `k` concurrent transfers each
//! progress at `bandwidth / k`, which is what makes the per-step
//! communication time grow with the number of processors (the `(P − 1)`
//! factor of the paper's eq. 19). Every message additionally pays a fixed
//! protocol overhead (TCP/IP + Ethernet framing + socket system calls),
//! which dominates for small messages — the effect the paper observes in
//! Figure 5 at subregions below 100² and declines to model.
//!
//! **Virtual service time.** Instead of storing per-transfer residual byte
//! counters and re-walking every in-flight transfer on each event (the PR 6
//! model, pinned in [`crate::reference::ReferenceNetworkModel`]), the model
//! keeps ONE global accumulator `v` that advances at the per-share service
//! rate: `dv/dt = bandwidth / k(t)` on the bus, `dv/dt = bandwidth` on the
//! switch. A transfer admitted with `total` bytes at endpoint share
//! `rate_scale` receives `rate_scale · dv` bytes per unit of virtual time,
//! so its finish point `v_fin = v + total / rate_scale` is **fixed at
//! admission** — share recomputation on every join/leave is implicit in the
//! accumulator's rate and costs nothing per transfer. Completions are found
//! through an indexed min-heap keyed by `(v_fin, admission seq)` over
//! slab-allocated transfer records: `advance` is O(1), `next_completion` is
//! O(1) (a heap peek), and `complete_due` is O(log n) per completed transfer
//! — where the PR 6 model paid O(n) per event for each of them plus an
//! O(n) `Vec::remove` shift per completion. This is the fair
//! throughput-sharing scheme of dslab's `SharedBandwidthNetwork`, specialised
//! to the paper's single shared medium.
//!
//! Time-to-finish is share-independent: a transfer needing `r` residual bytes
//! at share `s` finishes after `r / (s·dv/dt)` seconds, and `r = (v_fin −
//! v)·s`, so the wall distance is `(v_fin − v) / (dv/dt)` for every transfer
//! — which is why one global heap order in `v_fin` is also the completion
//! order in simulated time.
//!
//! **Completion order** is documented and pinned: payloads come back from
//! [`NetworkModel::complete_due`] ordered by `(finish virtual time, admission
//! order)`. Transfers that finish simultaneously (equal `v_fin` — e.g.
//! identical messages admitted at the same instant) are delivered in the
//! order they entered the wire, exactly the PR 6 index order.
//!
//! Under heavy load the shared bus loses messages: "the TCP/IP protocol fails
//! to deliver messages after excessive retransmissions" (section 7). We model
//! saturation as extra transmission rounds sampled when the bus is congested,
//! and count an error when the rounds exceed the TCP give-up limit.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use rand::Rng;
use serde::{Deserialize, Serialize};

/// What a completed transfer delivers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransferPayload {
    /// A halo message between neighbouring subregions.
    Halo {
        /// Receiving process (active-tile index).
        to_proc: usize,
        /// Integration step the message belongs to.
        step: u64,
        /// Exchange id within the step plan.
        xch: usize,
        /// Sending process.
        from_proc: usize,
    },
    /// A dump-file transfer to/from the file server finished.
    Dump {
        /// The process saving or loading.
        proc_id: usize,
    },
    /// A reliable-transport DATA message carrying one halo exchange. Unlike
    /// the legacy [`TransferPayload::Halo`], delivery is not assumed: the
    /// receiver must acknowledge, and the sender retransmits on timeout.
    HaloData {
        /// Receiving process.
        to_proc: usize,
        /// Integration step the message belongs to.
        step: u64,
        /// Exchange id within the step plan.
        xch: usize,
        /// Sending process.
        from_proc: usize,
        /// Per-link `(from, to)` sequence number for duplicate suppression.
        seq: u64,
        /// Transmission attempt (1 = first send).
        attempt: u32,
    },
    /// The acknowledgement for a [`TransferPayload::HaloData`] message,
    /// travelling on the reverse link.
    Ack {
        /// The original sender the ACK returns to.
        to_proc: usize,
        /// The receiver that acknowledges.
        from_proc: usize,
        /// Sequence number being acknowledged.
        seq: u64,
        /// Attempt number the receiver saw (for RTT sampling — Karn's rule
        /// only takes samples from first attempts).
        attempt: u32,
    },
    /// An accrual-detector heartbeat probe travelling to a suspect host.
    Probe {
        /// Suspect host.
        host: usize,
        /// Probe sequence number (send time is tracked by the monitor).
        seq: u64,
    },
    /// The suspect host's reply to a [`TransferPayload::Probe`].
    ProbeReply {
        /// The host that replied.
        host: usize,
        /// Sequence number of the probe being answered.
        seq: u64,
    },
}

/// Which network connects the workstations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NetworkKindCfg {
    /// Shared-bus Ethernet (processor sharing).
    SharedBus,
    /// Idealised switched network: every transfer gets full bandwidth —
    /// the paper's "Ethernet switches, FDDI and ATM networks" outlook.
    Switched,
}

/// Transport protocol between parallel processes (Appendix D).
///
/// The paper chose TCP/IP "because of its simplicity": guaranteed FIFO
/// delivery, at the cost of a heavier protocol stack and opaque behaviour on
/// a saturated network ("when TCP/IP fails, it is hard to know which
/// messages need to be resent"). UDP datagrams give the program control: a
/// lighter per-message overhead, but "the distributed program must check that
/// messages are delivered, and resend messages if necessary" — which the
/// simulated runtime does with an acknowledgement timeout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Transport {
    /// TCP/IP sockets (the paper's choice): guaranteed delivery, heavier
    /// overhead, geometric retransmission rounds under saturation, give-up
    /// errors counted.
    Tcp,
    /// UDP datagrams with application-level resends: lighter overhead,
    /// explicit losses under saturation, precise recovery.
    Udp,
}

/// Network parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct NetworkConfig {
    /// Bus or switch.
    pub kind: NetworkKindCfg,
    /// Transport protocol (Appendix D): TCP (default) or UDP.
    pub transport: Transport,
    /// Peak bandwidth in bits per second (the paper's Ethernet: 10 Mbps).
    pub bandwidth_bps: f64,
    /// Fixed per-message overhead in seconds (protocol stack + framing).
    pub overhead_s: f64,
    /// Concurrent-transfer count beyond which the bus is saturated.
    pub saturation_transfers: usize,
    /// Probability that a message sent on a saturated bus needs an extra
    /// transmission round (sampled repeatedly: rounds are geometric).
    pub collision_prob: f64,
    /// Transmission rounds after which TCP gives up (counted as a network
    /// error; the transfer still completes so the simulation can proceed —
    /// the monitoring program would restart from a checkpoint).
    pub max_transmissions: u32,
    /// Per-message overhead of the lighter UDP path, seconds.
    pub udp_overhead_s: f64,
    /// Probability that a UDP datagram sent on a saturated bus is lost
    /// (the application detects the loss by acknowledgement timeout).
    pub udp_loss_prob: f64,
    /// Application-level acknowledgement timeout before a UDP resend.
    pub udp_ack_timeout_s: f64,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        Self {
            kind: NetworkKindCfg::SharedBus,
            transport: Transport::Tcp,
            bandwidth_bps: 10.0e6,
            overhead_s: 1.2e-3,
            saturation_transfers: 12,
            collision_prob: 0.5,
            max_transmissions: 8,
            udp_overhead_s: 0.5e-3,
            udp_loss_prob: 0.3,
            udp_ack_timeout_s: 0.05,
        }
    }
}

impl NetworkConfig {
    /// Bandwidth in bytes per second.
    pub fn bytes_per_sec(&self) -> f64 {
        self.bandwidth_bps / 8.0
    }

    /// The idealised switch with the same wire speed.
    pub fn switched(mut self) -> Self {
        self.kind = NetworkKindCfg::Switched;
        self
    }

    /// The same network over UDP datagrams (Appendix D).
    pub fn udp(mut self) -> Self {
        self.transport = Transport::Udp;
        self
    }
}

/// A finished transfer: the payload plus whether it actually reached the
/// receiver (UDP datagrams can be lost; TCP always delivers).
#[derive(Debug, Clone, PartialEq)]
pub struct Completion {
    /// What was being moved.
    pub payload: TransferPayload,
    /// `false` means the datagram was lost on a saturated bus and the
    /// application must resend after its acknowledgement timeout.
    pub delivered: bool,
    /// Simulated time the transfer went onto the wire — the observability
    /// layer turns (started, completion time) into a `net` wire span.
    pub started: f64,
}

/// One in-flight transfer, parked in the slab until its virtual finish point
/// is reached.
#[derive(Debug, Clone)]
struct Transfer {
    payload: TransferPayload,
    lost: bool,   // UDP: transmitted but dropped before the receiver
    started: f64, // wire time of the first transmission
}

/// A 24-byte completion-heap node: everything ordering needs without
/// touching the slab.
#[derive(Debug, Clone, Copy)]
struct DueNode {
    /// Virtual service time at which the transfer finishes.
    v_fin: f64,
    /// Admission order (completion-order tie-break for simultaneous
    /// finishes).
    seq: u64,
    /// Slab index of the transfer record.
    slot: u32,
}

impl PartialEq for DueNode {
    fn eq(&self, other: &Self) -> bool {
        self.v_fin == other.v_fin && self.seq == other.seq
    }
}
impl Eq for DueNode {}
impl PartialOrd for DueNode {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for DueNode {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: invert so the earliest (v_fin, seq)
        // pops first.
        other
            .v_fin
            .total_cmp(&self.v_fin)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The simulated network: a virtual-service-time processor-sharing queue
/// with an indexed completion heap.
#[derive(Debug)]
pub struct NetworkModel {
    cfg: NetworkConfig,
    /// Virtual service time: bytes a hypothetical share-1.0 transfer would
    /// have moved since the model was created. Advances at `bandwidth / k`
    /// on the bus and `bandwidth` on the switch; frozen while idle.
    v: f64,
    /// Completion heap over the slab, keyed by `(v_fin, seq)`.
    due: BinaryHeap<DueNode>,
    /// Transfer records; `None` marks a free slot.
    slab: Vec<Option<Transfer>>,
    free: Vec<u32>,
    /// Live transfers (`due.len()` — kept separately so the share divisor is
    /// a plain field read on the hot path).
    active: usize,
    /// Admission counter (completion-order tie-break).
    seq: u64,
    last_advance: f64,
    epoch: u64,
    forced_saturation: bool,
    /// Total payload bytes moved (excluding overhead and retransmissions).
    pub bytes_delivered: f64,
    /// Messages delivered.
    pub messages: u64,
    /// TCP give-up events.
    pub errors: u64,
    /// UDP datagrams lost (each triggers an application resend).
    pub losses: u64,
    /// Integral of (active transfers > 0) — bus busy time in seconds.
    pub busy_time: f64,
    /// Completions taken through the ulp-rounding fallback rather than the
    /// tolerance window (diagnostic; a large count means the clock's
    /// granularity is close to the wire granularity).
    pub forced_completions: u64,
}

impl NetworkModel {
    /// Creates an idle network.
    pub fn new(cfg: NetworkConfig) -> Self {
        Self {
            cfg,
            v: 0.0,
            due: BinaryHeap::new(),
            slab: Vec::new(),
            free: Vec::new(),
            active: 0,
            seq: 0,
            last_advance: 0.0,
            epoch: 0,
            forced_saturation: false,
            bytes_delivered: 0.0,
            messages: 0,
            errors: 0,
            losses: 0,
            busy_time: 0.0,
            forced_completions: 0,
        }
    }

    /// Configuration in use.
    pub fn config(&self) -> &NetworkConfig {
        &self.cfg
    }

    /// Epoch guarding `NetDone` events: bumped on every state change.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of in-flight transfers.
    pub fn active(&self) -> usize {
        self.active
    }

    /// Forces saturation behaviour regardless of the in-flight transfer
    /// count — an injected burst of competing broadcast traffic on the
    /// shared bus. Every transfer *started* while the flag is set samples
    /// collisions/losses as if the bus were congested. No effect on an
    /// idealised switch.
    pub fn set_forced_saturation(&mut self, on: bool) {
        self.forced_saturation = on;
    }

    /// Whether an injected saturation burst is currently active.
    pub fn forced_saturation(&self) -> bool {
        self.forced_saturation
    }

    /// Rate of the virtual-service accumulator in bytes (at share 1.0) per
    /// second: the per-transfer share of the medium.
    #[inline]
    fn v_rate(&self) -> f64 {
        let b = self.cfg.bytes_per_sec();
        match self.cfg.kind {
            NetworkKindCfg::SharedBus => b / self.active.max(1) as f64,
            NetworkKindCfg::Switched => b,
        }
    }

    /// Progresses the virtual clock up to `now`. O(1): no transfer record is
    /// touched — each transfer's progress is implied by `v − v_admit`.
    #[inline]
    fn advance(&mut self, now: f64) {
        let dt = (now - self.last_advance).max(0.0);
        if dt > 0.0 && self.active > 0 {
            self.v += dt * self.v_rate();
            self.busy_time += dt;
        }
        self.last_advance = now;
    }

    /// Starts a transfer of `bytes` payload at time `now`. Saturation
    /// retransmission rounds are sampled here (deterministically given the
    /// RNG state). Bump-epoch semantics: reschedule `NetDone` afterwards.
    pub fn start_transfer(
        &mut self,
        now: f64,
        bytes: f64,
        payload: TransferPayload,
        rng: &mut impl Rng,
    ) {
        self.start_transfer_scaled(now, bytes, 1.0, payload, rng);
    }

    /// Like [`NetworkModel::start_transfer`], but the transfer can use at
    /// most `rate_scale` of its bus share. The communication speed the paper
    /// measures is CPU-bound (section 7 derives `V_com` from protocol
    /// processing, not the 10 Mbps wire), so a transfer whose endpoint is a
    /// slower machine pumps bytes at that machine's relative speed; the
    /// unused share is contention the bus still pays.
    pub fn start_transfer_scaled(
        &mut self,
        now: f64,
        bytes: f64,
        rate_scale: f64,
        payload: TransferPayload,
        rng: &mut impl Rng,
    ) {
        self.start_transfer_faulted(now, bytes, rate_scale, payload, rng, false);
    }

    /// Like [`NetworkModel::start_transfer_scaled`], but the caller can mark
    /// the transmission as lost in flight (`force_lost`) — an injected
    /// message fault or a partition boundary. The wire time is still paid
    /// (the bytes occupy the bus) but the receiver never sees the payload
    /// and no delivery is recorded. Congestion sampling is unchanged, so a
    /// `force_lost = false` call is exactly the legacy path.
    pub fn start_transfer_faulted(
        &mut self,
        now: f64,
        bytes: f64,
        rate_scale: f64,
        payload: TransferPayload,
        rng: &mut impl Rng,
        force_lost: bool,
    ) {
        debug_assert!(
            rate_scale > 0.0 && rate_scale <= 1.0,
            "bad scale {rate_scale}"
        );
        self.advance(now);
        let saturated = self.cfg.kind == NetworkKindCfg::SharedBus
            && (self.forced_saturation || self.active >= self.cfg.saturation_transfers);
        let (overhead_bytes, rounds, lost) = match self.cfg.transport {
            Transport::Tcp => {
                let overhead = self.cfg.overhead_s * self.cfg.bytes_per_sec();
                let mut rounds = 1u32;
                if saturated {
                    while rounds < self.cfg.max_transmissions + 2
                        && rng.gen::<f64>() < self.cfg.collision_prob
                    {
                        rounds += 1;
                    }
                }
                if rounds > self.cfg.max_transmissions {
                    self.errors += 1;
                    rounds = self.cfg.max_transmissions;
                }
                (overhead, rounds, false)
            }
            Transport::Udp => {
                let overhead = self.cfg.udp_overhead_s * self.cfg.bytes_per_sec();
                let lost = saturated && rng.gen::<f64>() < self.cfg.udp_loss_prob;
                if lost {
                    self.losses += 1;
                }
                (overhead, 1, lost)
            }
        };
        let lost = lost || force_lost;
        let total = (bytes + overhead_bytes) * rounds as f64;
        if !lost {
            self.bytes_delivered += bytes;
        }
        let record = Transfer {
            payload,
            lost,
            started: now,
        };
        let slot = match self.free.pop() {
            Some(i) => {
                self.slab[i as usize] = Some(record);
                i
            }
            None => {
                self.slab.push(Some(record));
                (self.slab.len() - 1) as u32
            }
        };
        self.due.push(DueNode {
            // Fixed at admission: the transfer receives `rate_scale` bytes
            // per unit of virtual service, so it needs `total / rate_scale`
            // units to move `total` bytes.
            v_fin: self.v + total / rate_scale,
            seq: self.seq,
            slot,
        });
        self.seq += 1;
        self.active += 1;
        self.epoch += 1;
    }

    /// Absolute time at which the earliest in-flight transfer completes.
    /// O(1): a heap peek plus the virtual-to-wall conversion, which is
    /// share-independent (see the module docs).
    pub fn next_completion(&self) -> Option<f64> {
        let top = self.due.peek()?;
        Some(self.last_advance + (top.v_fin - self.v).max(0.0) / self.v_rate())
    }

    /// Completes every transfer due at `now`, returning their payloads
    /// ordered by `(finish virtual time, admission order)` — simultaneous
    /// finishes deliver in the order they entered the wire.
    ///
    /// The completion tolerance scales with the clock's resolution:
    /// a transfer is due when its residual wire time is below a few ulps of
    /// `now` — the finest distinction the f64 simulation clock can represent
    /// at this moment. Late in long runs (the 1e9-simulated-second drift
    /// test) the ulp of the clock times the wire rate dwarfs the PR 6 model's
    /// fixed milli-byte window, which would have rescheduled the completion
    /// at the *same* rounded time forever; early in a run the window is
    /// billions of times tighter than a milli-byte, so a transfer can no
    /// longer be delivered a sub-byte of wire time early.
    ///
    /// If rounding leaves a residue beyond even that, the caller-observed
    /// invariant still holds: a valid-epoch completion event always finishes
    /// at least the earliest transfer (the fallback completes the heap
    /// minimum whenever its completion time rounds to `<= now`).
    pub fn complete_due(&mut self, now: f64) -> Vec<Completion> {
        let mut done = Vec::new();
        self.complete_due_into(now, &mut done);
        done
    }

    /// [`Self::complete_due`] into a caller-owned buffer (cleared first), so
    /// the per-`NetDone` hot path reuses one allocation across events.
    pub fn complete_due_into(&mut self, now: f64, done: &mut Vec<Completion>) {
        done.clear();
        self.advance(now);
        // Tolerance in virtual units. Residual wire time of the heap top is
        // `(v_fin − v) / v_rate`, so "due within a few ulps of the clock"
        // means `v_fin − v <= ulp(now)·v_rate`, plus a few ulps of the
        // accumulator itself for the rounding `advance` just performed.
        let eps = 4.0 * (ulp(now) * self.v_rate() + ulp(self.v));
        while let Some(&top) = self.due.peek() {
            if top.v_fin > self.v + eps {
                break;
            }
            self.due.pop();
            self.finish(top, done);
        }
        if done.is_empty() && self.active > 0 {
            // Ulp-rounding fallback: the event fired for this epoch, so the
            // earliest transfer was due. If its completion time rounds to
            // `<= now`, waiting cannot help — no future f64 instant gets
            // closer — so complete it regardless of residue.
            let &top = self.due.peek().expect("active transfers but empty heap");
            let finish_at = self.last_advance + (top.v_fin - self.v).max(0.0) / self.v_rate();
            if finish_at <= now {
                self.due.pop();
                self.forced_completions += 1;
                self.finish(top, done);
            }
        }
        if !done.is_empty() {
            self.epoch += 1;
        }
    }

    /// Retires one heap node: frees its slab slot and records the
    /// completion.
    fn finish(&mut self, node: DueNode, done: &mut Vec<Completion>) {
        let t = self.slab[node.slot as usize]
            .take()
            .expect("completion heap pointed at a free slot");
        self.free.push(node.slot);
        self.active -= 1;
        self.messages += 1;
        done.push(Completion {
            payload: t.payload,
            delivered: !t.lost,
            started: t.started,
        });
    }

    /// Approximate resident bytes of the model's structures (capacity-based;
    /// the scale experiment uses this for its per-host memory bound).
    pub fn approx_bytes(&self) -> usize {
        self.slab.capacity() * std::mem::size_of::<Option<Transfer>>()
            + self.due.capacity() * std::mem::size_of::<DueNode>()
            + self.free.capacity() * std::mem::size_of::<u32>()
            + std::mem::size_of::<Self>()
    }
}

/// Distance from `x` to the next representable f64 — the clock/accumulator
/// granularity the completion tolerance scales with.
#[inline]
fn ulp(x: f64) -> f64 {
    x.abs().next_up() - x.abs()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(42)
    }

    #[test]
    fn single_transfer_takes_bytes_over_bandwidth_plus_overhead() {
        let cfg = NetworkConfig {
            overhead_s: 0.001,
            ..NetworkConfig::default()
        };
        let mut net = NetworkModel::new(cfg);
        let payload = TransferPayload::Dump { proc_id: 0 };
        net.start_transfer(0.0, 125_000.0, payload.clone(), &mut rng());
        // 125000 B at 1.25e6 B/s = 0.1 s, plus 1 ms overhead
        let t = net.next_completion().unwrap();
        assert!((t - 0.101).abs() < 1e-9, "completion at {t}");
        let done = net.complete_due(t);
        assert_eq!(
            done,
            vec![Completion {
                payload,
                delivered: true,
                started: 0.0
            }]
        );
        assert!(net.next_completion().is_none());
    }

    #[test]
    fn bus_shares_bandwidth_between_transfers() {
        let cfg = NetworkConfig {
            overhead_s: 0.0,
            ..NetworkConfig::default()
        };
        let mut net = NetworkModel::new(cfg);
        let p = |i| TransferPayload::Dump { proc_id: i };
        net.start_transfer(0.0, 125_000.0, p(0), &mut rng());
        net.start_transfer(0.0, 125_000.0, p(1), &mut rng());
        // two equal transfers sharing the bus: both done at 0.2 s
        let t = net.next_completion().unwrap();
        assert!((t - 0.2).abs() < 1e-9, "completion at {t}");
        let done = net.complete_due(t);
        assert_eq!(done.len(), 2);
    }

    #[test]
    fn switch_does_not_share() {
        let cfg = NetworkConfig {
            overhead_s: 0.0,
            ..NetworkConfig::default()
        }
        .switched();
        let mut net = NetworkModel::new(cfg);
        let p = |i| TransferPayload::Dump { proc_id: i };
        net.start_transfer(0.0, 125_000.0, p(0), &mut rng());
        net.start_transfer(0.0, 125_000.0, p(1), &mut rng());
        let t = net.next_completion().unwrap();
        assert!((t - 0.1).abs() < 1e-9, "completion at {t}");
    }

    #[test]
    fn late_joiner_slows_first_transfer() {
        let cfg = NetworkConfig {
            overhead_s: 0.0,
            ..NetworkConfig::default()
        };
        let mut net = NetworkModel::new(cfg);
        let p = |i| TransferPayload::Dump { proc_id: i };
        net.start_transfer(0.0, 125_000.0, p(0), &mut rng());
        // at t = 0.05 the first transfer is half done; a second joins
        net.start_transfer(0.05, 125_000.0, p(1), &mut rng());
        // first needs 62500 more bytes at 0.625e6 B/s = 0.1 s -> t = 0.15
        let t = net.next_completion().unwrap();
        assert!((t - 0.15).abs() < 1e-9, "completion at {t}");
        let done = net.complete_due(t);
        assert_eq!(
            done,
            vec![Completion {
                payload: p(0),
                delivered: true,
                started: 0.0
            }]
        );
        // second then finishes alone: 62500 bytes at full speed
        let t2 = net.next_completion().unwrap();
        assert!((t2 - 0.2).abs() < 1e-9, "completion at {t2}");
    }

    #[test]
    fn saturation_samples_retransmissions() {
        let cfg = NetworkConfig {
            overhead_s: 0.0,
            saturation_transfers: 2,
            collision_prob: 1.0,
            max_transmissions: 4,
            ..NetworkConfig::default()
        };
        let mut net = NetworkModel::new(cfg);
        let mut r = rng();
        let p = |i| TransferPayload::Dump { proc_id: i };
        net.start_transfer(0.0, 1000.0, p(0), &mut r);
        net.start_transfer(0.0, 1000.0, p(1), &mut r);
        assert_eq!(net.errors, 0);
        // third transfer sees a saturated bus and with prob 1 keeps
        // colliding until TCP gives up
        net.start_transfer(0.0, 1000.0, p(2), &mut r);
        assert_eq!(net.errors, 1);
    }

    #[test]
    fn forced_saturation_congests_an_otherwise_idle_bus() {
        let cfg = NetworkConfig {
            saturation_transfers: 100, // never saturates organically here
            udp_loss_prob: 1.0,
            ..NetworkConfig::default()
        }
        .udp();
        let mut net = NetworkModel::new(cfg);
        let mut r = rng();
        net.start_transfer(0.0, 1000.0, TransferPayload::Dump { proc_id: 0 }, &mut r);
        assert_eq!(net.losses, 0, "idle bus loses nothing");
        net.set_forced_saturation(true);
        net.start_transfer(0.0, 1000.0, TransferPayload::Dump { proc_id: 1 }, &mut r);
        assert_eq!(net.losses, 1, "burst traffic drops the datagram");
        net.set_forced_saturation(false);
        net.start_transfer(0.0, 1000.0, TransferPayload::Dump { proc_id: 2 }, &mut r);
        assert_eq!(net.losses, 1, "burst over: clean again");
    }

    #[test]
    fn udp_has_lower_overhead() {
        let tcp = NetworkConfig {
            overhead_s: 0.001,
            ..NetworkConfig::default()
        };
        let udp = NetworkConfig {
            udp_overhead_s: 0.0004,
            ..tcp
        }
        .udp();
        let mut a = NetworkModel::new(tcp);
        let mut b = NetworkModel::new(udp);
        let payload = TransferPayload::Dump { proc_id: 0 };
        a.start_transfer(0.0, 125_000.0, payload.clone(), &mut rng());
        b.start_transfer(0.0, 125_000.0, payload, &mut rng());
        let ta = a.next_completion().unwrap();
        let tb = b.next_completion().unwrap();
        assert!(tb < ta, "UDP {tb} should beat TCP {ta}");
        assert!((ta - tb - 0.0006).abs() < 1e-9);
    }

    #[test]
    fn udp_loses_datagrams_on_saturated_bus() {
        let cfg = NetworkConfig {
            saturation_transfers: 1,
            udp_loss_prob: 1.0,
            ..NetworkConfig::default()
        }
        .udp();
        let mut net = NetworkModel::new(cfg);
        let mut r = rng();
        let p = |i| TransferPayload::Dump { proc_id: i };
        net.start_transfer(0.0, 1000.0, p(0), &mut r); // not saturated yet
        net.start_transfer(0.0, 1000.0, p(1), &mut r); // saturated: lost
        assert_eq!(net.losses, 1);
        let t = net.next_completion().unwrap();
        let done = net.complete_due(t);
        // both complete, but the second was dropped before the receiver
        assert_eq!(done.len(), 2);
        assert!(done.iter().any(|c| !c.delivered));
        assert!(done.iter().any(|c| c.delivered));
        // TCP on the same bus never reports losses
        assert_eq!(net.errors, 0);
    }

    #[test]
    fn tcp_never_loses() {
        let cfg = NetworkConfig {
            saturation_transfers: 0,
            collision_prob: 0.9,
            ..NetworkConfig::default()
        };
        let mut net = NetworkModel::new(cfg);
        let mut r = rng();
        for i in 0..20 {
            net.start_transfer(0.0, 100.0, TransferPayload::Dump { proc_id: i }, &mut r);
        }
        // drain everything
        while let Some(t) = net.next_completion() {
            for c in net.complete_due(t) {
                assert!(c.delivered, "TCP must deliver");
            }
        }
        assert_eq!(net.losses, 0);
        // but it does record give-up errors under these extreme collisions
        assert!(net.errors > 0);
    }

    #[test]
    fn forced_loss_pays_wire_time_but_never_delivers() {
        let cfg = NetworkConfig {
            overhead_s: 0.0,
            ..NetworkConfig::default()
        };
        let mut net = NetworkModel::new(cfg);
        let mut r = rng();
        let p = TransferPayload::HaloData {
            to_proc: 1,
            step: 0,
            xch: 0,
            from_proc: 0,
            seq: 1,
            attempt: 1,
        };
        net.start_transfer_faulted(0.0, 125_000.0, 1.0, p.clone(), &mut r, true);
        let t = net.next_completion().unwrap();
        assert!((t - 0.1).abs() < 1e-9, "wire time still paid: {t}");
        let done = net.complete_due(t);
        assert_eq!(done.len(), 1);
        assert!(!done[0].delivered, "forced loss must not deliver");
        assert_eq!(net.bytes_delivered, 0.0);
        // TCP congestion counters are untouched by injected losses
        assert_eq!(net.errors, 0);
        assert_eq!(net.losses, 0);
    }

    #[test]
    fn epoch_guards_stale_events() {
        let mut net = NetworkModel::new(NetworkConfig::default());
        let e0 = net.epoch();
        net.start_transfer(0.0, 10.0, TransferPayload::Dump { proc_id: 0 }, &mut rng());
        assert!(net.epoch() > e0);
    }

    #[test]
    fn simultaneous_completions_deliver_in_admission_order() {
        // The documented completion order: (finish virtual time, admission
        // order). Four identical transfers admitted back-to-back at t = 0
        // share the bus symmetrically, finish at the same instant, and must
        // come back 0, 1, 2, 3 — the PR 6 index order the indexed heap is
        // not allowed to shuffle.
        let cfg = NetworkConfig {
            overhead_s: 0.0,
            ..NetworkConfig::default()
        };
        let mut net = NetworkModel::new(cfg);
        let mut r = rng();
        for i in 0..4 {
            net.start_transfer(0.0, 50_000.0, TransferPayload::Dump { proc_id: i }, &mut r);
        }
        let t = net.next_completion().unwrap();
        let done = net.complete_due(t);
        let order: Vec<usize> = done
            .iter()
            .map(|c| match c.payload {
                TransferPayload::Dump { proc_id } => proc_id,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![0, 1, 2, 3]);
    }

    #[test]
    fn staggered_completions_deliver_in_finish_order() {
        // Different finish points in ONE complete_due call (the second
        // transfer completes strictly later but the caller only drains at
        // the later instant): order is by finish virtual time, not by
        // admission order.
        let cfg = NetworkConfig {
            overhead_s: 0.0,
            ..NetworkConfig::default()
        }
        .switched();
        let mut net = NetworkModel::new(cfg);
        let mut r = rng();
        net.start_transfer(0.0, 100_000.0, TransferPayload::Dump { proc_id: 9 }, &mut r);
        net.start_transfer(0.0, 50_000.0, TransferPayload::Dump { proc_id: 3 }, &mut r);
        // drain both at the later completion: the shorter (later-admitted)
        // transfer finished first
        let done = net.complete_due(0.08);
        let order: Vec<usize> = done
            .iter()
            .map(|c| match c.payload {
                TransferPayload::Dump { proc_id } => proc_id,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![3, 9]);
    }

    #[test]
    fn completion_tolerance_scales_with_clock_ulp() {
        // A transfer with half a byte of wire time left is NOT due early in
        // a run (ulp(now)·rate is ~1e-11 bytes at t ≈ 0.1 s): the PR 6
        // force-complete fallback would have delivered it up to a byte of
        // wire time early.
        let cfg = NetworkConfig {
            overhead_s: 0.0,
            ..NetworkConfig::default()
        };
        let mut net = NetworkModel::new(cfg);
        let mut r = rng();
        net.start_transfer(0.0, 125_000.0, TransferPayload::Dump { proc_id: 0 }, &mut r);
        // 0.5 bytes short of completion: 124999.5 bytes moved by t
        let t_early = 124_999.5 / 1.25e6;
        let done = net.complete_due(t_early);
        assert!(
            done.is_empty(),
            "sub-byte residue must not complete early: {done:?}"
        );
        // ...but the true completion instant still delivers
        let t = net.next_completion().unwrap();
        let done = net.complete_due(t);
        assert_eq!(done.len(), 1);
        assert_eq!(net.forced_completions, 0);
    }

    #[test]
    fn long_run_drift_completions_never_stall_or_arrive_early() {
        // Satellite drift test: after 1e9 simulated seconds the virtual
        // accumulator sits near 1.25e15 bytes, where one ulp is ~0.25 bytes
        // — ABOVE the PR 6 milli-byte tolerance, which would have spun
        // rescheduling the completion at the same rounded time forever.
        // Drive 1000 sequential transfers from t = 1e9 and require each to
        // complete (progress), never more than one ulp-of-wire-time early
        // (no drift-induced early delivery), and never observably late.
        let cfg = NetworkConfig {
            overhead_s: 0.0,
            ..NetworkConfig::default()
        };
        let mut net = NetworkModel::new(cfg);
        let mut r = rng();
        let rate = cfg.bytes_per_sec();
        // push the accumulator to the 1e9-second regime with one long
        // transfer (1e9 s of wire time at full rate)
        net.start_transfer(
            0.0,
            1.0e9 * rate,
            TransferPayload::Dump { proc_id: 0 },
            &mut r,
        );
        let t = net.next_completion().unwrap();
        assert!((t - 1.0e9).abs() / 1.0e9 < 1e-12, "long transfer at {t}");
        assert_eq!(net.complete_due(t).len(), 1, "long transfer must complete");
        let mut now = t;
        for i in 0..1000 {
            let bytes = 1000.0 + (i % 7) as f64 * 333.0;
            net.start_transfer(now, bytes, TransferPayload::Dump { proc_id: 1 }, &mut r);
            let t_done = net.next_completion().expect("transfer pending");
            let wire = bytes / rate;
            assert!(
                t_done - now >= wire - 4.0 * ulp(now),
                "iteration {i}: completion {t_done} is early by more than \
                 ulp-scale (start {now}, wire {wire})"
            );
            assert!(
                t_done - now <= wire + 4.0 * ulp(now) + 4.0 * ulp(net.v) / rate,
                "iteration {i}: completion {t_done} drifted late"
            );
            let done = net.complete_due(t_done);
            assert_eq!(done.len(), 1, "iteration {i}: completion stalled");
            assert!(t_done >= now, "clock went backwards");
            now = t_done;
        }
        assert_eq!(net.active(), 0);
    }

    #[test]
    fn memory_footprint_is_reported() {
        let mut net = NetworkModel::new(NetworkConfig::default());
        let mut r = rng();
        for i in 0..100 {
            net.start_transfer(0.0, 1000.0, TransferPayload::Dump { proc_id: i }, &mut r);
        }
        assert!(net.approx_bytes() > 100 * std::mem::size_of::<DueNode>());
        assert_eq!(net.active(), 100);
    }
}
