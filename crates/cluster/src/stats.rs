//! Statistics collected by the cluster simulation.

use serde::{Deserialize, Serialize};
use subsonic_obs::MetricsRegistry;

/// Per-process accounting.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct ProcStats {
    /// Seconds spent computing.
    pub t_calc: f64,
    /// Seconds spent waiting for halo messages.
    pub t_com: f64,
    /// Seconds spent paused (synchronisation, migration, checkpointing).
    pub t_paused: f64,
    /// Integration steps completed.
    pub steps: u64,
}

impl ProcStats {
    /// Processor utilisation `g = T_calc / (T_calc + T_com)` (eq. 8),
    /// excluding pauses.
    pub fn utilization(&self) -> f64 {
        if self.t_calc + self.t_com == 0.0 {
            return 1.0;
        }
        self.t_calc / (self.t_calc + self.t_com)
    }
}

/// What happened in the user/background layer (the stochastic environment of
/// section 5.1) — recorded so two runs can be compared event-for-event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BackgroundEventKind {
    /// The console user switched between active and idle.
    UserFlip,
    /// A competing full-time job arrived.
    JobArrival,
    /// A competing full-time job finished.
    JobDeparture,
}

/// One user/background event, timestamped. The trace is a determinism probe:
/// the background layer draws from its own RNG stream, so two runs with the
/// same seed but different *policy* settings (comm ordering, checkpoint
/// schedule, ...) must produce identical traces.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BackgroundEvent {
    /// Simulated time of the event.
    pub t: f64,
    /// Host it happened on.
    pub host: usize,
    /// What happened.
    pub kind: BackgroundEventKind,
}

/// One completed migration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct MigrationRecord {
    /// The migrated process.
    pub proc_id: usize,
    /// Host it left.
    pub from_host: usize,
    /// Host it moved to.
    pub to_host: usize,
    /// When the monitor signalled the migration.
    pub signal_time: f64,
    /// When every process had paused at the synchronisation step.
    pub pause_time: f64,
    /// When computation resumed (CONT).
    pub resume_time: f64,
}

impl MigrationRecord {
    /// The visible cost: global pause duration.
    pub fn pause_duration(&self) -> f64 {
        self.resume_time - self.pause_time
    }

    /// Signal-to-resume duration (includes the synchronisation drain).
    pub fn total_duration(&self) -> f64 {
        self.resume_time - self.signal_time
    }
}

/// One failure-triggered recovery: a subprocess died (host crash) or was
/// declared dead (stall outlasting the detector), and the runtime restarted
/// it on a fresh host from the last coordinated checkpoint, rolling every
/// process back to the checkpointed step.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RecoveryRecord {
    /// The process that was restarted.
    pub proc_id: usize,
    /// Host it died on.
    pub from_host: usize,
    /// Host it was re-submitted to.
    pub to_host: usize,
    /// When the fault struck (heartbeats stopped).
    pub fault_time: f64,
    /// When the failure detector declared the process dead.
    pub detect_time: f64,
    /// When the whole computation resumed from the rollback step.
    pub resume_time: f64,
    /// The coordinated-checkpoint step everyone rolled back to.
    pub rollback_step: u64,
    /// Steps of work the failed process had completed past the rollback step
    /// (the recomputation the cluster must redo).
    pub lost_steps: u64,
    /// Whether the "dead" process was actually alive (a transient stall that
    /// outlasted the detector — a false-positive restart).
    pub false_positive: bool,
}

impl RecoveryRecord {
    /// Fault-to-declaration latency (the detector's contribution).
    pub fn detection_latency(&self) -> f64 {
        self.detect_time - self.fault_time
    }

    /// Fault-to-resume downtime (detection + re-submission + reload).
    pub fn downtime(&self) -> f64 {
        self.resume_time - self.fault_time
    }
}

/// Counters of the message-level reliable transport (all zero when the run
/// has no message-level faults and the transport stays disengaged).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransportStats {
    /// Fresh DATA messages handed to the transport.
    pub data_sent: u64,
    /// Retransmissions (timeout expiries that re-sent a DATA message).
    pub retransmits: u64,
    /// ACKs put on the wire by receivers (duplicates are re-ACKed).
    pub acks_sent: u64,
    /// ACKs that settled an outstanding message at the sender.
    pub acks_received: u64,
    /// ACKs that arrived for an already-settled (or recovery-cleared)
    /// message.
    pub late_acks: u64,
    /// Duplicate DATA deliveries suppressed by sequence number.
    pub dup_suppressed: u64,
    /// Messages that crossed the give-up threshold and were reported to the
    /// monitor as delivery failures.
    pub give_ups: u64,
    /// Injected losses (DATA transmissions dropped by a message-fault
    /// window).
    pub injected_losses: u64,
    /// Injected duplications.
    pub injected_dups: u64,
    /// Injected reorderings (transmissions held back before the wire).
    pub injected_reorders: u64,
    /// DATA/ACK/probe transmissions dropped by an active network partition.
    pub partition_drops: u64,
    /// Accrual-detector probes put on the wire.
    pub probes_sent: u64,
    /// Probe replies that came back.
    pub probe_replies: u64,
}

/// One delivery failure the transport reported to the monitor: a message
/// crossed [`crate::transport::TransportConfig::max_attempts`] transmissions
/// without an ACK — the observable symptom of a dead receiver, a partition,
/// or pathological congestion.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DeliveryFailureRecord {
    /// Sending process.
    pub from_proc: usize,
    /// Receiving process the ACKs never came from.
    pub to_proc: usize,
    /// Step of the undeliverable halo.
    pub step: u64,
    /// Exchange id of the undeliverable halo.
    pub xch: usize,
    /// When the sender gave up.
    pub at: f64,
    /// Transmissions at the moment of giving up.
    pub attempts: u32,
}

/// Aggregate results of a simulation run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ClusterStats {
    /// Per-process accounting (indexed like the workload tiles).
    pub procs: Vec<ProcStats>,
    /// Completed migrations.
    pub migrations: Vec<MigrationRecord>,
    /// Checkpoint rounds completed.
    pub checkpoint_rounds: u64,
    /// Total seconds processes spent saving checkpoints.
    pub checkpoint_pause_total: f64,
    /// Payload bytes moved over the network.
    pub net_bytes: f64,
    /// Messages delivered.
    pub net_messages: u64,
    /// TCP give-up errors (section 7's 3D failure mode).
    pub net_errors: u64,
    /// UDP datagrams lost and resent by the application (Appendix D).
    pub net_losses: u64,
    /// Seconds the network was busy.
    pub net_busy: f64,
    /// Halo sends staged by the rendezvous coupling (transmission held until
    /// the receiver posted its receive).
    pub rendezvous_staged: u64,
    /// Total seconds staged sends waited for their receiver's rendezvous.
    pub rendezvous_wait_total: f64,
    /// Trace of user/background events (empty when the user model is off).
    pub background_events: Vec<BackgroundEvent>,
    /// Largest step difference ever observed between two processes
    /// (Appendix A's un-synchronization).
    pub max_observed_skew: u64,
    /// Completed failure-triggered recoveries.
    pub recoveries: Vec<RecoveryRecord>,
    /// Injected host crashes that actually hit the run.
    pub host_crashes: u64,
    /// Crashed hosts that finished rebooting.
    pub host_reboots: u64,
    /// Injected transient host stalls.
    pub host_freezes: u64,
    /// Injected bus-saturation bursts.
    pub bus_bursts: u64,
    /// Reliable-transport counters (all zero when the transport is
    /// disengaged).
    pub transport: TransportStats,
    /// Delivery failures the transport reported to the monitor.
    pub delivery_failures: Vec<DeliveryFailureRecord>,
    /// Injected network partitions that actually opened during the run.
    pub partitions: u64,
    /// Injected message-fault windows that actually opened during the run.
    pub msg_fault_windows: u64,
    /// Halo payloads applied twice to the same solver slot (must stay zero:
    /// the transport's dedup is supposed to make delivery exactly-once).
    pub duplicate_halo_applies: u64,
    /// Halo consumptions observed out of `(step, exchange)` order on some
    /// process (must stay zero: reordering may shuffle the wire, never the
    /// solver).
    pub out_of_order_consumes: u64,
    /// Largest accrual suspicion level φ the detector ever computed.
    pub suspicion_peak: f64,
    /// Simulated time at which the run target was reached (or the run
    /// stopped).
    pub finished_at: f64,
    /// High-water mark of pending events in the calendar queue (engine
    /// memory accounting for the `scale` experiment).
    pub peak_queue_events: usize,
    /// High-water mark of in-flight network transfers.
    pub peak_net_transfers: usize,
    /// Approximate resident bytes of the event queue + network model at the
    /// end of the run (capacity-based; bounds per-host engine memory).
    pub engine_bytes: usize,
    /// Network completions taken through the ulp-rounding fallback instead
    /// of the tolerance window (diagnostic — see
    /// [`crate::bus::NetworkModel::complete_due`]).
    pub net_forced_completions: u64,
}

impl ClusterStats {
    /// Mean utilisation over processes.
    pub fn mean_utilization(&self) -> f64 {
        if self.procs.is_empty() {
            return 1.0;
        }
        self.procs.iter().map(|p| p.utilization()).sum::<f64>() / self.procs.len() as f64
    }

    /// Recoveries whose victim was actually alive (false-positive restarts
    /// — the cost of a too-eager failure detector).
    pub fn false_positive_recoveries(&self) -> usize {
        self.recoveries.iter().filter(|r| r.false_positive).count()
    }

    /// Mean interval between migrations over `span` seconds.
    pub fn migration_interval(&self, span: f64) -> Option<f64> {
        if self.migrations.is_empty() {
            None
        } else {
            Some(span / self.migrations.len() as f64)
        }
    }

    /// Publishes the run's aggregates into a [`MetricsRegistry`] under
    /// `{prefix}.`: run-level counters, utilisation/time gauges, and
    /// latency histograms for recoveries and migrations.
    pub fn publish(&self, reg: &MetricsRegistry, prefix: &str) {
        reg.counter_add(
            &format!("{prefix}.checkpoint_rounds"),
            self.checkpoint_rounds,
        );
        reg.counter_add(&format!("{prefix}.net_messages"), self.net_messages);
        reg.counter_add(&format!("{prefix}.net_errors"), self.net_errors);
        reg.counter_add(&format!("{prefix}.net_losses"), self.net_losses);
        reg.counter_add(
            &format!("{prefix}.rendezvous_staged"),
            self.rendezvous_staged,
        );
        reg.counter_add(&format!("{prefix}.host_crashes"), self.host_crashes);
        reg.counter_add(&format!("{prefix}.host_reboots"), self.host_reboots);
        reg.counter_add(&format!("{prefix}.host_freezes"), self.host_freezes);
        reg.counter_add(&format!("{prefix}.bus_bursts"), self.bus_bursts);
        reg.counter_add(&format!("{prefix}.partitions"), self.partitions);
        reg.counter_add(
            &format!("{prefix}.msg_fault_windows"),
            self.msg_fault_windows,
        );
        reg.counter_add(&format!("{prefix}.tx.data_sent"), self.transport.data_sent);
        reg.counter_add(
            &format!("{prefix}.tx.retransmits"),
            self.transport.retransmits,
        );
        reg.counter_add(&format!("{prefix}.tx.acks_sent"), self.transport.acks_sent);
        reg.counter_add(
            &format!("{prefix}.tx.acks_received"),
            self.transport.acks_received,
        );
        reg.counter_add(&format!("{prefix}.tx.late_acks"), self.transport.late_acks);
        reg.counter_add(
            &format!("{prefix}.tx.dup_suppressed"),
            self.transport.dup_suppressed,
        );
        reg.counter_add(&format!("{prefix}.tx.give_ups"), self.transport.give_ups);
        reg.counter_add(
            &format!("{prefix}.tx.injected_losses"),
            self.transport.injected_losses,
        );
        reg.counter_add(
            &format!("{prefix}.tx.partition_drops"),
            self.transport.partition_drops,
        );
        reg.counter_add(
            &format!("{prefix}.tx.probes_sent"),
            self.transport.probes_sent,
        );
        reg.counter_add(
            &format!("{prefix}.tx.probe_replies"),
            self.transport.probe_replies,
        );
        reg.counter_add(
            &format!("{prefix}.delivery_failures"),
            self.delivery_failures.len() as u64,
        );
        reg.counter_add(
            &format!("{prefix}.duplicate_halo_applies"),
            self.duplicate_halo_applies,
        );
        reg.counter_add(
            &format!("{prefix}.out_of_order_consumes"),
            self.out_of_order_consumes,
        );
        reg.gauge_set(
            &format!("{prefix}.suspicion_peak"),
            self.suspicion_peak,
            "phi",
        );
        reg.counter_add(
            &format!("{prefix}.migrations"),
            self.migrations.len() as u64,
        );
        reg.counter_add(
            &format!("{prefix}.recoveries"),
            self.recoveries.len() as u64,
        );
        reg.gauge_set(&format!("{prefix}.finished_at"), self.finished_at, "s");
        reg.gauge_set(&format!("{prefix}.net_bytes"), self.net_bytes, "bytes");
        reg.gauge_set(&format!("{prefix}.net_busy"), self.net_busy, "s");
        reg.gauge_set(
            &format!("{prefix}.peak_queue_events"),
            self.peak_queue_events as f64,
            "events",
        );
        reg.gauge_set(
            &format!("{prefix}.peak_net_transfers"),
            self.peak_net_transfers as f64,
            "transfers",
        );
        reg.gauge_set(
            &format!("{prefix}.engine_bytes"),
            self.engine_bytes as f64,
            "bytes",
        );
        reg.counter_add(
            &format!("{prefix}.net_forced_completions"),
            self.net_forced_completions,
        );
        reg.gauge_set(
            &format!("{prefix}.checkpoint_pause_total"),
            self.checkpoint_pause_total,
            "s",
        );
        reg.gauge_set(
            &format!("{prefix}.mean_utilization"),
            self.mean_utilization(),
            "ratio",
        );
        reg.gauge_set(
            &format!("{prefix}.max_observed_skew"),
            self.max_observed_skew as f64,
            "steps",
        );
        for r in &self.recoveries {
            reg.histogram_observe(
                &format!("{prefix}.detection_latency"),
                r.detection_latency(),
                "s",
            );
            reg.histogram_observe(&format!("{prefix}.downtime"), r.downtime(), "s");
            reg.histogram_observe(
                &format!("{prefix}.lost_steps"),
                r.lost_steps as f64,
                "steps",
            );
        }
        for m in &self.migrations {
            reg.histogram_observe(
                &format!("{prefix}.migration_pause"),
                m.pause_duration(),
                "s",
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_definition() {
        let p = ProcStats {
            t_calc: 8.0,
            t_com: 2.0,
            t_paused: 1.0,
            steps: 20,
        };
        assert!((p.utilization() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn recovery_latencies() {
        let r = RecoveryRecord {
            proc_id: 2,
            from_host: 4,
            to_host: 9,
            fault_time: 400.0,
            detect_time: 435.0,
            resume_time: 470.0,
            rollback_step: 1000,
            lost_steps: 180,
            false_positive: false,
        };
        assert_eq!(r.detection_latency(), 35.0);
        assert_eq!(r.downtime(), 70.0);
    }

    #[test]
    fn publish_exports_counters_gauges_and_histograms() {
        let mut s = ClusterStats {
            checkpoint_rounds: 3,
            finished_at: 12.5,
            ..Default::default()
        };
        s.recoveries.push(RecoveryRecord {
            proc_id: 0,
            from_host: 0,
            to_host: 1,
            fault_time: 1.0,
            detect_time: 2.0,
            resume_time: 4.0,
            rollback_step: 10,
            lost_steps: 5,
            false_positive: false,
        });
        let reg = MetricsRegistry::new();
        s.publish(&reg, "cluster");
        assert_eq!(reg.counter("cluster.checkpoint_rounds"), Some(3));
        assert_eq!(reg.counter("cluster.recoveries"), Some(1));
        assert_eq!(reg.gauge("cluster.finished_at"), Some(12.5));
        let h = reg
            .histogram("cluster.downtime")
            .expect("downtime histogram");
        assert_eq!(h.count, 1);
    }

    #[test]
    fn publish_exports_transport_counters() {
        let mut s = ClusterStats {
            partitions: 1,
            ..Default::default()
        };
        s.transport.data_sent = 40;
        s.transport.retransmits = 7;
        s.transport.give_ups = 2;
        s.suspicion_peak = 8.5;
        s.delivery_failures.push(DeliveryFailureRecord {
            from_proc: 0,
            to_proc: 1,
            step: 12,
            xch: 0,
            at: 30.0,
            attempts: 8,
        });
        let reg = MetricsRegistry::new();
        s.publish(&reg, "cluster");
        assert_eq!(reg.counter("cluster.tx.data_sent"), Some(40));
        assert_eq!(reg.counter("cluster.tx.retransmits"), Some(7));
        assert_eq!(reg.counter("cluster.tx.give_ups"), Some(2));
        assert_eq!(reg.counter("cluster.delivery_failures"), Some(1));
        assert_eq!(reg.counter("cluster.partitions"), Some(1));
        assert_eq!(reg.gauge("cluster.suspicion_peak"), Some(8.5));
    }

    #[test]
    fn false_positive_recoveries_are_counted() {
        let mut s = ClusterStats::default();
        let rec = RecoveryRecord {
            proc_id: 0,
            from_host: 0,
            to_host: 1,
            fault_time: 1.0,
            detect_time: 2.0,
            resume_time: 4.0,
            rollback_step: 10,
            lost_steps: 5,
            false_positive: false,
        };
        s.recoveries.push(rec);
        s.recoveries.push(RecoveryRecord {
            false_positive: true,
            ..rec
        });
        assert_eq!(s.false_positive_recoveries(), 1);
    }

    #[test]
    fn migration_durations() {
        let m = MigrationRecord {
            proc_id: 0,
            from_host: 1,
            to_host: 2,
            signal_time: 100.0,
            pause_time: 110.0,
            resume_time: 140.0,
        };
        assert_eq!(m.pause_duration(), 30.0);
        assert_eq!(m.total_duration(), 40.0);
    }
}
