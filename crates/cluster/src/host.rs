//! Workstation models: speeds, load averages, nice scheduling.

use serde::{Deserialize, Serialize};
use subsonic_solvers::MethodKind;

/// The HP9000/700 models of the paper's cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HostKind {
    /// HP9000/715-50 — the 50 MHz reference machine (16 in the cluster).
    Hp715_50,
    /// HP9000/710 — slightly slower (3 in the cluster).
    Hp710,
    /// HP9000/720 — slightly slower (6 in the cluster).
    Hp720,
}

impl HostKind {
    /// The paper's cluster composition: 16× 715/50, 6× 720, 3× 710.
    pub fn paper_cluster() -> Vec<HostKind> {
        let mut v = vec![HostKind::Hp715_50; 16];
        v.extend(vec![HostKind::Hp720; 6]);
        v.extend(vec![HostKind::Hp710; 3]);
        v
    }

    /// Computational speed in fluid nodes per second for a method and
    /// dimensionality, from the section-7 speed table (`1.0 ≡ 39132`
    /// nodes/s).
    pub fn node_rate(self, method: MethodKind, three_d: bool) -> f64 {
        let c = subsonic_model::PaperConstants::default();
        let row = match (method, three_d) {
            (MethodKind::LatticeBoltzmann, false) => c.rel_speed_lb2d,
            (MethodKind::LatticeBoltzmann, true) => c.rel_speed_lb3d,
            (MethodKind::FiniteDifference, false) => c.rel_speed_fd2d,
            (MethodKind::FiniteDifference, true) => c.rel_speed_fd3d,
        };
        let rel = match self {
            HostKind::Hp715_50 => row[0],
            HostKind::Hp710 => row[1],
            HostKind::Hp720 => row[2],
        };
        rel * c.u_calc_lb2d
    }

    /// Preference rank for job submission (faster models first): "our
    /// strategy is to choose 715 models first before choosing the slightly
    /// slower 710 and 720 models".
    pub fn preference_rank(self) -> u8 {
        match self {
            HostKind::Hp715_50 => 0,
            HostKind::Hp720 => 1,
            HostKind::Hp710 => 2,
        }
    }
}

/// An exponentially-smoothed load average, as `uptime` reports.
///
/// UNIX load averages follow `L ← L·e^(−Δt/τ) + n·(1 − e^(−Δt/τ))` where `n`
/// is the instantaneous run-queue length, with τ = 60/300/900 s for the
/// 1/5/15-minute averages. We update lazily: the run-queue length is
/// piecewise constant between events.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LoadAvg {
    tau: f64,
    value: f64,
    last_update: f64,
}

impl LoadAvg {
    /// A zero load average with the given time constant (seconds).
    pub fn new(tau: f64) -> Self {
        Self { tau, value: 0.0, last_update: 0.0 }
    }

    /// The load average at time `now`, given that the run-queue length has
    /// been `n` since the last update.
    pub fn at(&self, now: f64, n: f64) -> f64 {
        let dt = (now - self.last_update).max(0.0);
        let a = (-dt / self.tau).exp();
        self.value * a + n * (1.0 - a)
    }

    /// Folds the interval since the last update (run-queue length `n`) into
    /// the average and advances the update time.
    pub fn advance(&mut self, now: f64, n: f64) {
        self.value = self.at(now, n);
        self.last_update = now;
    }
}

/// Dynamic state of one workstation in the simulation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HostState {
    /// Hardware model.
    pub kind: HostKind,
    /// Whether the console user is currently active.
    pub user_active: bool,
    /// Time the user last went idle (valid when `!user_active`).
    pub idle_since: f64,
    /// Number of competing full-time (CPU-bound) jobs.
    pub competitors: u32,
    /// Parallel subprocess currently assigned here, if any.
    pub assigned_proc: Option<usize>,
    /// 5-minute load average (migration trigger: `> 1.5`).
    pub load5: LoadAvg,
    /// 15-minute load average (selection threshold: `< 0.6`).
    pub load15: LoadAvg,
}

impl HostState {
    /// A quiet host of the given model.
    pub fn new(kind: HostKind) -> Self {
        Self {
            kind,
            user_active: false,
            idle_since: 0.0,
            competitors: 0,
            assigned_proc: None,
            load5: LoadAvg::new(300.0),
            load15: LoadAvg::new(900.0),
        }
    }

    /// Instantaneous run-queue length as `uptime` would count it: competing
    /// full-time jobs plus our own (nice'd) subprocess if one runs here.
    pub fn run_queue(&self) -> f64 {
        self.competitors as f64 + if self.assigned_proc.is_some() { 1.0 } else { 0.0 }
    }

    /// Folds elapsed time into the load averages (call *before* changing
    /// `competitors` or `assigned_proc`).
    pub fn touch(&mut self, now: f64) {
        let n = self.run_queue();
        self.load5.advance(now, n);
        self.load15.advance(now, n);
    }

    /// The share of the CPU the nice'd parallel subprocess receives.
    ///
    /// Interactive users cost nothing measurable ("there is no loss of
    /// interactiveness. After the user's tasks are serviced, there are enough
    /// CPU cycles left for the distributed computation", section 5.1). A
    /// competing *full-time* job at normal priority starves the nice'd
    /// process down to a small share.
    pub fn nice_share(&self, nice_floor: f64) -> f64 {
        if self.competitors == 0 {
            1.0
        } else {
            nice_floor / self.competitors as f64
        }
    }

    /// Whether the user has been idle for at least `idle_threshold` seconds
    /// (the paper's "more than 20 minutes idle time" classification).
    pub fn user_is_idle(&self, now: f64, idle_threshold: f64) -> bool {
        !self.user_active && (now - self.idle_since) >= idle_threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_cluster_composition() {
        let hosts = HostKind::paper_cluster();
        assert_eq!(hosts.len(), 25);
        assert_eq!(hosts.iter().filter(|h| **h == HostKind::Hp715_50).count(), 16);
        assert_eq!(hosts.iter().filter(|h| **h == HostKind::Hp720).count(), 6);
        assert_eq!(hosts.iter().filter(|h| **h == HostKind::Hp710).count(), 3);
    }

    #[test]
    fn node_rates_match_table() {
        let r = HostKind::Hp715_50.node_rate(MethodKind::LatticeBoltzmann, false);
        assert!((r - 39132.0).abs() < 1e-9);
        let r = HostKind::Hp710.node_rate(MethodKind::LatticeBoltzmann, false);
        assert!((r - 0.84 * 39132.0).abs() < 1e-9);
        let r = HostKind::Hp715_50.node_rate(MethodKind::FiniteDifference, false);
        assert!((r - 1.24 * 39132.0).abs() < 1e-9);
        let r = HostKind::Hp720.node_rate(MethodKind::LatticeBoltzmann, true);
        assert!((r - 0.42 * 39132.0).abs() < 1e-9);
    }

    #[test]
    fn load_average_converges_to_run_queue() {
        let mut l = LoadAvg::new(300.0);
        l.advance(0.0, 0.0);
        // hold n = 2 for a long time
        assert!((l.at(3600.0, 2.0) - 2.0).abs() < 1e-4);
        // crossing 1.5 from 1.0 to 2.0 takes 300 ln 2 ≈ 208 s
        let mut l = LoadAvg::new(300.0);
        l.value = 1.0;
        l.last_update = 0.0;
        let t_cross = 300.0 * 2.0f64.ln();
        assert!(l.at(t_cross - 5.0, 2.0) < 1.5);
        assert!(l.at(t_cross + 5.0, 2.0) > 1.5);
    }

    #[test]
    fn nice_share_starves_under_competition() {
        let mut h = HostState::new(HostKind::Hp715_50);
        assert_eq!(h.nice_share(0.25), 1.0);
        h.competitors = 1;
        assert_eq!(h.nice_share(0.25), 0.25);
        h.competitors = 2;
        assert_eq!(h.nice_share(0.25), 0.125);
    }

    #[test]
    fn idle_classification_needs_threshold() {
        let mut h = HostState::new(HostKind::Hp710);
        h.user_active = false;
        h.idle_since = 100.0;
        assert!(!h.user_is_idle(500.0, 1200.0));
        assert!(h.user_is_idle(1400.0, 1200.0));
        h.user_active = true;
        assert!(!h.user_is_idle(1.0e6, 1200.0));
    }
}
