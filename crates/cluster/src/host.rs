//! Workstation models: speeds, load averages, nice scheduling.

use serde::{Deserialize, Serialize};
use subsonic_solvers::MethodKind;

/// The HP9000/700 models of the paper's cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HostKind {
    /// HP9000/715-50 — the 50 MHz reference machine (16 in the cluster).
    Hp715_50,
    /// HP9000/710 — slightly slower (3 in the cluster).
    Hp710,
    /// HP9000/720 — slightly slower (6 in the cluster).
    Hp720,
}

impl HostKind {
    /// The paper's cluster composition: 16× 715/50, 6× 720, 3× 710.
    pub fn paper_cluster() -> Vec<HostKind> {
        let mut v = vec![HostKind::Hp715_50; 16];
        v.extend(vec![HostKind::Hp720; 6]);
        v.extend(vec![HostKind::Hp710; 3]);
        v
    }

    /// Computational speed in fluid nodes per second for a method and
    /// dimensionality, from the section-7 speed table (`1.0 ≡ 39132`
    /// nodes/s).
    pub fn node_rate(self, method: MethodKind, three_d: bool) -> f64 {
        let c = subsonic_model::PaperConstants::default();
        let row = match (method, three_d) {
            (MethodKind::LatticeBoltzmann, false) => c.rel_speed_lb2d,
            (MethodKind::LatticeBoltzmann, true) => c.rel_speed_lb3d,
            (MethodKind::FiniteDifference, false) => c.rel_speed_fd2d,
            (MethodKind::FiniteDifference, true) => c.rel_speed_fd3d,
        };
        let rel = match self {
            HostKind::Hp715_50 => row[0],
            HostKind::Hp710 => row[1],
            HostKind::Hp720 => row[2],
        };
        rel * c.u_calc_lb2d
    }

    /// Preference rank for job submission (faster models first): "our
    /// strategy is to choose 715 models first before choosing the slightly
    /// slower 710 and 720 models".
    pub fn preference_rank(self) -> u8 {
        match self {
            HostKind::Hp715_50 => 0,
            HostKind::Hp720 => 1,
            HostKind::Hp710 => 2,
        }
    }
}

/// An exponentially-smoothed load average, as `uptime` reports.
///
/// UNIX load averages follow `L ← L·e^(−Δt/τ) + n·(1 − e^(−Δt/τ))` where `n`
/// is the instantaneous run-queue length, with τ = 60/300/900 s for the
/// 1/5/15-minute averages. We update lazily: the run-queue length is
/// piecewise constant between events.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LoadAvg {
    tau: f64,
    value: f64,
    last_update: f64,
}

impl LoadAvg {
    /// A zero load average with the given time constant (seconds).
    pub fn new(tau: f64) -> Self {
        Self {
            tau,
            value: 0.0,
            last_update: 0.0,
        }
    }

    /// The load average at time `now`, given that the run-queue length has
    /// been `n` since the last update.
    pub fn at(&self, now: f64, n: f64) -> f64 {
        let dt = (now - self.last_update).max(0.0);
        let a = (-dt / self.tau).exp();
        self.value * a + n * (1.0 - a)
    }

    /// Folds the interval since the last update (run-queue length `n`) into
    /// the average and advances the update time.
    pub fn advance(&mut self, now: f64, n: f64) {
        self.value = self.at(now, n);
        self.last_update = now;
    }
}

/// Dynamic state of one workstation in the simulation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HostState {
    /// Hardware model.
    pub kind: HostKind,
    /// Whether the console user is currently active.
    pub user_active: bool,
    /// Time the user last went idle (valid when `!user_active`).
    pub idle_since: f64,
    /// Number of competing full-time (CPU-bound) jobs.
    pub competitors: u32,
    /// Parallel subprocess currently assigned here, if any.
    pub assigned_proc: Option<usize>,
    /// 1-minute load average of the *competing* run queue only (excluding the
    /// nice'd subprocess) — the smoothed CPU demand that governs the
    /// processor-sharing rate in [`HostState::cpu_share`].
    pub cpu1: LoadAvg,
    /// 5-minute load average (migration trigger: `> 1.5`).
    pub load5: LoadAvg,
    /// 15-minute load average (selection threshold: `< 0.6`).
    pub load15: LoadAvg,
    /// Deliberate external slowdown factor (`>= 1`); the effective node rate
    /// divides by this. `1.0` for normal operation — experiments use it to
    /// throttle a single workstation without touching the job model.
    pub slowdown: f64,
    /// Whether a `CpuRelax` re-planning tick is already pending for this host
    /// (the simulation's bookkeeping; avoids duplicate tick chains).
    pub relax_scheduled: bool,
    /// Whether the machine is powered on. A crashed host is down until its
    /// reboot event (if any); down hosts are never selected for placement.
    pub up: bool,
    /// Whether the machine is in an injected transient stall (alive but not
    /// making progress); frozen hosts are never selected for placement.
    pub frozen: bool,
    /// Guard for the failure detector's probe chain: bumping it invalidates
    /// any outstanding `HeartbeatProbe` events for this host.
    pub probe_epoch: u64,
}

impl HostState {
    /// A quiet host of the given model.
    pub fn new(kind: HostKind) -> Self {
        Self {
            kind,
            user_active: false,
            idle_since: 0.0,
            competitors: 0,
            assigned_proc: None,
            cpu1: LoadAvg::new(60.0),
            load5: LoadAvg::new(300.0),
            load15: LoadAvg::new(900.0),
            slowdown: 1.0,
            relax_scheduled: false,
            up: true,
            frozen: false,
            probe_epoch: 0,
        }
    }

    /// Whether the host can run (or receive) a subprocess right now: powered
    /// on and not stalled.
    pub fn available(&self) -> bool {
        self.up && !self.frozen
    }

    /// Whether the machine answers a failure-detector probe right now. A
    /// frozen host's network stack is as silent as a dead one for the
    /// detector's purposes, but a host whose subprocess is merely *paused*
    /// (barrier, checkpoint, migration drain) still replies — that is
    /// exactly the evidence the accrual detector uses to keep a congested
    /// but living host from being declared dead.
    pub fn answers_probes(&self) -> bool {
        self.up && !self.frozen
    }

    /// Invalidates every outstanding `HeartbeatProbe` chain for this host
    /// (recovered, declared, or proven alive — any of these ends the chain).
    pub fn bump_probe_epoch(&mut self) {
        self.probe_epoch += 1;
    }

    /// Instantaneous run-queue length as `uptime` would count it: competing
    /// full-time jobs plus our own (nice'd) subprocess if one runs here.
    pub fn run_queue(&self) -> f64 {
        self.competitors as f64
            + if self.assigned_proc.is_some() {
                1.0
            } else {
                0.0
            }
    }

    /// Folds elapsed time into the load averages (call *before* changing
    /// `competitors` or `assigned_proc`).
    pub fn touch(&mut self, now: f64) {
        let n = self.run_queue();
        self.cpu1.advance(now, self.competitors as f64);
        self.load5.advance(now, n);
        self.load15.advance(now, n);
    }

    /// Smoothed competing CPU demand at `now`: the 1-minute-averaged number
    /// of full-time jobs contending for the processor.
    pub fn cpu_demand(&self, now: f64) -> f64 {
        self.cpu1.at(now, self.competitors as f64)
    }

    /// The share of the CPU the nice'd parallel subprocess receives at `now`,
    /// under processor sharing with priority weights.
    ///
    /// The subprocess runs at weight `w` against `d` competing full-time jobs
    /// of weight 1, so its share is `w / (w + d)`. The demand `d` is the
    /// 1-minute load average of the competitors ([`HostState::cpu_demand`]) —
    /// the scheduler reacts on the load-average timescale, so a job landing
    /// on the host squeezes the subprocess gradually rather than instantly.
    ///
    /// Interactive users cost nothing measurable ("there is no loss of
    /// interactiveness. After the user's tasks are serviced, there are enough
    /// CPU cycles left for the distributed computation", section 5.1): only
    /// full-time jobs enter the demand. With no competitors the share is
    /// exactly 1. In steady state under one full-time job the share settles
    /// at `w / (w + 1)` — choosing `w = floor / (1 − floor)` recovers the
    /// configured `nice_floor` exactly (see `ClusterConfig::nice_weight`).
    pub fn cpu_share(&self, now: f64, nice_weight: f64) -> f64 {
        let d = self.cpu_demand(now);
        if d <= 0.0 && self.competitors == 0 {
            return 1.0;
        }
        nice_weight / (nice_weight + d)
    }

    /// Whether the user has been idle for at least `idle_threshold` seconds
    /// (the paper's "more than 20 minutes idle time" classification).
    pub fn user_is_idle(&self, now: f64, idle_threshold: f64) -> bool {
        !self.user_active && (now - self.idle_since) >= idle_threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_cluster_composition() {
        let hosts = HostKind::paper_cluster();
        assert_eq!(hosts.len(), 25);
        assert_eq!(
            hosts.iter().filter(|h| **h == HostKind::Hp715_50).count(),
            16
        );
        assert_eq!(hosts.iter().filter(|h| **h == HostKind::Hp720).count(), 6);
        assert_eq!(hosts.iter().filter(|h| **h == HostKind::Hp710).count(), 3);
    }

    #[test]
    fn node_rates_match_table() {
        let r = HostKind::Hp715_50.node_rate(MethodKind::LatticeBoltzmann, false);
        assert!((r - 39132.0).abs() < 1e-9);
        let r = HostKind::Hp710.node_rate(MethodKind::LatticeBoltzmann, false);
        assert!((r - 0.84 * 39132.0).abs() < 1e-9);
        let r = HostKind::Hp715_50.node_rate(MethodKind::FiniteDifference, false);
        assert!((r - 1.24 * 39132.0).abs() < 1e-9);
        let r = HostKind::Hp720.node_rate(MethodKind::LatticeBoltzmann, true);
        assert!((r - 0.42 * 39132.0).abs() < 1e-9);
    }

    #[test]
    fn load_average_converges_to_run_queue() {
        let mut l = LoadAvg::new(300.0);
        l.advance(0.0, 0.0);
        // hold n = 2 for a long time
        assert!((l.at(3600.0, 2.0) - 2.0).abs() < 1e-4);
        // crossing 1.5 from 1.0 to 2.0 takes 300 ln 2 ≈ 208 s
        let mut l = LoadAvg::new(300.0);
        l.value = 1.0;
        l.last_update = 0.0;
        let t_cross = 300.0 * 2.0f64.ln();
        assert!(l.at(t_cross - 5.0, 2.0) < 1.5);
        assert!(l.at(t_cross + 5.0, 2.0) > 1.5);
    }

    #[test]
    fn cpu_share_starves_under_competition() {
        // weight for a 0.25 steady-state floor under one competitor
        let w = 0.25 / (1.0 - 0.25);
        let mut h = HostState::new(HostKind::Hp715_50);
        assert_eq!(h.cpu_share(0.0, w), 1.0);
        // a job arrives at t = 0: the squeeze follows the 1-minute average
        h.competitors = 1;
        let early = h.cpu_share(1.0, w);
        let late = h.cpu_share(600.0, w);
        assert!(early > 0.9, "squeeze should be gradual, got {early}");
        assert!((late - 0.25).abs() < 1e-4, "steady share {late} != floor");
        // two competitors: processor sharing gives w/(w+2) = 1/7
        h.cpu1 = LoadAvg::new(60.0);
        h.competitors = 2;
        let two = h.cpu_share(600.0, w);
        assert!((two - w / (w + 2.0)).abs() < 1e-4, "share {two}");
        assert!(two < 0.25, "more competitors must mean a smaller share");
    }

    #[test]
    fn cpu_demand_relaxes_after_departure() {
        let mut h = HostState::new(HostKind::Hp715_50);
        h.competitors = 1;
        h.touch(0.0);
        // converge toward 1, then the job leaves at t = 300
        h.touch(300.0);
        h.competitors = 0;
        let just_after = h.cpu_demand(301.0);
        let much_later = h.cpu_demand(900.0);
        assert!(just_after > 0.9, "demand should linger: {just_after}");
        assert!(much_later < 0.01, "demand should decay: {much_later}");
        // and the share recovers toward 1 as the demand decays
        let w = 1.0 / 3.0;
        assert!(h.cpu_share(900.0, w) > 0.97);
    }

    #[test]
    fn idle_classification_needs_threshold() {
        let mut h = HostState::new(HostKind::Hp710);
        h.user_active = false;
        h.idle_since = 100.0;
        assert!(!h.user_is_idle(500.0, 1200.0));
        assert!(h.user_is_idle(1400.0, 1200.0));
        h.user_active = true;
        assert!(!h.user_is_idle(1.0e6, 1200.0));
    }
}
