//! Runtime policies: job submission, monitoring, communication ordering.

use crate::host::HostState;
use serde::{Deserialize, Serialize};

/// Host-selection policy of the job-submit program (section 4.1): "we first
/// examine the idle-user workstations to see if the fifteen-minute average of
/// the CPU load is below a pre-set value ... After examining the idle-user
/// workstations, we examine the active-user workstations."
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SubmitPolicy {
    /// Seconds of console inactivity before a user counts as idle (paper:
    /// "more than 20 minutes idle time").
    pub idle_threshold_s: f64,
    /// Maximum 15-minute load average for selection (paper: 0.6).
    pub load15_max: f64,
    /// How long one search over the cluster takes (running `uptime` on every
    /// of the 25 workstations remotely, roughly a second each); the dominant
    /// share of the paper's ~30-second migration pause.
    pub search_duration_s: f64,
}

impl Default for SubmitPolicy {
    fn default() -> Self {
        Self {
            idle_threshold_s: 20.0 * 60.0,
            load15_max: 0.6,
            search_duration_s: 20.0,
        }
    }
}

impl SubmitPolicy {
    /// Picks the best free host at time `now`, or `None`.
    ///
    /// Candidates must be up (not crashed or stalled), have no assigned
    /// subprocess and no competing full-time job. Idle-user hosts under the
    /// load threshold come first, then active-user hosts; within a tier,
    /// faster models first (the paper chooses 715s before 710/720s), then
    /// lower 15-minute load.
    pub fn select<'a>(
        &self,
        now: f64,
        hosts: impl Iterator<Item = (usize, &'a HostState)>,
    ) -> Option<usize> {
        let mut best: Option<(u8, u8, f64, usize)> = None; // (tier, rank, load15, id)
        for (id, h) in hosts {
            if !h.available() || h.assigned_proc.is_some() || h.competitors > 0 {
                continue;
            }
            let l15 = h.load15.at(now, h.run_queue());
            let tier = if h.user_is_idle(now, self.idle_threshold_s) && l15 < self.load15_max {
                0u8
            } else {
                1u8
            };
            let key = (tier, h.kind.preference_rank(), l15, id);
            match &best {
                Some(b) if (b.0, b.1, b.2) <= (key.0, key.1, key.2) => {}
                _ => best = Some(key),
            }
        }
        best.map(|(_, _, _, id)| id)
    }
}

/// The monitoring program (sections 4.1, 5.1).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct MonitorPolicy {
    /// Whether the monitor runs at all.
    pub enabled: bool,
    /// Check period ("checks every few minutes"), seconds.
    pub period_s: f64,
    /// 5-minute load threshold that triggers migration (paper: 1.5, "the
    /// intent is to migrate only if a second full-time process is running on
    /// the same host, and to avoid migrating too often").
    pub load5_migrate: f64,
}

impl Default for MonitorPolicy {
    fn default() -> Self {
        Self {
            enabled: true,
            period_s: 180.0,
            load5_migrate: 1.5,
        }
    }
}

/// How the monitor decides that a silent host is dead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DetectorMode {
    /// The classic probe schedule: `max_misses` consecutive unanswered
    /// checks at exponentially backed-off intervals declare the process
    /// dead, no matter *why* the host is silent. Checks are out-of-band
    /// (the monitor consults host state directly, as the PR 3 model did),
    /// so bus congestion cannot delay them — which is exactly why pure
    /// congestion produces false positives: ACK evidence stops arriving
    /// and the schedule runs to declaration.
    FixedTimeout,
    /// Accrual (φ-style) detection: probes are real small messages on the
    /// modelled bus, replies feed an RTT estimate, and suspicion
    /// `φ = elapsed/expected` grows *continuously* with silence instead of
    /// counting discrete misses. Congestion inflates probe RTTs, which
    /// inflates `expected`, which keeps φ below threshold — saturation
    /// slows detection instead of triggering it.
    Accrual,
}

/// The monitor's heartbeat failure detector.
///
/// The paper's monitoring program notices a dead subprocess and re-submits it
/// "in the same way as the monitoring program restarts an interrupted
/// computation" (section 4.1). We model the detection side explicitly: when a
/// host stops answering, the monitor probes it after `timeout_s`, then backs
/// off exponentially (`timeout_s · backoff^k`, clamped to
/// `max_probe_interval_s`) to avoid hammering a machine that may just be
/// slow, and declares the subprocess dead after `max_misses` consecutive
/// unanswered probes. A transient stall shorter than the full schedule goes
/// unpunished; a longer one triggers a false-positive restart — the classic
/// completeness/accuracy trade-off. [`DetectorMode::Accrual`] replaces the
/// discrete miss count with a continuous suspicion level fed by probe RTTs.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DetectorPolicy {
    /// Whether failure detection runs at all.
    pub enabled: bool,
    /// Seconds without a heartbeat before the first probe fires.
    pub timeout_s: f64,
    /// Multiplier applied to the wait before each subsequent probe (`>= 1`).
    pub backoff: f64,
    /// Consecutive unanswered probes before the process is declared dead.
    pub max_misses: u32,
    /// Upper bound on the backed-off probe interval, seconds. Without it
    /// `timeout_s · backoff^k` grows without limit and a long freeze makes
    /// re-detection arbitrarily slow.
    pub max_probe_interval_s: f64,
    /// Declaration strategy (fixed miss count vs accrual suspicion).
    pub mode: DetectorMode,
    /// Accrual threshold: declare dead when
    /// `φ = silence / expected ≥ phi_threshold`.
    pub phi_threshold: f64,
    /// Accrual RTT headroom: `expected = max(timeout_s, srtt + k·rttvar)`
    /// with `k = rtt_inflation`, so congested-but-alive links raise the bar.
    pub rtt_inflation: f64,
}

impl Default for DetectorPolicy {
    fn default() -> Self {
        Self {
            enabled: true,
            timeout_s: 5.0,
            backoff: 2.0,
            max_misses: 3,
            // Default clamp sits above the 3-miss schedule's largest gap
            // (20 s), so the classic 5/15/35 offsets are unchanged.
            max_probe_interval_s: 60.0,
            mode: DetectorMode::FixedTimeout,
            phi_threshold: 8.0,
            rtt_inflation: 4.0,
        }
    }
}

impl DetectorPolicy {
    /// The wait before probe number `misses` (1-based), with the exponential
    /// backoff clamped to [`max_probe_interval_s`](Self::max_probe_interval_s).
    pub fn probe_wait(&self, misses: u32) -> f64 {
        let raw = self.timeout_s * self.backoff.powi(misses.saturating_sub(1) as i32);
        raw.min(self.max_probe_interval_s)
    }

    /// Offsets (seconds after the heartbeat stopped) at which each probe
    /// fires: `timeout · Σ backoff^j` with each term clamped to
    /// `max_probe_interval_s`, one entry per probe up to the declaration
    /// probe.
    pub fn probe_offsets(&self) -> Vec<f64> {
        let mut offsets = Vec::with_capacity(self.max_misses as usize);
        let mut t = 0.0;
        for k in 1..=self.max_misses {
            t += self.probe_wait(k);
            offsets.push(t);
        }
        offsets
    }

    /// Seconds from heartbeat loss to declaration (the last probe offset);
    /// the geometric sum `timeout · (backoff^m − 1)/(backoff − 1)` when no
    /// term hits the clamp.
    pub fn detection_latency(&self) -> f64 {
        self.probe_offsets().last().copied().unwrap_or(0.0)
    }
}

/// Appendix-C ordering of neighbour communication.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CommOrdering {
    /// Asynchronous first-come-first-served (the paper's choice, via
    /// `select()`): "better performance is achieved overall".
    Fcfs,
    /// Strict pipelining: a process must receive from its lower-ranked
    /// neighbours before sending to higher-ranked ones. "It does not work
    /// very well ... strict ordering amplifies [small delays] to global
    /// delays."
    Strict,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::{HostKind, HostState};

    fn quiet_host(kind: HostKind, idle_since: f64) -> HostState {
        let mut h = HostState::new(kind);
        h.idle_since = idle_since;
        h
    }

    #[test]
    fn submit_prefers_idle_fast_hosts() {
        let p = SubmitPolicy::default();
        let now = 30.0 * 60.0;
        let hosts = [
            quiet_host(HostKind::Hp710, 0.0),    // idle, slow
            quiet_host(HostKind::Hp715_50, 0.0), // idle, fast  <- winner
            quiet_host(HostKind::Hp715_50, now), // user just left (not idle yet)
        ];
        let sel = p.select(now, hosts.iter().enumerate());
        assert_eq!(sel, Some(1));
    }

    #[test]
    fn submit_falls_back_to_active_user_hosts() {
        let p = SubmitPolicy::default();
        let now = 1.0;
        let mut active = quiet_host(HostKind::Hp715_50, 0.0);
        active.user_active = true;
        let hosts = [active];
        assert_eq!(p.select(now, hosts.iter().enumerate()), Some(0));
    }

    #[test]
    fn submit_skips_busy_and_taken_hosts() {
        let p = SubmitPolicy::default();
        let now = 30.0 * 60.0;
        let mut taken = quiet_host(HostKind::Hp715_50, 0.0);
        taken.assigned_proc = Some(3);
        let mut busy = quiet_host(HostKind::Hp715_50, 0.0);
        busy.competitors = 1;
        let hosts = [taken, busy];
        assert_eq!(p.select(now, hosts.iter().enumerate()), None);
    }

    #[test]
    fn submit_skips_down_and_frozen_hosts() {
        let p = SubmitPolicy::default();
        let now = 30.0 * 60.0;
        let mut down = quiet_host(HostKind::Hp715_50, 0.0);
        down.up = false;
        let mut frozen = quiet_host(HostKind::Hp715_50, 0.0);
        frozen.frozen = true;
        let ok = quiet_host(HostKind::Hp710, 0.0);
        let hosts = [down, frozen, ok];
        assert_eq!(p.select(now, hosts.iter().enumerate()), Some(2));
    }

    #[test]
    fn detector_schedule_is_exponential() {
        let d = DetectorPolicy {
            timeout_s: 5.0,
            backoff: 2.0,
            max_misses: 3,
            ..DetectorPolicy::default()
        };
        let offs = d.probe_offsets();
        assert_eq!(offs.len(), 3);
        assert!((offs[0] - 5.0).abs() < 1e-12);
        assert!((offs[1] - 15.0).abs() < 1e-12);
        assert!((offs[2] - 35.0).abs() < 1e-12);
        assert!((d.detection_latency() - 35.0).abs() < 1e-12);
        // closed form: timeout · (b^m − 1)/(b − 1)
        let closed = 5.0 * (2.0f64.powi(3) - 1.0) / (2.0 - 1.0);
        assert!((d.detection_latency() - closed).abs() < 1e-12);
    }

    #[test]
    fn detector_without_backoff_is_periodic() {
        let d = DetectorPolicy {
            timeout_s: 2.0,
            backoff: 1.0,
            max_misses: 4,
            ..DetectorPolicy::default()
        };
        assert_eq!(d.probe_offsets(), vec![2.0, 4.0, 6.0, 8.0]);
        assert!((d.detection_latency() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn probe_backoff_is_clamped_to_max_interval() {
        // unclamped waits would be 5, 10, 20, 40, 80, 160; the clamp caps
        // every wait at 25 s so long schedules grow linearly, not
        // geometrically
        let d = DetectorPolicy {
            timeout_s: 5.0,
            backoff: 2.0,
            max_misses: 6,
            max_probe_interval_s: 25.0,
            ..DetectorPolicy::default()
        };
        assert!((d.probe_wait(1) - 5.0).abs() < 1e-12);
        assert!((d.probe_wait(2) - 10.0).abs() < 1e-12);
        assert!((d.probe_wait(3) - 20.0).abs() < 1e-12);
        for m in 4..=6 {
            assert!((d.probe_wait(m) - 25.0).abs() < 1e-12, "wait {m} unclamped");
        }
        let offs = d.probe_offsets();
        assert_eq!(offs, vec![5.0, 15.0, 35.0, 60.0, 85.0, 110.0]);
        // the default clamp (60 s) leaves the classic schedule untouched
        let default = DetectorPolicy::default();
        assert_eq!(default.probe_offsets(), vec![5.0, 15.0, 35.0]);
    }

    #[test]
    fn high_load_idle_host_drops_to_second_tier() {
        let p = SubmitPolicy::default();
        let now = 40.0 * 60.0;
        // an idle host whose load15 is high (e.g. background daemons)
        let mut loaded = quiet_host(HostKind::Hp715_50, 0.0);
        loaded.load15.advance(0.0, 0.0);
        loaded.load15 = {
            let mut l = crate::host::LoadAvg::new(900.0);
            l.advance(0.0, 0.0);
            l
        };
        // simulate a long-gone run-queue of 1.0 that keeps load15 ~ 0.9
        loaded
            .load15
            .advance(now - 10.0, 0.9 / (1.0 - (-(now - 10.0) / 900.0f64).exp()));
        let clean = quiet_host(HostKind::Hp710, 0.0);
        let hosts = [loaded, clean];
        // the slow-but-clean host wins because the fast one exceeds 0.6
        let sel = p.select(now, hosts.iter().enumerate());
        assert_eq!(sel, Some(1));
    }
}
