//! The cluster simulation proper: event loop and runtime protocols.
//!
//! [`ClusterSim`] wires together hosts, the network, and the parallel
//! subprocesses, and implements the paper's runtime protocols:
//!
//! * **job submission** (section 4.1) — idle-user-first host selection;
//! * the **monitoring program** — periodic load checks, migration triggers
//!   (5-minute load average above 1.5), restart bookkeeping;
//! * **synchronisation and migration** (section 5, Appendix B) — every
//!   process posts its integration step, the maximum plus one becomes the
//!   synchronisation step, everyone runs exactly to it and pauses, the
//!   migrating processes save dump files to the shared file server, the
//!   submit program finds free hosts, dumps are reloaded, channels reopen
//!   (CONT) and the computation continues;
//! * **staggered checkpointing** (section 5.2) — processes save their state
//!   "one after the other in an orderly fashion, allowing sufficient time
//!   gaps" so the network and file server are not monopolised.

use crate::bus::{Completion, NetworkConfig, NetworkModel, TransferPayload};
use crate::events::{EventKind, EventQueue};
use crate::fault::{FaultEvent, FaultPlan, TRANSPORT_STREAM_SALT};
use crate::host::{HostKind, HostState};
use crate::policy::{CommOrdering, DetectorMode, DetectorPolicy, MonitorPolicy, SubmitPolicy};
use crate::process::{CkptResume, ProcState, SimProcess, StagedHalo};
use crate::stats::{
    BackgroundEvent, BackgroundEventKind, ClusterStats, DeliveryFailureRecord, MigrationRecord,
    ProcStats, RecoveryRecord,
};
use crate::transport::{
    windows_from_plan, MsgFaultWindow, PartitionState, RttEstimator, TransportConfig,
    TransportState,
};
use crate::user::{exp_sample, UserModelConfig};
use crate::workload::{PhaseSpec, WorkloadSpec};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, VecDeque};
use subsonic_obs::{Category, FlightRecorder, TrackRecorder};

/// Flight-recorder process id for cluster-simulation tracks.
const TRACE_PID: u32 = 1;

/// Full configuration of a simulated cluster run.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Workstations available (the paper's pool of 25).
    pub hosts: Vec<HostKind>,
    /// Network model parameters.
    pub net: NetworkConfig,
    /// The decomposed numerical workload.
    pub workload: WorkloadSpec,
    /// Host-selection policy.
    pub submit: SubmitPolicy,
    /// Monitoring policy.
    pub monitor: MonitorPolicy,
    /// User/background-job model.
    pub user: UserModelConfig,
    /// Communication ordering (Appendix C).
    pub ordering: CommOrdering,
    /// Periodic checkpoint interval (paper: every 10–20 minutes); `None`
    /// disables checkpointing.
    pub checkpoint_period_s: Option<f64>,
    /// Gap between consecutive staggered saves.
    pub checkpoint_gap_s: f64,
    /// Dump-file size per subregion node, bytes ("a couple of megabytes per
    /// process").
    pub dump_bytes_per_node: f64,
    /// Channel-reopen handshake time at resume.
    pub handshake_s: f64,
    /// CPU share floor of the nice'd subprocess under one competing job.
    pub nice_floor: f64,
    /// Fractional jitter on compute-phase durations, uniform in
    /// `[1, 1 + jitter]` — the "small delays [that] are inevitable in
    /// time-sharing UNIX systems" of Appendix C. Zero for exact timing.
    pub compute_jitter: f64,
    /// Injected failures (host crashes/reboots, transient stalls, bus
    /// saturation bursts). The empty plan schedules nothing and leaves every
    /// seeded result bit-identical.
    pub faults: FaultPlan,
    /// Heartbeat failure detector of the monitoring program.
    pub detector: DetectorPolicy,
    /// Reliable-transport tuning (engaged only when the fault plan contains
    /// message-level faults; otherwise the legacy statistical wire path runs
    /// and these knobs are inert).
    pub transport: TransportConfig,
    /// RNG seed (simulations are deterministic given the seed).
    pub seed: u64,
}

/// Re-planning period while a host's processor-sharing rate is still
/// relaxing toward the instantaneous competitor count.
const CPU_RELAX_TICK_S: f64 = 15.0;
/// Demand convergence tolerance below which relaxation ticks stop.
const CPU_RELAX_EPS: f64 = 0.02;
/// Longest rendezvous stall a slow receiver is charged catch-up for: the
/// protocol work a host can defer while computing is bounded (receive
/// buffers fill and the sender's window closes), so the catch-up term of
/// the step-coupling model saturates here. Calibrated against the section-7
/// heterogeneous-pool measurements (see DESIGN.md).
const STALL_CATCHUP_CAP_S: f64 = 0.5;
/// Catch-up work per second of stall, relative to the receiver's speed
/// deficit: the deferred protocol processing spans the kernel stack and the
/// application's receive loop, so the charge exceeds the bare rate deficit.
/// Calibrated so the simulated heterogeneous-pool step time reproduces the
/// section-7 measurement (t20/t16 ≈ 1.16, see DESIGN.md).
const STALL_CATCHUP_GAIN: f64 = 1.1;
/// Seed salt separating the user/background RNG stream from the bus stream:
/// policy-only configuration changes reorder bus draws but must never perturb
/// the background environment.
const USER_STREAM_SALT: u64 = 0xC0FF_EE00_5EED_0001;

impl ClusterConfig {
    /// Processor-sharing weight of the nice'd subprocess, derived from
    /// `nice_floor` so that the steady-state share under exactly one
    /// competing full-time job equals the floor: `w / (w + 1) = floor`.
    pub fn nice_weight(&self) -> f64 {
        self.nice_floor / (1.0 - self.nice_floor)
    }

    /// A quiet-cluster configuration for performance measurement (the
    /// conditions of section 7: no user load, no checkpoints, no monitor).
    pub fn measurement(workload: WorkloadSpec) -> Self {
        Self {
            hosts: HostKind::paper_cluster(),
            net: NetworkConfig::default(),
            workload,
            submit: SubmitPolicy::default(),
            monitor: MonitorPolicy {
                enabled: false,
                ..MonitorPolicy::default()
            },
            user: UserModelConfig::quiet(),
            ordering: CommOrdering::Fcfs,
            checkpoint_period_s: None,
            checkpoint_gap_s: 20.0,
            dump_bytes_per_node: 96.0,
            handshake_s: 0.5,
            nice_floor: 0.25,
            compute_jitter: 0.0,
            faults: FaultPlan::empty(),
            detector: DetectorPolicy::default(),
            transport: TransportConfig::default(),
            seed: 1,
        }
    }

    /// A production configuration: users, jobs, monitoring, migration and
    /// checkpointing all on (the paper's 12-hour overnight runs).
    pub fn production(workload: WorkloadSpec, seed: u64) -> Self {
        Self {
            monitor: MonitorPolicy::default(),
            user: UserModelConfig::default(),
            checkpoint_period_s: Some(900.0),
            seed,
            ..Self::measurement(workload)
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum SyncState {
    Idle,
    Draining { target: u64 },
    Migrating,
}

#[derive(Debug, Clone)]
struct CkptRound {
    order: Vec<usize>,
    next: usize,
    /// Minimum integration step among the saves of this round — the
    /// coordinated-checkpoint step crash recovery can roll back to once the
    /// round completes (the staggered saves of section 5.2 bound a
    /// consistent cut at their minimum step).
    min_step: u64,
    /// Processes that actually saved this round (a round that skipped a
    /// paused/migrating process does not advance the recovery point).
    saved: usize,
}

/// A failure-triggered recovery in progress (between declaration and the
/// global resume).
#[derive(Debug, Clone, Copy)]
struct RecoveryCtx {
    pid: usize,
    from_host: usize,
    fault_time: f64,
    detect_time: f64,
    step_at_failure: u64,
    false_positive: bool,
}

/// What started a suspicion chain on a host.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ChainTrigger {
    /// Out-of-band silence: the host crashed or froze (heartbeats stopped).
    HostSilent,
    /// The reliable transport reported delivery failures toward this host;
    /// the monitor can only judge it by traffic evidence (fixed mode) or
    /// wire probes (accrual mode).
    CommSuspect,
}

/// Per-host failure-detector context (evidence clock, probe RTT estimate,
/// and the state of the current suspicion chain, if any).
#[derive(Debug, Clone)]
struct DetCtx {
    /// What started the current chain.
    trigger: ChainTrigger,
    /// When the current suspicion chain began.
    chain_started: f64,
    /// `probe_epoch` value the current chain runs under (`u64::MAX` = no
    /// chain has ever run; any probe-epoch bump invalidates the chain).
    chain_epoch: u64,
    /// Latest proof of life the monitor has for this host: a delivered DATA
    /// or ACK sent by its subprocess, or a probe reply.
    last_evidence: f64,
    /// RTT estimate of monitor ↔ host wire probes (accrual mode): the
    /// congestion-awareness — a loaded bus inflates the expected-reply
    /// horizon instead of burning through a fixed miss budget.
    rtt: RttEstimator,
    /// Wire-probe sequence counter.
    probe_seq: u64,
    /// Outstanding wire probes: sequence number → send time.
    probe_sent: BTreeMap<u64, f64>,
}

impl DetCtx {
    fn new() -> Self {
        Self {
            trigger: ChainTrigger::HostSilent,
            chain_started: 0.0,
            chain_epoch: u64::MAX,
            last_evidence: 0.0,
            rtt: RttEstimator::default(),
            probe_seq: 0,
            probe_sent: BTreeMap::new(),
        }
    }
}

/// The discrete-event cluster simulation.
pub struct ClusterSim {
    cfg: ClusterConfig,
    q: EventQueue,
    /// RNG stream of the network model (collision/loss draws).
    rng_bus: SmallRng,
    /// RNG stream of the user/background model.
    rng_user: SmallRng,
    /// RNG stream of the reliable transport (injected loss/dup/reorder draws
    /// and the wire sampling of transport messages). Never drawn from when
    /// the transport is disengaged, so fault-free plans stay bit-identical.
    rng_transport: SmallRng,
    hosts: Vec<HostState>,
    procs: Vec<SimProcess>,
    net: NetworkModel,
    sync: SyncState,
    ckpt: Option<CkptRound>,
    target_steps: Option<u64>,
    done_count: usize,
    paused_count: usize,
    /// Processes currently dead (crashed or declared dead), excluded from the
    /// synchronisation barrier count.
    failed_count: usize,
    /// The failure-triggered recovery in progress, if any.
    recovering: Option<RecoveryCtx>,
    /// Step of the last *completed* coordinated checkpoint round (0 = the
    /// initial state; every process starts from its submitted dump file).
    last_ckpt_step: u64,
    /// A `ResumeAll` is already scheduled (guards against double resumes when
    /// a crash re-checks migrator readiness).
    resume_pending: bool,
    pending_migrators: Vec<usize>,
    migration_signal_time: f64,
    migration_pause_time: f64,
    migration_from: Vec<(usize, usize)>, // (proc, origin host)
    stats: ClusterStats,
    finished_at: Option<f64>,
    /// Per-xch, per-proc: ids of lower-ranked peers (strict ordering gates).
    lower_peers: Vec<Vec<Vec<usize>>>,
    /// Events dispatched so far (simulation throughput accounting).
    events_processed: u64,
    /// Flight-recorder session (disabled by default: recording costs nothing
    /// and alters nothing — all timestamps are simulated time, so an enabled
    /// recorder observes a byte-identical event sequence).
    recorder: FlightRecorder,
    /// One sim-time trace track per process (empty when disabled).
    tracks: Vec<TrackRecorder>,
    /// Control-plane track: faults, detection, recovery, migration, wire.
    ctrl: TrackRecorder,
    /// Whether the per-message reliable transport is engaged (the fault plan
    /// contains message-level faults). When `false`, halos ride the legacy
    /// statistical wire path and the transport draws nothing.
    transport_active: bool,
    /// Reliable-transport state (sequence numbers, outstanding messages,
    /// dedup sets, per-link RTT estimates).
    transport: TransportState,
    /// Injected message-fault windows, indexed by the Start/End events.
    msg_windows: Vec<MsgFaultWindow>,
    /// Injected network partitions, indexed by the Start/End events.
    net_partitions: Vec<PartitionState>,
    /// Per-host failure-detector context.
    det: Vec<DetCtx>,
    /// Reused completion buffer for the `NetDone` hot path.
    net_done_buf: Vec<Completion>,
    /// Ring histogram of process step counts: `step_counts[i]` = processes
    /// at step `step_lo + i`. Keeps the skew statistic O(1) per step
    /// completion instead of a full scan of the pool (which was quadratic in
    /// cluster size per lockstep round).
    step_counts: VecDeque<u32>,
    /// Step of the slowest process (`step_counts` front).
    step_lo: u64,
}

impl ClusterSim {
    /// Builds the simulation: assigns every process to a host with the
    /// submit policy and starts the first step.
    pub fn new(cfg: ClusterConfig) -> Self {
        let n_proc = cfg.workload.processes();
        assert!(n_proc > 0, "empty workload");
        assert!(
            n_proc <= cfg.hosts.len(),
            "more processes ({n_proc}) than workstations ({})",
            cfg.hosts.len()
        );
        let rng_bus = SmallRng::seed_from_u64(cfg.seed);
        let mut rng_user = SmallRng::seed_from_u64(cfg.seed ^ USER_STREAM_SALT);
        let rng_transport = SmallRng::seed_from_u64(cfg.seed ^ TRANSPORT_STREAM_SALT);
        let transport_active = cfg.faults.has_message_faults();
        let (msg_windows, net_partitions) = windows_from_plan(&cfg.faults);
        let mut hosts: Vec<HostState> = cfg.hosts.iter().map(|&k| HostState::new(k)).collect();
        // initial user states
        if cfg.user.enabled {
            let p_active = cfg.user.mean_active_s / (cfg.user.mean_active_s + cfg.user.mean_idle_s);
            for h in &mut hosts {
                h.user_active = rng_user.gen::<f64>() < p_active;
                // long-idle so the 20-minute rule can be satisfied at t = 0
                h.idle_since = -2.0 * cfg.submit.idle_threshold_s;
            }
        } else {
            for h in &mut hosts {
                h.idle_since = -2.0 * cfg.submit.idle_threshold_s;
            }
        }

        // strict-ordering gate lists
        let n_x = cfg.workload.exchanges_per_step();
        let mut lower_peers = vec![vec![Vec::new(); n_proc]; n_x];
        for (pid, tile) in cfg.workload.tiles.iter().enumerate() {
            for (x, links) in tile.neighbors.iter().enumerate() {
                lower_peers[x][pid] = links
                    .iter()
                    .map(|&(peer, _)| peer)
                    .filter(|&peer| peer < pid)
                    .collect();
            }
        }

        let n_hosts = hosts.len();
        let mut sim = Self {
            net: NetworkModel::new(cfg.net),
            q: EventQueue::new(),
            rng_bus,
            rng_user,
            rng_transport,
            hosts,
            procs: Vec::new(),
            sync: SyncState::Idle,
            ckpt: None,
            target_steps: None,
            done_count: 0,
            paused_count: 0,
            failed_count: 0,
            recovering: None,
            last_ckpt_step: 0,
            resume_pending: false,
            pending_migrators: Vec::new(),
            migration_signal_time: 0.0,
            migration_pause_time: 0.0,
            migration_from: Vec::new(),
            stats: ClusterStats::default(),
            finished_at: None,
            lower_peers,
            events_processed: 0,
            recorder: FlightRecorder::disabled(),
            tracks: Vec::new(),
            ctrl: TrackRecorder::disabled(),
            transport_active,
            transport: TransportState::default(),
            msg_windows,
            net_partitions,
            det: vec![DetCtx::new(); n_hosts],
            net_done_buf: Vec::new(),
            step_counts: VecDeque::from([n_proc as u32]),
            step_lo: 0,
            cfg,
        };

        // submit: place every process
        for pid in 0..n_proc {
            let host = sim
                .cfg
                .submit
                .select(0.0, sim.hosts.iter().enumerate())
                .expect("no free workstation for a parallel subprocess");
            sim.hosts[host].touch(0.0);
            sim.hosts[host].assigned_proc = Some(pid);
            sim.procs.push(SimProcess::new(pid, host));
        }

        // background events
        if sim.cfg.user.enabled {
            for h in 0..sim.hosts.len() {
                let mean = if sim.hosts[h].user_active {
                    sim.cfg.user.mean_active_s
                } else {
                    sim.cfg.user.mean_idle_s
                };
                let d = exp_sample(&mut sim.rng_user, mean);
                sim.q.schedule(d, EventKind::UserFlip { host: h });
                let a = exp_sample(&mut sim.rng_user, 1.0 / sim.cfg.user.job_rate_per_s);
                sim.q.schedule(a, EventKind::JobArrival { host: h });
            }
        }
        if sim.cfg.monitor.enabled {
            sim.q
                .schedule(sim.cfg.monitor.period_s, EventKind::MonitorTick);
        }
        if let Some(p) = sim.cfg.checkpoint_period_s {
            sim.q.schedule(p, EventKind::CheckpointTick);
        }

        // injected faults — an empty plan schedules nothing, so the event
        // sequence numbering (and hence every RNG-coupled result) is
        // bit-identical to a build without the fault layer
        let fault_events = sim.cfg.faults.events.clone();
        for ev in fault_events {
            match ev {
                FaultEvent::HostCrash {
                    host,
                    at,
                    reboot_after,
                } => {
                    assert!(host < sim.hosts.len(), "fault host {host} out of range");
                    let at = at.max(0.0);
                    sim.q.schedule_at(at, EventKind::HostCrash { host });
                    if let Some(r) = reboot_after {
                        sim.q.schedule_at(at + r, EventKind::HostReboot { host });
                    }
                }
                FaultEvent::HostFreeze { host, at, duration } => {
                    assert!(host < sim.hosts.len(), "fault host {host} out of range");
                    let at = at.max(0.0);
                    sim.q.schedule_at(at, EventKind::HostFreezeStart { host });
                    sim.q
                        .schedule_at(at + duration.max(0.0), EventKind::HostFreezeEnd { host });
                }
                FaultEvent::BusBurst { at, duration } => {
                    let at = at.max(0.0);
                    sim.q.schedule_at(at, EventKind::BusBurstStart);
                    sim.q
                        .schedule_at(at + duration.max(0.0), EventKind::BusBurstEnd);
                }
                // message-level faults were split into the live window /
                // partition tables by `windows_from_plan`; their open/close
                // events are scheduled below against those table indices
                FaultEvent::MsgFault { .. } | FaultEvent::NetPartition { .. } => {}
            }
        }
        for idx in 0..sim.msg_windows.len() {
            let (at, duration) = (sim.msg_windows[idx].at, sim.msg_windows[idx].duration);
            sim.q.schedule_at(at, EventKind::MsgFaultStart { idx });
            sim.q
                .schedule_at(at + duration, EventKind::MsgFaultEnd { idx });
        }
        for idx in 0..sim.net_partitions.len() {
            let mut seen = std::collections::BTreeSet::new();
            for g in &sim.net_partitions[idx].groups {
                for &h in g {
                    assert!(h < n_hosts, "partition host {h} out of range");
                    assert!(seen.insert(h), "partition groups must be disjoint");
                }
            }
            let at = sim.net_partitions[idx].at;
            sim.q.schedule_at(at, EventKind::PartitionStart { idx });
            if let Some(heal) = sim.net_partitions[idx].heal_after {
                sim.q
                    .schedule_at(at + heal.max(0.0), EventKind::PartitionEnd { idx });
            }
        }

        // start every process on phase 0
        for pid in 0..n_proc {
            sim.start_phase(pid);
        }
        sim
    }

    /// Current simulated time.
    pub fn now(&self) -> f64 {
        self.q.now()
    }

    /// Attaches a flight recorder: one sim-time track per process (compute /
    /// halo-wait / checkpoint spans) plus a control track for faults,
    /// detection, recovery, migrations and wire transfers. All timestamps
    /// come from the simulated clock, so the trace is deterministic given
    /// the seed and recording never perturbs the event sequence.
    pub fn with_recorder(mut self, recorder: &FlightRecorder) -> Self {
        self.recorder = recorder.clone();
        if self.recorder.is_enabled() {
            self.tracks = (0..self.procs.len())
                .map(|pid| {
                    self.recorder.track(
                        TRACE_PID,
                        pid as u32,
                        "cluster-sim",
                        &format!("proc {pid}"),
                    )
                })
                .collect();
            self.ctrl =
                self.recorder
                    .track(TRACE_PID, self.procs.len() as u32, "cluster-sim", "runtime");
        }
        self
    }

    /// Records a sim-time span on process `pid`'s track (no-op when the
    /// recorder is disabled — `tracks` is empty then).
    #[inline]
    fn rec_span(&mut self, pid: usize, cat: Category, name: &'static str, t0: f64, t1: f64) {
        if let Some(tr) = self.tracks.get_mut(pid) {
            tr.span_sim(cat, name, t0, t1);
        }
    }

    /// Runs until `t_end` (simulated seconds) or until every process has
    /// completed `target_steps`, whichever comes first. Returns statistics.
    pub fn run(&mut self, t_end: f64, target_steps: Option<u64>) -> ClusterStats {
        self.target_steps = target_steps;
        // The end-of-window sentinel is cancelled by handle when the run
        // stops early (every process reached its target): the PR 6 queue had
        // no cancellation, so the stale `Stop` leaked into a subsequent
        // `run()` call and could end it instantly.
        let stop = self.q.schedule_at_cancellable(t_end, EventKind::Stop);
        while let Some((_, ev)) = self.q.pop() {
            match ev {
                EventKind::Stop => break,
                other => self.dispatch(other),
            }
            if self.done_count == self.procs.len() {
                break;
            }
        }
        self.q.cancel(stop);
        self.finalize()
    }

    /// Like [`ClusterSim::run`] but prints a trace after `max_events` events
    /// (debugging aid for event-loop diagnosis).
    pub fn run_debug(
        &mut self,
        t_end: f64,
        target_steps: Option<u64>,
        max_events: u64,
    ) -> ClusterStats {
        self.target_steps = target_steps;
        let stop = self.q.schedule_at_cancellable(t_end, EventKind::Stop);
        let mut count = 0u64;
        while let Some((t, ev)) = self.q.pop() {
            count += 1;
            if count > max_events {
                eprintln!(
                    "event {count} at t={t:.9}: {ev:?} (queue {} pending, net {} active, epoch {})",
                    self.q.len(),
                    self.net.active(),
                    self.net.epoch()
                );
                if count > max_events + 20 {
                    break;
                }
            }
            match ev {
                EventKind::Stop => break,
                other => self.dispatch(other),
            }
            if self.done_count == self.procs.len() {
                break;
            }
        }
        self.q.cancel(stop);
        self.finalize()
    }

    // ------------------------------------------------------------------
    // event dispatch
    // ------------------------------------------------------------------

    fn dispatch(&mut self, ev: EventKind) {
        self.events_processed += 1;
        self.stats.peak_queue_events = self.stats.peak_queue_events.max(self.q.len());
        self.stats.peak_net_transfers = self.stats.peak_net_transfers.max(self.net.active());
        match ev {
            EventKind::ComputeDone { proc_id, epoch } => self.on_compute_done(proc_id, epoch),
            EventKind::NetDone { epoch } => self.on_net_done(epoch),
            EventKind::CpuRelax { host } => self.on_cpu_relax(host),
            EventKind::UserFlip { host } => self.on_user_flip(host),
            EventKind::JobArrival { host } => self.on_job_arrival(host),
            EventKind::JobDeparture { host } => self.on_job_departure(host),
            EventKind::MonitorTick => self.on_monitor_tick(),
            EventKind::CheckpointTick => self.on_checkpoint_tick(),
            EventKind::CheckpointToken { order_index } => self.on_checkpoint_token(order_index),
            EventKind::DumpTransferDone { .. } => {
                unreachable!("dump completions arrive as NetDone payloads")
            }
            EventKind::SubmitRetry => self.on_submit_retry(),
            EventKind::ResendHalo {
                to_proc,
                step,
                xch,
                from_proc,
            } => self.on_resend_halo(to_proc, step, xch, from_proc),
            EventKind::StagedCatchup {
                to_proc,
                from_proc,
                bytes,
                step,
                xch,
            } => self.on_staged_catchup(to_proc, from_proc, bytes, step, xch),
            EventKind::ResendDump { proc_id } => self.on_resend_dump(proc_id),
            EventKind::ResumeAll => self.on_resume_all(),
            EventKind::HostCrash { host } => self.on_host_crash(host),
            EventKind::HostReboot { host } => self.on_host_reboot(host),
            EventKind::HostFreezeStart { host } => self.on_host_freeze_start(host),
            EventKind::HostFreezeEnd { host } => self.on_host_freeze_end(host),
            EventKind::BusBurstStart => {
                self.stats.bus_bursts += 1;
                self.net.set_forced_saturation(true);
                let now = self.now();
                self.ctrl.instant_sim(Category::Net, "bus burst start", now);
            }
            EventKind::BusBurstEnd => {
                self.net.set_forced_saturation(false);
                let now = self.now();
                self.ctrl.instant_sim(Category::Net, "bus burst end", now);
            }
            EventKind::HeartbeatProbe {
                host,
                misses,
                probe_epoch,
            } => self.on_heartbeat_probe(host, misses, probe_epoch),
            EventKind::RetxTimer {
                from_proc,
                to_proc,
                seq,
                attempt,
            } => self.on_retx_timer(from_proc, to_proc, seq, attempt),
            EventKind::TransportSend {
                from_proc,
                to_proc,
                seq,
                attempt,
                lost,
            } => self.on_transport_send(from_proc, to_proc, seq, attempt, lost),
            EventKind::MsgFaultStart { idx } => self.on_msg_fault_start(idx),
            EventKind::MsgFaultEnd { idx } => self.on_msg_fault_end(idx),
            EventKind::PartitionStart { idx } => self.on_partition_start(idx),
            EventKind::PartitionEnd { idx } => self.on_partition_end(idx),
            EventKind::Stop => {}
        }
    }

    // ------------------------------------------------------------------
    // process execution
    // ------------------------------------------------------------------

    /// Effective compute rate of a process right now: the host's hardware
    /// speed times its processor-sharing CPU share (governed by the 1-minute
    /// load average of competing jobs and the `nice` weight), divided by any
    /// deliberate slowdown factor.
    fn rate_of(&self, pid: usize) -> f64 {
        let p = &self.procs[pid];
        let h = &self.hosts[p.host];
        h.kind
            .node_rate(self.cfg.workload.method, self.cfg.workload.three_d)
            * h.cpu_share(self.now(), self.cfg.nice_weight())
            / h.slowdown
    }

    fn start_phase(&mut self, pid: usize) {
        let phase = self.procs[pid].phase;
        match self.cfg.workload.plan[phase] {
            PhaseSpec::Compute { fraction } => {
                let work = fraction * self.cfg.workload.tiles[pid].nodes as f64;
                self.begin_compute(pid, work);
            }
            PhaseSpec::Exchange { xch } => {
                self.do_sends(pid, xch);
                self.try_finish_recv(pid, xch);
            }
        }
    }

    /// Deterministic per-(process, step, phase) jitter factor in
    /// `[1, 1 + jitter]`. A hash rather than the shared RNG stream, so two
    /// runs that differ only in policy (e.g. FCFS vs strict ordering) see the
    /// *identical* sequence of compute durations — the Appendix-C comparison
    /// is then apples-to-apples.
    fn jitter_factor(&self, pid: usize) -> f64 {
        let p = &self.procs[pid];
        let mut h = self.cfg.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ (pid as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9)
            ^ p.step.wrapping_mul(0x94D0_49BB_1331_11EB)
            ^ (p.phase as u64).wrapping_add(0x2545_F491_4F6C_DD1D);
        h ^= h >> 30;
        h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h ^= h >> 27;
        h = h.wrapping_mul(0x94D0_49BB_1331_11EB);
        h ^= h >> 31;
        1.0 + self.cfg.compute_jitter * (h as f64 / u64::MAX as f64)
    }

    fn begin_compute(&mut self, pid: usize, mut work: f64) {
        if work <= 0.0 {
            self.advance_phase(pid);
            return;
        }
        if self.cfg.compute_jitter > 0.0 {
            work *= self.jitter_factor(pid);
        }
        let now = self.now();
        let rate = self.rate_of(pid);
        let p = &mut self.procs[pid];
        p.state = ProcState::Computing {
            remaining: work,
            rate,
            since: now,
        };
        let epoch = p.bump_epoch();
        self.q.schedule(
            work / rate,
            EventKind::ComputeDone {
                proc_id: pid,
                epoch,
            },
        );
    }

    fn on_compute_done(&mut self, pid: usize, epoch: u64) {
        let now = self.now();
        let p = &mut self.procs[pid];
        if p.epoch != epoch {
            return; // superseded (rate change, checkpoint, ...)
        }
        if let ProcState::Computing { since, .. } = p.state {
            p.t_calc += now - since;
            self.rec_span(pid, Category::Compute, "compute", since, now);
            self.advance_phase(pid);
        }
    }

    fn advance_phase(&mut self, pid: usize) {
        self.procs[pid].phase += 1;
        if self.procs[pid].phase == self.cfg.workload.plan.len() {
            self.complete_step(pid);
        } else {
            self.start_phase(pid);
        }
    }

    fn complete_step(&mut self, pid: usize) {
        let now = self.now();
        let from_step = self.procs[pid].step;
        self.procs[pid].step += 1;
        self.procs[pid].phase = 0;
        self.note_step_advance(from_step);

        if let Some(t) = self.target_steps {
            if self.procs[pid].step >= t {
                self.procs[pid].state = ProcState::Done;
                self.done_count += 1;
                if self.done_count == self.procs.len() {
                    self.finished_at = Some(now);
                }
                // finishing shrinks the barrier population: re-check a drain
                self.maybe_all_paused();
                return;
            }
        }
        if let SyncState::Draining { target } = self.sync {
            if self.procs[pid].step == target {
                self.procs[pid].state = ProcState::AtSyncBarrier;
                self.procs[pid].pause_since = now;
                self.paused_count += 1;
                self.maybe_all_paused();
                return;
            }
        }
        self.start_phase(pid);
    }

    /// Live processes the synchronisation barrier waits for: everyone not
    /// done and not dead.
    fn live_expected(&self) -> usize {
        self.procs.len() - self.done_count - self.failed_count
    }

    /// Fires the barrier completion if every live process has paused (called
    /// on barrier arrivals *and* when a crash removes a straggler).
    fn maybe_all_paused(&mut self) {
        if matches!(self.sync, SyncState::Draining { .. })
            && self.paused_count >= self.live_expected()
        {
            self.on_all_paused();
        }
    }

    /// O(1) skew bookkeeping for a process advancing `from_step` →
    /// `from_step + 1`. Samples `max_observed_skew` at exactly the points
    /// the old full-pool scan did (step completions only).
    fn note_step_advance(&mut self, from_step: u64) {
        let i = (from_step - self.step_lo) as usize;
        self.step_counts[i] -= 1;
        if i + 1 == self.step_counts.len() {
            self.step_counts.push_back(0);
        }
        self.step_counts[i + 1] += 1;
        while self.step_counts.front() == Some(&0) {
            self.step_counts.pop_front();
            self.step_lo += 1;
        }
        let skew = (self.step_counts.len() - 1) as u64;
        if skew > self.stats.max_observed_skew {
            self.stats.max_observed_skew = skew;
        }
    }

    /// Rebuilds the step histogram from scratch after a rollback moved step
    /// counters backwards (recovery only — never on the hot path). Does not
    /// sample the skew statistic: like the old scan, skew is only observed
    /// at step completions.
    fn rebuild_step_hist(&mut self) {
        self.step_lo = self.procs.iter().map(|p| p.step).min().unwrap_or(0);
        self.step_counts.clear();
        for p in &self.procs {
            let i = (p.step - self.step_lo) as usize;
            if i >= self.step_counts.len() {
                self.step_counts.resize(i + 1, 0);
            }
            self.step_counts[i] += 1;
        }
        if self.step_counts.is_empty() {
            self.step_counts.push_back(0);
        }
    }

    // ------------------------------------------------------------------
    // communication
    // ------------------------------------------------------------------

    fn do_sends(&mut self, pid: usize, xch: usize) {
        let step = self.procs[pid].step;
        // indexed re-borrow instead of cloning the link list: this runs once
        // per exchange phase and the clone's allocation dominated it
        for li in 0..self.cfg.workload.tiles[pid].neighbors[xch].len() {
            let (peer, bytes) = self.cfg.workload.tiles[pid].neighbors[xch][li];
            debug_assert_ne!(peer, pid, "self-links are not supported by the cluster sim");
            let gated = self.cfg.ordering == CommOrdering::Strict
                && peer > pid
                && !self.procs[pid].have_all(step, xch, &self.lower_peers[xch][pid]);
            if gated {
                self.procs[pid].deferred_sends.push((peer, bytes, xch));
            } else {
                self.offer_halo(pid, peer, bytes, step, xch);
            }
        }
    }

    /// Offers a halo to `to`: the wire transfer starts only if the receiver
    /// has posted the matching receive (it is blocked in `WaitingRecv` for
    /// exactly this `(step, xch)`). Otherwise the send is staged and released
    /// when the receiver posts the receive in [`ClusterSim::try_finish_recv`].
    ///
    /// This is the per-edge, per-exchange dependency coupling: an early
    /// sender cannot stream its boundary into a peer that is still computing
    /// (TCP flow control stalls the bulk transfer until the reader drains its
    /// socket), so a process's exchange phase genuinely waits on each
    /// neighbour's step-`n` data crossing the wire *after* it asked for it —
    /// which is what makes the pool's slowest machine govern the step time.
    fn offer_halo(&mut self, from: usize, to: usize, bytes: f64, step: u64, xch: usize) {
        let ready = self.procs[to].step == step
            && matches!(self.procs[to].state, ProcState::WaitingRecv { xch: wx } if wx == xch);
        if ready {
            self.send_halo(from, to, bytes, step, xch);
        } else {
            let since = self.now();
            self.procs[to].staged_in.push(StagedHalo {
                from,
                bytes,
                step,
                xch,
                since,
            });
            self.stats.rendezvous_staged += 1;
        }
    }

    /// Endpoint CPU cap on a halo transfer's wire rate: the protocol stack
    /// is CPU-bound (section 7's `V_com`), so the slower of the two hosts
    /// limits how fast the message's bytes move through its bus share.
    fn halo_rate_scale(&self, from: usize, to: usize) -> f64 {
        let m = self.cfg.workload.method;
        let d3 = self.cfg.workload.three_d;
        let u_ref = HostKind::Hp715_50.node_rate(m, d3);
        let rel_from = self.hosts[self.procs[from].host].kind.node_rate(m, d3) / u_ref;
        let rel_to = self.hosts[self.procs[to].host].kind.node_rate(m, d3) / u_ref;
        rel_from.min(rel_to).min(1.0)
    }

    fn send_halo(&mut self, from: usize, to: usize, bytes: f64, step: u64, xch: usize) {
        if self.transport_active {
            self.transport_send(from, to, bytes, step, xch);
            return;
        }
        let now = self.now();
        let scale = self.halo_rate_scale(from, to);
        self.net.start_transfer_scaled(
            now,
            bytes,
            scale,
            TransferPayload::Halo {
                to_proc: to,
                step,
                xch,
                from_proc: from,
            },
            &mut self.rng_bus,
        );
        self.reschedule_net();
    }

    // ------------------------------------------------------------------
    // reliable transport (Appendix D state machine)
    // ------------------------------------------------------------------

    /// Whether any active partition severs the two hosts.
    fn link_severed(&self, host_a: usize, host_b: usize) -> bool {
        self.net_partitions.iter().any(|p| p.severs(host_a, host_b))
    }

    /// Whether any active partition cuts the monitor (island 0) off `host`.
    fn monitor_severed(&self, host: usize) -> bool {
        self.net_partitions.iter().any(|p| p.severs_monitor(host))
    }

    /// Hands one halo to the reliable transport: allocate a sequence number,
    /// arm the retransmission timer, and put the first DATA transmission on
    /// the wire.
    fn transport_send(&mut self, from: usize, to: usize, bytes: f64, step: u64, xch: usize) {
        let now = self.now();
        let seq = self.transport.alloc_seq(from, to);
        let rto =
            self.transport
                .register(&self.cfg.transport, (from, to, seq), bytes, step, xch, now);
        self.stats.transport.data_sent += 1;
        self.q.schedule(
            rto,
            EventKind::RetxTimer {
                from_proc: from,
                to_proc: to,
                seq,
                attempt: 1,
            },
        );
        self.transmit_data(from, to, seq, 1);
    }

    /// One transmission attempt of an outstanding DATA message: samples the
    /// injected faults (loss, duplication, reordering — fixed draw order so
    /// results are reproducible), applies partition severing, and puts the
    /// surviving transmissions on the wire. A reordered transmission is held
    /// back with its loss verdict pre-sampled, so the RNG draw sequence does
    /// not depend on the hold-back delay.
    fn transmit_data(&mut self, from: usize, to: usize, seq: u64, attempt: u32) {
        let severed = self.link_severed(self.procs[from].host, self.procs[to].host);
        if severed {
            self.stats.transport.partition_drops += 1;
        }
        let (mut inj_lost, mut inj_dup, mut inj_reorder) = (false, false, false);
        for i in 0..self.msg_windows.len() {
            let w = self.msg_windows[i];
            if !w.matches(from, to) {
                continue;
            }
            if w.loss > 0.0 && self.rng_transport.gen::<f64>() < w.loss {
                inj_lost = true;
            }
            if w.dup > 0.0 && self.rng_transport.gen::<f64>() < w.dup {
                inj_dup = true;
            }
            if w.reorder > 0.0 && self.rng_transport.gen::<f64>() < w.reorder {
                inj_reorder = true;
            }
        }
        if inj_lost && !severed {
            self.stats.transport.injected_losses += 1;
        }
        let lost = severed || inj_lost;
        if inj_reorder {
            self.stats.transport.injected_reorders += 1;
            let delay = self.rng_transport.gen::<f64>() * self.cfg.transport.reorder_delay_s;
            self.q.schedule(
                delay,
                EventKind::TransportSend {
                    from_proc: from,
                    to_proc: to,
                    seq,
                    attempt,
                    lost,
                },
            );
        } else {
            self.wire_data(from, to, seq, attempt, lost);
        }
        if inj_dup {
            // the duplicate is an independent wire copy with its own loss
            // draw; it does not re-sample duplication (no duplication chains)
            self.stats.transport.injected_dups += 1;
            let mut dup_lost = severed;
            for i in 0..self.msg_windows.len() {
                let w = self.msg_windows[i];
                if w.matches(from, to) && w.loss > 0.0 && self.rng_transport.gen::<f64>() < w.loss {
                    dup_lost = true;
                }
            }
            self.wire_data(from, to, seq, attempt, dup_lost);
        }
    }

    /// Puts one DATA transmission on the bus. A held-back transmission whose
    /// message was acknowledged in the meantime (its duplicate raced ahead)
    /// simply evaporates.
    fn wire_data(&mut self, from: usize, to: usize, seq: u64, attempt: u32, lost: bool) {
        let Some(msg) = self.transport.outstanding.get(&(from, to, seq)) else {
            return;
        };
        let (bytes, step, xch) = (msg.bytes, msg.step, msg.xch);
        let now = self.now();
        let scale = self.halo_rate_scale(from, to);
        self.net.start_transfer_faulted(
            now,
            bytes,
            scale,
            TransferPayload::HaloData {
                to_proc: to,
                step,
                xch,
                from_proc: from,
                seq,
                attempt,
            },
            &mut self.rng_transport,
            lost,
        );
        self.reschedule_net();
    }

    /// A reorder-delayed transmission finally enters the wire.
    fn on_transport_send(&mut self, from: usize, to: usize, seq: u64, attempt: u32, lost: bool) {
        self.wire_data(from, to, seq, attempt, lost);
    }

    /// A retransmission timeout expired. Stale timers (the message was
    /// acknowledged, or a newer attempt re-armed the timer) fall through the
    /// lookup / attempt check and do nothing.
    fn on_retx_timer(&mut self, from_proc: usize, to_proc: usize, seq: u64, attempt: u32) {
        let now = self.now();
        let tcfg = self.cfg.transport;
        let Some(msg) = self
            .transport
            .outstanding
            .get_mut(&(from_proc, to_proc, seq))
        else {
            return; // acknowledged (or recovery voided the sender state)
        };
        if msg.attempts != attempt {
            return; // a newer attempt owns the live timer
        }
        msg.attempts += 1;
        let give_up_now = !msg.gave_up && msg.attempts > tcfg.max_attempts;
        if give_up_now {
            msg.gave_up = true;
            msg.rto = tcfg.max_rto_s;
        } else if !msg.gave_up {
            msg.rto = (msg.rto * tcfg.rto_backoff).min(tcfg.max_rto_s);
        }
        let (rto, attempts, step, xch) = (msg.rto, msg.attempts, msg.step, msg.xch);
        self.stats.transport.retransmits += 1;
        self.ctrl.instant_sim_arg(
            Category::Net,
            "retransmit",
            now,
            Some(("to_proc", to_proc as f64)),
        );
        self.q.schedule(
            rto,
            EventKind::RetxTimer {
                from_proc,
                to_proc,
                seq,
                attempt: attempts,
            },
        );
        self.transmit_data(from_proc, to_proc, seq, attempts);
        if give_up_now {
            // the observable symptom section 7 describes: the transport
            // "fails to deliver messages after excessive retransmissions"
            self.stats.transport.give_ups += 1;
            self.stats.delivery_failures.push(DeliveryFailureRecord {
                from_proc,
                to_proc,
                step,
                xch,
                at: now,
                attempts,
            });
            self.ctrl.instant_sim_arg(
                Category::Fault,
                "delivery failure",
                now,
                Some(("to_proc", to_proc as f64)),
            );
            self.report_comm_failure(to_proc);
        }
    }

    /// The transport reported a delivery failure toward `suspect_proc`: open
    /// a communication-triggered suspicion chain on its host, unless one is
    /// already running there.
    fn report_comm_failure(&mut self, suspect_proc: usize) {
        if !self.cfg.detector.enabled {
            return;
        }
        let host = self.procs[suspect_proc].host;
        if self.det[host].chain_epoch == self.hosts[host].probe_epoch {
            return; // a chain (either trigger) is already live on this host
        }
        let now = self.now();
        self.hosts[host].bump_probe_epoch();
        let probe_epoch = self.hosts[host].probe_epoch;
        let d = &mut self.det[host];
        d.trigger = ChainTrigger::CommSuspect;
        d.chain_started = now;
        d.chain_epoch = probe_epoch;
        self.ctrl.instant_sim_arg(
            Category::Detection,
            "comm suspect",
            now,
            Some(("host", host as f64)),
        );
        self.q.schedule(
            self.cfg.detector.timeout_s,
            EventKind::HeartbeatProbe {
                host,
                misses: 1,
                probe_epoch,
            },
        );
    }

    /// Fresh proof of life for `host`: delivered DATA or ACK traffic sent by
    /// its subprocess (the monitor snoops the shared bus), or a probe reply.
    /// Evidence immediately ends a communication-triggered suspicion chain;
    /// out-of-band-silence chains re-verify the host directly at each probe,
    /// so stale in-flight traffic cannot mask a crash.
    fn note_evidence(&mut self, host: usize) {
        let now = self.now();
        let d = &mut self.det[host];
        d.last_evidence = now;
        if d.chain_epoch == self.hosts[host].probe_epoch && d.trigger == ChainTrigger::CommSuspect {
            self.hosts[host].bump_probe_epoch();
        }
    }

    /// A DATA message reached its receiver: ACK on the reverse link, then
    /// deliver to the solver unless the sequence number is a duplicate.
    fn on_halo_data_arrival(
        &mut self,
        to: usize,
        step: u64,
        xch: usize,
        from: usize,
        seq: u64,
        attempt: u32,
    ) {
        let now = self.now();
        self.note_evidence(self.procs[from].host);
        if !self.hosts[self.procs[to].host].available() {
            return; // a dead or frozen application cannot acknowledge
        }
        let mut ack_lost = self.link_severed(self.procs[to].host, self.procs[from].host);
        if ack_lost {
            self.stats.transport.partition_drops += 1;
        }
        for i in 0..self.msg_windows.len() {
            let w = self.msg_windows[i];
            if w.matches_ack(to, from) && w.loss > 0.0 && self.rng_transport.gen::<f64>() < w.loss {
                if !ack_lost {
                    self.stats.transport.injected_losses += 1;
                }
                ack_lost = true;
            }
        }
        self.stats.transport.acks_sent += 1;
        self.net.start_transfer_faulted(
            now,
            self.cfg.transport.ack_bytes,
            1.0,
            TransferPayload::Ack {
                to_proc: from,
                from_proc: to,
                seq,
                attempt,
            },
            &mut self.rng_transport,
            ack_lost,
        );
        self.reschedule_net();
        if self.transport.mark_delivered(from, to, seq) {
            self.deliver_halo(to, step, xch, from);
        } else {
            self.stats.transport.dup_suppressed += 1;
        }
    }

    /// An ACK returned to the original sender: settle the outstanding
    /// message (stale retransmission timers die on lookup) and feed the RTT
    /// estimator.
    fn on_ack_arrival(&mut self, sender: usize, acker: usize, seq: u64) {
        let now = self.now();
        self.note_evidence(self.procs[acker].host);
        match self.transport.on_ack(sender, acker, seq, now) {
            Some(_) => self.stats.transport.acks_received += 1,
            None => self.stats.transport.late_acks += 1,
        }
    }

    /// The accrual detector sends one wire probe to a suspect host. Probes
    /// ride the modelled network (they queue behind bulk traffic, which is
    /// what makes the detector congestion-aware) but are monitor ↔ host
    /// traffic, not process-link traffic, so injected message faults do not
    /// apply to them; partitions do.
    fn send_probe(&mut self, host: usize) {
        let now = self.now();
        let lost = self.monitor_severed(host);
        if lost {
            self.stats.transport.partition_drops += 1;
        }
        let d = &mut self.det[host];
        d.probe_seq += 1;
        let seq = d.probe_seq;
        d.probe_sent.insert(seq, now);
        self.stats.transport.probes_sent += 1;
        self.net.start_transfer_faulted(
            now,
            self.cfg.transport.probe_bytes,
            1.0,
            TransferPayload::Probe { host, seq },
            &mut self.rng_transport,
            lost,
        );
        self.reschedule_net();
    }

    /// A probe reached the suspect host; a live, unfrozen host replies.
    fn on_probe_arrival(&mut self, host: usize, seq: u64) {
        if !self.hosts[host].answers_probes() {
            return;
        }
        let now = self.now();
        let lost = self.monitor_severed(host);
        if lost {
            self.stats.transport.partition_drops += 1;
        }
        self.net.start_transfer_faulted(
            now,
            self.cfg.transport.probe_bytes,
            1.0,
            TransferPayload::ProbeReply { host, seq },
            &mut self.rng_transport,
            lost,
        );
        self.reschedule_net();
    }

    /// The monitor got a probe reply: sample the round-trip into the host's
    /// RTT estimate and register the evidence (which ends a comm-triggered
    /// chain — the host answered, so it is alive, just slow).
    fn on_probe_reply(&mut self, host: usize, seq: u64) {
        let now = self.now();
        self.stats.transport.probe_replies += 1;
        if let Some(sent) = self.det[host].probe_sent.remove(&seq) {
            self.det[host].rtt.sample(now - sent);
        }
        self.note_evidence(host);
    }

    /// An injected message-fault window opens.
    fn on_msg_fault_start(&mut self, idx: usize) {
        self.msg_windows[idx].active = true;
        self.stats.msg_fault_windows += 1;
        self.ctrl.instant_sim_arg(
            Category::Fault,
            "msg faults on",
            self.now(),
            Some(("idx", idx as f64)),
        );
    }

    /// The message-fault window closes.
    fn on_msg_fault_end(&mut self, idx: usize) {
        self.msg_windows[idx].active = false;
        self.ctrl.instant_sim_arg(
            Category::Fault,
            "msg faults off",
            self.now(),
            Some(("idx", idx as f64)),
        );
    }

    /// An injected network partition begins.
    fn on_partition_start(&mut self, idx: usize) {
        self.net_partitions[idx].active = true;
        self.stats.partitions += 1;
        self.ctrl.instant_sim_arg(
            Category::Fault,
            "partition",
            self.now(),
            Some(("idx", idx as f64)),
        );
    }

    /// The partition heals; retransmissions start getting through again.
    fn on_partition_end(&mut self, idx: usize) {
        self.net_partitions[idx].active = false;
        self.ctrl.instant_sim_arg(
            Category::Fault,
            "partition healed",
            self.now(),
            Some(("idx", idx as f64)),
        );
    }

    /// CPU-bound catch-up a receiver pays before a stalled sender's bytes
    /// flow. A reference-speed host reopens the stalled connection for free,
    /// but a slower host must first work through the protocol processing it
    /// deferred while it was computing, at its speed deficit:
    /// `min(τ, cap)·(1/rel − 1)` seconds for a stall of `τ`. This is the
    /// step-coupling term that makes the slowest machines govern the step
    /// time the way section 7 measures: the longer a slow host computes past
    /// its peers, the longer its held-back senders take to get going again
    /// once it finally asks for the data.
    fn stall_catchup_delay(&self, pid: usize, stalled_for: f64) -> f64 {
        let m = self.cfg.workload.method;
        let d3 = self.cfg.workload.three_d;
        let u_ref = HostKind::Hp715_50.node_rate(m, d3);
        let rel = self.hosts[self.procs[pid].host].kind.node_rate(m, d3) / u_ref;
        if rel >= 1.0 {
            0.0
        } else {
            STALL_CATCHUP_GAIN * stalled_for.min(STALL_CATCHUP_CAP_S) * (1.0 / rel - 1.0)
        }
    }

    fn reschedule_net(&mut self) {
        if let Some(t) = self.net.next_completion() {
            let epoch = self.net.epoch();
            self.q
                .schedule_at(t.max(self.now()), EventKind::NetDone { epoch });
        }
    }

    fn needed_senders(&self, pid: usize, xch: usize) -> Vec<usize> {
        self.cfg.workload.tiles[pid].neighbors[xch]
            .iter()
            .map(|&(peer, _)| peer)
            .collect()
    }

    fn try_finish_recv(&mut self, pid: usize, xch: usize) {
        let now = self.now();
        let step = self.procs[pid].step;
        let needed = self.needed_senders(pid, xch);
        if self.procs[pid].have_all(step, xch, &needed) {
            if !self.procs[pid].consume(step, xch) {
                self.stats.out_of_order_consumes += 1;
            }
            self.advance_phase(pid);
        } else {
            let p = &mut self.procs[pid];
            p.state = ProcState::WaitingRecv { xch };
            p.wait_since = now;
            // prune staged entries for already-completed exchanges; entries
            // matching the newly posted receive stay staged and go onto the
            // wire one at a time (the receiver's event loop drains one
            // socket at a time, so held-back senders unblock serially)
            self.procs[pid]
                .staged_in
                .retain(|s| s.step > step || (s.step == step && s.xch >= xch));
            self.release_next_staged(pid);
        }
    }

    /// Puts the next staged halo matching `pid`'s posted receive onto the
    /// wire, if any. Called when the receive is posted and again on every
    /// delivery to `pid`, which serialises the release of held-back sends.
    fn release_next_staged(&mut self, pid: usize) {
        let ProcState::WaitingRecv { xch } = self.procs[pid].state else {
            return;
        };
        let step = self.procs[pid].step;
        if self.procs[pid].catchup_pending {
            return;
        }
        if let Some(i) = self.procs[pid]
            .staged_in
            .iter()
            .position(|s| s.step == step && s.xch == xch)
        {
            let s = self.procs[pid].staged_in.remove(i);
            let stalled_for = self.now() - s.since;
            self.stats.rendezvous_wait_total += stalled_for;
            let delay = self.stall_catchup_delay(pid, stalled_for);
            if delay > 0.0 {
                self.procs[pid].catchup_pending = true;
                self.q.schedule(
                    delay,
                    EventKind::StagedCatchup {
                        to_proc: pid,
                        from_proc: s.from,
                        bytes: s.bytes,
                        step: s.step,
                        xch: s.xch,
                    },
                );
            } else {
                self.send_halo(s.from, pid, s.bytes, s.step, s.xch);
            }
        }
    }

    fn on_staged_catchup(&mut self, to: usize, from: usize, bytes: f64, step: u64, xch: usize) {
        self.procs[to].catchup_pending = false;
        self.send_halo(from, to, bytes, step, xch);
    }

    fn on_net_done(&mut self, epoch: u64) {
        if epoch != self.net.epoch() {
            return;
        }
        let now = self.now();
        let mut done = std::mem::take(&mut self.net_done_buf);
        self.net.complete_due_into(now, &mut done);
        let ack = self.cfg.net.udp_ack_timeout_s;
        for c in done.drain(..) {
            if !c.delivered {
                // Appendix D: the datagram was lost; the application notices
                // at the acknowledgement timeout and resends precisely the
                // missing data ("the failure problem is handled directly").
                match c.payload {
                    TransferPayload::Halo {
                        to_proc,
                        step,
                        xch,
                        from_proc,
                    } => {
                        self.q.schedule(
                            ack,
                            EventKind::ResendHalo {
                                to_proc,
                                step,
                                xch,
                                from_proc,
                            },
                        );
                    }
                    TransferPayload::Dump { proc_id } => {
                        self.q.schedule(ack, EventKind::ResendDump { proc_id });
                    }
                    // reliable-transport messages have no out-of-band
                    // resend: the sender's retransmission timer covers DATA,
                    // an unacknowledged DATA covers its lost ACK, and probe
                    // loss simply reads as more silence to the detector
                    TransferPayload::HaloData { .. }
                    | TransferPayload::Ack { .. }
                    | TransferPayload::Probe { .. }
                    | TransferPayload::ProbeReply { .. } => {}
                }
                continue;
            }
            match c.payload {
                TransferPayload::Halo {
                    to_proc,
                    step,
                    xch,
                    from_proc,
                } => {
                    self.ctrl.span_sim_arg(
                        Category::Net,
                        "halo wire",
                        c.started,
                        now,
                        Some(("to_proc", to_proc as f64)),
                    );
                    self.deliver_halo(to_proc, step, xch, from_proc);
                }
                TransferPayload::Dump { proc_id } => {
                    self.ctrl.span_sim_arg(
                        Category::Net,
                        "dump wire",
                        c.started,
                        now,
                        Some(("proc", proc_id as f64)),
                    );
                    self.on_dump_done(proc_id);
                }
                TransferPayload::HaloData {
                    to_proc,
                    step,
                    xch,
                    from_proc,
                    seq,
                    attempt,
                } => {
                    self.ctrl.span_sim_arg(
                        Category::Net,
                        "data wire",
                        c.started,
                        now,
                        Some(("to_proc", to_proc as f64)),
                    );
                    self.on_halo_data_arrival(to_proc, step, xch, from_proc, seq, attempt);
                }
                TransferPayload::Ack {
                    to_proc,
                    from_proc,
                    seq,
                    ..
                } => self.on_ack_arrival(to_proc, from_proc, seq),
                TransferPayload::Probe { host, seq } => self.on_probe_arrival(host, seq),
                TransferPayload::ProbeReply { host, seq } => self.on_probe_reply(host, seq),
            }
        }
        self.net_done_buf = done;
        self.reschedule_net();
    }

    fn on_resend_halo(&mut self, to_proc: usize, step: u64, xch: usize, from_proc: usize) {
        let bytes = self.cfg.workload.tiles[from_proc].neighbors[xch]
            .iter()
            .find(|&&(peer, _)| peer == to_proc)
            .map(|&(_, b)| b)
            .unwrap_or(0.0);
        // the receiver was waiting when the lost datagram was sent and still
        // is (it cannot advance without the data), so the offer re-sends
        // immediately; the staging path only catches stale duplicates
        self.offer_halo(from_proc, to_proc, bytes, step, xch);
    }

    fn on_resend_dump(&mut self, pid: usize) {
        let now = self.now();
        let bytes = self.cfg.workload.tiles[pid].nodes as f64 * self.cfg.dump_bytes_per_node;
        self.net.start_transfer(
            now,
            bytes,
            TransferPayload::Dump { proc_id: pid },
            &mut self.rng_bus,
        );
        self.reschedule_net();
    }

    fn deliver_halo(&mut self, pid: usize, step: u64, xch: usize, from: usize) {
        let now = self.now();
        if !self.procs[pid].receive(step, xch, from) {
            // the same halo applied twice. With the transport engaged this
            // only happens legitimately across a recovery rollback (stale
            // pre-rollback wire arrivals meet the re-execution's re-sends);
            // within one epoch the sequence-number dedup makes it impossible
            self.stats.duplicate_halo_applies += 1;
        }

        // strict ordering: the arrival may release deferred sends
        if self.cfg.ordering == CommOrdering::Strict && !self.procs[pid].deferred_sends.is_empty() {
            let cur_step = self.procs[pid].step;
            let deferred = std::mem::take(&mut self.procs[pid].deferred_sends);
            for (peer, bytes, dxch) in deferred {
                let ok = self.procs[pid].have_all(cur_step, dxch, &self.lower_peers[dxch][pid]);
                if ok {
                    self.offer_halo(pid, peer, bytes, cur_step, dxch);
                } else {
                    self.procs[pid].deferred_sends.push((peer, bytes, dxch));
                }
            }
        }

        if let ProcState::WaitingRecv { xch: wx } = self.procs[pid].state {
            let cur_step = self.procs[pid].step;
            if wx == xch && cur_step == step {
                let needed = self.needed_senders(pid, xch);
                if self.procs[pid].have_all(cur_step, xch, &needed) {
                    let p = &mut self.procs[pid];
                    let waited_since = p.wait_since;
                    p.t_com += now - waited_since;
                    if !p.consume(cur_step, xch) {
                        self.stats.out_of_order_consumes += 1;
                    }
                    self.rec_span(pid, Category::Halo, "halo wait", waited_since, now);
                    self.advance_phase(pid);
                    return;
                }
            }
        }
        // a delivery frees the receiver's event loop to accept the next
        // held-back sender, if the process is (still) blocked in a receive
        self.release_next_staged(pid);
    }

    // ------------------------------------------------------------------
    // users, jobs, scheduling
    // ------------------------------------------------------------------

    fn record_background(&mut self, host: usize, kind: BackgroundEventKind) {
        let t = self.now();
        self.stats
            .background_events
            .push(BackgroundEvent { t, host, kind });
    }

    fn on_user_flip(&mut self, host: usize) {
        let now = self.now();
        self.record_background(host, BackgroundEventKind::UserFlip);
        self.hosts[host].touch(now);
        let active = self.hosts[host].user_active;
        self.hosts[host].user_active = !active;
        if active {
            self.hosts[host].idle_since = now;
        }
        let mean = if self.hosts[host].user_active {
            self.cfg.user.mean_active_s
        } else {
            self.cfg.user.mean_idle_s
        };
        let d = exp_sample(&mut self.rng_user, mean);
        self.q.schedule(d, EventKind::UserFlip { host });
    }

    fn on_job_arrival(&mut self, host: usize) {
        let now = self.now();
        self.record_background(host, BackgroundEventKind::JobArrival);
        self.hosts[host].touch(now);
        self.hosts[host].competitors += 1;
        self.on_rate_change(host);
        self.maybe_schedule_relax(host);
        let dur = exp_sample(&mut self.rng_user, self.cfg.user.mean_job_s);
        self.q.schedule(dur, EventKind::JobDeparture { host });
        let next = exp_sample(&mut self.rng_user, 1.0 / self.cfg.user.job_rate_per_s);
        self.q.schedule(next, EventKind::JobArrival { host });
    }

    fn on_job_departure(&mut self, host: usize) {
        let now = self.now();
        self.record_background(host, BackgroundEventKind::JobDeparture);
        self.hosts[host].touch(now);
        self.hosts[host].competitors = self.hosts[host].competitors.saturating_sub(1);
        self.on_rate_change(host);
        self.maybe_schedule_relax(host);
    }

    /// Whether the host's smoothed CPU demand still differs measurably from
    /// its instantaneous competitor count (the processor-sharing rate will
    /// keep drifting until they meet).
    fn demand_unsettled(&self, host: usize) -> bool {
        let h = &self.hosts[host];
        (h.cpu_demand(self.now()) - h.competitors as f64).abs() > CPU_RELAX_EPS
    }

    /// Starts a chain of rate re-planning ticks on `host` if its smoothed CPU
    /// demand has not yet converged and a subprocess runs there.
    fn maybe_schedule_relax(&mut self, host: usize) {
        if self.hosts[host].relax_scheduled
            || self.hosts[host].assigned_proc.is_none()
            || !self.demand_unsettled(host)
        {
            return;
        }
        self.hosts[host].relax_scheduled = true;
        self.q
            .schedule(CPU_RELAX_TICK_S, EventKind::CpuRelax { host });
    }

    fn on_cpu_relax(&mut self, host: usize) {
        self.hosts[host].relax_scheduled = false;
        let now = self.now();
        self.hosts[host].touch(now);
        self.on_rate_change(host);
        self.maybe_schedule_relax(host);
    }

    /// The host's CPU share changed: re-plan the in-flight compute phase.
    fn on_rate_change(&mut self, host: usize) {
        let Some(pid) = self.hosts[host].assigned_proc else {
            return;
        };
        let now = self.now();
        let new_rate = self.rate_of(pid);
        let p = &mut self.procs[pid];
        if let ProcState::Computing {
            remaining,
            rate,
            since,
        } = p.state
        {
            let worked = (now - since) * rate;
            let left = (remaining - worked).max(0.0);
            p.t_calc += now - since;
            p.state = ProcState::Computing {
                remaining: left,
                rate: new_rate,
                since: now,
            };
            let epoch = p.bump_epoch();
            self.q.schedule(
                left / new_rate,
                EventKind::ComputeDone {
                    proc_id: pid,
                    epoch,
                },
            );
            self.rec_span(pid, Category::Compute, "compute", since, now);
        }
    }

    // ------------------------------------------------------------------
    // the monitoring program and migration (section 5, Appendix B)
    // ------------------------------------------------------------------

    fn on_monitor_tick(&mut self) {
        let now = self.now();
        if self.cfg.monitor.enabled {
            self.q
                .schedule(self.cfg.monitor.period_s, EventKind::MonitorTick);
        }
        if self.sync != SyncState::Idle || self.done_count > 0 {
            return;
        }
        let mut any = false;
        for h in 0..self.hosts.len() {
            let Some(pid) = self.hosts[h].assigned_proc else {
                continue;
            };
            if !self.hosts[h].available() {
                continue; // dead/stalled hosts are the detector's business
            }
            let l5 = self.hosts[h].load5.at(now, self.hosts[h].run_queue());
            if l5 > self.cfg.monitor.load5_migrate {
                self.procs[pid].migrate_requested = true;
                any = true;
            }
        }
        if any {
            self.initiate_sync();
        }
    }

    /// Appendix B: every process posts its current integration step to the
    /// shared file; the maximum plus one becomes the synchronisation step.
    fn initiate_sync(&mut self) {
        let t_max = self.procs.iter().map(|p| p.step).max().unwrap_or(0);
        self.sync = SyncState::Draining { target: t_max + 1 };
        self.migration_signal_time = self.now();
        self.paused_count = 0;
    }

    /// Requests a migration of `pid` by hand (the paper's `kill -USR2`
    /// interface for the regular user of a workstation).
    pub fn request_migration(&mut self, pid: usize) {
        if self.sync == SyncState::Idle && self.done_count == 0 {
            self.procs[pid].migrate_requested = true;
            self.initiate_sync();
        }
    }

    fn on_all_paused(&mut self) {
        let now = self.now();
        self.migration_pause_time = now;
        self.sync = SyncState::Migrating;
        self.pending_migrators = (0..self.procs.len())
            .filter(|&pid| {
                self.procs[pid].migrate_requested && self.procs[pid].state != ProcState::Failed
            })
            .collect();
        if self.pending_migrators.is_empty() {
            self.resume_pending = true;
            self.q.schedule(0.0, EventKind::ResumeAll);
            return;
        }
        for &pid in &self.pending_migrators.clone() {
            self.procs[pid].state = ProcState::MigrSaving;
            let bytes = self.cfg.workload.tiles[pid].nodes as f64 * self.cfg.dump_bytes_per_node;
            self.net.start_transfer(
                now,
                bytes,
                TransferPayload::Dump { proc_id: pid },
                &mut self.rng_bus,
            );
        }
        self.reschedule_net();
    }

    fn on_dump_done(&mut self, pid: usize) {
        let now = self.now();
        match self.procs[pid].state.clone() {
            ProcState::MigrSaving => {
                // leave the busy host, ask submit for a new one
                let old = self.procs[pid].host;
                self.hosts[old].touch(now);
                self.hosts[old].assigned_proc = None;
                self.migration_from.push((pid, old));
                self.procs[pid].state = ProcState::MigrWaitingHost;
                self.q
                    .schedule(self.cfg.submit.search_duration_s, EventKind::SubmitRetry);
            }
            ProcState::MigrLoading => {
                self.procs[pid].state = ProcState::MigrReady;
                self.check_migrators_ready();
            }
            ProcState::CkptSaving { resume } => {
                let p = &mut self.procs[pid];
                let since = p.pause_since;
                let paused = now - since;
                p.t_paused += paused;
                self.stats.checkpoint_pause_total += paused;
                self.rec_span(pid, Category::Checkpoint, "ckpt save", since, now);
                self.resume_from(pid, resume);
                if let Some(round) = &mut self.ckpt {
                    let next = round.next;
                    self.q.schedule(
                        self.cfg.checkpoint_gap_s,
                        EventKind::CheckpointToken { order_index: next },
                    );
                }
            }
            _ => {
                // A stale dump completion: the fault layer interrupted the
                // process (crash, freeze, declaration, recovery rollback)
                // after the transfer went onto the wire. The bytes land at
                // the file server; nobody is waiting for them any more.
            }
        }
    }

    /// Schedules the global resume once every pending migrator has either
    /// reloaded its dump or died (a crashed migrator must not stall the
    /// others forever).
    fn check_migrators_ready(&mut self) {
        if self.sync != SyncState::Migrating
            || self.resume_pending
            || self.pending_migrators.is_empty()
        {
            return;
        }
        let all_settled = self.pending_migrators.iter().all(|&m| {
            matches!(
                self.procs[m].state,
                ProcState::MigrReady | ProcState::Failed
            )
        });
        if all_settled {
            self.resume_pending = true;
            self.q.schedule(self.cfg.handshake_s, EventKind::ResumeAll);
        }
    }

    fn on_submit_retry(&mut self) {
        let now = self.now();
        let waiting: Vec<usize> = self
            .pending_migrators
            .iter()
            .copied()
            .filter(|&pid| self.procs[pid].state == ProcState::MigrWaitingHost)
            .collect();
        if waiting.is_empty() {
            return;
        }
        let mut any_unplaced = false;
        for pid in waiting {
            match self.cfg.submit.select(now, self.hosts.iter().enumerate()) {
                Some(h) => {
                    self.hosts[h].touch(now);
                    self.hosts[h].assigned_proc = Some(pid);
                    self.procs[pid].host = h;
                    self.procs[pid].state = ProcState::MigrLoading;
                    self.maybe_schedule_relax(h);
                    let bytes =
                        self.cfg.workload.tiles[pid].nodes as f64 * self.cfg.dump_bytes_per_node;
                    self.net.start_transfer(
                        now,
                        bytes,
                        TransferPayload::Dump { proc_id: pid },
                        &mut self.rng_bus,
                    );
                }
                None => any_unplaced = true,
            }
        }
        self.reschedule_net();
        if any_unplaced {
            self.q.schedule(30.0, EventKind::SubmitRetry);
        }
    }

    fn on_resume_all(&mut self) {
        let now = self.now();
        self.resume_pending = false;
        if let Some(ctx) = self.recovering.take() {
            self.finish_recovery(ctx);
            return;
        }
        for pid in 0..self.procs.len() {
            match self.procs[pid].state {
                ProcState::AtSyncBarrier | ProcState::MigrReady => {
                    let p = &mut self.procs[pid];
                    let since = p.pause_since;
                    p.t_paused += now - since;
                    p.state = ProcState::Done; // placeholder, start_phase overwrites
                    self.rec_span(pid, Category::Sync, "paused", since, now);
                    self.start_phase(pid);
                }
                _ => {}
            }
        }
        for &(pid, from) in &self.migration_from {
            self.stats.migrations.push(MigrationRecord {
                proc_id: pid,
                from_host: from,
                to_host: self.procs[pid].host,
                signal_time: self.migration_signal_time,
                pause_time: self.migration_pause_time,
                resume_time: now,
            });
            self.ctrl.span_sim_arg(
                Category::Migration,
                "migration",
                self.migration_signal_time,
                now,
                Some(("proc", pid as f64)),
            );
        }
        self.migration_from.clear();
        self.pending_migrators.clear();
        for p in &mut self.procs {
            p.migrate_requested = false;
        }
        self.sync = SyncState::Idle;
        self.paused_count = 0;
    }

    // ------------------------------------------------------------------
    // fault injection, failure detection, crash recovery
    // ------------------------------------------------------------------

    /// The workstation loses power: the host goes down and the parallel
    /// subprocess on it (if any) dies instantly. Background chains (user
    /// flips, job arrivals) keep running untouched — their RNG stream must
    /// not depend on fault timing — and their effects on a dead host are
    /// harmless because placement skips unavailable machines.
    fn on_host_crash(&mut self, host: usize) {
        let now = self.now();
        self.stats.host_crashes += 1;
        self.hosts[host].touch(now);
        if !self.hosts[host].up {
            return; // already down
        }
        self.hosts[host].up = false;
        self.hosts[host].frozen = false;
        let Some(pid) = self.hosts[host].assigned_proc else {
            return; // an empty workstation died; nobody notices until submit
        };
        let state = self.procs[pid].state.clone();
        if state == ProcState::Done {
            return; // results already delivered; the loss costs nothing
        }
        {
            let p = &mut self.procs[pid];
            let (wait_since, pause_since) = (p.wait_since, p.pause_since);
            match state {
                ProcState::Computing { since, .. } => p.t_calc += now - since,
                ProcState::WaitingRecv { .. } => p.t_com += now - p.wait_since,
                ProcState::Failed => return, // double-kill
                _ => p.t_paused += now - p.pause_since,
            }
            // the work the crash interrupted, so the timeline has no gap
            match state {
                ProcState::Computing { since, .. } => {
                    self.rec_span(pid, Category::Compute, "compute", since, now)
                }
                ProcState::WaitingRecv { .. } => {
                    self.rec_span(pid, Category::Halo, "halo wait", wait_since, now)
                }
                _ => self.rec_span(pid, Category::Sync, "paused", pause_since, now),
            }
            self.ctrl.instant_sim_arg(
                Category::Fault,
                "host crash",
                now,
                Some(("host", host as f64)),
            );
            if state == ProcState::AtSyncBarrier {
                // it no longer counts toward the barrier
                self.paused_count = self.paused_count.saturating_sub(1);
            }
            let p = &mut self.procs[pid];
            p.bump_epoch();
            p.state = ProcState::Failed;
            p.pause_since = now; // the moment heartbeats stopped
            self.failed_count += 1;
        }
        // a dead straggler must not hang an in-progress drain or migration
        self.maybe_all_paused();
        self.check_migrators_ready();
        self.start_probe_chain(host);
    }

    /// The crashed machine finishes rebooting and rejoins the pool. Its dead
    /// subprocess (if still assigned) stays dead — the reboot restores the
    /// *host*, not the process — so a pending detection still declares.
    fn on_host_reboot(&mut self, host: usize) {
        let now = self.now();
        self.hosts[host].touch(now);
        if self.hosts[host].up {
            return;
        }
        self.stats.host_reboots += 1;
        self.hosts[host].up = true;
    }

    /// A transient stall begins: the subprocess stops making progress but
    /// stays alive. Only actively running states are interrupted; a process
    /// that is already paused (barrier, migration, checkpoint save) does not
    /// notice a stall on its host.
    fn on_host_freeze_start(&mut self, host: usize) {
        let now = self.now();
        self.stats.host_freezes += 1;
        self.hosts[host].touch(now);
        if !self.hosts[host].up || self.hosts[host].frozen {
            return;
        }
        self.hosts[host].frozen = true;
        let Some(pid) = self.hosts[host].assigned_proc else {
            return;
        };
        let resume = match self.procs[pid].state.clone() {
            ProcState::Computing {
                remaining,
                rate,
                since,
            } => {
                let worked = (now - since) * rate;
                self.procs[pid].t_calc += now - since;
                self.rec_span(pid, Category::Compute, "compute", since, now);
                Some(CkptResume::Compute {
                    remaining: (remaining - worked).max(0.0),
                })
            }
            ProcState::WaitingRecv { xch } => {
                let p = &mut self.procs[pid];
                let waited_since = p.wait_since;
                p.t_com += now - waited_since;
                self.rec_span(pid, Category::Halo, "halo wait", waited_since, now);
                Some(CkptResume::Waiting { xch })
            }
            _ => None,
        };
        if let Some(resume) = resume {
            let p = &mut self.procs[pid];
            p.bump_epoch();
            p.pause_since = now;
            p.state = ProcState::Frozen { resume };
            self.ctrl.instant_sim_arg(
                Category::Fault,
                "freeze start",
                now,
                Some(("host", host as f64)),
            );
            self.start_probe_chain(host);
        }
    }

    /// The stall lifts. If the detector has not yet declared the process
    /// dead, it resumes exactly where it was interrupted (heartbeats restart,
    /// cancelling the probe chain); if recovery rolled it back meanwhile it
    /// restarts its current phase from the rollback step.
    fn on_host_freeze_end(&mut self, host: usize) {
        let now = self.now();
        self.hosts[host].touch(now);
        if !self.hosts[host].frozen {
            return; // crash superseded the stall, or never froze
        }
        self.hosts[host].frozen = false;
        self.hosts[host].probe_epoch += 1; // heartbeats resume: drop the chain
        let Some(pid) = self.hosts[host].assigned_proc else {
            return;
        };
        if let ProcState::Frozen { resume } = self.procs[pid].state.clone() {
            let p = &mut self.procs[pid];
            let since = p.pause_since;
            p.t_paused += now - since;
            self.rec_span(pid, Category::Fault, "frozen", since, now);
            self.ctrl.instant_sim_arg(
                Category::Fault,
                "freeze end",
                now,
                Some(("host", host as f64)),
            );
            let p = &mut self.procs[pid];
            if self.sync == SyncState::Migrating {
                // the runtime is mid-migration/recovery: wait for ResumeAll
                p.pause_since = now;
                p.state = ProcState::AtSyncBarrier;
            } else {
                self.resume_from(pid, resume);
            }
        }
    }

    /// Continues a process from a saved mid-step continuation.
    fn resume_from(&mut self, pid: usize, resume: CkptResume) {
        match resume {
            CkptResume::Compute { remaining } => self.begin_compute(pid, remaining),
            CkptResume::Waiting { xch } => self.try_finish_recv(pid, xch),
            CkptResume::Restart => self.start_phase(pid),
        }
    }

    /// Starts (or restarts) the heartbeat probe chain against `host` after
    /// its subprocess stopped answering.
    fn start_probe_chain(&mut self, host: usize) {
        if !self.cfg.detector.enabled {
            return;
        }
        let now = self.now();
        self.hosts[host].probe_epoch += 1;
        let probe_epoch = self.hosts[host].probe_epoch;
        let d = &mut self.det[host];
        d.trigger = ChainTrigger::HostSilent;
        d.chain_started = now;
        d.chain_epoch = probe_epoch;
        d.last_evidence = now; // heartbeats flowed until this instant
        self.q.schedule(
            self.cfg.detector.timeout_s,
            EventKind::HeartbeatProbe {
                host,
                misses: 1,
                probe_epoch,
            },
        );
    }

    /// Whether declaring `pid` dead right now is meaningful: the process is
    /// plainly dead/stalled, or doing interruptible solver work. Mid-protocol
    /// states (barrier, checkpoint save, migration legs) postpone the
    /// declaration instead — killing those would tangle two protocols.
    fn declarable(&self, pid: usize) -> bool {
        matches!(
            self.procs[pid].state,
            ProcState::Failed
                | ProcState::Frozen { .. }
                | ProcState::Computing { .. }
                | ProcState::WaitingRecv { .. }
        )
    }

    fn on_heartbeat_probe(&mut self, host: usize, misses: u32, probe_epoch: u64) {
        if probe_epoch != self.hosts[host].probe_epoch {
            return; // stale chain (host recovered or was re-suspected)
        }
        let Some(pid) = self.hosts[host].assigned_proc else {
            return;
        };
        match (self.cfg.detector.mode, self.det[host].trigger) {
            (DetectorMode::FixedTimeout, ChainTrigger::HostSilent) => {
                self.fixed_probe_host_silent(host, pid, misses, probe_epoch)
            }
            (DetectorMode::FixedTimeout, ChainTrigger::CommSuspect) => {
                self.fixed_probe_comm(host, pid, misses, probe_epoch)
            }
            (DetectorMode::Accrual, trigger) => {
                self.accrual_probe(host, pid, misses, probe_epoch, trigger)
            }
        }
    }

    /// The classic fixed-timeout schedule against an out-of-band-silent host
    /// (crash or freeze): count misses, declare at `max_misses`.
    fn fixed_probe_host_silent(&mut self, host: usize, pid: usize, misses: u32, probe_epoch: u64) {
        let silent = !self.hosts[host].available()
            || matches!(
                self.procs[pid].state,
                ProcState::Failed | ProcState::Frozen { .. }
            );
        if !silent {
            return; // heartbeats are back; the suspicion evaporates
        }
        if misses >= self.cfg.detector.max_misses {
            if self.sync != SyncState::Idle || self.recovering.is_some() {
                // the runtime is mid-sync/migration/recovery: declaring now
                // would tangle two protocols, so keep probing until idle
                self.q.schedule(
                    self.cfg.detector.timeout_s,
                    EventKind::HeartbeatProbe {
                        host,
                        misses,
                        probe_epoch,
                    },
                );
                return;
            }
            self.declare_failure(host, pid);
        } else {
            let wait = self.cfg.detector.probe_wait(misses + 1);
            self.q.schedule(
                wait,
                EventKind::HeartbeatProbe {
                    host,
                    misses: misses + 1,
                    probe_epoch,
                },
            );
        }
    }

    /// The fixed-timeout schedule against a comm-suspected host. The host
    /// looks fine out of band (its process is alive), so the only signals
    /// are traffic evidence (which ends the chain eagerly via
    /// [`ClusterSim::note_evidence`], and is re-checked here) and the miss
    /// budget. A lossy-but-alive link therefore burns straight through the
    /// budget — the fixed detector's false-positive mode the `partition`
    /// experiment measures.
    fn fixed_probe_comm(&mut self, host: usize, pid: usize, misses: u32, probe_epoch: u64) {
        let d = &self.det[host];
        if d.last_evidence >= d.chain_started {
            self.hosts[host].bump_probe_epoch(); // traffic resumed
            return;
        }
        if misses >= self.cfg.detector.max_misses {
            if self.sync != SyncState::Idle || self.recovering.is_some() || !self.declarable(pid) {
                self.q.schedule(
                    self.cfg.detector.timeout_s,
                    EventKind::HeartbeatProbe {
                        host,
                        misses,
                        probe_epoch,
                    },
                );
                return;
            }
            self.declare_failure(host, pid);
        } else {
            let wait = self.cfg.detector.probe_wait(misses + 1);
            self.q.schedule(
                wait,
                EventKind::HeartbeatProbe {
                    host,
                    misses: misses + 1,
                    probe_epoch,
                },
            );
        }
    }

    /// The accrual (φ) detector: suspicion is the ratio of observed silence
    /// to the expected-evidence horizon, and the horizon stretches with the
    /// measured probe RTT — congestion inflates the RTT estimate, which
    /// raises the bar instead of burning a fixed miss budget. Declares only
    /// once φ crosses `phi_threshold` *and* at least one wire probe has had
    /// a chance to come back.
    fn accrual_probe(
        &mut self,
        host: usize,
        pid: usize,
        misses: u32,
        probe_epoch: u64,
        trigger: ChainTrigger,
    ) {
        let now = self.now();
        match trigger {
            ChainTrigger::HostSilent => {
                let silent = !self.hosts[host].available()
                    || matches!(
                        self.procs[pid].state,
                        ProcState::Failed | ProcState::Frozen { .. }
                    );
                if !silent {
                    return;
                }
            }
            ChainTrigger::CommSuspect => {
                let d = &self.det[host];
                if d.last_evidence >= d.chain_started {
                    self.hosts[host].bump_probe_epoch();
                    return;
                }
            }
        }
        let d = &self.det[host];
        let expected = self
            .cfg
            .detector
            .timeout_s
            .max(d.rtt.expected(self.cfg.detector.rtt_inflation));
        let phi = (now - d.last_evidence) / expected;
        let threshold_at = d.last_evidence + self.cfg.detector.phi_threshold * expected;
        self.stats.suspicion_peak = self.stats.suspicion_peak.max(phi);
        if phi >= self.cfg.detector.phi_threshold - 1e-9 && misses > 1 {
            if self.sync != SyncState::Idle || self.recovering.is_some() || !self.declarable(pid) {
                self.q.schedule(
                    self.cfg.detector.timeout_s,
                    EventKind::HeartbeatProbe {
                        host,
                        misses,
                        probe_epoch,
                    },
                );
                return;
            }
            self.declare_failure(host, pid);
            return;
        }
        // ask the host directly over the modelled network and look again at
        // the earlier of the backed-off schedule and the φ-crossing time (or
        // one timeout, when φ is already over but no probe has answered yet)
        self.send_probe(host);
        let crossing = threshold_at - now;
        let wait = if crossing <= 0.0 {
            self.cfg.detector.timeout_s
        } else {
            self.cfg.detector.probe_wait(misses + 1).min(crossing)
        };
        self.q.schedule(
            wait,
            EventKind::HeartbeatProbe {
                host,
                misses: misses + 1,
                probe_epoch,
            },
        );
    }

    /// The detector gives up on the process: declare it dead and launch the
    /// checkpoint-restart recovery. If the process was merely stalled (a
    /// freeze outlasting the probe schedule) this is a false positive — the
    /// monitor kills the unresponsive process and restarts it anyway, which
    /// is exactly what a real timeout-based monitor would do.
    fn declare_failure(&mut self, host: usize, pid: usize) {
        let now = self.now();
        let state = self.procs[pid].state.clone();
        let false_positive = match state {
            ProcState::Frozen { .. } => {
                let p = &mut self.procs[pid];
                p.t_paused += now - p.pause_since;
                // keep pause_since: it marks when progress stopped (fault time)
                let fault = p.pause_since;
                p.bump_epoch();
                p.state = ProcState::Failed;
                p.pause_since = fault;
                self.failed_count += 1;
                self.rec_span(pid, Category::Fault, "frozen (declared dead)", fault, now);
                true
            }
            // a comm-triggered chain convicted a process that is actually
            // alive (lossy or congested link): the monitor kills and
            // restarts it anyway — the false-positive restart whose cost the
            // recovery model's fp-rate term charges
            ProcState::Computing { since, .. } => {
                let suspected_since = self.det[host].chain_started;
                self.procs[pid].t_calc += now - since;
                self.rec_span(pid, Category::Compute, "compute", since, now);
                let p = &mut self.procs[pid];
                p.bump_epoch();
                p.state = ProcState::Failed;
                p.pause_since = suspected_since; // fault time = suspicion start
                self.failed_count += 1;
                self.rec_span(
                    pid,
                    Category::Fault,
                    "declared dead (live)",
                    suspected_since,
                    now,
                );
                true
            }
            ProcState::WaitingRecv { .. } => {
                let suspected_since = self.det[host].chain_started;
                let ws = self.procs[pid].wait_since;
                self.procs[pid].t_com += now - ws;
                self.rec_span(pid, Category::Halo, "halo wait", ws, now);
                let p = &mut self.procs[pid];
                p.bump_epoch();
                p.state = ProcState::Failed;
                p.pause_since = suspected_since;
                self.failed_count += 1;
                self.rec_span(
                    pid,
                    Category::Fault,
                    "declared dead (live)",
                    suspected_since,
                    now,
                );
                true
            }
            _ => false, // ProcState::Failed — the real crash
        };
        self.hosts[host].probe_epoch += 1; // chain consumed
        self.begin_recovery(pid, host, false_positive);
    }

    /// Extends the section-4.1 migration machinery into failure-triggered
    /// re-submission: pause every live process where it stands, re-submit the
    /// dead one to a fresh host, reload the last coordinated checkpoint, and
    /// resume everyone from the checkpointed step (the lost steps are
    /// recomputed).
    fn begin_recovery(&mut self, pid: usize, from_host: usize, false_positive: bool) {
        let now = self.now();
        let fault_time = self.procs[pid].pause_since;
        self.recovering = Some(RecoveryCtx {
            pid,
            from_host,
            fault_time,
            detect_time: now,
            step_at_failure: self.procs[pid].step,
            false_positive,
        });
        // detection latency: heartbeats stopped at fault_time, the detector
        // declared at now
        self.ctrl.span_sim_arg(
            Category::Detection,
            "detect",
            fault_time,
            now,
            Some(("proc", pid as f64)),
        );
        self.ckpt = None; // abandon any checkpoint round in progress
        self.sync = SyncState::Migrating;
        self.hosts[from_host].touch(now);
        self.hosts[from_host].assigned_proc = None;
        // stop the world: every live process pauses where it stands
        for i in 0..self.procs.len() {
            if i == pid {
                continue;
            }
            let state = self.procs[i].state.clone();
            let p = &mut self.procs[i];
            let (wait_since, pause_since) = (p.wait_since, p.pause_since);
            match state {
                ProcState::Computing { since, .. } => {
                    p.t_calc += now - since;
                    self.rec_span(i, Category::Compute, "compute", since, now);
                }
                ProcState::WaitingRecv { .. } => {
                    p.t_com += now - wait_since;
                    self.rec_span(i, Category::Halo, "halo wait", wait_since, now);
                }
                ProcState::CkptSaving { .. } => {
                    p.t_paused += now - pause_since;
                    self.rec_span(i, Category::Checkpoint, "ckpt save", pause_since, now);
                }
                // frozen processes stay frozen (their stall outlives the
                // pause); failed ones await their own recovery; done ones
                // are rolled back at resume
                _ => continue,
            }
            let p = &mut self.procs[i];
            p.bump_epoch();
            p.state = ProcState::AtSyncBarrier;
            p.pause_since = now;
        }
        // the victim: dead time so far is pause, then it queues for submit
        {
            let p = &mut self.procs[pid];
            let since = p.pause_since;
            p.t_paused += now - since;
            p.pause_since = now;
            p.bump_epoch();
            p.state = ProcState::MigrWaitingHost;
            self.rec_span(pid, Category::Fault, "down", since, now);
        }
        self.failed_count = self.failed_count.saturating_sub(1);
        self.pending_migrators = vec![pid];
        self.q
            .schedule(self.cfg.submit.search_duration_s, EventKind::SubmitRetry);
    }

    /// The recovered process has reloaded the checkpoint on its new host and
    /// the channels have reopened: roll *everyone* back to the coordinated
    /// checkpoint step and restart computation from there.
    fn finish_recovery(&mut self, ctx: RecoveryCtx) {
        let now = self.now();
        let rollback = self.last_ckpt_step;
        // two passes: every process must be rewound before any restarts,
        // because a restarted process's first phase can be an exchange whose
        // offer lands (staged) in a peer that has not been rewound yet —
        // rolling that peer back afterwards would discard the offer
        let mut restart = Vec::with_capacity(self.procs.len());
        for i in 0..self.procs.len() {
            match self.procs[i].state.clone() {
                ProcState::AtSyncBarrier | ProcState::MigrReady => {
                    let p = &mut self.procs[i];
                    let since = p.pause_since;
                    p.t_paused += now - since;
                    p.rollback_to(rollback);
                    p.state = ProcState::Done; // placeholder, start_phase overwrites
                    restart.push(i);
                    self.rec_span(i, Category::Sync, "paused", since, now);
                }
                ProcState::Done => {
                    // a finished process restarts too: the global rollback
                    // invalidates the steps it computed past the checkpoint
                    self.done_count -= 1;
                    self.procs[i].rollback_to(rollback);
                    restart.push(i);
                }
                ProcState::Frozen { .. } => {
                    // still stalled: rewound, restarts its phase at thaw
                    let p = &mut self.procs[i];
                    p.rollback_to(rollback);
                    p.state = ProcState::Frozen {
                        resume: CkptResume::Restart,
                    };
                }
                ProcState::Failed => {
                    // a second casualty: rewound, awaits its own recovery
                    self.procs[i].rollback_to(rollback);
                }
                other => debug_assert!(false, "recovery resume found state {other:?}"),
            }
        }
        // every step counter moved backwards: rebuild the skew histogram
        self.rebuild_step_hist();
        // the rollback voids every outstanding DATA message — the whole
        // exchange re-executes with fresh sequence numbers, and the stale
        // retransmission timers die on their next lookup. Receiver dedup
        // sets survive to absorb stale pre-rollback wire arrivals. This must
        // happen before any restart: a restarted process's first phase can
        // put a new DATA message on the wire synchronously, and clearing
        // afterwards would orphan it from its retransmission timer.
        self.transport.clear_outstanding();
        for i in restart {
            self.start_phase(i);
        }
        let lost_steps = ctx.step_at_failure.saturating_sub(rollback);
        self.ctrl.span_sim_arg(
            Category::Recovery,
            "recover",
            ctx.detect_time,
            now,
            Some(("lost_steps", lost_steps as f64)),
        );
        self.stats.recoveries.push(RecoveryRecord {
            proc_id: ctx.pid,
            from_host: ctx.from_host,
            to_host: self.procs[ctx.pid].host,
            fault_time: ctx.fault_time,
            detect_time: ctx.detect_time,
            resume_time: now,
            rollback_step: rollback,
            lost_steps,
            false_positive: ctx.false_positive,
        });
        self.pending_migrators.clear();
        self.sync = SyncState::Idle;
        self.paused_count = 0;
    }

    // ------------------------------------------------------------------
    // staggered checkpointing (section 5.2)
    // ------------------------------------------------------------------

    fn on_checkpoint_tick(&mut self) {
        if let Some(period) = self.cfg.checkpoint_period_s {
            self.q.schedule(period, EventKind::CheckpointTick);
        }
        if self.ckpt.is_some() || self.sync != SyncState::Idle || self.done_count > 0 {
            return; // skip a round rather than overlap
        }
        self.ckpt = Some(CkptRound {
            order: (0..self.procs.len()).collect(),
            next: 0,
            min_step: u64::MAX,
            saved: 0,
        });
        self.q
            .schedule(0.0, EventKind::CheckpointToken { order_index: 0 });
    }

    fn on_checkpoint_token(&mut self, idx: usize) {
        let now = self.now();
        let Some(round) = &mut self.ckpt else {
            return;
        };
        if idx >= round.order.len() {
            // the coordinated checkpoint only advances the recovery line if
            // every process saved this round: a skipped process still has only
            // its previous dump on the file server
            if round.saved == self.procs.len() && round.min_step != u64::MAX {
                self.last_ckpt_step = round.min_step;
            }
            self.stats.checkpoint_rounds += 1;
            self.ckpt = None;
            return;
        }
        round.next = idx + 1;
        let pid = round.order[idx];
        let resume = match self.procs[pid].state.clone() {
            ProcState::Computing {
                remaining,
                rate,
                since,
            } => {
                let worked = (now - since) * rate;
                self.procs[pid].t_calc += now - since;
                self.rec_span(pid, Category::Compute, "compute", since, now);
                Some(CkptResume::Compute {
                    remaining: (remaining - worked).max(0.0),
                })
            }
            ProcState::WaitingRecv { xch } => {
                let p = &mut self.procs[pid];
                let since = p.wait_since;
                p.t_com += now - since;
                self.rec_span(pid, Category::Halo, "halo wait", since, now);
                Some(CkptResume::Waiting { xch })
            }
            // paused / migrating / done processes skip their save
            _ => None,
        };
        match resume {
            Some(resume) => {
                let step = self.procs[pid].step;
                if let Some(round) = &mut self.ckpt {
                    // the coordinated rollback point is the slowest saver's step
                    round.min_step = round.min_step.min(step);
                    round.saved += 1;
                }
                let p = &mut self.procs[pid];
                p.bump_epoch(); // invalidate any in-flight ComputeDone
                p.pause_since = now;
                p.state = ProcState::CkptSaving { resume };
                let bytes =
                    self.cfg.workload.tiles[pid].nodes as f64 * self.cfg.dump_bytes_per_node;
                self.net.start_transfer(
                    now,
                    bytes,
                    TransferPayload::Dump { proc_id: pid },
                    &mut self.rng_bus,
                );
                self.reschedule_net();
            }
            None => {
                self.q.schedule(
                    self.cfg.checkpoint_gap_s,
                    EventKind::CheckpointToken {
                        order_index: idx + 1,
                    },
                );
            }
        }
    }

    // ------------------------------------------------------------------
    // finishing
    // ------------------------------------------------------------------

    fn finalize(&mut self) -> ClusterStats {
        let now = self.now();
        for t in &mut self.tracks {
            t.finish();
        }
        self.ctrl.finish();
        let mut stats = self.stats.clone();
        stats.procs = self
            .procs
            .iter()
            .map(|p| {
                let mut s = ProcStats {
                    t_calc: p.t_calc,
                    t_com: p.t_com,
                    t_paused: p.t_paused,
                    steps: p.step,
                };
                match p.state {
                    ProcState::Computing { since, .. } => s.t_calc += now - since,
                    ProcState::WaitingRecv { .. } => s.t_com += now - p.wait_since,
                    ProcState::AtSyncBarrier
                    | ProcState::MigrSaving
                    | ProcState::MigrWaitingHost
                    | ProcState::MigrLoading
                    | ProcState::MigrReady
                    | ProcState::CkptSaving { .. }
                    | ProcState::Frozen { .. }
                    | ProcState::Failed => s.t_paused += now - p.pause_since,
                    ProcState::Done => {}
                }
                s
            })
            .collect();
        stats.net_bytes = self.net.bytes_delivered;
        stats.net_messages = self.net.messages;
        stats.net_errors = self.net.errors;
        stats.net_losses = self.net.losses;
        stats.net_busy = self.net.busy_time;
        stats.net_forced_completions = self.net.forced_completions;
        stats.engine_bytes = self.q.approx_bytes() + self.net.approx_bytes();
        stats.finished_at = self.finished_at.unwrap_or(now);
        stats
    }

    /// Step counters of all processes (for protocol tests).
    pub fn steps(&self) -> Vec<u64> {
        self.procs.iter().map(|p| p.step).collect()
    }

    /// Host each process currently runs on.
    pub fn placements(&self) -> Vec<usize> {
        self.procs.iter().map(|p| p.host).collect()
    }

    /// Forces the number of competing full-time jobs on a host (for
    /// experiments that freeze or slow a workstation deliberately).
    pub fn set_competitors(&mut self, host: usize, n: u32) {
        let now = self.now();
        self.hosts[host].touch(now);
        self.hosts[host].competitors = n;
        self.on_rate_change(host);
        self.maybe_schedule_relax(host);
    }

    /// Applies a deliberate slowdown factor (`>= 1`) to a host's CPU; the
    /// assigned subprocess's compute rate divides by it immediately.
    pub fn set_host_slowdown(&mut self, host: usize, factor: f64) {
        assert!(
            factor >= 1.0 && factor.is_finite(),
            "slowdown factor {factor} must be >= 1"
        );
        self.hosts[host].slowdown = factor;
        self.on_rate_change(host);
    }

    /// Discrete events dispatched so far (simulation throughput accounting).
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Largest step difference between processes right now.
    pub fn current_skew(&self) -> u64 {
        let steps = self.steps();
        let lo = steps.iter().min().copied().unwrap_or(0);
        let hi = steps.iter().max().copied().unwrap_or(0);
        hi - lo
    }

    /// Workstation states (for fault-injection tests).
    pub fn hosts(&self) -> &[HostState] {
        &self.hosts
    }

    /// Step of the last completed coordinated checkpoint round (the rollback
    /// point crash recovery restarts from).
    pub fn last_checkpoint_step(&self) -> u64 {
        self.last_ckpt_step
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subsonic_solvers::MethodKind;

    fn small_workload() -> WorkloadSpec {
        WorkloadSpec::new_2d(MethodKind::LatticeBoltzmann, 200, 100, 2, 1)
    }

    #[test]
    fn quiet_run_completes_target_steps() {
        let cfg = ClusterConfig::measurement(small_workload());
        let mut sim = ClusterSim::new(cfg);
        let stats = sim.run(1.0e6, Some(20));
        assert_eq!(sim.steps(), vec![20, 20]);
        assert!(stats.finished_at > 0.0);
        assert!(stats.procs.iter().all(|p| p.steps == 20));
        assert!(stats.net_messages >= 2 * 20);
    }

    #[test]
    fn quiet_run_is_deterministic() {
        let run = || {
            let cfg = ClusterConfig::measurement(small_workload());
            ClusterSim::new(cfg).run(1.0e6, Some(10)).finished_at
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn step_time_matches_hand_calculation() {
        // one 100x100 LB tile per proc on 715s, quiet bus: per step
        // T_calc = 10000/39132 s; T_com = message transfer both directions
        // sharing the bus.
        let cfg = ClusterConfig::measurement(small_workload());
        let mut sim = ClusterSim::new(cfg);
        let stats = sim.run(1.0e6, Some(20));
        let t_calc_expected = 20.0 * 10_000.0 / 39_132.0;
        for p in &stats.procs {
            assert!(
                (p.t_calc - t_calc_expected).abs() / t_calc_expected < 1e-9,
                "t_calc {} vs {}",
                p.t_calc,
                t_calc_expected
            );
            assert!(p.t_com > 0.0, "no communication time recorded");
        }
    }

    #[test]
    fn migration_waits_until_a_host_frees_up() {
        // a 2-process job on a 2-host cluster: when one host gets busy there
        // is nowhere to go, so the migrator waits in MigrWaitingHost with the
        // submit program retrying until the competing job ends
        let w = WorkloadSpec::new_2d(MethodKind::LatticeBoltzmann, 120, 60, 2, 1);
        let mut cfg = ClusterConfig::measurement(w);
        cfg.hosts = vec![crate::host::HostKind::Hp715_50; 2];
        let mut sim = ClusterSim::new(cfg);
        sim.run(5.0, None);
        let victim = sim.placements()[1];
        sim.set_competitors(victim, 1);
        sim.request_migration(1);
        // nothing is free: after a while the process is still unplaced
        sim.run(300.0, None);
        let placements_mid = sim.placements();
        assert_eq!(placements_mid[1], victim, "migrated with no free host?");
        // the job departs; the retry finds the now-free... the *old* host is
        // still busy, but let the competitor leave and the retry succeed
        sim.set_competitors(victim, 0);
        let stats = sim.run(2000.0, None);
        assert_eq!(stats.migrations.len(), 1, "migration should complete");
        // everyone is stepping again
        let steps = sim.steps();
        assert!(steps.iter().all(|&s| s > 0));
        let spread = steps.iter().max().unwrap() - steps.iter().min().unwrap();
        assert!(
            spread <= 1,
            "out of sync after delayed migration: {steps:?}"
        );
    }

    #[test]
    fn manual_migration_moves_the_process() {
        let mut cfg = ClusterConfig::measurement(small_workload());
        cfg.monitor.enabled = false;
        let mut sim = ClusterSim::new(cfg);
        let before = sim.placements();
        sim.run(5.0, None); // let it run a bit
        sim.request_migration(0);
        let stats = sim.run(200.0, None);
        assert_eq!(stats.migrations.len(), 1);
        let m = &stats.migrations[0];
        assert_eq!(m.proc_id, 0);
        assert_eq!(m.from_host, before[0]);
        assert_ne!(m.to_host, before[0]);
        assert!(m.total_duration() > 0.0);
        // both processes keep stepping after the resume
        let steps = sim.steps();
        assert!(steps[0] > 0 && steps[1] > 0);
        assert!(
            (steps[0] as i64 - steps[1] as i64).unsigned_abs() <= 1,
            "processes out of sync after migration: {steps:?}"
        );
    }

    /// Host that process 0 lands on under `cfg` (placement is deterministic,
    /// so building a throwaway sim reveals it).
    fn host_of_proc0(cfg: &ClusterConfig) -> usize {
        ClusterSim::new(cfg.clone()).placements()[0]
    }

    #[test]
    fn host_crash_is_detected_and_recovered() {
        let mut cfg = ClusterConfig::measurement(small_workload());
        cfg.checkpoint_period_s = Some(30.0);
        cfg.checkpoint_gap_s = 1.0;
        let victim = host_of_proc0(&cfg);
        cfg.faults = FaultPlan::empty().crash(victim, 60.0, None);
        let mut sim = ClusterSim::new(cfg.clone());
        let stats = sim.run(1000.0, None);
        assert_eq!(stats.host_crashes, 1);
        assert_eq!(stats.recoveries.len(), 1, "exactly one recovery expected");
        let r = &stats.recoveries[0];
        assert_eq!(r.proc_id, 0);
        assert_eq!(r.from_host, victim);
        assert_ne!(r.to_host, victim, "cannot restart on a dead host");
        assert!(!r.false_positive);
        // the detector's schedule: probes at +5, +15, declaration at +35
        let expected = cfg.detector.detection_latency();
        assert!(
            (r.detection_latency() - expected).abs() < 1e-9,
            "detection latency {} vs schedule {}",
            r.detection_latency(),
            expected
        );
        // a checkpoint round completed before the crash, so the rollback is
        // not all the way to step 0
        assert!(r.rollback_step > 0, "no checkpoint to roll back to?");
        assert!(r.lost_steps > 0, "the victim should lose some work");
        // the computation is alive and in lockstep afterwards
        let steps = sim.steps();
        assert!(steps.iter().all(|&s| s > r.rollback_step));
        let spread = steps.iter().max().unwrap() - steps.iter().min().unwrap();
        assert!(spread <= 1, "out of sync after recovery: {steps:?}");
        // the dead host is still down and empty
        assert!(!sim.hosts()[victim].up);
        assert_eq!(sim.hosts()[victim].assigned_proc, None);
    }

    #[test]
    fn crash_without_checkpoints_rolls_back_to_the_start() {
        let mut cfg = ClusterConfig::measurement(small_workload());
        let victim = host_of_proc0(&cfg);
        cfg.faults = FaultPlan::empty().crash(victim, 10.0, None);
        let mut sim = ClusterSim::new(cfg);
        let stats = sim.run(1.0e4, Some(60));
        assert_eq!(stats.recoveries.len(), 1);
        let r = &stats.recoveries[0];
        assert_eq!(
            r.rollback_step, 0,
            "no checkpoints: recovery restarts from the dump"
        );
        assert!(r.lost_steps > 0);
        // the run still completes its target in full
        assert_eq!(sim.steps(), vec![60, 60]);
    }

    #[test]
    fn crashed_host_reboots_and_rejoins() {
        let mut cfg = ClusterConfig::measurement(small_workload());
        let victim = host_of_proc0(&cfg);
        cfg.faults = FaultPlan::empty().crash(victim, 20.0, Some(120.0));
        let mut sim = ClusterSim::new(cfg);
        let stats = sim.run(600.0, None);
        assert_eq!(stats.host_crashes, 1);
        assert_eq!(stats.host_reboots, 1);
        assert_eq!(
            stats.recoveries.len(),
            1,
            "the reboot must not cancel the recovery"
        );
        assert!(sim.hosts()[victim].up, "host should be back up");
        assert_eq!(sim.hosts()[victim].assigned_proc, None, "but empty");
    }

    #[test]
    fn short_freeze_resumes_in_place() {
        let mut cfg = ClusterConfig::measurement(small_workload());
        let victim = host_of_proc0(&cfg);
        // 10 s stall, well under the 35 s detection schedule
        cfg.faults = FaultPlan::empty().freeze(victim, 10.0, 10.0);
        let mut sim = ClusterSim::new(cfg);
        let stats = sim.run(1.0e4, Some(100));
        assert_eq!(stats.host_freezes, 1);
        assert!(
            stats.recoveries.is_empty(),
            "a short stall must not trigger a restart"
        );
        assert_eq!(sim.steps(), vec![100, 100]);
        // the stall shows up as pause time on the frozen process
        assert!(
            stats.procs[0].t_paused >= 10.0 - 1e-9,
            "paused {}",
            stats.procs[0].t_paused
        );
    }

    #[test]
    fn long_freeze_becomes_a_false_positive_restart() {
        let mut cfg = ClusterConfig::measurement(small_workload());
        let victim = host_of_proc0(&cfg);
        // the stall outlasts the detector's 35 s schedule
        cfg.faults = FaultPlan::empty().freeze(victim, 30.0, 200.0);
        let mut sim = ClusterSim::new(cfg);
        let stats = sim.run(1000.0, None);
        assert_eq!(stats.host_freezes, 1);
        assert_eq!(stats.recoveries.len(), 1);
        assert!(
            stats.recoveries[0].false_positive,
            "this restart killed a live process"
        );
        assert_ne!(stats.recoveries[0].to_host, victim);
        // the computation survives the spurious restart
        let steps = sim.steps();
        let spread = steps.iter().max().unwrap() - steps.iter().min().unwrap();
        assert!(
            spread <= 1,
            "out of sync after false-positive recovery: {steps:?}"
        );
    }

    #[test]
    fn bus_burst_congests_and_passes() {
        let run = |faults: FaultPlan| {
            let mut cfg = ClusterConfig::measurement(small_workload());
            cfg.faults = faults;
            let mut sim = ClusterSim::new(cfg);
            sim.run(f64::INFINITY, Some(100))
        };
        let quiet = run(FaultPlan::empty());
        let bursty = run(FaultPlan::empty().bus_burst(5.0, 10.0));
        assert_eq!(bursty.bus_bursts, 1);
        assert!(
            bursty.finished_at > quiet.finished_at,
            "a saturated bus must slow the run: {} vs {}",
            bursty.finished_at,
            quiet.finished_at
        );
        // and both runs still complete every step
        assert!(bursty.procs.iter().all(|p| p.steps == 100));
    }

    #[test]
    fn empty_fault_plan_is_bit_identical() {
        // the fault layer off vs explicitly empty: not one event differs
        let run = |faults: FaultPlan| {
            let mut cfg = ClusterConfig::measurement(small_workload());
            cfg.faults = faults;
            ClusterSim::new(cfg).run(1.0e6, Some(50))
        };
        let a = run(FaultPlan::empty());
        let b = run(FaultPlan::default());
        assert_eq!(a.finished_at, b.finished_at);
        assert_eq!(a.net_messages, b.net_messages);
        assert_eq!(a.net_busy, b.net_busy);
    }

    // ------------------------------------------------------------------
    // reliable transport
    // ------------------------------------------------------------------

    #[test]
    fn lossy_link_retransmits_and_delivers_exactly_once() {
        let run = || {
            let mut cfg = ClusterConfig::measurement(small_workload());
            cfg.faults = FaultPlan::empty().msg_fault(None, None, 0.0, 60.0, 0.35, 0.0, 0.0);
            let mut sim = ClusterSim::new(cfg);
            let stats = sim.run(1.0e4, Some(100));
            assert_eq!(sim.steps(), vec![100, 100], "run must complete");
            stats
        };
        let stats = run();
        assert!(stats.transport.data_sent > 0, "transport not engaged");
        assert!(stats.transport.injected_losses > 0, "window drew no losses");
        assert!(
            stats.transport.retransmits > 0,
            "losses need retransmission"
        );
        assert!(stats.transport.acks_received > 0);
        assert_eq!(stats.duplicate_halo_applies, 0, "exactly-once violated");
        assert_eq!(stats.out_of_order_consumes, 0, "in-order violated");
        assert_eq!(stats.msg_fault_windows, 1);
        // the whole machinery is seeded: a rerun reproduces every counter
        let again = run();
        assert_eq!(stats.finished_at, again.finished_at);
        assert_eq!(stats.transport.retransmits, again.transport.retransmits);
    }

    #[test]
    fn duplication_and_reordering_are_absorbed_in_order() {
        let mut cfg = ClusterConfig::measurement(small_workload());
        cfg.faults = FaultPlan::empty().msg_fault(None, None, 0.0, 60.0, 0.0, 0.5, 0.8);
        let mut sim = ClusterSim::new(cfg);
        let stats = sim.run(1.0e4, Some(100));
        assert_eq!(sim.steps(), vec![100, 100]);
        assert!(stats.transport.injected_dups > 0);
        assert!(stats.transport.injected_reorders > 0);
        assert!(
            stats.transport.dup_suppressed > 0,
            "duplicate wire copies must be caught by the sequence numbers"
        );
        assert!(stats.transport.late_acks > 0, "dup re-ACKs arrive late");
        assert_eq!(stats.duplicate_halo_applies, 0, "exactly-once violated");
        assert_eq!(stats.out_of_order_consumes, 0, "in-order violated");
    }

    #[test]
    fn partition_blocks_traffic_until_heal() {
        let mut cfg = ClusterConfig::measurement(small_workload());
        cfg.detector.enabled = false; // isolate the transport semantics
        cfg.transport.max_attempts = 3; // give up quickly
        let victim = host_of_proc0(&cfg);
        cfg.faults = FaultPlan::empty().partition(vec![vec![victim]], 10.0, Some(30.0));
        let mut sim = ClusterSim::new(cfg);
        let stats = sim.run(1.0e4, Some(100));
        assert_eq!(stats.partitions, 1);
        assert!(stats.transport.partition_drops > 0);
        assert!(
            !stats.delivery_failures.is_empty(),
            "a 30 s partition must outlast the give-up threshold"
        );
        assert!(stats.transport.give_ups >= 1);
        assert!(stats.recoveries.is_empty(), "no detector, no restart");
        // continued retransmission at the capped RTO rides out the heal
        assert_eq!(sim.steps(), vec![100, 100], "run must complete after heal");
        assert_eq!(stats.duplicate_halo_applies, 0);
        assert_eq!(stats.out_of_order_consumes, 0);
    }

    // ------------------------------------------------------------------
    // congestion-aware failure detection
    // ------------------------------------------------------------------

    fn pure_loss_cfg(mode: DetectorMode) -> ClusterConfig {
        let mut cfg = ClusterConfig::measurement(small_workload());
        cfg.detector.mode = mode;
        cfg.transport.max_attempts = 4; // give-up ≈ 3 s into the outage
                                        // every DATA message from proc 0 to proc 1 vanishes for 100 s; the
                                        // hosts themselves stay perfectly healthy
        cfg.faults = FaultPlan::empty().msg_fault(Some(0), Some(1), 5.0, 100.0, 1.0, 0.0, 0.0);
        cfg
    }

    #[test]
    fn pure_loss_gives_the_fixed_detector_a_false_positive() {
        let mut sim = ClusterSim::new(pure_loss_cfg(DetectorMode::FixedTimeout));
        let stats = sim.run(1.0e4, Some(60));
        assert!(
            stats.false_positive_recoveries() >= 1,
            "a starved miss budget must convict the live process"
        );
        assert_eq!(sim.steps(), vec![60, 60], "run survives the spurious kill");
    }

    #[test]
    fn accrual_detector_survives_pure_loss_without_false_positives() {
        let mut sim = ClusterSim::new(pure_loss_cfg(DetectorMode::Accrual));
        let stats = sim.run(1.0e4, Some(60));
        assert!(
            stats.transport.give_ups >= 1,
            "the transport must still report the outage"
        );
        assert!(stats.transport.probes_sent > 0, "suspicion must probe");
        assert!(
            stats.transport.probe_replies > 0,
            "the live host answers over the healthy monitor link"
        );
        assert_eq!(
            stats.recoveries.len(),
            0,
            "probe replies are proof of life: no restart"
        );
        assert_eq!(sim.steps(), vec![60, 60]);
    }

    #[test]
    fn accrual_detects_a_real_crash_within_twice_the_fixed_latency() {
        let run = |mode: DetectorMode| {
            let mut cfg = ClusterConfig::measurement(small_workload());
            cfg.detector.mode = mode;
            let victim = host_of_proc0(&cfg);
            cfg.faults = FaultPlan::empty().crash(victim, 60.0, None);
            ClusterSim::new(cfg).run(2000.0, None)
        };
        let fixed = run(DetectorMode::FixedTimeout);
        let accrual = run(DetectorMode::Accrual);
        assert_eq!(fixed.recoveries.len(), 1);
        assert_eq!(accrual.recoveries.len(), 1);
        assert!(!accrual.recoveries[0].false_positive);
        let lf = fixed.recoveries[0].detection_latency();
        let la = accrual.recoveries[0].detection_latency();
        assert!((lf - 35.0).abs() < 1e-9, "fixed schedule drifted: {lf}");
        // φ = 8 × the 5 s horizon crossed at +40 s (probed at 5/15/35/40)
        assert!((la - 40.0).abs() < 1e-6, "accrual crossing drifted: {la}");
        assert!(la <= 2.0 * lf, "accrual too slow: {la} vs {lf}");
        assert!(accrual.transport.probes_sent >= 3);
        assert!(accrual.suspicion_peak >= 8.0 - 1e-9);
    }

    #[test]
    fn probe_backoff_clamp_bounds_detection_latency() {
        let mut cfg = ClusterConfig::measurement(small_workload());
        cfg.detector = DetectorPolicy {
            enabled: true,
            timeout_s: 3.0,
            backoff: 2.0,
            max_misses: 4,
            max_probe_interval_s: 4.0, // waits 3, 4, 4, 4 instead of 3, 6, 12, 24
            ..DetectorPolicy::default()
        };
        assert!((cfg.detector.detection_latency() - 15.0).abs() < 1e-12);
        let victim = host_of_proc0(&cfg);
        cfg.faults = FaultPlan::empty().crash(victim, 50.0, None);
        let mut sim = ClusterSim::new(cfg.clone());
        let stats = sim.run(1000.0, None);
        assert_eq!(stats.recoveries.len(), 1);
        let lat = stats.recoveries[0].detection_latency();
        assert!(
            (lat - cfg.detector.detection_latency()).abs() < 1e-9,
            "clamped schedule not honoured: {lat}"
        );
    }
}
