//! Workload specifications: what each parallel subprocess does per step.
//!
//! A workload is the *skeleton* of the real solvers' step plans: compute
//! phases expressed as fractions of the per-step node work, and exchanges
//! expressed as bytes per neighbour message. Byte counts follow the paper's
//! accounting (section 6): both methods move 3 field values (double
//! precision) per boundary node in 2D; in 3D, FD moves 4 and LB moves 5.
//! Message counts also follow the paper: FD sends two messages per neighbour
//! per step, LB one.

use serde::{Deserialize, Serialize};
use subsonic_grid::{Decomp2, Decomp3, Face2, Face3};
use subsonic_solvers::MethodKind;

/// One phase of the per-step plan.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PhaseSpec {
    /// Local computation covering this fraction of the step's node work.
    Compute {
        /// Fraction of `nodes` worth of work (fractions sum to 1 per step).
        fraction: f64,
    },
    /// Halo exchange with every neighbour (send one message each, wait for
    /// one from each).
    Exchange {
        /// Exchange id (indexes [`WorkloadTile::neighbors`]).
        xch: usize,
    },
}

/// Per-process workload: subregion size and neighbour links.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkloadTile {
    /// Interior nodes `N` of the subregion.
    pub nodes: usize,
    /// For each exchange id, the `(peer process index, message bytes)` links.
    pub neighbors: Vec<Vec<(usize, f64)>>,
}

/// The full decomposed workload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Numerical method (sets speeds and byte counts).
    pub method: MethodKind,
    /// 3D problem?
    pub three_d: bool,
    /// The per-step plan (same shape as the real solver plans).
    pub plan: Vec<PhaseSpec>,
    /// One entry per parallel process.
    pub tiles: Vec<WorkloadTile>,
    /// Total nodes across all processes (for `T_1`).
    pub total_nodes: usize,
    /// Human-readable decomposition label, e.g. `"(5x4)"`.
    pub label: String,
}

/// Field values (f64) per boundary node for `(method, dim, exchange)`,
/// from the paper's communication accounting.
pub fn vars_per_node(method: MethodKind, three_d: bool, xch: usize) -> f64 {
    match (method, three_d, xch) {
        (MethodKind::FiniteDifference, false, 0) => 2.0, // Vx, Vy
        (MethodKind::FiniteDifference, false, 1) => 1.0, // rho
        (MethodKind::FiniteDifference, true, 0) => 3.0,  // Vx, Vy, Vz
        (MethodKind::FiniteDifference, true, 1) => 1.0,  // rho
        (MethodKind::LatticeBoltzmann, false, 0) => 3.0, // 3 crossing populations
        (MethodKind::LatticeBoltzmann, true, 0) => 5.0,  // 5 crossing populations
        _ => panic!("no such exchange for this method"),
    }
}

/// The per-step plan skeleton for a method (compute fractions are nominal
/// splits of the step work around the paper's exchange points).
pub fn plan_for(method: MethodKind) -> Vec<PhaseSpec> {
    match method {
        MethodKind::FiniteDifference => vec![
            PhaseSpec::Compute { fraction: 0.5 },  // calc Vx, Vy
            PhaseSpec::Exchange { xch: 0 },        // send/recv V
            PhaseSpec::Compute { fraction: 0.25 }, // calc rho
            PhaseSpec::Exchange { xch: 1 },        // send/recv rho
            PhaseSpec::Compute { fraction: 0.25 }, // filter
        ],
        MethodKind::LatticeBoltzmann => vec![
            PhaseSpec::Exchange { xch: 0 },       // send/recv F_i
            PhaseSpec::Compute { fraction: 1.0 }, // relax, shift, macro, filter
        ],
    }
}

impl WorkloadSpec {
    /// 2D workload over an `nx × ny` grid decomposed `(px × py)`,
    /// non-periodic (the paper's Hagen–Poiseuille test rig).
    pub fn new_2d(method: MethodKind, nx: usize, ny: usize, px: usize, py: usize) -> Self {
        let d = Decomp2::new(nx, ny, px, py);
        Self::from_decomp2(method, &d, &(0..d.tiles()).collect::<Vec<_>>())
    }

    /// 2D workload restricted to the given active tiles (Figure-2 style
    /// all-solid subregions omitted).
    pub fn from_decomp2(method: MethodKind, d: &Decomp2, active: &[usize]) -> Self {
        let n_x = plan_for(method)
            .iter()
            .filter(|p| matches!(p, PhaseSpec::Exchange { .. }))
            .count();
        let index_of = |id: usize| active.iter().position(|&a| a == id);
        let mut tiles = Vec::with_capacity(active.len());
        let mut total = 0usize;
        for &id in active {
            let b = d.tile_box(id);
            total += b.nodes();
            let mut neighbors = vec![Vec::new(); n_x];
            for (x, links) in neighbors.iter_mut().enumerate() {
                for f in Face2::ALL {
                    if let Some(nb) = d.neighbor(id, f) {
                        if let Some(peer) = index_of(nb) {
                            let bytes =
                                b.face_nodes(f) as f64 * vars_per_node(method, false, x) * 8.0;
                            links.push((peer, bytes));
                        }
                    }
                }
            }
            tiles.push(WorkloadTile {
                nodes: b.nodes(),
                neighbors,
            });
        }
        Self {
            method,
            three_d: false,
            plan: plan_for(method),
            tiles,
            total_nodes: total,
            label: format!("({}x{})", d.px(), d.py()),
        }
    }

    /// Adds diagonal-neighbour links to a 2D workload: the *full stencil* of
    /// the paper's Figure 4, where "neighbors depend on each other along the
    /// diagonal direction". Each diagonal message carries the small corner
    /// block (`w²` nodes of `vars` values with halo width `w`).
    ///
    /// Our real solvers avoid diagonal messages by staging the exchange per
    /// axis, so this variant exists to reproduce Appendix A's eq. (22) skew
    /// bound, which assumes direct diagonal dependence.
    pub fn with_diagonals_2d(mut self, d: &Decomp2, halo: usize) -> Self {
        assert!(!self.three_d, "with_diagonals_2d needs a 2D workload");
        assert_eq!(
            self.tiles.len(),
            d.tiles(),
            "diagonal links require the full (all-tiles-active) decomposition"
        );
        let n_x = self.exchanges_per_step();
        for id in 0..d.tiles() {
            let (tx, ty) = d.tile_coord(id);
            for (dx, dy) in [(-1isize, -1isize), (1, -1), (-1, 1), (1, 1)] {
                let ntx = tx as isize + dx;
                let nty = ty as isize + dy;
                if ntx < 0 || nty < 0 || ntx >= d.px() as isize || nty >= d.py() as isize {
                    continue;
                }
                let nb = d.tile_id(ntx as usize, nty as usize);
                for x in 0..n_x {
                    let bytes = (halo * halo) as f64 * vars_per_node(self.method, false, x) * 8.0;
                    self.tiles[id].neighbors[x].push((nb, bytes));
                }
            }
        }
        self.label.push_str("+diag");
        self
    }

    /// 3D workload over an `nx × ny × nz` grid decomposed `(px × py × pz)`.
    pub fn new_3d(
        method: MethodKind,
        dims: (usize, usize, usize),
        parts: (usize, usize, usize),
    ) -> Self {
        let d = Decomp3::new(dims.0, dims.1, dims.2, parts.0, parts.1, parts.2);
        let n_x = plan_for(method)
            .iter()
            .filter(|p| matches!(p, PhaseSpec::Exchange { .. }))
            .count();
        let mut tiles = Vec::with_capacity(d.tiles());
        for id in 0..d.tiles() {
            let b = d.tile_box(id);
            let mut neighbors = vec![Vec::new(); n_x];
            for (x, links) in neighbors.iter_mut().enumerate() {
                for f in Face3::ALL {
                    if let Some(nb) = d.neighbor(id, f) {
                        let bytes = b.face_nodes(f) as f64 * vars_per_node(method, true, x) * 8.0;
                        links.push((nb, bytes));
                    }
                }
            }
            tiles.push(WorkloadTile {
                nodes: b.nodes(),
                neighbors,
            });
        }
        Self {
            method,
            three_d: true,
            plan: plan_for(method),
            tiles,
            total_nodes: dims.0 * dims.1 * dims.2,
            label: format!("({}x{}x{})", parts.0, parts.1, parts.2),
        }
    }

    /// Number of parallel processes.
    pub fn processes(&self) -> usize {
        self.tiles.len()
    }

    /// Exchanges per step (2 for FD, 1 for LB).
    pub fn exchanges_per_step(&self) -> usize {
        self.plan
            .iter()
            .filter(|p| matches!(p, PhaseSpec::Exchange { .. }))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_message_counts_match_paper() {
        assert_eq!(
            WorkloadSpec::new_2d(MethodKind::FiniteDifference, 100, 100, 2, 2).exchanges_per_step(),
            2
        );
        assert_eq!(
            WorkloadSpec::new_2d(MethodKind::LatticeBoltzmann, 100, 100, 2, 2).exchanges_per_step(),
            1
        );
    }

    #[test]
    fn compute_fractions_sum_to_one() {
        for m in [MethodKind::FiniteDifference, MethodKind::LatticeBoltzmann] {
            let s: f64 = plan_for(m)
                .iter()
                .map(|p| match p {
                    PhaseSpec::Compute { fraction } => *fraction,
                    _ => 0.0,
                })
                .sum();
            assert!((s - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn bytes_per_step_match_paper_accounting_2d() {
        // 100x100 subregions in a (2x1): each tile sends 1 face of 100 nodes.
        let lb = WorkloadSpec::new_2d(MethodKind::LatticeBoltzmann, 200, 100, 2, 1);
        let tile = &lb.tiles[0];
        assert_eq!(tile.neighbors.len(), 1);
        assert_eq!(tile.neighbors[0].len(), 1);
        let (_, bytes) = tile.neighbors[0][0];
        assert_eq!(bytes, 100.0 * 3.0 * 8.0);

        let fd = WorkloadSpec::new_2d(MethodKind::FiniteDifference, 200, 100, 2, 1);
        let t = &fd.tiles[0];
        assert_eq!(t.neighbors.len(), 2);
        assert_eq!(t.neighbors[0][0].1, 100.0 * 2.0 * 8.0); // V message
        assert_eq!(t.neighbors[1][0].1, 100.0 * 1.0 * 8.0); // rho message
                                                            // total per step equals LB's single message: 3 values/node in 2D
        assert_eq!(
            t.neighbors[0][0].1 + t.neighbors[1][0].1,
            tile.neighbors[0][0].1
        );
    }

    #[test]
    fn bytes_per_step_match_paper_accounting_3d() {
        let lb = WorkloadSpec::new_3d(MethodKind::LatticeBoltzmann, (50, 25, 25), (2, 1, 1));
        let (_, bytes) = lb.tiles[0].neighbors[0][0];
        assert_eq!(bytes, (25.0 * 25.0) * 5.0 * 8.0);
        let fd = WorkloadSpec::new_3d(MethodKind::FiniteDifference, (50, 25, 25), (2, 1, 1));
        let total: f64 = fd.tiles[0].neighbors.iter().map(|l| l[0].1).sum();
        assert_eq!(total, (25.0 * 25.0) * 4.0 * 8.0);
    }

    #[test]
    fn interior_tiles_have_four_neighbors() {
        let w = WorkloadSpec::new_2d(MethodKind::LatticeBoltzmann, 300, 300, 3, 3);
        // centre tile of a (3x3)
        assert_eq!(w.tiles[4].neighbors[0].len(), 4);
        // corner tile
        assert_eq!(w.tiles[0].neighbors[0].len(), 2);
        assert_eq!(w.total_nodes, 300 * 300);
    }

    #[test]
    fn diagonal_links_form_the_full_stencil() {
        let d = Decomp2::new(90, 90, 3, 3);
        let w = WorkloadSpec::from_decomp2(
            MethodKind::LatticeBoltzmann,
            &d,
            &(0..9).collect::<Vec<_>>(),
        )
        .with_diagonals_2d(&d, 3);
        // centre tile: 4 faces + 4 diagonals
        assert_eq!(w.tiles[4].neighbors[0].len(), 8);
        // corner tile: 2 faces + 1 diagonal
        assert_eq!(w.tiles[0].neighbors[0].len(), 3);
        assert!(w.label.ends_with("+diag"));
        // diagonal messages are small: halo^2 * vars * 8 bytes
        let diag_bytes = w.tiles[0].neighbors[0].last().unwrap().1;
        assert_eq!(diag_bytes, 9.0 * 3.0 * 8.0);
    }

    #[test]
    fn inactive_tiles_drop_links() {
        let d = Decomp2::new(100, 100, 2, 2);
        // only tiles 0 and 1 active: the links to 2 and 3 must vanish
        let w = WorkloadSpec::from_decomp2(MethodKind::LatticeBoltzmann, &d, &[0, 1]);
        assert_eq!(w.processes(), 2);
        for t in &w.tiles {
            assert_eq!(t.neighbors[0].len(), 1, "only the horizontal link remains");
        }
        assert_eq!(w.total_nodes, 5000);
    }
}
