//! Discrete-event simulation of a non-dedicated cluster of workstations.
//!
//! This crate is the substitute substrate for the paper's testbed: 25
//! HP9000/700 workstations (16× 715/50, 6× 720, 3× 710) on a shared-bus
//! 10 Mbps Ethernet, time-shared with regular users. It reproduces, as an
//! event simulation with the paper's measured constants:
//!
//! * **hosts** with the paper's relative speeds per (method, dimension),
//!   UNIX-style exponentially-smoothed 5/15-minute load averages, `nice`
//!   scheduling of the parallel subprocess under competing full-time jobs,
//!   and a stochastic user/background-job model ([`host`], [`user`]);
//! * the **shared-bus Ethernet** as a processor-sharing queue with
//!   per-message overhead and saturation failures, plus an idealised switched
//!   network for the paper's "Ethernet switches / FDDI / ATM" outlook
//!   ([`bus`]);
//! * **parallel subprocesses** executing the same compute/exchange step plans
//!   as the real solvers, with byte counts from the paper's communication
//!   accounting ([`workload`], [`process`]);
//! * the **runtime protocols** of sections 4–5: job submission with
//!   idle-user-first host selection, the monitoring program, the Appendix-B
//!   synchronisation algorithm, automatic process migration, and staggered
//!   checkpointing to the shared file server ([`sim`], [`policy`]);
//! * the **message-level reliable transport** of Appendix D taken literally:
//!   DATA/ACK messages with per-link sequence numbers, SRTT/RTTVAR
//!   retransmission timeouts with bounded exponential backoff, duplicate
//!   suppression, give-up reporting, and injectable loss / duplication /
//!   reordering / partition faults ([`transport`], [`fault`]);
//! * **measurements**: per-process `T_calc`/`T_com`, parallel efficiency and
//!   speedup exactly as section 7 defines them ([`stats`], [`measure`]).
//!
//! Everything is deterministic given a seed.

pub mod bus;
pub mod events;
pub mod fault;
pub mod host;
pub mod measure;
pub mod policy;
pub mod process;
pub mod reference;
pub mod sim;
pub mod stats;
pub mod transport;
pub mod user;
pub mod workload;

pub use bus::{NetworkConfig, NetworkModel};
pub use events::{CalendarQueue, EventHandle, EventQueue};
pub use fault::{FaultEvent, FaultPlan, FaultSpec, FAULT_STREAM_SALT, TRANSPORT_STREAM_SALT};
pub use host::{HostKind, HostState};
pub use measure::{measure_efficiency, MeasureConfig, Measurement};
pub use policy::{CommOrdering, DetectorMode, DetectorPolicy, MonitorPolicy, SubmitPolicy};
pub use sim::{ClusterConfig, ClusterSim};
pub use stats::{ClusterStats, DeliveryFailureRecord, RecoveryRecord, TransportStats};
pub use transport::{RttEstimator, TransportConfig};
pub use workload::{WorkloadSpec, WorkloadTile};
