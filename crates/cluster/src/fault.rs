//! Seeded fault injection: host crashes, transient freezes, bus saturation
//! bursts.
//!
//! The paper ran on 25 *non-dedicated* workstations where "the distributed
//! computation must survive the unexpected loss of any workstation" —
//! machines get rebooted, users reclaim consoles, and the saturated 10 Mbps
//! bus produced real TCP delivery failures in the 3D runs (section 7). The
//! runtime survived by restarting from dump files. A [`FaultPlan`] injects
//! those failure modes into the event simulation deterministically, so
//! recovery cost becomes a measurable quantity instead of an anecdote.
//!
//! Determinism contract: fault times are drawn from a *dedicated* RNG stream
//! (seed salted with [`FAULT_STREAM_SALT`], distinct from the bus and
//! user/background streams), and an **empty plan schedules nothing and draws
//! nothing** — every existing seeded result is bit-identical with the fault
//! layer compiled in. The `empty_plan_changes_nothing` tests pin this.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Seed salt separating the fault-injection RNG stream from the bus and
/// user/background streams (see `USER_STREAM_SALT` in `sim`).
pub const FAULT_STREAM_SALT: u64 = 0xFA17_0000_5EED_0002;

/// Seed salt for the reliable-transport control stream: message-fault
/// sampling (loss/duplication/reorder draws) and control-message jitter.
/// Separate from [`FAULT_STREAM_SALT`] so adding message faults to a plan
/// never perturbs where crashes/freezes land, and separate from the bus
/// stream so a plan without message faults draws nothing new.
pub const TRANSPORT_STREAM_SALT: u64 = 0x7A4E_5007_5EED_0003;

/// One injected failure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FaultEvent {
    /// The workstation loses power / is rebooted by its owner: the host goes
    /// down, any parallel subprocess on it dies instantly, and the host
    /// rejoins the pool (empty, freshly booted) after `reboot_after` seconds
    /// — or never, if `None`.
    HostCrash {
        /// Host index.
        host: usize,
        /// Simulated time of the crash, seconds.
        at: f64,
        /// Seconds until the machine is back up and selectable.
        reboot_after: Option<f64>,
    },
    /// A transient stall (swap storm, NFS hang, console hog): the host stops
    /// making progress for `duration` seconds but the subprocess survives.
    /// If the stall outlasts the failure detector's patience this becomes a
    /// false-positive restart — the classic detector trade-off.
    HostFreeze {
        /// Host index.
        host: usize,
        /// Start of the stall.
        at: f64,
        /// Length of the stall, seconds.
        duration: f64,
    },
    /// A burst of competing broadcast traffic saturates the shared bus: every
    /// message sent during the window behaves as if the bus were congested
    /// (TCP retransmission rounds and give-up errors, UDP datagram loss).
    BusBurst {
        /// Start of the burst.
        at: f64,
        /// Length of the burst, seconds.
        duration: f64,
    },
    /// A message-level fault window: while active, DATA messages matching
    /// the link filter are lost, duplicated, or reordered with the given
    /// probabilities (sampled from the transport RNG stream). Planning any
    /// `MsgFault` (or [`NetPartition`](FaultEvent::NetPartition)) activates
    /// the per-message reliable-transport state machine for the whole run.
    MsgFault {
        /// Sending process filter (`None` = any sender).
        from_proc: Option<usize>,
        /// Receiving process filter (`None` = any receiver).
        to_proc: Option<usize>,
        /// Window start, seconds.
        at: f64,
        /// Window length, seconds.
        duration: f64,
        /// Probability a matching DATA transmission is dropped in flight.
        loss: f64,
        /// Probability a matching DATA transmission is duplicated.
        dup: f64,
        /// Probability a matching DATA transmission is held back (reordered
        /// behind later traffic) before entering the wire.
        reorder: f64,
    },
    /// A network partition: hosts are split into `groups`; any transport
    /// message (DATA, ACK, or detector probe) crossing a group boundary is
    /// lost deterministically. Hosts not listed in any group stay in group 0
    /// with the monitor and file server. Heals after `heal_after` seconds,
    /// or never if `None`.
    NetPartition {
        /// Disjoint sets of host indices; traffic flows only within a set.
        groups: Vec<Vec<usize>>,
        /// Partition start, seconds.
        at: f64,
        /// Seconds until connectivity is restored (`None` = permanent).
        heal_after: Option<f64>,
    },
}

impl FaultEvent {
    /// When the fault begins.
    pub fn at(&self) -> f64 {
        match self {
            FaultEvent::HostCrash { at, .. }
            | FaultEvent::HostFreeze { at, .. }
            | FaultEvent::BusBurst { at, .. }
            | FaultEvent::MsgFault { at, .. }
            | FaultEvent::NetPartition { at, .. } => *at,
        }
    }

    /// Whether this event requires the reliable-transport state machine.
    pub fn is_message_level(&self) -> bool {
        matches!(
            self,
            FaultEvent::MsgFault { .. } | FaultEvent::NetPartition { .. }
        )
    }
}

/// A deterministic schedule of injected failures.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// The failures, in no particular order (the event queue sorts by time).
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// The empty plan: injects nothing, perturbs nothing.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Whether the plan injects anything at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Adds a host crash (builder style).
    pub fn crash(mut self, host: usize, at: f64, reboot_after: Option<f64>) -> Self {
        self.events.push(FaultEvent::HostCrash {
            host,
            at,
            reboot_after,
        });
        self
    }

    /// Adds a transient host freeze.
    pub fn freeze(mut self, host: usize, at: f64, duration: f64) -> Self {
        self.events
            .push(FaultEvent::HostFreeze { host, at, duration });
        self
    }

    /// Adds a bus saturation burst.
    pub fn bus_burst(mut self, at: f64, duration: f64) -> Self {
        self.events.push(FaultEvent::BusBurst { at, duration });
        self
    }

    /// Adds a message-fault window on the link `from_proc → to_proc`
    /// (`None` matches any endpoint). Activates the reliable transport.
    #[allow(clippy::too_many_arguments)]
    pub fn msg_fault(
        mut self,
        from_proc: Option<usize>,
        to_proc: Option<usize>,
        at: f64,
        duration: f64,
        loss: f64,
        dup: f64,
        reorder: f64,
    ) -> Self {
        self.events.push(FaultEvent::MsgFault {
            from_proc,
            to_proc,
            at,
            duration,
            loss,
            dup,
            reorder,
        });
        self
    }

    /// Adds a network partition into host `groups`. Activates the reliable
    /// transport.
    pub fn partition(mut self, groups: Vec<Vec<usize>>, at: f64, heal_after: Option<f64>) -> Self {
        self.events.push(FaultEvent::NetPartition {
            groups,
            at,
            heal_after,
        });
        self
    }

    /// Whether any event needs the per-message transport state machine.
    /// When `false`, the simulation keeps the legacy statistical wire path
    /// and draws nothing from the transport stream — the bit-identity
    /// guarantee for plans without message faults rests on this gate.
    pub fn has_message_faults(&self) -> bool {
        self.events.iter().any(FaultEvent::is_message_level)
    }

    /// Draws a random plan from the dedicated fault RNG stream. Rates are
    /// per-host Poisson (crashes, freezes) and cluster-wide Poisson (bursts)
    /// over `[0, horizon]`. The stream is salted with [`FAULT_STREAM_SALT`],
    /// so generating a plan never perturbs the bus or user streams; a spec
    /// with all rates zero returns the empty plan.
    pub fn generate(seed: u64, spec: &FaultSpec) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed ^ FAULT_STREAM_SALT);
        let mut plan = FaultPlan::default();
        let exp = |rng: &mut SmallRng, mean: f64| -> f64 {
            let u: f64 = rng.gen::<f64>().max(1e-12);
            -mean * u.ln()
        };
        for host in 0..spec.hosts {
            if spec.crash_mtbf_s > 0.0 && spec.crash_mtbf_s.is_finite() {
                let mut t = exp(&mut rng, spec.crash_mtbf_s);
                while t < spec.horizon_s {
                    plan.events.push(FaultEvent::HostCrash {
                        host,
                        at: t,
                        reboot_after: Some(exp(&mut rng, spec.mean_reboot_s)),
                    });
                    t += exp(&mut rng, spec.crash_mtbf_s);
                }
            }
            if spec.freeze_mtbf_s > 0.0 && spec.freeze_mtbf_s.is_finite() {
                let mut t = exp(&mut rng, spec.freeze_mtbf_s);
                while t < spec.horizon_s {
                    plan.events.push(FaultEvent::HostFreeze {
                        host,
                        at: t,
                        duration: exp(&mut rng, spec.mean_freeze_s),
                    });
                    t += exp(&mut rng, spec.freeze_mtbf_s);
                }
            }
        }
        if spec.burst_mtbf_s > 0.0 && spec.burst_mtbf_s.is_finite() {
            let mut t = exp(&mut rng, spec.burst_mtbf_s);
            while t < spec.horizon_s {
                plan.events.push(FaultEvent::BusBurst {
                    at: t,
                    duration: exp(&mut rng, spec.mean_burst_s),
                });
                t += exp(&mut rng, spec.burst_mtbf_s);
            }
        }
        plan
    }
}

/// Rates for [`FaultPlan::generate`]. Zero / infinite MTBFs disable a class.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Number of hosts faults can land on.
    pub hosts: usize,
    /// Planning horizon, seconds.
    pub horizon_s: f64,
    /// Mean time between crashes per host (0 or inf disables).
    pub crash_mtbf_s: f64,
    /// Mean reboot duration after a crash.
    pub mean_reboot_s: f64,
    /// Mean time between freezes per host (0 or inf disables).
    pub freeze_mtbf_s: f64,
    /// Mean freeze duration.
    pub mean_freeze_s: f64,
    /// Mean time between bus bursts, cluster-wide (0 or inf disables).
    pub burst_mtbf_s: f64,
    /// Mean burst duration.
    pub mean_burst_s: f64,
}

impl FaultSpec {
    /// A quiet spec (no faults) over `hosts` machines and `horizon_s`
    /// seconds; enable classes by setting their MTBFs.
    pub fn quiet(hosts: usize, horizon_s: f64) -> Self {
        Self {
            hosts,
            horizon_s,
            crash_mtbf_s: 0.0,
            mean_reboot_s: 600.0,
            freeze_mtbf_s: 0.0,
            mean_freeze_s: 30.0,
            burst_mtbf_s: 0.0,
            mean_burst_s: 10.0,
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;

    #[test]
    fn empty_plan_is_empty() {
        assert!(FaultPlan::empty().is_empty());
        assert!(FaultPlan::generate(7, &FaultSpec::quiet(25, 1.0e5)).is_empty());
    }

    #[test]
    fn builders_accumulate() {
        let p = FaultPlan::empty()
            .crash(3, 100.0, Some(600.0))
            .freeze(1, 50.0, 20.0)
            .bus_burst(10.0, 5.0);
        assert_eq!(p.events.len(), 3);
        assert_eq!(p.events[0].at(), 100.0);
        assert!(!p.has_message_faults());
    }

    #[test]
    fn message_level_events_activate_the_transport() {
        let p = FaultPlan::empty().msg_fault(None, Some(2), 5.0, 10.0, 0.5, 0.1, 0.1);
        assert!(p.has_message_faults());
        assert_eq!(p.events[0].at(), 5.0);
        let q = FaultPlan::empty().partition(vec![vec![0, 1], vec![2, 3]], 8.0, Some(30.0));
        assert!(q.has_message_faults());
        assert!(q.events[0].is_message_level());
        let legacy = FaultPlan::empty().crash(0, 1.0, None).bus_burst(2.0, 1.0);
        assert!(!legacy.has_message_faults());
    }

    #[test]
    fn generation_is_deterministic_and_seed_sensitive() {
        let mut spec = FaultSpec::quiet(25, 12.0 * 3600.0);
        spec.crash_mtbf_s = 50.0 * 3600.0;
        spec.freeze_mtbf_s = 20.0 * 3600.0;
        spec.burst_mtbf_s = 3600.0;
        let a = FaultPlan::generate(7, &spec);
        let b = FaultPlan::generate(7, &spec);
        let c = FaultPlan::generate(8, &spec);
        assert_eq!(a, b, "same seed must give the same plan");
        assert_ne!(a, c, "different seeds should differ");
        assert!(!a.is_empty(), "12 h over 25 hosts should draw some faults");
        for e in &a.events {
            assert!(e.at() >= 0.0 && e.at() < spec.horizon_s);
        }
    }
}
