//! Microbenchmark of raw queue ops: the calendar `EventQueue` against the
//! PR 6 `ReferenceEventQueue` binary heap on an identical schedule/pop
//! pattern (~100 pending events, varied gaps). Isolates queue cost from the
//! rest of the simulator:
//!
//! ```text
//! cargo run --release -p subsonic-cluster --example profile_queue
//! ```
use std::time::Instant;
use subsonic_cluster::events::{EventKind, EventQueue};
use subsonic_cluster::reference::ReferenceEventQueue;

fn main() {
    const N: usize = 2_000_000;
    // Pattern: hold ~100 pending events, exponential-ish gaps.
    let mut q = EventQueue::new();
    let mut x: u64 = 0x9e3779b97f4a7c15;
    let mut rng = || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        (x >> 11) as f64 / (1u64 << 53) as f64
    };
    for _ in 0..100 {
        q.schedule(rng() * 0.01, EventKind::MonitorTick);
    }
    let t0 = Instant::now();
    for _ in 0..N {
        let (_, _) = q.pop().unwrap();
        q.schedule(rng() * 0.01, EventKind::MonitorTick);
    }
    let dt = t0.elapsed().as_secs_f64();
    println!(
        "calendar: {:.1} ns/op  ({:.3e} ops/s)",
        dt / N as f64 * 1e9,
        N as f64 / dt
    );

    let mut q = ReferenceEventQueue::new();
    for _ in 0..100 {
        q.schedule(rng() * 0.01, EventKind::MonitorTick);
    }
    let t0 = Instant::now();
    for _ in 0..N {
        let (_, _) = q.pop().unwrap();
        q.schedule(rng() * 0.01, EventKind::MonitorTick);
    }
    let dt = t0.elapsed().as_secs_f64();
    println!(
        "reference: {:.1} ns/op  ({:.3e} ops/s)",
        dt / N as f64 * 1e9,
        N as f64 / dt
    );
}
