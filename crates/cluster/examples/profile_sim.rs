//! Standalone driver for the `cluster_sim_events` bench workload (the
//! section-7 measurement run), for profiling the event loop under
//! `gprofng`/`perf` without the rest of the bench suite:
//!
//! ```text
//! cargo run --release -p subsonic-cluster --example profile_sim -- 200000
//! ```
use std::time::Instant;
use subsonic_cluster::{ClusterConfig, ClusterSim, WorkloadSpec};

fn main() {
    let steps: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(400);
    let workload = WorkloadSpec::new_2d(
        subsonic_solvers::MethodKind::LatticeBoltzmann,
        750,
        600,
        5,
        4,
    );
    let mut sim = ClusterSim::new(ClusterConfig::measurement(workload));
    let t0 = Instant::now();
    sim.run(1.0e9, Some(steps));
    let dt = t0.elapsed().as_secs_f64();
    let rate = sim.events_processed() as f64 / dt;
    println!(
        "events={} dt={dt:.3}s rate={rate:.4e}",
        sim.events_processed()
    );
}
