//! Throughput of the discrete-event cluster simulation itself: how many
//! simulated integration steps per wall-clock second the engine sustains
//! (this is what makes the figure sweeps cheap).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use subsonic_cluster::{ClusterConfig, ClusterSim, WorkloadSpec};
use subsonic_solvers::MethodKind;

fn bench_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("cluster_sim");
    for (px, py) in [(2usize, 2usize), (5, 4)] {
        let steps = 50u64;
        g.throughput(Throughput::Elements(steps * (px * py) as u64));
        g.bench_function(BenchmarkId::new("quiet_steps", px * py), |b| {
            b.iter(|| {
                let w =
                    WorkloadSpec::new_2d(MethodKind::LatticeBoltzmann, 150 * px, 150 * py, px, py);
                let cfg = ClusterConfig::measurement(w);
                let mut sim = ClusterSim::new(cfg);
                let stats = sim.run(f64::INFINITY, Some(steps));
                std::hint::black_box(stats.finished_at)
            });
        });
    }
    // a production hour with users, jobs, monitor and checkpoints
    g.bench_function("production_hour", |b| {
        b.iter(|| {
            let w = WorkloadSpec::new_2d(MethodKind::LatticeBoltzmann, 150 * 5, 150 * 4, 5, 4);
            let cfg = ClusterConfig::production(w, 99);
            let mut sim = ClusterSim::new(cfg);
            let stats = sim.run(3600.0, None);
            std::hint::black_box(stats.net_messages)
        });
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_sim
}
criterion_main!(benches);
