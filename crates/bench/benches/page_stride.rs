//! Appendix E: "the performance of the HP9000/700 ... can degrade
//! dramatically at certain grid sizes ... when the length of the arrays is a
//! near multiple of 4096 bytes ... we lengthen our arrays with 200-300
//! bytes".
//!
//! This bench sweeps a column-walking kernel (the worst case for a strided
//! row layout) over a row length that is exactly a page multiple, with and
//! without the [`StridePolicy::AvoidPageMultiples`] pad. On 1990s
//! direct-mapped caches the pathology was a 2x slowdown; modern associative
//! caches soften it, so the bench reports rather than asserts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use subsonic_grid::array::{Array2, StridePolicy};

fn column_sweep(a: &Array2<f64>) -> f64 {
    // walk columns (stride = row length) — pathological when the stride in
    // bytes is a multiple of the page/cache-way size
    let mut acc = 0.0;
    for x in 0..a.nx() {
        for y in 0..a.ny() {
            acc += a[(x, y)];
        }
    }
    acc
}

fn bench_stride(c: &mut Criterion) {
    let mut g = c.benchmark_group("page_stride");
    // 512 f64 = 4096 bytes per row: exactly one page
    let (nx, ny) = (512usize, 1024usize);
    for (label, policy) in [
        ("page_multiple", StridePolicy::Tight),
        ("padded_appendix_e", StridePolicy::AvoidPageMultiples),
    ] {
        let a = Array2::with_policy(nx, ny, 1.0f64, policy);
        g.bench_function(BenchmarkId::new(label, a.stride()), |b| {
            b.iter(|| std::hint::black_box(column_sweep(&a)));
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_stride
}
criterion_main!(benches);
