//! T1 bench: fluid nodes integrated per second for each (method, dimension).
//!
//! The paper's speed table compares LB/FD × 2D/3D on the HP9000/700s
//! (1.0 ≡ 39132 nodes/s on a 715/50). This bench produces the same four rows
//! for this machine; Criterion reports time per integration step, and the
//! throughput setting converts it to nodes/second.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::sync::Arc;
use subsonic_exec::{LocalRunner2, LocalRunner3, Problem2, Problem3};
use subsonic_grid::{Geometry2, Geometry3};
use subsonic_solvers::{
    FiniteDifference2, FiniteDifference3, FluidParams, LatticeBoltzmann2, LatticeBoltzmann3,
    Solver2, Solver3,
};

fn params() -> FluidParams {
    let mut p = FluidParams::lattice_units(0.05);
    p.body_force[0] = 1e-6;
    p
}

fn bench_2d(c: &mut Criterion) {
    let side = 128usize;
    let mut g = c.benchmark_group("node_rate_2d");
    g.throughput(Throughput::Elements((side * side) as u64));
    for (label, solver) in [
        ("LB", Arc::new(LatticeBoltzmann2) as Arc<dyn Solver2>),
        ("FD", Arc::new(FiniteDifference2) as Arc<dyn Solver2>),
    ] {
        let problem = Problem2::new(Geometry2::channel(side, side, 2), 1, 1, params());
        let mut runner = LocalRunner2::new(solver, problem);
        runner.run(2); // warm up
        g.bench_function(BenchmarkId::new(label, side), |b| {
            b.iter(|| runner.step());
        });
    }
    g.finish();
}

fn bench_3d(c: &mut Criterion) {
    let side = 28usize;
    let mut g = c.benchmark_group("node_rate_3d");
    g.throughput(Throughput::Elements((side * side * side) as u64));
    for (label, solver) in [
        ("LB", Arc::new(LatticeBoltzmann3) as Arc<dyn Solver3>),
        ("FD", Arc::new(FiniteDifference3) as Arc<dyn Solver3>),
    ] {
        let problem = Problem3::new(Geometry3::duct(side, side, side, 2), 1, 1, 1, params());
        let mut runner = LocalRunner3::new(solver, problem);
        runner.run(1);
        g.bench_function(BenchmarkId::new(label, side), |b| {
            b.iter(|| runner.step());
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_2d, bench_3d
}
criterion_main!(benches);
