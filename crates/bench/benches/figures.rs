//! One Criterion target per paper artefact: times the regeneration of each
//! table/figure in quick mode. `cargo bench --bench figures` therefore both
//! exercises and times the full reproduction path; the `reproduce` binary is
//! the full-resolution companion.

use criterion::{criterion_group, criterion_main, Criterion};
use subsonic::experiments::run_experiment;

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures_quick");
    g.sample_size(10);
    // analytic and cluster-simulated artefacts (fast even at full size)
    for id in ["fig12", "fig13", "skew", "order", "solid"] {
        g.bench_function(id, |b| {
            b.iter(|| {
                let r = run_experiment(id, true).unwrap();
                assert!(r.all_pass(), "{id} checks failed");
                std::hint::black_box(r.tables.len())
            });
        });
    }
    g.finish();

    let mut g = c.benchmark_group("figures_sweeps_quick");
    g.sample_size(10);
    for id in [
        "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "net",
    ] {
        g.bench_function(id, |b| {
            b.iter(|| {
                let r = run_experiment(id, true).unwrap();
                std::hint::black_box(r.tables.len())
            });
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_figures
}
criterion_main!(benches);
