//! Halo pack/unpack throughput (the memcpy side of the paper's padding
//! technique, section 4.2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use subsonic_grid::halo::{message_len2, pack2, unpack2};
use subsonic_grid::{Face2, PaddedGrid2};

fn bench_pack(c: &mut Criterion) {
    let mut g = c.benchmark_group("halo_pack_2d");
    for side in [64usize, 128, 256] {
        let grid = PaddedGrid2::from_fn(side, side, 4, |i, j| (i * 31 + j) as f64);
        let w = 4usize;
        let len: usize = Face2::ALL
            .iter()
            .map(|&f| message_len2(side, side, f, w))
            .sum();
        g.throughput(Throughput::Elements(len as u64));
        g.bench_function(BenchmarkId::new("pack4faces", side), |b| {
            let mut buf = Vec::with_capacity(len);
            b.iter(|| {
                buf.clear();
                for f in Face2::ALL {
                    pack2(&grid, f, w, &mut buf);
                }
                std::hint::black_box(buf.len())
            });
        });
        g.bench_function(BenchmarkId::new("roundtrip", side), |b| {
            let mut dst = grid.clone();
            let mut buf = Vec::with_capacity(len);
            b.iter(|| {
                buf.clear();
                for f in Face2::ALL {
                    pack2(&grid, f.opposite(), w, &mut buf);
                }
                let mut at = 0;
                for f in Face2::ALL {
                    at += unpack2(&mut dst, f, w, &buf[at..]);
                }
                std::hint::black_box(at)
            });
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_pack
}
criterion_main!(benches);
