//! Halo pack/unpack throughput (the memcpy side of the paper's padding
//! technique, section 4.2). Width 2 is the acceptance width used by
//! `reproduce bench`; width 4 matches the finite-difference halo.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use subsonic_grid::halo::{message_len2, message_len3, pack2, pack3, unpack2, unpack3};
use subsonic_grid::{Face2, Face3, PaddedGrid2, PaddedGrid3};

fn bench_pack(c: &mut Criterion) {
    for w in [2usize, 4] {
        let mut g = c.benchmark_group(format!("halo_pack_2d_w{w}"));
        for side in [64usize, 128, 256] {
            let grid = PaddedGrid2::from_fn(side, side, 4, |i, j| (i * 31 + j) as f64);
            let len: usize = Face2::ALL
                .iter()
                .map(|&f| message_len2(side, side, f, w))
                .sum();
            g.throughput(Throughput::Elements(len as u64));
            g.bench_function(BenchmarkId::new("pack4faces", side), |b| {
                let mut buf = Vec::with_capacity(len);
                b.iter(|| {
                    buf.clear();
                    for f in Face2::ALL {
                        pack2(&grid, f, w, &mut buf);
                    }
                    std::hint::black_box(buf.len())
                });
            });
            g.bench_function(BenchmarkId::new("roundtrip", side), |b| {
                let mut dst = grid.clone();
                let mut buf = Vec::with_capacity(len);
                b.iter(|| {
                    buf.clear();
                    for f in Face2::ALL {
                        pack2(&grid, f.opposite(), w, &mut buf);
                    }
                    let mut at = 0;
                    for f in Face2::ALL {
                        at += unpack2(&mut dst, f, w, &buf[at..]);
                    }
                    std::hint::black_box(at)
                });
            });
        }
        g.finish();
    }
}

fn bench_pack3(c: &mut Criterion) {
    let w = 2usize;
    let mut g = c.benchmark_group("halo_pack_3d_w2");
    for side in [24usize, 48] {
        let grid = PaddedGrid3::from_fn(side, side, side, 3, |i, j, k| (i * 31 + j * 7 + k) as f64);
        let len: usize = Face3::ALL
            .iter()
            .map(|&f| message_len3(side, side, side, f, w))
            .sum();
        g.throughput(Throughput::Elements(len as u64));
        g.bench_function(BenchmarkId::new("pack6faces", side), |b| {
            let mut buf = Vec::with_capacity(len);
            b.iter(|| {
                buf.clear();
                for f in Face3::ALL {
                    pack3(&grid, f, w, &mut buf);
                }
                std::hint::black_box(buf.len())
            });
        });
        g.bench_function(BenchmarkId::new("roundtrip", side), |b| {
            let mut dst = grid.clone();
            let mut buf = Vec::with_capacity(len);
            b.iter(|| {
                buf.clear();
                for f in Face3::ALL {
                    pack3(&grid, f.opposite(), w, &mut buf);
                }
                let mut at = 0;
                for f in Face3::ALL {
                    at += unpack3(&mut dst, f, w, &buf[at..]);
                }
                std::hint::black_box(at)
            });
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_pack, bench_pack3
}
criterion_main!(benches);
