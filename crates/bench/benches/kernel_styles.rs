//! Indexed vs row-slice kernel formulations.
//!
//! PR 1 rewrote the solver inner loops from per-element `grid[(i, j)]`
//! indexing (bounds-checked offset arithmetic per access) to row-slice
//! iteration (`row_segment` once per row, then plain slice walks). This bench
//! keeps the indexed style alive as a replica and pits the two against each
//! other on the same data so the win stays measurable.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use subsonic_grid::{Cell, PaddedGrid2};
use subsonic_solvers::filter::filter_field2;
use subsonic_solvers::qlattice::{Q2, W2};

/// The along-x biharmonic filter pass, written in the pre-PR-1 indexed style.
fn filter_x_indexed(
    out: &mut PaddedGrid2<f64>,
    u: &PaddedGrid2<f64>,
    mask: &PaddedGrid2<Cell>,
    eps: f64,
) {
    let nx = u.nx() as isize;
    let ny = u.ny() as isize;
    for j in 0..ny {
        for i in 0..nx {
            let v = u[(i, j)];
            let ok = (-2..=2).all(|d| mask[(i + d, j)].is_fluid());
            out[(i, j)] = if ok {
                v - eps
                    * (u[(i - 2, j)] - 4.0 * u[(i - 1, j)] + 6.0 * v - 4.0 * u[(i + 1, j)]
                        + u[(i + 2, j)])
            } else {
                v
            };
        }
    }
}

fn bench_filter(c: &mut Criterion) {
    let mut g = c.benchmark_group("filter_styles");
    for side in [64usize, 256] {
        let mask = PaddedGrid2::new(side, side, 4, Cell::Fluid);
        let u0 = PaddedGrid2::from_fn(side, side, 4, |i, j| ((i * 7 + j * 3) % 13) as f64 * 0.1);
        let eps = 0.02;
        g.throughput(Throughput::Elements((side * side) as u64));
        g.bench_function(BenchmarkId::new("indexed_x_pass", side), |b| {
            let u = u0.clone();
            let mut out = u0.clone();
            b.iter(|| {
                filter_x_indexed(&mut out, &u, &mask, eps);
                std::hint::black_box(out[(0, 0)])
            });
        });
        g.bench_function(BenchmarkId::new("rowslice_two_pass", side), |b| {
            let mut u = u0.clone();
            let mut sx = u0.clone();
            b.iter(|| {
                filter_field2(&mut u, &mut sx, &mask, eps, 0);
                std::hint::black_box(u[(0, 0)])
            });
        });
    }
    g.finish();
}

/// D2Q9 zeroth/first-moment accumulation, indexed style.
fn moments_indexed(f: &[PaddedGrid2<f64>], rho: &mut PaddedGrid2<f64>) {
    let nx = rho.nx() as isize;
    let ny = rho.ny() as isize;
    for j in 0..ny {
        for i in 0..nx {
            let mut r = 0.0;
            for fq in f {
                r += fq[(i, j)];
            }
            rho[(i, j)] = r;
        }
    }
}

/// The same accumulation over row slices, as the rewritten solvers do it.
fn moments_rowslice(f: &[PaddedGrid2<f64>], rho: &mut PaddedGrid2<f64>) {
    let nx = rho.nx();
    let ny = rho.ny() as isize;
    for j in 0..ny {
        let rows: [&[f64]; Q2] = std::array::from_fn(|q| f[q].interior_row(j));
        let out = rho.interior_row_mut(j);
        for (x, o) in out.iter_mut().enumerate().take(nx) {
            let mut r = 0.0;
            for row in &rows {
                r += row[x];
            }
            *o = r;
        }
    }
}

fn bench_moments(c: &mut Criterion) {
    let mut g = c.benchmark_group("moment_styles");
    for side in [64usize, 256] {
        let f: Vec<PaddedGrid2<f64>> = (0..Q2)
            .map(|q| {
                PaddedGrid2::from_fn(side, side, 3, |i, j| W2[q] * (1.0 + (i + j) as f64 * 1e-3))
            })
            .collect();
        g.throughput(Throughput::Elements((side * side) as u64));
        g.bench_function(BenchmarkId::new("indexed", side), |b| {
            let mut rho = PaddedGrid2::new(side, side, 3, 0.0f64);
            b.iter(|| {
                moments_indexed(&f, &mut rho);
                std::hint::black_box(rho[(0, 0)])
            });
        });
        g.bench_function(BenchmarkId::new("rowslice", side), |b| {
            let mut rho = PaddedGrid2::new(side, side, 3, 0.0f64);
            b.iter(|| {
                moments_rowslice(&f, &mut rho);
                std::hint::black_box(rho[(0, 0)])
            });
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_filter, bench_moments
}
criterion_main!(benches);
