//! Machine-readable perf baseline — the `reproduce bench` subcommand.
//!
//! Times the hot paths the paper's efficiency analysis cares about (T_1 node
//! rates for LB/FD × 2D/3D, halo pack/unpack throughput, threaded-runner
//! steps per second) and emits a flat JSON report. Successive PRs check in
//! `BENCH_<PR>.json` files built from these reports, so performance claims
//! in the history are measured on a recorded machine state rather than
//! asserted.
//!
//! Methodology: each measurement calibrates an iteration count to a minimum
//! batch duration, then takes the fastest of three batches (the noise floor
//! of a loaded machine is one-sided — interference only slows a batch down).

use std::sync::Arc;
use std::time::Instant;
use subsonic_cluster::host::HostKind;
use subsonic_cluster::{ClusterConfig, ClusterSim, WorkloadSpec};
use subsonic_exec::{
    LocalRunner2, LocalRunner3, Problem2, Problem3, StepTiming, ThreadedRunner2, ThreadedRunner3,
};
use subsonic_grid::halo::{message_len2, message_len3, pack2, pack3, unpack2, unpack3};
use subsonic_grid::{Face2, Face3, Geometry2, Geometry3, PaddedGrid2, PaddedGrid3};
use subsonic_obs::{roofline, MetricsRegistry};
use subsonic_solvers::{
    kernels, FiniteDifference2, FiniteDifference3, FluidParams, LatticeBoltzmann2,
    LatticeBoltzmann3, ScalarReference2, ScalarReference3, Solver2, Solver3,
};

/// One measured rate.
#[derive(Debug, Clone)]
pub struct PerfEntry {
    /// Stable key, e.g. `node_rate_2d_lb`.
    pub name: String,
    /// The measured rate (higher is better).
    pub value: f64,
    /// Unit of `value`, e.g. `nodes/s`.
    pub unit: String,
}

/// Seconds per call of `f`: calibrate batch size to `min_time`, then best of
/// three batches.
fn secs_per_iter(mut f: impl FnMut(), min_time: f64) -> f64 {
    f(); // warm-up (first call touches cold caches / spawns threads)
    let mut iters: u64 = 1;
    let dt = loop {
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        let dt = t0.elapsed().as_secs_f64();
        if dt >= min_time {
            break dt;
        }
        let grow = (min_time / dt.max(1e-9) * 1.2).ceil() as u64;
        iters = (iters * 2).max(iters.saturating_mul(grow)).max(iters + 1);
    };
    let mut best = dt;
    for _ in 0..2 {
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best / iters as f64
}

fn params() -> FluidParams {
    let mut p = FluidParams::lattice_units(0.05);
    p.body_force[0] = 1e-6;
    p
}

fn node_rates_2d(
    out: &mut Vec<PerfEntry>,
    metrics: Option<&MetricsRegistry>,
    min_time: f64,
    side: usize,
) {
    // `simd` is the default vectorized/SoA-kernel path; `scalar` wraps the
    // same solver in [`ScalarReference2`] so `compute` routes to the scalar
    // reference kernels. Their ratio is the measured SIMD speedup (the two
    // paths are bitwise identical, so it is a pure code-generation delta).
    for (label, simd, scalar) in [
        (
            "lb",
            Arc::new(LatticeBoltzmann2) as Arc<dyn Solver2>,
            Arc::new(ScalarReference2(LatticeBoltzmann2)) as Arc<dyn Solver2>,
        ),
        (
            "fd",
            Arc::new(FiniteDifference2) as Arc<dyn Solver2>,
            Arc::new(ScalarReference2(FiniteDifference2)) as Arc<dyn Solver2>,
        ),
    ] {
        let nodes = (side * side) as f64;
        for (suffix, solver) in [("_simd", simd), ("_scalar", scalar)] {
            let problem = Problem2::new(Geometry2::channel(side, side, 2), 1, 1, params());
            let mut runner = LocalRunner2::new(solver, problem);
            runner.run(2);
            let spi = secs_per_iter(|| runner.step(), min_time);
            let rate = nodes / spi;
            if suffix == "_simd" {
                // continuity with the pre-SIMD trajectory: the unsuffixed
                // name keeps tracking the default (now vectorized) path
                out.push(PerfEntry {
                    name: format!("node_rate_2d_{label}"),
                    value: rate,
                    unit: "nodes/s".into(),
                });
                if let Some(reg) = metrics {
                    let prof = match label {
                        "lb" => roofline::profiles::D2Q9_BGK,
                        _ => roofline::profiles::FD2_STEP,
                    };
                    prof.at_rate(rate).publish(reg);
                }
            }
            out.push(PerfEntry {
                name: format!("node_rate_2d_{label}{suffix}"),
                value: rate,
                unit: "nodes/s".into(),
            });
        }
    }
}

fn node_rates_3d(
    out: &mut Vec<PerfEntry>,
    metrics: Option<&MetricsRegistry>,
    min_time: f64,
    side: usize,
) {
    for (label, simd, scalar) in [
        (
            "lb",
            Arc::new(LatticeBoltzmann3) as Arc<dyn Solver3>,
            Arc::new(ScalarReference3(LatticeBoltzmann3)) as Arc<dyn Solver3>,
        ),
        (
            "fd",
            Arc::new(FiniteDifference3) as Arc<dyn Solver3>,
            Arc::new(ScalarReference3(FiniteDifference3)) as Arc<dyn Solver3>,
        ),
    ] {
        let nodes = (side * side * side) as f64;
        for (suffix, solver) in [("_simd", simd), ("_scalar", scalar)] {
            let problem = Problem3::new(Geometry3::duct(side, side, side, 2), 1, 1, 1, params());
            let mut runner = LocalRunner3::new(solver, problem);
            runner.run(1);
            let spi = secs_per_iter(|| runner.step(), min_time);
            let rate = nodes / spi;
            if suffix == "_simd" {
                out.push(PerfEntry {
                    name: format!("node_rate_3d_{label}"),
                    value: rate,
                    unit: "nodes/s".into(),
                });
                if let Some(reg) = metrics {
                    let prof = match label {
                        "lb" => roofline::profiles::D3Q15_BGK,
                        _ => roofline::profiles::FD3_STEP,
                    };
                    prof.at_rate(rate).publish(reg);
                }
            }
            out.push(PerfEntry {
                name: format!("node_rate_3d_{label}{suffix}"),
                value: rate,
                unit: "nodes/s".into(),
            });
        }
    }
}

fn halo_2d(out: &mut Vec<PerfEntry>, min_time: f64, side: usize) {
    let grid = PaddedGrid2::from_fn(side, side, 4, |i, j| (i * 31 + j) as f64);
    for w in [2usize, 4] {
        let len: usize = Face2::ALL
            .iter()
            .map(|&f| message_len2(side, side, f, w))
            .sum();
        let mut buf: Vec<f64> = Vec::with_capacity(len);
        let spi = secs_per_iter(
            || {
                buf.clear();
                for f in Face2::ALL {
                    pack2(&grid, f, w, &mut buf);
                }
                std::hint::black_box(buf.len());
            },
            min_time,
        );
        out.push(PerfEntry {
            name: format!("halo2_pack_w{w}"),
            value: len as f64 / spi,
            unit: "doubles/s".into(),
        });
        if w == 2 {
            let mut dst = grid.clone();
            let mut buf: Vec<f64> = Vec::with_capacity(len);
            let spi = secs_per_iter(
                || {
                    buf.clear();
                    for f in Face2::ALL {
                        pack2(&grid, f.opposite(), w, &mut buf);
                    }
                    let mut at = 0;
                    for f in Face2::ALL {
                        at += unpack2(&mut dst, f, w, &buf[at..]);
                    }
                    std::hint::black_box(at);
                },
                min_time,
            );
            out.push(PerfEntry {
                name: format!("halo2_roundtrip_w{w}"),
                value: len as f64 / spi,
                unit: "doubles/s".into(),
            });
        }
    }
}

fn halo_3d(out: &mut Vec<PerfEntry>, min_time: f64, side: usize) {
    let grid = PaddedGrid3::from_fn(side, side, side, 4, |i, j, k| (i * 31 + j * 7 + k) as f64);
    let w = 2usize;
    let len: usize = Face3::ALL
        .iter()
        .map(|&f| message_len3(side, side, side, f, w))
        .sum();
    let mut buf: Vec<f64> = Vec::with_capacity(len);
    let spi = secs_per_iter(
        || {
            buf.clear();
            for f in Face3::ALL {
                pack3(&grid, f, w, &mut buf);
            }
            std::hint::black_box(buf.len());
        },
        min_time,
    );
    out.push(PerfEntry {
        name: format!("halo3_pack_w{w}"),
        value: len as f64 / spi,
        unit: "doubles/s".into(),
    });
    let mut dst = grid.clone();
    let mut buf: Vec<f64> = Vec::with_capacity(len);
    let spi = secs_per_iter(
        || {
            buf.clear();
            for f in Face3::ALL {
                pack3(&grid, f.opposite(), w, &mut buf);
            }
            let mut at = 0;
            for f in Face3::ALL {
                at += unpack3(&mut dst, f, w, &buf[at..]);
            }
            std::hint::black_box(at);
        },
        min_time,
    );
    out.push(PerfEntry {
        name: format!("halo3_roundtrip_w{w}"),
        value: len as f64 / spi,
        unit: "doubles/s".into(),
    });
}

fn threaded_runners(
    out: &mut Vec<PerfEntry>,
    metrics: Option<&MetricsRegistry>,
    side2: usize,
    steps2: u64,
    side3: usize,
    steps3: u64,
) {
    // The unsuffixed name always measures the runner's *default* schedule
    // (2D: overlap on, 3D: overlap off — see `with_overlap` docs); the
    // suffixed variant isolates what flipping the overlap schedule buys.
    for (suffix, overlap) in [("", true), ("_nooverlap", false)] {
        let solver: Arc<dyn Solver2> = Arc::new(LatticeBoltzmann2);
        let problem = Problem2::new(Geometry2::channel(side2, side2, 2), 2, 2, params());
        let runner = ThreadedRunner2::new(solver, problem).with_overlap(overlap);
        // warm-up: first run pays thread spawn + page faults
        runner.run(2).expect("threaded2 warm-up failed");
        let t0 = Instant::now();
        let outcome = runner.run(steps2).expect("threaded2 bench run failed");
        out.push(PerfEntry {
            name: format!("threaded2_lb_2x2{suffix}"),
            value: steps2 as f64 / t0.elapsed().as_secs_f64(),
            unit: "steps/s".into(),
        });
        if let (Some(reg), true) = (metrics, overlap) {
            let mut total = StepTiming::default();
            for (_, t) in &outcome.timing {
                total.merge(t);
            }
            total.publish(reg, "exec.threaded2");
        }
    }

    for (suffix, overlap) in [("", false), ("_overlap", true)] {
        let solver: Arc<dyn Solver3> = Arc::new(LatticeBoltzmann3);
        let problem = Problem3::new(Geometry3::duct(side3, side3, side3, 2), 2, 2, 1, params());
        let runner = ThreadedRunner3::new(solver, problem).with_overlap(overlap);
        runner.run(1).expect("threaded3 warm-up failed");
        let t0 = Instant::now();
        let outcome = runner.run(steps3).expect("threaded3 bench run failed");
        out.push(PerfEntry {
            name: format!("threaded3_lb_2x2x1{suffix}"),
            value: steps3 as f64 / t0.elapsed().as_secs_f64(),
            unit: "steps/s".into(),
        });
        if let (Some(reg), false) = (metrics, overlap) {
            let mut total = StepTiming::default();
            for (_, t) in &outcome.timing {
                total.merge(t);
            }
            total.publish(reg, "exec.threaded3");
        }
    }
}

fn cluster_sim(out: &mut Vec<PerfEntry>, steps: u64) {
    // Discrete-event engine throughput on the section-7 measurement run:
    // a 20-process LB job on the heterogeneous paper cluster, rendezvous
    // step-coupling and the shared-bus collision model both active.
    let workload = WorkloadSpec::new_2d(
        subsonic_solvers::MethodKind::LatticeBoltzmann,
        750,
        600,
        5,
        4,
    );
    let mut sim = ClusterSim::new(ClusterConfig::measurement(workload));
    let t0 = Instant::now();
    sim.run(1.0e9, Some(steps));
    let dt = t0.elapsed().as_secs_f64();
    out.push(PerfEntry {
        name: "cluster_sim_events".into(),
        value: sim.events_processed() as f64 / dt,
        unit: "events/s".into(),
    });
}

fn cluster_scale(out: &mut Vec<PerfEntry>, quick: bool) {
    // Engine throughput at cluster sizes far past the paper's pool (the
    // `scale` experiment's mid-size point): one process per host on a
    // homogeneous pool, weak scaling, both topologies. Guards the calendar
    // queue's synchronised-burst path, which the 20-process probe above
    // never exercises.
    let hosts = if quick { 64 } else { 1024 };
    let px = (hosts as f64).sqrt().round() as usize;
    let py = hosts / px;
    for (name, switched) in [
        ("scale_events_per_s_shared", false),
        ("scale_events_per_s_switched", true),
    ] {
        let w = WorkloadSpec::new_2d(
            subsonic_solvers::MethodKind::LatticeBoltzmann,
            30 * px,
            30 * py,
            px,
            py,
        );
        let mut cfg = ClusterConfig::measurement(w);
        cfg.hosts = vec![HostKind::Hp715_50; hosts];
        if switched {
            cfg.net = cfg.net.switched();
        }
        let mut sim = ClusterSim::new(cfg);
        let t0 = Instant::now();
        sim.run(f64::INFINITY, Some(5));
        let dt = t0.elapsed().as_secs_f64();
        out.push(PerfEntry {
            name: name.into(),
            value: sim.events_processed() as f64 / dt,
            unit: "events/s".into(),
        });
    }
}

fn fault_recovery(out: &mut Vec<PerfEntry>, quick: bool) {
    // The recovery-cost vs checkpoint-interval curve of the `faults`
    // experiment (simulated seconds, deterministic — not wall-clock), plus
    // the model-agreement figure the acceptance bar tracks.
    let sweep = subsonic::experiments::recovery_sweep(quick);
    for (p, label) in sweep.points.iter().zip(["tight", "mid", "loose"]) {
        out.push(PerfEntry {
            name: format!("recovery_interval_{label}"),
            value: p.interval_s,
            unit: "s".into(),
        });
        out.push(PerfEntry {
            name: format!("recovery_cost_{label}"),
            value: p.sim_extra_s,
            unit: "s".into(),
        });
    }
    out.push(PerfEntry {
        name: "recovery_model_err_max".into(),
        value: sweep.max_rel_err(),
        unit: "fraction".into(),
    });
    out.push(PerfEntry {
        name: "recovery_opt_interval".into(),
        value: sweep.model.optimal_interval_s(),
        unit: "s".into(),
    });
}

fn failure_detection(out: &mut Vec<PerfEntry>, quick: bool) {
    // Detection latencies from the `partition` experiment's real-crash leg
    // (simulated seconds, deterministic). Lower is better: a regression here
    // means the probe schedule or the phi crossing got slower.
    let study = subsonic::experiments::partition_study(quick);
    out.push(PerfEntry {
        name: "detect_latency_fixed".into(),
        value: study.fixed_detect_s,
        unit: "s".into(),
    });
    out.push(PerfEntry {
        name: "detect_latency_accrual".into(),
        value: study.accrual_detect_s,
        unit: "s".into(),
    });
}

fn sched_replay(out: &mut Vec<PerfEntry>, quick: bool) {
    // The job-stream scheduler's replay engine: wall throughput of a full
    // multi-tenant heavy-traffic replay (jobs per wall-second, EASY
    // backfill — the discipline with the most per-dispatch work), plus the
    // deterministic simulated makespans of FIFO and backfill on the same
    // trace. The makespans are model outputs, not machine timings: any drift
    // is a scheduler behaviour change.
    use subsonic_sched::{JobTrace, PolicyKind, SchedConfig, TenantSpec, TraceConfig};
    let jobs = if quick { 2_000 } else { 20_000 };
    let trace = JobTrace::generate(&TraceConfig {
        tenants: vec![
            TenantSpec {
                weight: 4.0,
                ..TenantSpec::light(0.05)
            },
            TenantSpec::light(0.03),
            TenantSpec::batch(0.014),
        ],
        jobs,
        seed: 0x5EED_0009,
    });
    let t0 = Instant::now();
    let backfill = subsonic_sched::run(
        &trace,
        &SchedConfig::paper_pool(PolicyKind::EasyBackfill, 1),
    );
    let dt = t0.elapsed().as_secs_f64();
    let fifo = subsonic_sched::run(&trace, &SchedConfig::paper_pool(PolicyKind::Fifo, 1));
    out.push(PerfEntry {
        name: "sched_jobs_per_s".into(),
        value: jobs as f64 / dt,
        unit: "jobs/s".into(),
    });
    out.push(PerfEntry {
        name: "sched_makespan_fifo".into(),
        value: fifo.makespan_s,
        unit: "s".into(),
    });
    out.push(PerfEntry {
        name: "sched_makespan_backfill".into(),
        value: backfill.makespan_s,
        unit: "s".into(),
    });
}

fn chaos_runtime(out: &mut Vec<PerfEntry>, quick: bool) {
    // Real-runtime chaos costs over loopback TCP with thread-hosted workers:
    // the detect→resume latency of one SIGKILL recovery and the wall cost of
    // one live migration at a commit boundary. Wall-clock seconds, lower is
    // better: a regression means checkpoint shipping, the mesh rebuild or
    // the pause-fence handshake got slower.
    use subsonic_exec::Problem2;
    use subsonic_grid::Geometry2;
    use subsonic_net::{run_problem, NetConfig, NetKill, NetMigration, ThreadHost, TransportKind};
    use subsonic_obs::FlightRecorder;
    use subsonic_solvers::FluidParams;

    let (nx, ny, steps, interval) = if quick {
        (24, 16, 12, 4)
    } else {
        (48, 32, 16, 4)
    };
    let geom = Geometry2::channel(nx, ny, 2);
    let mut params = FluidParams::lattice_units(0.05);
    params.body_force[0] = 1.5e-5;
    let problem = Problem2::new(geom, 2, 2, params)
        .with_init(|x, y| (1.0 + 1e-3 * (x as f64) + 2e-3 * (y as f64), 0.0, 0.0));
    let dir = |tag: &str| {
        std::env::temp_dir().join(format!("subsonic-bench-chaos-{}-{tag}", std::process::id()))
    };
    let recorder = FlightRecorder::disabled();

    let mut cfg = NetConfig::new(TransportKind::Tcp, steps, interval, dir("kill"));
    cfg.kills = vec![NetKill {
        worker: 1,
        at_step: interval + interval / 2,
        attempt: 0,
    }];
    let mut host = ThreadHost::new();
    if let Ok(outcome) = run_problem(&problem, &cfg, &mut host, &recorder) {
        let n = outcome.recovery_latency.len().max(1) as f64;
        out.push(PerfEntry {
            name: "chaos_recovery_latency_mean".into(),
            value: outcome
                .recovery_latency
                .iter()
                .map(|d| d.as_secs_f64())
                .sum::<f64>()
                / n,
            unit: "s".into(),
        });
    }

    let mut cfg = NetConfig::new(TransportKind::Tcp, steps, interval, dir("mig"));
    cfg.migrations = vec![NetMigration {
        worker: 1,
        after_step: interval,
    }];
    let mut host = ThreadHost::new();
    if let Ok(outcome) = run_problem(&problem, &cfg, &mut host, &recorder) {
        let n = outcome.migration_cost.len().max(1) as f64;
        out.push(PerfEntry {
            name: "chaos_migration_cost".into(),
            value: outcome
                .migration_cost
                .iter()
                .map(|d| d.as_secs_f64())
                .sum::<f64>()
                / n,
            unit: "s".into(),
        });
    }
}

/// Runs the full suite. `quick` shrinks problem sizes and batch times for
/// smoke-testing the harness itself; baseline numbers use `quick = false`.
pub fn run_suite(quick: bool) -> Vec<PerfEntry> {
    run_suite_obs(quick, None)
}

/// [`run_suite`] with a metrics registry attached: every measured rate is
/// additionally published as a `bench.*` gauge, and the threaded runners
/// publish their per-step timing breakdown (`exec.threaded{2,3}.*`). This is
/// what `reproduce bench` uses to emit `METRICS.json`.
pub fn run_suite_obs(quick: bool, metrics: Option<&MetricsRegistry>) -> Vec<PerfEntry> {
    let mut out = Vec::new();
    let min_time = if quick { 0.02 } else { 0.4 };
    let (side2, side3) = if quick { (48, 12) } else { (128, 28) };
    let halo_side2 = if quick { 64 } else { 256 };
    let halo_side3 = if quick { 12 } else { 32 };
    let (t2_steps, t3_steps) = if quick { (10, 4) } else { (200, 40) };
    node_rates_2d(&mut out, metrics, min_time, side2);
    node_rates_3d(&mut out, metrics, min_time, side3);
    halo_2d(&mut out, min_time, halo_side2);
    halo_3d(&mut out, min_time, halo_side3);
    threaded_runners(
        &mut out,
        metrics,
        if quick { 48 } else { 128 },
        t2_steps,
        if quick { 12 } else { 24 },
        t3_steps,
    );
    cluster_sim(&mut out, if quick { 20 } else { 400 });
    cluster_scale(&mut out, quick);
    fault_recovery(&mut out, quick);
    failure_detection(&mut out, quick);
    sched_replay(&mut out, quick);
    chaos_runtime(&mut out, quick);
    if let Some(reg) = metrics {
        for e in &out {
            reg.gauge_set(&format!("bench.{}", e.name), e.value, static_unit(&e.unit));
        }
    }
    out
}

/// Maps the suite's unit strings onto the registry's `'static` units.
fn static_unit(unit: &str) -> &'static str {
    match unit {
        "nodes/s" => "nodes/s",
        "doubles/s" => "doubles/s",
        "steps/s" => "steps/s",
        "events/s" => "events/s",
        "jobs/s" => "jobs/s",
        "s" => "s",
        "fraction" => "fraction",
        _ => "",
    }
}

/// Formats entries as the flat JSON document the `BENCH_*.json` trajectory
/// uses (no external JSON crate in this tree — the format is a flat map of
/// `name -> {value, unit}`, trivially hand-emitted).
pub fn to_json(label: &str, entries: &[PerfEntry]) -> String {
    let mut s = String::from("{\n");
    s.push_str("  \"schema\": \"subsonic-bench-v1\",\n");
    s.push_str(&format!("  \"label\": {:?},\n", label));
    // Recording-machine state the rates depend on: OS thread budget, the
    // intra-tile band worker count, and the f64 SIMD lane width the build
    // targets. A rate delta between reports with different meta values is
    // a machine/config change, not a code regression.
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    s.push_str(&format!(
        "  \"meta\": {{\"threads\": {}, \"intra_threads\": {}, \"simd_lanes\": {}}},\n",
        threads,
        kernels::intra_threads(),
        kernels::simd_lanes()
    ));
    s.push_str("  \"entries\": {\n");
    for (i, e) in entries.iter().enumerate() {
        let comma = if i + 1 == entries.len() { "" } else { "," };
        s.push_str(&format!(
            "    {:?}: {{\"value\": {:.6e}, \"unit\": {:?}}}{comma}\n",
            e.name, e.value, e.unit
        ));
    }
    s.push_str("  }\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_suite_produces_all_entries() {
        let entries = run_suite(true);
        let names: Vec<&str> = entries.iter().map(|e| e.name.as_str()).collect();
        for expected in [
            "node_rate_2d_lb",
            "node_rate_2d_lb_simd",
            "node_rate_2d_lb_scalar",
            "node_rate_2d_fd",
            "node_rate_2d_fd_simd",
            "node_rate_2d_fd_scalar",
            "node_rate_3d_lb",
            "node_rate_3d_lb_simd",
            "node_rate_3d_lb_scalar",
            "node_rate_3d_fd",
            "node_rate_3d_fd_simd",
            "node_rate_3d_fd_scalar",
            "halo2_pack_w2",
            "halo2_roundtrip_w2",
            "halo2_pack_w4",
            "halo3_pack_w2",
            "halo3_roundtrip_w2",
            "threaded2_lb_2x2",
            "threaded2_lb_2x2_nooverlap",
            "threaded3_lb_2x2x1",
            "threaded3_lb_2x2x1_overlap",
            "cluster_sim_events",
            "scale_events_per_s_shared",
            "scale_events_per_s_switched",
            "recovery_interval_tight",
            "recovery_cost_tight",
            "recovery_cost_mid",
            "recovery_cost_loose",
            "recovery_model_err_max",
            "recovery_opt_interval",
            "detect_latency_fixed",
            "detect_latency_accrual",
            "sched_jobs_per_s",
            "sched_makespan_fifo",
            "sched_makespan_backfill",
            "chaos_recovery_latency_mean",
            "chaos_migration_cost",
        ] {
            assert!(names.contains(&expected), "missing entry {expected}");
        }
        for e in &entries {
            assert!(
                e.value.is_finite() && e.value > 0.0,
                "{}: {}",
                e.name,
                e.value
            );
        }
        let json = to_json("test", &entries);
        assert!(json.contains("\"node_rate_2d_lb\""));
        assert!(json.contains("\"node_rate_2d_lb_simd\""));
        assert!(json.contains("subsonic-bench-v1"));
        assert!(json.contains("\"simd_lanes\""), "bench meta missing");
        assert!(json.contains("\"intra_threads\""));
    }
}
