//! `reproduce` — regenerates every table and figure of the paper.
//!
//! Usage:
//!
//! ```text
//! reproduce [--quick] [--out DIR] [--trace FILE] [id ...]
//! reproduce bench [--quick] [--label LABEL] [--out FILE]
//! reproduce net-worker
//! ```
//!
//! Without ids, runs every experiment in `subsonic::experiments::ALL_IDS`.
//! Writes one CSV per result table into `DIR` (default `results/`) and a
//! `summary.md` with all tables and PASS/FAIL shape checks, then prints the
//! summary to stdout. With `--trace FILE`, instrumented experiments (the
//! `faults` recovery run) record a flight-recorder timeline that is exported
//! as Chrome trace-event JSON — load it at `ui.perfetto.dev`.
//!
//! Every run ends with a one-line PASS/FAIL verdict per experiment, and the
//! process exits nonzero when any shape check failed — CI can gate on the
//! exit code alone.
//!
//! The `net-worker` subcommand is not for humans: it turns this binary into
//! one worker process of the distributed runtime (the `dist` experiment
//! re-executes itself with it, directed by `SUBSONIC_NET_DIR` /
//! `SUBSONIC_NET_WORKER` in the environment).
//!
//! The `bench` subcommand instead runs the perf-baseline suite
//! (`subsonic_bench::perf`) and writes a flat JSON report (default
//! `results/bench.json`) plus a `METRICS.json` registry dump next to it;
//! the checked-in `BENCH_*.json` files are built from these reports.

use std::io::Write;
use std::path::PathBuf;
use subsonic::experiments::{run_experiment_obs, ObsSession, ALL_IDS};

fn bench_usage_error(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("usage: reproduce bench [--quick] [--label LABEL] [--out FILE]");
    std::process::exit(2);
}

fn run_bench_subcommand(mut args: impl Iterator<Item = String>) {
    let mut quick = false;
    let mut label = String::from("local");
    let mut out = PathBuf::from("results/bench.json");
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--label" => {
                label = args
                    .next()
                    .unwrap_or_else(|| bench_usage_error("--label needs a value"))
            }
            "--out" => {
                out = args
                    .next()
                    .map(PathBuf::from)
                    .unwrap_or_else(|| bench_usage_error("--out needs a file"))
            }
            "--help" | "-h" => {
                eprintln!("usage: reproduce bench [--quick] [--label LABEL] [--out FILE]");
                return;
            }
            other => bench_usage_error(&format!("unknown bench option '{other}'")),
        }
    }
    let metrics = subsonic_obs::MetricsRegistry::new();
    let entries = subsonic_bench::perf::run_suite_obs(quick, Some(&metrics));
    for e in &entries {
        println!("{:<24} {:>14.3e} {}", e.name, e.value, e.unit);
    }
    let json = subsonic_bench::perf::to_json(&label, &entries);
    if let Some(dir) = out.parent() {
        std::fs::create_dir_all(dir).expect("cannot create output dir");
    }
    std::fs::write(&out, json).expect("cannot write bench report");
    eprintln!("wrote {}", out.display());
    let metrics_path = out.with_file_name("METRICS.json");
    std::fs::write(&metrics_path, metrics.to_json()).expect("cannot write metrics report");
    eprintln!("wrote {}", metrics_path.display());
}

fn main() {
    let mut quick = false;
    let mut out_dir = PathBuf::from("results");
    let mut trace_out: Option<PathBuf> = None;
    let mut ids: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "bench" if ids.is_empty() && !quick => {
                run_bench_subcommand(args);
                return;
            }
            "net-worker" if ids.is_empty() && !quick => {
                if let Err(e) = subsonic_net::process_worker_main() {
                    eprintln!("net-worker: {e}");
                    std::process::exit(1);
                }
                return;
            }
            "--quick" => quick = true,
            "--out" => {
                out_dir = PathBuf::from(args.next().expect("--out needs a directory"));
            }
            "--trace" => {
                trace_out = Some(PathBuf::from(args.next().expect("--trace needs a file")));
            }
            "--help" | "-h" => {
                eprintln!("usage: reproduce [--quick] [--out DIR] [--trace FILE] [id ...]");
                eprintln!("       reproduce bench [--quick] [--label LABEL] [--out FILE]");
                eprintln!("ids: {}", ALL_IDS.join(" "));
                return;
            }
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() {
        ids = ALL_IDS.iter().map(|s| s.to_string()).collect();
    }
    let obs = if trace_out.is_some() {
        ObsSession::tracing()
    } else {
        ObsSession::metrics_only()
    };
    // the dist experiment respawns this binary as its worker processes
    if let Ok(me) = std::env::current_exe() {
        std::env::set_var("SUBSONIC_NET_WORKER_BIN", me);
        std::env::set_var("SUBSONIC_NET_WORKER_ARGS", "net-worker");
    }

    let mut summary = String::from("# Reproduction summary\n\n");
    let mut verdicts: Vec<(String, bool, usize, f64)> = Vec::new();
    for id in &ids {
        let t0 = std::time::Instant::now();
        eprint!("running {id} ... ");
        let _ = std::io::stderr().flush();
        match run_experiment_obs(id, quick, Some(&obs)) {
            Some(result) => {
                let dt = t0.elapsed().as_secs_f64();
                let ok = result.all_pass();
                let bad = result.checks.iter().filter(|c| !c.pass).count();
                eprintln!("{} ({dt:.1} s)", if ok { "PASS" } else { "FAIL" });
                verdicts.push((id.clone(), ok, bad, dt));
                let md =
                    subsonic_bench::emit_result(&result, &out_dir).expect("cannot write results");
                summary.push_str(&md);
                summary.push('\n');
            }
            None => {
                eprintln!("unknown experiment id '{id}'");
                verdicts.push((id.clone(), false, 0, 0.0));
            }
        }
    }
    let failures = verdicts.iter().filter(|(_, ok, _, _)| !ok).count();
    std::fs::create_dir_all(&out_dir).expect("cannot create results dir");
    std::fs::write(out_dir.join("summary.md"), &summary).expect("cannot write summary");
    if let Some(path) = trace_out {
        let json = subsonic_obs::chrome::export(&obs.recorder);
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            std::fs::create_dir_all(dir).expect("cannot create trace dir");
        }
        std::fs::write(&path, json).expect("cannot write trace");
        eprintln!("wrote {} (load at ui.perfetto.dev)", path.display());
    }
    println!("{summary}");
    // the one-line-per-experiment verdict block, last so it is what a human
    // (or a CI log tail) sees first
    eprintln!("== verdicts ==");
    for (id, ok, bad, dt) in &verdicts {
        if *ok {
            eprintln!("PASS {id} ({dt:.1} s)");
        } else if *bad > 0 {
            eprintln!("FAIL {id} ({dt:.1} s, {bad} failing check(s))");
        } else {
            eprintln!("FAIL {id} (unknown experiment id)");
        }
    }
    if failures > 0 {
        eprintln!("{failures} of {} experiment(s) failed", verdicts.len());
        std::process::exit(1);
    }
    eprintln!("all {} experiment(s) passed", verdicts.len());
}
