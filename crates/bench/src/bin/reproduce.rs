//! `reproduce` — regenerates every table and figure of the paper.
//!
//! Usage:
//!
//! ```text
//! reproduce [--quick] [--out DIR] [id ...]
//! ```
//!
//! Without ids, runs every experiment in `subsonic::experiments::ALL_IDS`.
//! Writes one CSV per result table into `DIR` (default `results/`) and a
//! `summary.md` with all tables and PASS/FAIL shape checks, then prints the
//! summary to stdout.

use std::io::Write;
use std::path::PathBuf;
use subsonic::experiments::{run_experiment, ALL_IDS};

fn main() {
    let mut quick = false;
    let mut out_dir = PathBuf::from("results");
    let mut ids: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => {
                out_dir = PathBuf::from(args.next().expect("--out needs a directory"));
            }
            "--help" | "-h" => {
                eprintln!("usage: reproduce [--quick] [--out DIR] [id ...]");
                eprintln!("ids: {}", ALL_IDS.join(" "));
                return;
            }
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() {
        ids = ALL_IDS.iter().map(|s| s.to_string()).collect();
    }

    let mut summary = String::from("# Reproduction summary\n\n");
    let mut failures = 0usize;
    for id in &ids {
        let t0 = std::time::Instant::now();
        eprint!("running {id} ... ");
        let _ = std::io::stderr().flush();
        match run_experiment(id, quick) {
            Some(result) => {
                let dt = t0.elapsed().as_secs_f64();
                let ok = result.all_pass();
                if !ok {
                    failures += 1;
                }
                eprintln!("{} ({dt:.1} s)", if ok { "PASS" } else { "FAIL" });
                let md = subsonic_bench::emit_result(&result, &out_dir)
                    .expect("cannot write results");
                summary.push_str(&md);
                summary.push('\n');
            }
            None => {
                eprintln!("unknown experiment id '{id}'");
                failures += 1;
            }
        }
    }
    std::fs::create_dir_all(&out_dir).expect("cannot create results dir");
    std::fs::write(out_dir.join("summary.md"), &summary).expect("cannot write summary");
    println!("{summary}");
    if failures > 0 {
        eprintln!("{failures} experiment(s) had failing checks");
        std::process::exit(1);
    }
}
