//! Benchmark support for the `subsonic` workspace.
//!
//! The crate hosts two things:
//!
//! * Criterion micro-benchmarks (`benches/`): solver node rates (the
//!   section-7 speed table), halo packing, the event-engine throughput, and
//!   the Appendix-E page-stride pathology;
//! * the `reproduce` binary, which runs the experiment drivers of
//!   `subsonic::experiments` and writes one CSV per table plus a Markdown
//!   summary into `results/`, and whose `bench` subcommand emits the
//!   machine-readable perf baseline (see [`perf`]).

pub mod perf;

use std::fs;
use std::path::Path;
use subsonic::ExperimentResult;

/// Writes an experiment's tables as CSV files and returns the Markdown
/// summary block.
pub fn emit_result(result: &ExperimentResult, out_dir: &Path) -> std::io::Result<String> {
    fs::create_dir_all(out_dir)?;
    for (i, t) in result.tables.iter().enumerate() {
        let name = if result.tables.len() == 1 {
            format!("{}.csv", result.id)
        } else {
            format!("{}_{}.csv", result.id, i)
        };
        fs::write(out_dir.join(name), t.to_csv())?;
    }
    Ok(result.to_markdown())
}

#[cfg(test)]
mod tests {
    use super::*;
    use subsonic::{Check, Table};

    #[test]
    fn emit_writes_csvs() {
        let mut r = ExperimentResult::new("demo", "demo experiment");
        let mut t = Table::new("t", &["x"]);
        t.push_row(vec!["1".into()]);
        r.tables.push(t);
        r.checks.push(Check::new("c", true, "d"));
        let dir = std::env::temp_dir().join("subsonic_emit_test");
        let md = emit_result(&r, &dir).unwrap();
        assert!(md.contains("PASS"));
        assert!(dir.join("demo.csv").exists());
        let _ = fs::remove_dir_all(&dir);
    }
}
