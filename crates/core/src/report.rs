//! Tables, series and experiment results with CSV/Markdown emitters.

use serde::{Deserialize, Serialize};

/// A labelled series of `(x, y)` points — one curve of a figure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Legend label (e.g. `"(5x4)"`).
    pub label: String,
    /// The points, in x order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a series.
    pub fn new(label: impl Into<String>) -> Self {
        Self {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Appends a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// Largest y value.
    pub fn y_max(&self) -> f64 {
        self.points
            .iter()
            .map(|p| p.1)
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// y value at the largest x.
    pub fn y_last(&self) -> Option<f64> {
        self.points.last().map(|p| p.1)
    }
}

/// A rectangular table: named columns, rows of numbers or text.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Table {
    /// Table title.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Rows (each cell already formatted).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with headers.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        Self {
            title: title.into(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a pre-formatted row.
    pub fn push_row(&mut self, row: Vec<String>) {
        debug_assert_eq!(row.len(), self.columns.len());
        self.rows.push(row);
    }

    /// Builds a table from x/y series: first column is x, one column per
    /// series.
    pub fn from_series(title: impl Into<String>, x_name: &str, series: &[Series]) -> Self {
        let mut cols = vec![x_name.to_string()];
        cols.extend(series.iter().map(|s| s.label.clone()));
        let mut t = Self {
            title: title.into(),
            columns: cols,
            rows: Vec::new(),
        };
        // union of x values, sorted
        let mut xs: Vec<f64> = series
            .iter()
            .flat_map(|s| s.points.iter().map(|p| p.0))
            .collect();
        xs.sort_by(f64::total_cmp);
        xs.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
        for x in xs {
            let mut row = vec![format!("{x}")];
            for s in series {
                let cell = s
                    .points
                    .iter()
                    .find(|p| (p.0 - x).abs() < 1e-12)
                    .map(|p| format!("{:.4}", p.1))
                    .unwrap_or_default();
                row.push(cell);
            }
            t.rows.push(row);
        }
        t
    }

    /// Renders as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.columns.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }

    /// Renders as a GitHub-flavoured Markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("**{}**\n\n", self.title));
        out.push_str(&format!("| {} |\n", self.columns.join(" | ")));
        out.push_str(&format!("|{}\n", "---|".repeat(self.columns.len())));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }
}

/// A named assertion against the paper's expectations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Check {
    /// What is being checked.
    pub name: String,
    /// Whether the reproduction satisfies it.
    pub pass: bool,
    /// Human-readable numbers behind the verdict.
    pub detail: String,
}

impl Check {
    /// Creates a check.
    pub fn new(name: impl Into<String>, pass: bool, detail: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            pass,
            detail: detail.into(),
        }
    }
}

/// The output of one experiment driver.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ExperimentResult {
    /// Experiment id (e.g. `"fig5"`).
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Result tables (figures are emitted as tables of their series).
    pub tables: Vec<Table>,
    /// Shape checks against the paper.
    pub checks: Vec<Check>,
    /// Free-form notes (substitutions, caveats).
    pub notes: Vec<String>,
}

impl ExperimentResult {
    /// Creates an empty result.
    pub fn new(id: impl Into<String>, title: impl Into<String>) -> Self {
        Self {
            id: id.into(),
            title: title.into(),
            ..Self::default()
        }
    }

    /// All checks passed?
    pub fn all_pass(&self) -> bool {
        self.checks.iter().all(|c| c.pass)
    }

    /// Renders the whole result as Markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = format!("## {} — {}\n\n", self.id, self.title);
        for n in &self.notes {
            out.push_str(&format!("> {n}\n"));
        }
        out.push('\n');
        for t in &self.tables {
            out.push_str(&t.to_markdown());
            out.push('\n');
        }
        if !self.checks.is_empty() {
            out.push_str("| check | verdict | detail |\n|---|---|---|\n");
            for c in &self.checks {
                out.push_str(&format!(
                    "| {} | {} | {} |\n",
                    c.name,
                    if c.pass { "PASS" } else { "FAIL" },
                    c.detail
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_accumulates() {
        let mut s = Series::new("(2x2)");
        s.push(1.0, 0.5);
        s.push(2.0, 0.8);
        assert_eq!(s.y_max(), 0.8);
        assert_eq!(s.y_last(), Some(0.8));
    }

    #[test]
    fn csv_rendering() {
        let mut t = Table::new("demo", &["x", "y"]);
        t.push_row(vec!["1".into(), "2".into()]);
        assert_eq!(t.to_csv(), "x,y\n1,2\n");
    }

    #[test]
    fn markdown_rendering() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push_row(vec!["1".into(), "2".into()]);
        let md = t.to_markdown();
        assert!(md.contains("| a | b |"));
        assert!(md.contains("| 1 | 2 |"));
    }

    #[test]
    fn table_from_series_aligns_x() {
        let mut s1 = Series::new("a");
        s1.push(1.0, 10.0);
        s1.push(2.0, 20.0);
        let mut s2 = Series::new("b");
        s2.push(2.0, 200.0);
        let t = Table::from_series("f", "x", &[s1, s2]);
        assert_eq!(t.rows.len(), 2);
        assert_eq!(t.rows[0][2], ""); // b has no x=1 point
        assert_eq!(t.rows[1][1], "20.0000");
    }

    #[test]
    fn experiment_verdicts() {
        let mut r = ExperimentResult::new("fig5", "efficiency");
        r.checks.push(Check::new("ok", true, ""));
        assert!(r.all_pass());
        r.checks.push(Check::new("bad", false, ""));
        assert!(!r.all_pass());
        assert!(r.to_markdown().contains("FAIL"));
    }
}
