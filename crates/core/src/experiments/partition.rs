//! E-partition: failure detection under congestion vs real loss of a host.
//!
//! Section 7 observes that on a saturated Ethernet the runtime's transport
//! "fails to deliver messages after excessive retransmissions" even though
//! every workstation is healthy — exactly the signature a naive heartbeat
//! detector cannot distinguish from a crash. This experiment puts the two
//! detectors the simulator implements through both situations:
//!
//! 1. **Pure congestion** — a 100 s total-loss window on one halo link, all
//!    hosts healthy. The fixed-timeout detector starves its miss budget and
//!    convicts a live process (a false-positive rollback); the accrual (φ)
//!    detector keeps probing over the healthy control link, accumulates
//!    proof of life, and never restarts anyone.
//! 2. **Real crash** — one host dies. Both detectors must declare it; the
//!    accrual detector's extra patience is acceptable only if its detection
//!    latency stays within 2× of the fixed schedule's.
//! 3. **Partition and heal** — a 30 s network partition isolates one host
//!    (detector disabled to show the bare transport semantics): every
//!    cross-cut DATA message exhausts its retransmission budget and surfaces
//!    as a delivery failure, yet the capped-RTO retransmission loop rides
//!    out the heal and the run completes with exactly-once delivery.
//!
//! The false-positive cost the fixed detector pays is what the
//! [`subsonic_model::RecoveryModel`] `fp_rate_per_s` term prices.

use super::ObsSession;
use crate::report::{Check, ExperimentResult, Table};
use subsonic_cluster::{
    ClusterConfig, ClusterSim, ClusterStats, DetectorMode, FaultPlan, WorkloadSpec,
};
use subsonic_solvers::MethodKind;

/// One detector's behaviour in the pure-congestion scenario.
#[derive(Debug, Clone, Copy)]
pub struct CongestionOutcome {
    /// Recoveries triggered with every host healthy (all false positives).
    pub false_positives: usize,
    /// Transport give-ups reported during the loss window.
    pub give_ups: u64,
    /// Proof-of-life probes the detector sent.
    pub probes_sent: u64,
    /// Whether every process reached the target step count.
    pub completed: bool,
    /// Wall-clock (simulated) the run took.
    pub finished_at: f64,
}

/// The three-legged study.
pub struct PartitionStudy {
    /// Pure congestion under the fixed-timeout detector.
    pub fixed_congestion: CongestionOutcome,
    /// Pure congestion under the accrual detector.
    pub accrual_congestion: CongestionOutcome,
    /// Real-crash detection latency of the fixed-timeout schedule, seconds.
    pub fixed_detect_s: f64,
    /// Real-crash detection latency of the accrual detector, seconds.
    pub accrual_detect_s: f64,
    /// Delivery failures surfaced during the 30 s partition.
    pub partition_failures: usize,
    /// DATA transmissions dropped at the partition cut.
    pub partition_drops: u64,
    /// Whether the partitioned run completed after the heal with
    /// exactly-once, in-order delivery.
    pub partition_clean: bool,
}

fn congestion_workload() -> WorkloadSpec {
    WorkloadSpec::new_2d(MethodKind::LatticeBoltzmann, 200, 100, 2, 1)
}

/// The pure-congestion scenario: a 100 s total-loss window on the proc 0 →
/// proc 1 halo link, hosts untouched (mirrors the sim-level regression
/// tests so the experiment and the unit pins can never drift apart).
fn congestion_cfg(mode: DetectorMode) -> ClusterConfig {
    let mut cfg = ClusterConfig::measurement(congestion_workload());
    cfg.detector.mode = mode;
    cfg.transport.max_attempts = 4;
    cfg.faults = FaultPlan::empty().msg_fault(Some(0), Some(1), 5.0, 100.0, 1.0, 0.0, 0.0);
    cfg
}

fn run_congestion(mode: DetectorMode, steps: u64) -> CongestionOutcome {
    let mut sim = ClusterSim::new(congestion_cfg(mode));
    let stats = sim.run(1.0e5, Some(steps));
    CongestionOutcome {
        false_positives: stats.false_positive_recoveries(),
        give_ups: stats.transport.give_ups,
        probes_sent: stats.transport.probes_sent,
        completed: sim.steps().iter().all(|&s| s == steps),
        finished_at: stats.finished_at,
    }
}

/// Detection latency (fault → declaration) for one real host crash.
fn run_crash(mode: DetectorMode) -> (f64, ClusterStats) {
    let mut cfg = ClusterConfig::measurement(congestion_workload());
    cfg.detector.mode = mode;
    let victim = ClusterSim::new(cfg.clone()).placements()[0];
    cfg.faults = FaultPlan::empty().crash(victim, 60.0, None);
    let mut sim = ClusterSim::new(cfg);
    let stats = sim.run(2000.0, None);
    let latency = stats
        .recoveries
        .first()
        .map(|r| r.detect_time - r.fault_time)
        .unwrap_or(f64::INFINITY);
    (latency, stats)
}

/// Runs the three legs. `quick` shortens the congestion runs; every leg is
/// seeded and deterministic either way.
pub fn partition_study(quick: bool) -> PartitionStudy {
    partition_study_obs(quick, None)
}

/// [`partition_study`] with observability: headline latencies, counters and
/// false-positive tallies are published into `obs.metrics`, and the
/// partition leg records its timeline into `obs.recorder`.
pub fn partition_study_obs(quick: bool, obs: Option<&ObsSession>) -> PartitionStudy {
    let steps: u64 = if quick { 40 } else { 60 };

    let fixed_congestion = run_congestion(DetectorMode::FixedTimeout, steps);
    let accrual_congestion = run_congestion(DetectorMode::Accrual, steps);
    let (fixed_detect_s, _) = run_crash(DetectorMode::FixedTimeout);
    let (accrual_detect_s, _) = run_crash(DetectorMode::Accrual);

    // leg 3: a 30 s partition isolating one host, detector off
    let mut cfg = ClusterConfig::measurement(congestion_workload());
    cfg.detector.enabled = false;
    cfg.transport.max_attempts = 3;
    let victim = ClusterSim::new(cfg.clone()).placements()[0];
    cfg.faults = FaultPlan::empty().partition(vec![vec![victim]], 10.0, Some(30.0));
    let part_steps: u64 = if quick { 60 } else { 100 };
    let mut sim = ClusterSim::new(cfg);
    if let Some(o) = obs {
        sim = sim.with_recorder(&o.recorder);
    }
    let part = sim.run(1.0e5, Some(part_steps));
    let partition_clean = sim.steps().iter().all(|&s| s == part_steps)
        && part.duplicate_halo_applies == 0
        && part.out_of_order_consumes == 0
        && part.recoveries.is_empty();

    let study = PartitionStudy {
        fixed_congestion,
        accrual_congestion,
        fixed_detect_s,
        accrual_detect_s,
        partition_failures: part.delivery_failures.len(),
        partition_drops: part.transport.partition_drops,
        partition_clean,
    };
    if let Some(o) = obs {
        let m = &o.metrics;
        m.gauge_set(
            "partition.fixed_false_positives",
            study.fixed_congestion.false_positives as f64,
            "count",
        );
        m.gauge_set(
            "partition.accrual_false_positives",
            study.accrual_congestion.false_positives as f64,
            "count",
        );
        m.gauge_set("partition.fixed_detect", study.fixed_detect_s, "s");
        m.gauge_set("partition.accrual_detect", study.accrual_detect_s, "s");
        m.gauge_set(
            "partition.delivery_failures",
            study.partition_failures as f64,
            "count",
        );
        m.gauge_set(
            "partition.partition_drops",
            study.partition_drops as f64,
            "count",
        );
        part.publish(m, "partition.healed_run");
    }
    study
}

/// E-partition: the detector comparison figure (see module docs).
pub fn e_partition(quick: bool) -> ExperimentResult {
    e_partition_obs(quick, None)
}

/// [`e_partition`] with observability: see [`partition_study_obs`].
pub fn e_partition_obs(quick: bool, obs: Option<&ObsSession>) -> ExperimentResult {
    let mut r = ExperimentResult::new(
        "partition",
        "Failure detection under congestion, crash and partition: fixed timeout vs accrual",
    );
    let s = partition_study_obs(quick, obs);

    let mut cmp = Table::new(
        "Pure congestion (100 s loss window, all hosts healthy)",
        &[
            "detector",
            "false-positive restarts",
            "transport give-ups",
            "probes sent",
            "completed",
        ],
    );
    for (name, o) in [
        ("fixed timeout", &s.fixed_congestion),
        ("accrual (phi)", &s.accrual_congestion),
    ] {
        cmp.push_row(vec![
            name.into(),
            o.false_positives.to_string(),
            o.give_ups.to_string(),
            o.probes_sent.to_string(),
            o.completed.to_string(),
        ]);
    }
    r.tables.push(cmp);

    let mut lat = Table::new(
        "Real host crash at t = 60 s",
        &["detector", "detection latency (s)"],
    );
    lat.push_row(vec![
        "fixed timeout".into(),
        format!("{:.1}", s.fixed_detect_s),
    ]);
    lat.push_row(vec![
        "accrual (phi)".into(),
        format!("{:.1}", s.accrual_detect_s),
    ]);
    r.tables.push(lat);

    let mut part = Table::new(
        "30 s partition isolating one host (detector off)",
        &["delivery failures", "partition drops", "clean completion"],
    );
    part.push_row(vec![
        s.partition_failures.to_string(),
        s.partition_drops.to_string(),
        s.partition_clean.to_string(),
    ]);
    r.tables.push(part);

    r.checks.push(Check::new(
        "congestion alone convicts a live process under the fixed timeout",
        s.fixed_congestion.false_positives >= 1 && s.fixed_congestion.completed,
        format!(
            "{} false-positive restart(s)",
            s.fixed_congestion.false_positives
        ),
    ));
    r.checks.push(Check::new(
        "the accrual detector rides out the same congestion without a restart",
        s.accrual_congestion.false_positives == 0
            && s.accrual_congestion.completed
            && s.accrual_congestion.probes_sent > 0,
        format!(
            "{} restarts, {} probes",
            s.accrual_congestion.false_positives, s.accrual_congestion.probes_sent
        ),
    ));
    r.checks.push(Check::new(
        "both detectors catch a real crash; accrual within 2x of fixed",
        s.fixed_detect_s.is_finite()
            && s.accrual_detect_s.is_finite()
            && s.accrual_detect_s <= 2.0 * s.fixed_detect_s,
        format!(
            "fixed {:.1} s, accrual {:.1} s",
            s.fixed_detect_s, s.accrual_detect_s
        ),
    ));
    r.checks.push(Check::new(
        "a healed partition surfaces delivery failures but no lost or duplicated halos",
        s.partition_failures >= 1 && s.partition_clean,
        format!(
            "{} delivery failures, clean = {}",
            s.partition_failures, s.partition_clean
        ),
    ));

    r.notes.push(
        "Congestion: 100% DATA loss on one halo link for 100 s, transport give-up after 4 \
         attempts. The fixed detector reads the resulting heartbeat silence as death; the \
         accrual detector's probes travel the healthy control link and keep phi below \
         threshold. Crash latencies follow the probe schedule (fixed: worst-case sum; \
         accrual: phi crossing). All runs seeded and deterministic."
            .into(),
    );
    r
}
