//! E-sched: multi-tenant job-stream scheduling over the simulated cluster.
//!
//! The paper operates one parallel computation at a time; this experiment
//! runs the cluster as a *service*: a fixed synthetic heavy-traffic trace
//! (tens of thousands of solver decompositions from three tenants — an
//! interactive tenant with 4× fair-share weight, a standard interactive
//! tenant, and a batch tenant submitting the paper's wide overnight runs) is
//! replayed under every queue discipline of `subsonic-sched`, and the
//! schedules are compared on makespan, utilization, queue wait and
//! per-tenant slowdown.
//!
//! Verdicts pinned by checks:
//! * EASY backfill strictly beats FIFO on makespan and mean wait (it fills
//!   the holes a blocked wide head leaves, and provably never delays that
//!   head, so it can only win).
//! * Weighted fair share bounds the worst tenant's slowdown below FIFO's
//!   (arrival order lets the batch tenant's wide jobs starve the
//!   interactive tenants; virtual-time service does not).
//! * The replay is deterministic: running the identical trace + seed twice
//!   yields bit-identical schedule hashes for every policy.

use crate::experiments::ObsSession;
use crate::report::{Check, ExperimentResult, Table};
use subsonic_sched::{
    publish, record_tracks, run, JobTrace, PolicyKind, SchedConfig, SchedOutcome, TenantSpec,
    TraceConfig,
};

/// Fixed seed of the replayed trace (part of the experiment's identity:
/// changing it changes every number in the table).
const TRACE_SEED: u64 = 0x5EED_0009;

/// The experiment's three-tenant heavy-traffic mix.
fn trace_config(jobs: usize) -> TraceConfig {
    // an interactive tenant paying for 4x weight, a standard one, and a
    // batch tenant whose wide jobs dominate the load
    let premium = TenantSpec {
        weight: 4.0,
        ..TenantSpec::light(0.05)
    };
    let standard = TenantSpec::light(0.03);
    // offered batch load alone exceeds the 25-host pool's capacity, so the
    // queue stays backlogged and makespan measures packing efficiency —
    // exactly the regime where the disciplines separate
    let batch = TenantSpec::batch(0.014);
    TraceConfig {
        tenants: vec![premium, standard, batch],
        jobs,
        seed: TRACE_SEED,
    }
}

/// Worst per-tenant mean stretch — the fairness headline.
fn worst_tenant_stretch(out: &SchedOutcome) -> f64 {
    out.tenants
        .iter()
        .filter(|t| t.jobs > 0)
        .map(|t| t.mean_stretch)
        .fold(0.0, f64::max)
}

/// E-sched driver (see the module docs). `obs` receives `sched.<policy>.*`
/// metrics and one per-tenant timeline track per policy.
pub fn e_sched_obs(quick: bool, obs: Option<&ObsSession>) -> ExperimentResult {
    let mut r = ExperimentResult::new("sched", "Multi-tenant job-stream scheduling");
    let jobs = if quick { 2_000 } else { 20_000 };
    let trace = JobTrace::generate(&trace_config(jobs));
    r.notes.push(format!(
        "trace: {} jobs, {} tenants, seed {:#x}, fingerprint {:#018x}",
        trace.jobs.len(),
        trace.tenant_count(),
        trace.seed,
        trace.fingerprint()
    ));

    let mut table = Table::new(
        "E-sched policy comparison (identical trace)",
        &[
            "policy",
            "makespan (h)",
            "util",
            "mean wait (s)",
            "mean stretch",
            "worst-tenant stretch",
            "backfills",
            "migrations",
            "schedule hash",
        ],
    );
    let mut outcomes: Vec<SchedOutcome> = Vec::new();
    for policy in PolicyKind::ALL {
        let cfg = SchedConfig::paper_pool(policy, 1);
        let out = run(&trace, &cfg);
        // determinism verdict: the identical trace + config must reproduce
        // the schedule bit-for-bit
        let again = run(&trace, &cfg);
        r.checks.push(Check::new(
            format!("{} replay is bit-identical", policy.name()),
            out.schedule_hash == again.schedule_hash
                && out.trace_fingerprint == again.trace_fingerprint,
            format!("hash {:#018x}", out.schedule_hash),
        ));
        r.checks.push(Check::new(
            format!("{} conserves jobs and capacity", policy.name()),
            out.completed + out.rejected == trace.jobs.len() as u64
                && out.peak_busy_hosts <= out.pool_hosts,
            format!(
                "{} completed + {} rejected of {}, peak {}/{} hosts",
                out.completed,
                out.rejected,
                trace.jobs.len(),
                out.peak_busy_hosts,
                out.pool_hosts
            ),
        ));
        table.push_row(vec![
            policy.name().to_string(),
            format!("{:.2}", out.makespan_s / 3600.0),
            format!("{:.3}", out.utilization),
            format!("{:.1}", out.mean_wait_s),
            format!("{:.2}", out.mean_stretch),
            format!("{:.2}", worst_tenant_stretch(&out)),
            out.backfills.to_string(),
            out.migrations.len().to_string(),
            format!("{:#018x}", out.schedule_hash),
        ]);
        if let Some(obs) = obs {
            publish(&out, &obs.metrics);
            record_tracks(&out, &obs.recorder);
        }
        outcomes.push(out);
    }
    let by = |p: PolicyKind| {
        outcomes
            .iter()
            .find(|o| o.policy == p)
            .expect("all policies ran")
    };
    let fifo = by(PolicyKind::Fifo);
    let fair = by(PolicyKind::FairShare);
    let backfill = by(PolicyKind::EasyBackfill);

    // heavy traffic really happened: FIFO queues must be material
    r.checks.push(Check::new(
        "trace drives the cluster into heavy traffic under FIFO",
        fifo.utilization > 0.3 && fifo.mean_wait_s > 10.0,
        format!(
            "FIFO utilization {:.3}, mean wait {:.1} s",
            fifo.utilization, fifo.mean_wait_s
        ),
    ));
    r.checks.push(Check::new(
        "EASY backfill beats FIFO on makespan",
        backfill.makespan_s < fifo.makespan_s,
        format!(
            "{:.2} h vs {:.2} h ({} backfills)",
            backfill.makespan_s / 3600.0,
            fifo.makespan_s / 3600.0,
            backfill.backfills
        ),
    ));
    r.checks.push(Check::new(
        "EASY backfill cuts FIFO's mean queue wait",
        backfill.mean_wait_s < fifo.mean_wait_s,
        format!("{:.1} s vs {:.1} s", backfill.mean_wait_s, fifo.mean_wait_s),
    ));
    r.checks.push(Check::new(
        "fair share bounds the worst tenant's slowdown below FIFO's",
        worst_tenant_stretch(fair) < worst_tenant_stretch(fifo),
        format!(
            "worst-tenant mean stretch {:.2} vs {:.2}",
            worst_tenant_stretch(fair),
            worst_tenant_stretch(fifo)
        ),
    ));
    r.checks.push(Check::new(
        "fair share honours the premium tenant's 4x weight",
        fair.tenants[0].mean_wait_s <= fair.tenants[1].mean_wait_s,
        format!(
            "premium mean wait {:.1} s vs standard {:.1} s",
            fair.tenants[0].mean_wait_s, fair.tenants[1].mean_wait_s
        ),
    ));

    // per-tenant fairness detail for the two headline policies
    let mut fairness = Table::new(
        "E-sched per-tenant fairness (FIFO vs fair share)",
        &[
            "tenant",
            "weight",
            "jobs",
            "fifo wait (s)",
            "fair wait (s)",
            "fifo stretch",
            "fair stretch",
        ],
    );
    let names = ["premium", "standard", "batch"];
    for (i, name) in names.iter().enumerate() {
        fairness.push_row(vec![
            (*name).to_string(),
            format!("{:.0}", trace.tenants[i].weight),
            fair.tenants[i].jobs.to_string(),
            format!("{:.1}", fifo.tenants[i].mean_wait_s),
            format!("{:.1}", fair.tenants[i].mean_wait_s),
            format!("{:.2}", fifo.tenants[i].mean_stretch),
            format!("{:.2}", fair.tenants[i].mean_stretch),
        ]);
    }
    r.tables.push(table);
    r.tables.push(fairness);
    r
}

/// E-sched without observability plumbing.
pub fn e_sched(quick: bool) -> ExperimentResult {
    e_sched_obs(quick, None)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sched_quick() {
        let r = e_sched(true);
        assert!(r.all_pass(), "{:#?}", r.checks);
        assert!(r.tables.len() == 2 && r.tables[0].rows.len() == 4);
    }

    #[test]
    fn sched_quick_publishes_metrics_and_tracks() {
        let obs = ObsSession::tracing();
        let r = e_sched_obs(true, Some(&obs));
        assert!(r.all_pass());
        assert!(obs.metrics.counter("sched.fifo.jobs_completed").is_some());
        assert!(obs.metrics.gauge("sched.backfill.makespan_s").is_some());
        // one track per tenant per policy
        assert_eq!(obs.recorder.finished_tracks().len(), 3 * 4);
    }
}
