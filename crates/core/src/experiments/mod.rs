//! Experiment drivers: one function per table/figure of the paper.
//!
//! Each driver regenerates the corresponding artefact as [`crate::Table`]s
//! (figures become tables of their series) plus shape checks against the
//! paper's reported behaviour. The `reproduce` binary in `subsonic-bench`
//! runs them and writes CSV files; `EXPERIMENTS.md` records the
//! paper-vs-measured comparison.
//!
//! | id | paper artefact |
//! |---|---|
//! | `t1` | section-7 speed table (per-model node rates, LB/FD × 2D/3D) |
//! | `fig5`/`fig6` | 2D LB efficiency / speedup vs subregion size |
//! | `fig7`/`fig8` | 2D FD efficiency / speedup |
//! | `fig9` | scaled-problem efficiency vs P, 2D vs 3D |
//! | `fig10`/`fig11` | 3D LB efficiency / speedup |
//! | `fig12`/`fig13` | the section-8 model curves (eqs. 20–21) |
//! | `hetero` | section-7 heterogeneous-pool step times vs the model |
//! | `mig` | section-5 migration statistics |
//! | `skew` | Appendix-A un-synchronization bounds |
//! | `order` | Appendix-C FCFS vs strict ordering |
//! | `solid` | Figure-2 all-solid subregions |
//! | `udp` | Appendix-D TCP vs UDP transports |
//! | `net` | shared bus vs switched network (section 9 outlook) |
//! | `conv` | quadratic convergence of both methods (section 7) |
//! | `acoustic` | acoustic waves propagate at c_s (section 6) |
//! | `pipe` | flue-pipe jet oscillation (section 2) |
//! | `real` | real threaded runner timing on this machine |
//! | `faults` | recovery cost vs checkpoint interval (section 4.1 + Young's model) |
//! | `partition` | detector comparison under congestion / crash / partition (section 7) |
//! | `scale` | engine scalability 64-4096 hosts, shared bus vs switched (section 9 outlook) |
//! | `dist` | real multi-process runtime: sockets, SIGKILL recovery, record/replay (section 5) |
//! | `sched` | multi-tenant job-stream scheduling: FIFO/RR/fair-share/EASY over one trace |
//! | `chaos` | randomized fault-schedule soak: kills, wire faults, partitions, migrations |

mod chaos;
mod dist;
mod faults;
mod model_figures;
mod partition;
mod perf_figures;
mod physics;
mod protocols;
mod scale;
mod sched;
mod table1;

pub use chaos::{e_chaos, e_chaos_obs};
pub use dist::{e_dist, e_dist_obs};
pub use faults::{
    e_faults, e_faults_obs, recovery_sweep, recovery_sweep_obs, RecoverySweep, SweepPoint,
};
pub use model_figures::{fig12, fig13, hetero};
pub use partition::{
    e_partition, e_partition_obs, partition_study, partition_study_obs, CongestionOutcome,
    PartitionStudy,
};
pub use perf_figures::{fig10, fig11, fig5, fig6, fig7, fig8, fig9};
pub use physics::{e_acoustic, e_conv, e_pipe, e_real};
pub use protocols::{e_mig, e_net, e_order, e_skew, e_solid, e_udp};
pub use scale::e_scale;
pub use sched::{e_sched, e_sched_obs};
pub use table1::t1;

use crate::report::ExperimentResult;
use subsonic_obs::{FlightRecorder, MetricsRegistry};

/// Observability session threaded through experiment drivers: a flight
/// recorder for timeline traces and a metrics registry for scalar results.
/// Both are cheap to create; the recorder is a no-op unless tracing was
/// requested, so drivers attach it unconditionally.
pub struct ObsSession {
    /// Flight recorder experiment drivers attach to instrumented runs.
    pub recorder: FlightRecorder,
    /// Registry experiment drivers publish their headline numbers into.
    pub metrics: MetricsRegistry,
}

impl ObsSession {
    /// A session whose recorder actually records (for `--trace`).
    pub fn tracing() -> Self {
        Self {
            recorder: FlightRecorder::enabled(subsonic_obs::recorder::DEFAULT_TRACK_CAPACITY),
            metrics: MetricsRegistry::new(),
        }
    }

    /// A session that collects metrics but drops all trace events.
    pub fn metrics_only() -> Self {
        Self {
            recorder: FlightRecorder::disabled(),
            metrics: MetricsRegistry::new(),
        }
    }
}

/// All experiment ids in the order they appear in the paper.
pub const ALL_IDS: &[&str] = &[
    "t1",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "hetero",
    "mig",
    "skew",
    "order",
    "solid",
    "net",
    "udp",
    "conv",
    "acoustic",
    "pipe",
    "real",
    "faults",
    "partition",
    "scale",
    "dist",
    "sched",
    "chaos",
];

/// Runs one experiment by id. `quick` shrinks workloads for smoke tests.
pub fn run_experiment(id: &str, quick: bool) -> Option<ExperimentResult> {
    run_experiment_obs(id, quick, None)
}

/// Like [`run_experiment`], but threads an [`ObsSession`] through drivers
/// that support instrumented runs (currently `faults`), so `reproduce
/// --trace` can export their timeline and metrics.
pub fn run_experiment_obs(
    id: &str,
    quick: bool,
    obs: Option<&ObsSession>,
) -> Option<ExperimentResult> {
    if id == "faults" {
        return Some(e_faults_obs(quick, obs));
    }
    if id == "partition" {
        return Some(e_partition_obs(quick, obs));
    }
    if id == "dist" {
        return Some(e_dist_obs(quick, obs));
    }
    if id == "sched" {
        return Some(e_sched_obs(quick, obs));
    }
    if id == "chaos" {
        return Some(e_chaos_obs(quick, obs));
    }
    Some(match id {
        "t1" => t1(quick),
        "fig5" => fig5(quick),
        "fig6" => fig6(quick),
        "fig7" => fig7(quick),
        "fig8" => fig8(quick),
        "fig9" => fig9(quick),
        "fig10" => fig10(quick),
        "fig11" => fig11(quick),
        "fig12" => fig12(),
        "fig13" => fig13(),
        "hetero" => hetero(quick),
        "mig" => e_mig(quick),
        "skew" => e_skew(),
        "order" => e_order(),
        "solid" => e_solid(),
        "net" => e_net(quick),
        "udp" => e_udp(quick),
        "conv" => e_conv(quick),
        "acoustic" => e_acoustic(quick),
        "pipe" => e_pipe(quick),
        "real" => e_real(quick),
        "scale" => e_scale(quick),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_ids_resolve() {
        for id in ALL_IDS {
            // fig12/fig13 are cheap; just check the registry wiring for one
            // analytic experiment here (full runs live in integration tests)
            if *id == "fig12" || *id == "fig13" {
                assert!(run_experiment(id, true).is_some());
            }
        }
        assert!(run_experiment("nope", true).is_none());
    }
}
