//! Figures 5–11: measured parallel efficiency and speedup on the simulated
//! cluster (quiet hosts, section-7 conditions).

use crate::report::{Check, ExperimentResult, Series, Table};
use subsonic_cluster::{measure_efficiency, MeasureConfig, WorkloadSpec};
use subsonic_model::EfficiencyModel;
use subsonic_solvers::MethodKind;

fn sides_2d(quick: bool) -> Vec<usize> {
    if quick {
        vec![40, 120, 240]
    } else {
        vec![20, 40, 60, 80, 100, 125, 150, 200, 250, 300]
    }
}

const DECOMPS_2D: [(usize, usize, &str); 4] = [
    (2, 2, "(2x2)"),
    (3, 3, "(3x3)"),
    (4, 4, "(4x4)"),
    (5, 4, "(5x4)"),
];

fn sweep_2d(method: MethodKind, quick: bool, speedup: bool) -> Vec<Series> {
    let mut out = Vec::new();
    for (px, py, label) in DECOMPS_2D {
        let mut s = Series::new(label);
        for side in sides_2d(quick) {
            let w = WorkloadSpec::new_2d(method, side * px, side * py, px, py);
            let m = measure_efficiency(MeasureConfig::paper(w));
            s.push(side as f64, if speedup { m.speedup } else { m.efficiency });
        }
        out.push(s);
    }
    out
}

/// Figure 5: 2D lattice Boltzmann efficiency vs `sqrt(N)`.
pub fn fig5(quick: bool) -> ExperimentResult {
    let mut r = ExperimentResult::new("fig5", "Parallel efficiency, 2D lattice Boltzmann");
    let series = sweep_2d(MethodKind::LatticeBoltzmann, quick, false);
    // the paper's operating point and model agreement
    let f54 = series[3].y_last().unwrap();
    let f54_at_120 = series[3]
        .points
        .iter()
        .find(|p| p.0 >= 120.0)
        .map(|p| p.1)
        .unwrap();
    // Note: eq. 20 itself gives f ≈ 0.70 at N = 120² with P = 20, so "good
    // performance ... larger than 100^2" reads as f comfortably above one
    // half and climbing; the ~80% headline is the production operating point
    // at larger grains.
    r.checks.push(Check::new(
        "good performance beyond 100^2 subregions",
        f54_at_120 > 0.6,
        format!("f(5x4) at first side >= 120: {f54_at_120:.3}"),
    ));
    // a 20-process run drafts four 0.86-relative 720s, and the step-coupling
    // pins the step time to them: efficiency referenced to the 715/50 tops
    // out at rel_min = 0.86 minus communication (section 7's heterogeneity
    // penalty), so "high" here is ~0.73, not the homogeneous ~0.85
    r.checks.push(Check::new(
        "largest grain reaches high efficiency",
        f54 > 0.7,
        format!("f(5x4, largest N) = {f54:.3}"),
    ));
    r.checks.push(Check::new(
        "coarser decompositions are more efficient at equal grain",
        series[0].y_last().unwrap() > series[3].y_last().unwrap(),
        format!(
            "(2x2): {:.3} vs (5x4): {:.3}",
            series[0].y_last().unwrap(),
            series[3].y_last().unwrap()
        ),
    ));
    // model agreement at large N (the paper: "good agreement when the
    // subregion per processor is larger than N > 100^2"); the model is
    // eq. 20 extended with the heterogeneous-pool compute floor
    // T_calc/rel_min, rel_min = 0.86 for the 720s in a 20-process run
    let side = *sides_2d(quick).last().unwrap() as f64;
    let model = EfficiencyModel::paper_2d(20, 4.0).efficiency_hetero(side * side, 0.86);
    r.checks.push(Check::new(
        "matches the heterogeneous eq. 20 at large N within 0.08",
        (f54 - model).abs() < 0.08,
        format!("simulated {f54:.3} vs model {model:.3}"),
    ));
    r.tables
        .push(Table::from_series("Figure 5 series", "sqrt(N)", &series));
    r
}

/// Figure 6: 2D lattice Boltzmann speedup vs `sqrt(N)`.
pub fn fig6(quick: bool) -> ExperimentResult {
    let mut r = ExperimentResult::new("fig6", "Parallel speedup, 2D lattice Boltzmann");
    let series = sweep_2d(MethodKind::LatticeBoltzmann, quick, true);
    let s54 = series[3].y_last().unwrap();
    r.checks.push(Check::new(
        "20 workstations deliver ~16x at the largest grain",
        s54 > 14.0 && s54 <= 20.0,
        format!("S(5x4, largest N) = {s54:.2}"),
    ));
    r.checks.push(Check::new(
        "speedup ordering follows processor count at large N",
        series[3].y_last().unwrap() > series[2].y_last().unwrap()
            && series[2].y_last().unwrap() > series[1].y_last().unwrap(),
        "S(5x4) > S(4x4) > S(3x3) at the largest grain",
    ));
    r.tables
        .push(Table::from_series("Figure 6 series", "sqrt(N)", &series));
    r
}

/// Figure 7: 2D finite-difference efficiency vs `sqrt(N)`.
pub fn fig7(quick: bool) -> ExperimentResult {
    let mut r = ExperimentResult::new("fig7", "Parallel efficiency, 2D finite differences");
    let series = sweep_2d(MethodKind::FiniteDifference, quick, false);
    let lb = sweep_2d(MethodKind::LatticeBoltzmann, quick, false);
    // FD decays faster at small subregions: two messages per step and a
    // faster per-step computation (end of section 7)
    let small_idx = 0;
    let fd_small = series[3].points[small_idx].1;
    let lb_small = lb[3].points[small_idx].1;
    r.checks.push(Check::new(
        "FD efficiency falls below LB at small subregions",
        fd_small < lb_small,
        format!(
            "side {}: FD {fd_small:.3} vs LB {lb_small:.3}",
            series[3].points[small_idx].0
        ),
    ));
    let fd_large = series[3].y_last().unwrap();
    // FD pays two per-message overheads per step and computes 1.24x faster,
    // so its large-grain efficiency trails LB slightly (paper Figure 7 shows
    // the same ordering).
    r.checks.push(Check::new(
        "FD still reaches high efficiency at large grain",
        fd_large > 0.7,
        format!("f(5x4, largest N) = {fd_large:.3}"),
    ));
    r.tables
        .push(Table::from_series("Figure 7 series", "sqrt(N)", &series));
    r
}

/// Figure 8: 2D finite-difference speedup vs `sqrt(N)`.
pub fn fig8(quick: bool) -> ExperimentResult {
    let mut r = ExperimentResult::new("fig8", "Parallel speedup, 2D finite differences");
    let series = sweep_2d(MethodKind::FiniteDifference, quick, true);
    let s = series[3].y_last().unwrap();
    r.checks.push(Check::new(
        "20 workstations deliver >13x at the largest grain",
        s > 13.0 && s <= 20.0,
        format!("S(5x4, largest N) = {s:.2}"),
    ));
    r.tables
        .push(Table::from_series("Figure 8 series", "sqrt(N)", &series));
    r
}

/// Figure 9: scaled-problem efficiency vs number of processors — 2D at
/// `120²` per processor vs 3D at `25³` per processor.
pub fn fig9(quick: bool) -> ExperimentResult {
    let mut r = ExperimentResult::new(
        "fig9",
        "Efficiency vs processors: Ethernet suffices in 2D, not in 3D",
    );
    let ps: Vec<usize> = if quick {
        vec![4, 10, 16]
    } else {
        (2..=20).step_by(2).collect()
    };
    let mut s2 = Series::new("2D (Px1), 120^2 per proc");
    let mut s3 = Series::new("3D (Px1x1), 25^3 per proc");
    for &p in &ps {
        let w2 = WorkloadSpec::new_2d(MethodKind::LatticeBoltzmann, 120 * p, 120, p, 1);
        s2.push(
            p as f64,
            measure_efficiency(MeasureConfig::paper(w2)).efficiency,
        );
        let w3 = WorkloadSpec::new_3d(MethodKind::LatticeBoltzmann, (25 * p, 25, 25), (p, 1, 1));
        s3.push(
            p as f64,
            measure_efficiency(MeasureConfig::paper(w3)).efficiency,
        );
    }
    let f2 = s2.y_last().unwrap();
    let f3 = s3.y_last().unwrap();
    // beyond P = 16 the pool adds 0.86-relative machines, so the 2D curve
    // referenced to the 715/50 steps down to ~0.63 at P = 20 while staying
    // far above the 3D collapse
    r.checks.push(Check::new(
        "2D efficiency remains high at the largest P",
        f2 > 0.6,
        format!("f_2D = {f2:.3}"),
    ));
    r.checks.push(Check::new(
        "3D efficiency decreases quickly",
        f3 < f2 - 0.1,
        format!("f_3D = {f3:.3} vs f_2D = {f2:.3}"),
    ));
    r.notes.push(
        "The event simulation allows compute/communication overlap across \
         processes, so the 3D decay is slightly milder than the paper's \
         measurement (which also suffered TCP retransmission failures)."
            .into(),
    );
    r.tables
        .push(Table::from_series("Figure 9 series", "P", &[s2, s3]));
    r
}

const DECOMPS_3D: [(usize, usize, usize, &str); 4] = [
    (2, 2, 2, "(2x2x2)"),
    (3, 2, 2, "(3x2x2)"),
    (4, 2, 2, "(4x2x2)"),
    (3, 3, 2, "(3x3x2)"),
];

fn sides_3d(quick: bool) -> Vec<usize> {
    if quick {
        vec![15, 30, 40]
    } else {
        vec![10, 15, 20, 25, 30, 35, 40]
    }
}

/// Figure 10: 3D lattice Boltzmann efficiency vs subregion side.
pub fn fig10(quick: bool) -> ExperimentResult {
    let mut r = ExperimentResult::new("fig10", "Parallel efficiency, 3D lattice Boltzmann");
    let mut series = Vec::new();
    for (px, py, pz, label) in DECOMPS_3D {
        let mut s = Series::new(label);
        for side in sides_3d(quick) {
            let w = WorkloadSpec::new_3d(
                MethodKind::LatticeBoltzmann,
                (side * px, side * py, side * pz),
                (px, py, pz),
            );
            s.push(
                side as f64,
                measure_efficiency(MeasureConfig::paper(w)).efficiency,
            );
        }
        series.push(s);
    }
    // "the efficiency is rather poor" — even at the memory limit of 40^3
    let best_fine = series[3].y_last().unwrap();
    r.checks.push(Check::new(
        "3D efficiency is rather poor for fine decompositions",
        best_fine < 0.75,
        format!("f(3x3x2, 40^3) = {best_fine:.3}"),
    ));
    r.checks.push(Check::new(
        "coarse (2x2x2) beats fine (3x3x2) at equal subregion",
        series[0].y_last().unwrap() > series[3].y_last().unwrap(),
        format!(
            "(2x2x2): {:.3} vs (3x3x2): {:.3}",
            series[0].y_last().unwrap(),
            series[3].y_last().unwrap()
        ),
    ));
    r.tables.push(Table::from_series(
        "Figure 10 series",
        "subregion side",
        &series,
    ));
    r
}

/// Figure 11: 3D lattice Boltzmann speedup vs total problem size.
pub fn fig11(quick: bool) -> ExperimentResult {
    let mut r = ExperimentResult::new("fig11", "Parallel speedup, 3D lattice Boltzmann");
    let mut series = Vec::new();
    for (px, py, pz, label) in DECOMPS_3D {
        let mut s = Series::new(label);
        for side in sides_3d(quick) {
            let w = WorkloadSpec::new_3d(
                MethodKind::LatticeBoltzmann,
                (side * px, side * py, side * pz),
                (px, py, pz),
            );
            let total = (side * side * side * px * py * pz) as f64;
            s.push(
                total / 1.0e3,
                measure_efficiency(MeasureConfig::paper(w)).speedup,
            );
        }
        series.push(s);
    }
    // "the speedup does not improve when finer decompositions are employed
    // because the network is the bottleneck"
    let s8 = series[0].y_max();
    let s18 = series[3].y_max();
    r.checks.push(Check::new(
        "finer decompositions barely improve 3D speedup",
        s18 < s8 * 1.8,
        format!("best S(2x2x2) = {s8:.2}, best S(3x3x2) = {s18:.2} (18 procs vs 8)"),
    ));
    r.checks.push(Check::new(
        "3D speedup stays far below processor count",
        s18 < 13.0,
        format!("best S with 18 processors = {s18:.2}"),
    ));
    r.tables.push(Table::from_series(
        "Figure 11 series (x = total nodes / 1000)",
        "total kNodes",
        &series,
    ));
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_quick_passes() {
        let r = fig5(true);
        assert!(r.all_pass(), "{:#?}", r.checks);
    }

    #[test]
    fn fig9_quick_passes() {
        let r = fig9(true);
        assert!(r.all_pass(), "{:#?}", r.checks);
    }

    #[test]
    fn fig10_quick_passes() {
        let r = fig10(true);
        assert!(r.all_pass(), "{:#?}", r.checks);
    }
}
