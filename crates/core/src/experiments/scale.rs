//! E-scale: engine scalability sweep, 64 → 4096 simulated hosts.
//!
//! The paper ran on a pool of 25 workstations; section 9's outlook asks what
//! the methodology would look like on much larger clusters. This experiment
//! does not reproduce a paper artefact — it pins the *simulator's* scaling
//! behaviour after the PR 7 engine rewrite: the calendar event queue and the
//! virtual-service-time network model must keep per-event cost flat and
//! per-host memory bounded as the host count grows two orders of magnitude
//! past the paper's cluster, on both network topologies.
//!
//! Weak scaling: every host runs one process on a fixed-size subregion, so
//! the event load grows with the cluster while the per-host work stays
//! constant. Reported per point: simulated-events-per-wall-second and
//! engine KiB per host (queue + network model, capacity-based).

use crate::report::{Check, ExperimentResult, Series, Table};
use std::time::Instant;
use subsonic_cluster::host::HostKind;
use subsonic_cluster::sim::{ClusterConfig, ClusterSim};
use subsonic_cluster::workload::WorkloadSpec;
use subsonic_solvers::MethodKind;

/// One measured sweep point.
struct ScalePoint {
    events: u64,
    events_per_s: f64,
    engine_kib_per_host: f64,
    finished_at: f64,
}

/// Per-process subregion side: small enough that a 4096-host run finishes in
/// seconds of wall time, big enough that compute and halo phases interleave
/// realistically.
const TILE_SIDE: usize = 30;

fn run_point(hosts: usize, switched: bool, steps: u64) -> ScalePoint {
    let px = (hosts as f64).sqrt().round() as usize;
    let py = hosts / px;
    debug_assert_eq!(px * py, hosts, "host counts are perfect squares");
    let w = WorkloadSpec::new_2d(
        MethodKind::LatticeBoltzmann,
        TILE_SIDE * px,
        TILE_SIDE * py,
        px,
        py,
    );
    let mut cfg = ClusterConfig::measurement(w);
    // a homogeneous pool scaled to the sweep size (the paper's mixed pool
    // only has 25 machines)
    cfg.hosts = vec![HostKind::Hp715_50; hosts];
    if switched {
        cfg.net = cfg.net.switched();
    }
    let mut sim = ClusterSim::new(cfg);
    let t0 = Instant::now();
    let stats = sim.run(f64::INFINITY, Some(steps));
    let dt = t0.elapsed().as_secs_f64().max(1e-9);
    ScalePoint {
        events: sim.events_processed(),
        events_per_s: sim.events_processed() as f64 / dt,
        engine_kib_per_host: stats.engine_bytes as f64 / 1024.0 / hosts as f64,
        finished_at: stats.finished_at,
    }
}

/// Engine scalability sweep (see the module docs).
pub fn e_scale(quick: bool) -> ExperimentResult {
    let mut r = ExperimentResult::new("scale", "Engine scalability, 64-4096 hosts");
    let sizes: &[usize] = if quick {
        &[64, 256]
    } else {
        &[64, 256, 1024, 4096]
    };
    let steps = 5;
    let mut table = Table::new(
        "E-scale engine throughput and memory",
        &[
            "hosts",
            "topology",
            "events",
            "events/s",
            "engine KiB/host",
            "t_sim (s)",
        ],
    );
    let mut tput_shared = Series::new("shared bus");
    let mut tput_switched = Series::new("switched");
    let mut mem_worst = Series::new("engine KiB/host (worst topology)");
    for &n in sizes {
        let mut per_host = 0f64;
        for switched in [false, true] {
            let p = run_point(n, switched, steps);
            let topo = if switched { "switched" } else { "shared" };
            r.checks.push(Check::new(
                format!("{n}-host {topo} run completes all {steps} steps"),
                p.finished_at.is_finite() && p.finished_at > 0.0,
                format!(
                    "finished_at {:.3} s, {} events, {:.2e} events/s",
                    p.finished_at, p.events, p.events_per_s
                ),
            ));
            table.push_row(vec![
                n.to_string(),
                topo.to_string(),
                p.events.to_string(),
                format!("{:.3e}", p.events_per_s),
                format!("{:.1}", p.engine_kib_per_host),
                format!("{:.3}", p.finished_at),
            ]);
            if switched {
                tput_switched.push(n as f64, p.events_per_s);
            } else {
                tput_shared.push(n as f64, p.events_per_s);
            }
            per_host = per_host.max(p.engine_kib_per_host);
        }
        mem_worst.push(n as f64, per_host);
        // Bounded per-host memory: the engine's resident structures (event
        // queue + network model) must not grow superlinearly with the
        // cluster. 64 KiB/host is ~40x the steady-state need at 64 hosts —
        // room for bucket-capacity slack, not for an O(hosts) leak per host.
        r.checks.push(Check::new(
            format!("{n}-host engine memory stays bounded"),
            per_host < 64.0,
            format!("{per_host:.1} KiB/host (worst topology)"),
        ));
    }
    // Flat per-event cost: wall throughput at the largest size must hold a
    // material fraction of the smallest size's (an O(n) scan or O(log n)
    // blowup inside the hot path would crater this ratio).
    for (label, s) in [("shared", &tput_shared), ("switched", &tput_switched)] {
        let first = s.points.first().expect("non-empty sweep").1;
        let last = s.points.last().expect("non-empty sweep").1;
        r.checks.push(Check::new(
            format!("{label} throughput stays within 4x of the small-cluster rate"),
            last > first / 4.0,
            format!(
                "{:.2e} events/s at {} hosts vs {:.2e} at {} hosts",
                last,
                s.points.last().unwrap().0,
                first,
                s.points.first().unwrap().0
            ),
        ));
    }
    r.tables.push(table);
    r.tables.push(Table::from_series(
        "E-scale throughput series",
        "hosts",
        &[tput_shared, tput_switched],
    ));
    r.tables.push(Table::from_series(
        "E-scale memory series",
        "hosts",
        &[mem_worst],
    ));
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_quick() {
        let r = e_scale(true);
        assert!(r.all_pass(), "{:#?}", r.checks);
    }
}
