//! `dist` — the real multi-process runtime (section 5 made literal).
//!
//! Runs the same 2D channel job three ways through `subsonic-net`: clean
//! over in-memory links, faulted over TCP with a worker killed mid-run and
//! recovered by checkpoint shipping, and over reliable UDP with injected
//! datagram loss. Every variant must reproduce the single-process
//! `ThreadedRunner2` fields *bitwise* — distribution and recovery are
//! required to be invisible in the physics. The faulted run is recorded and
//! replayed without sockets as a determinism check, and its measured
//! recovery cost is compared against the calibrated [`RecoveryModel`].
//!
//! Worker hosting follows the environment: when `SUBSONIC_NET_WORKER_BIN`
//! is set (the `reproduce` binary points it at itself), the faulted run uses
//! real OS processes over loopback TCP and the kill is a genuine SIGKILL;
//! otherwise workers run as in-process threads over real sockets.

use super::ObsSession;
use crate::report::{Check, ExperimentResult, Table};
use std::sync::Arc;
use std::time::Instant;
use subsonic_exec::{GlobalFields2, Problem2, ThreadedRunner2};
use subsonic_grid::Geometry2;
use subsonic_model::RecoveryModel;
use subsonic_net::supervisor::{replay, ProcessHost};
use subsonic_net::{run_problem, NetConfig, NetKill, NetOutcome, ThreadHost, TransportKind};
use subsonic_obs::FlightRecorder;
use subsonic_solvers::{FluidParams, LatticeBoltzmann2, Solver2};

struct DistCase {
    label: &'static str,
    outcome: NetOutcome,
    wall_s: f64,
    bitwise: bool,
}

fn dist_problem(nx: usize, ny: usize) -> Problem2 {
    let geom = Geometry2::channel(nx, ny, 2);
    let mut params = FluidParams::lattice_units(0.05);
    params.body_force[0] = 1.5e-5;
    Problem2::new(geom, 2, 2, params)
        .with_init(|x, y| (1.0 + 1e-3 * (x as f64) + 2e-3 * (y as f64), 0.0, 0.0))
}

fn run_dir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("subsonic-dist-{}-{tag}", std::process::id()))
}

fn run_case(
    problem: &Problem2,
    cfg: &NetConfig,
    reference: &GlobalFields2,
    label: &'static str,
    recorder: &FlightRecorder,
) -> Result<DistCase, subsonic_net::NetError> {
    let t0 = Instant::now();
    let outcome = if cfg.transport == TransportKind::Tcp
        && std::env::var("SUBSONIC_NET_WORKER_BIN").is_ok()
    {
        let mut host = ProcessHost::from_env(cfg.run_dir.clone())?;
        run_problem(problem, cfg, &mut host, recorder)?
    } else {
        let mut host = ThreadHost::new();
        run_problem(problem, cfg, &mut host, recorder)?
    };
    let wall_s = t0.elapsed().as_secs_f64();
    let bitwise = reference.first_difference(&outcome.fields).is_none();
    Ok(DistCase {
        label,
        outcome,
        wall_s,
        bitwise,
    })
}

/// The `dist` experiment (see module docs).
pub fn e_dist(quick: bool) -> ExperimentResult {
    e_dist_obs(quick, None)
}

/// [`e_dist`] with an observability session: supervisor and worker tracks
/// land in the session's recorder (workers ship theirs over the control
/// link at shutdown).
pub fn e_dist_obs(quick: bool, obs: Option<&ObsSession>) -> ExperimentResult {
    let mut r = ExperimentResult::new(
        "dist",
        "multi-process runtime: sockets, SIGKILL recovery, record/replay",
    );
    let disabled = FlightRecorder::disabled();
    let recorder = obs.map(|o| &o.recorder).unwrap_or(&disabled);

    let (nx, ny, steps, interval) = if quick {
        (24, 16, 12, 4)
    } else {
        (48, 32, 24, 6)
    };
    let problem = dist_problem(nx, ny);
    let kill_at = interval + interval / 2; // mid second window
    let solver: Arc<dyn Solver2> = Arc::new(LatticeBoltzmann2);
    let reference = match ThreadedRunner2::new(solver, problem.clone()).run(steps) {
        Ok(res) => res.gather(nx, ny, 1.0),
        Err(e) => {
            r.checks
                .push(Check::new("reference run completes", false, e.to_string()));
            return r;
        }
    };

    let mut cases: Vec<DistCase> = Vec::new();
    let mut failures: Vec<String> = Vec::new();

    // 1. clean over in-memory links — the distribution baseline
    let cfg = NetConfig::new(TransportKind::Mem, steps, interval, run_dir("mem"));
    match run_case(&problem, &cfg, &reference, "mem clean", recorder) {
        Ok(c) => cases.push(c),
        Err(e) => failures.push(format!("mem clean: {e}")),
    }

    // 2. faulted over TCP, recorded: a worker dies at the kill fence and the
    //    job recovers from the shipped checkpoint
    let mut cfg = NetConfig::new(TransportKind::Tcp, steps, interval, run_dir("tcp"));
    cfg.record = true;
    cfg.kills = vec![NetKill {
        worker: 1,
        at_step: kill_at,
        attempt: 0,
    }];
    let tcp_record = match run_case(&problem, &cfg, &reference, "tcp + SIGKILL", recorder) {
        Ok(mut c) => {
            let record = c.outcome.record.take();
            cases.push(c);
            record
        }
        Err(e) => {
            failures.push(format!("tcp faulted: {e}"));
            None
        }
    };

    // 3. reliable UDP under a FaultPlan loss window: ~every 5th first
    //    transmission dropped, on every link, for the whole run
    let mut cfg = NetConfig::new(TransportKind::Udp, steps, interval, run_dir("udp"));
    cfg.faults =
        subsonic_cluster::fault::FaultPlan::empty().msg_fault(None, None, 0.0, 1e12, 0.2, 0.0, 0.0);
    cfg.chaos_seed = 0xd15c;
    match run_case(&problem, &cfg, &reference, "udp + drops", recorder) {
        Ok(c) => cases.push(c),
        Err(e) => failures.push(format!("udp drops: {e}")),
    }

    // 4. replay the recorded faulted run without sockets
    let replay_ok = match &tcp_record {
        Some(record) => match replay(&problem, record, &run_dir("replay"), recorder) {
            Ok(out) => {
                let bitwise = reference.first_difference(&out.fields).is_none();
                if !bitwise {
                    failures.push("replay diverged from reference fields".into());
                }
                bitwise
            }
            Err(e) => {
                failures.push(format!("replay: {e}"));
                false
            }
        },
        None => false,
    };

    let mut table = Table::new(
        "4 workers (2×2), one tile per worker",
        &[
            "variant",
            "restarts",
            "wall s",
            "recovery ms",
            "bitwise vs 1-process",
        ],
    );
    for c in &cases {
        let rec_ms: f64 = c
            .outcome
            .recovery_latency
            .iter()
            .map(|d| d.as_secs_f64() * 1e3)
            .sum();
        table.push_row(vec![
            c.label.to_string(),
            c.outcome.restarts.to_string(),
            format!("{:.3}", c.wall_s),
            if c.outcome.restarts > 0 {
                format!("{rec_ms:.1}")
            } else {
                "-".into()
            },
            if c.bitwise { "yes" } else { "NO" }.to_string(),
        ]);
    }
    r.tables.push(table);

    // model comparison: predict the faulted run's extra wall-clock from the
    // clean run's step rate plus the measured detection+restart latency,
    // and compare against what the fault actually cost
    if let (Some(clean), Some(faulted)) = (
        cases.iter().find(|c| c.label == "mem clean"),
        cases.iter().find(|c| c.outcome.restarts > 0),
    ) {
        let step_s = clean.wall_s / steps as f64;
        let fault = faulted.outcome.faults.first();
        let steps_lost = fault.map(|f| f.at_step - f.rollback_step).unwrap_or(0);
        let restart_s: f64 = faulted
            .outcome
            .recovery_latency
            .iter()
            .map(|d| d.as_secs_f64())
            .sum();
        let model = RecoveryModel {
            checkpoint_cost_s: 0.0, // both runs checkpoint identically
            detection_s: 0.0,       // the pause fence reports synchronously
            restart_s,
            mtbf_s: 1.0,
            fp_rate_per_s: 0.0,
        };
        let predicted_s = model.single_fault_cost_s(steps_lost as f64 * step_s);
        let measured_s = (faulted.wall_s - clean.wall_s).max(0.0);
        let mut t = Table::new(
            "recovery cost vs the calibrated model",
            &["quantity", "seconds"],
        );
        t.push_row(vec![
            "steps recomputed × step time".into(),
            format!("{:.4}", steps_lost as f64 * step_s),
        ]);
        t.push_row(vec![
            "measured detect→resume latency (R)".into(),
            format!("{restart_s:.4}"),
        ]);
        t.push_row(vec![
            "model single-fault cost".into(),
            format!("{predicted_s:.4}"),
        ]);
        t.push_row(vec![
            "measured extra wall-clock".into(),
            format!("{measured_s:.4}"),
        ]);
        r.tables.push(t);
        let ratio = if predicted_s > 0.0 {
            measured_s / predicted_s
        } else {
            f64::NAN
        };
        r.checks.push(Check::new(
            "measured fault cost within 5x of the model's single-fault prediction",
            ratio.is_finite() && (0.2..=5.0).contains(&ratio),
            format!("measured {measured_s:.3}s vs predicted {predicted_s:.3}s (ratio {ratio:.2})"),
        ));
    }

    r.checks.push(Check::new(
        "every transport reproduces the single-process fields bitwise",
        !cases.is_empty() && cases.iter().all(|c| c.bitwise),
        cases
            .iter()
            .map(|c| format!("{}: {}", c.label, if c.bitwise { "ok" } else { "DIVERGED" }))
            .collect::<Vec<_>>()
            .join(", "),
    ));
    r.checks.push(Check::new(
        "SIGKILL mid-run is recovered by checkpoint shipping (restarts == 1)",
        cases.iter().any(|c| c.outcome.restarts == 1 && c.bitwise),
        cases
            .iter()
            .map(|c| format!("{}: {} restarts", c.label, c.outcome.restarts))
            .collect::<Vec<_>>()
            .join(", "),
    ));
    r.checks.push(Check::new(
        "recorded faulted run replays deterministically without sockets",
        replay_ok,
        if replay_ok {
            "per-step hashes, receive digests and final fields all match"
        } else {
            "replay missing or diverged"
        },
    ));
    if !failures.is_empty() {
        r.checks.push(Check::new(
            "all runtime variants completed",
            false,
            failures.join("; "),
        ));
    }
    let hosted = if std::env::var("SUBSONIC_NET_WORKER_BIN").is_ok() {
        "TCP variant ran one OS process per tile (real SIGKILL)"
    } else {
        "SUBSONIC_NET_WORKER_BIN unset: workers hosted on threads over real sockets"
    };
    r.notes.push(hosted.to_string());
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dist_quick_passes_all_checks() {
        let r = e_dist(true);
        assert!(
            r.all_pass(),
            "dist checks failed: {:?}",
            r.checks
                .iter()
                .filter(|c| !c.pass)
                .map(|c| format!("{}: {}", c.name, c.detail))
                .collect::<Vec<_>>()
        );
        assert_eq!(r.tables.len(), 2);
    }
}
