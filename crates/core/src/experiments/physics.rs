//! Physics experiments: convergence, acoustics, the flue pipe, and real
//! threaded execution.

use crate::report::{Check, ExperimentResult, Table};
use crate::simulation::Simulation2;
use std::time::Instant;
use subsonic_grid::Geometry2;
use subsonic_solvers::diagnostics::{convergence_order, ProbeSeries};
use subsonic_solvers::fluepipe::FluePipeScenario;
use subsonic_solvers::{FluidParams, MethodKind};

/// L2 error of a decaying shear wave `vx = U sin(2πy/n) e^(−νk²t)` at
/// resolution `n` after a diffusively-scaled time.
fn shear_wave_error(method: MethodKind, n: usize, u0: f64) -> f64 {
    let nu = 0.05;
    let mut params = FluidParams::lattice_units(nu);
    params.filter_eps = 0.02;
    let k = 2.0 * std::f64::consts::PI / n as f64;
    // fixed physical decay: t = 0.4 n^2 lattice steps (diffusive scaling)
    let steps = (0.4 * (n * n) as f64).round() as usize;
    let mut sim = Simulation2::builder()
        .geometry(Geometry2::open(n, n, true, true))
        .method(method)
        .params(params)
        .init(move |_, y| (1.0, u0 * (k * y as f64).sin(), 0.0))
        .build();
    sim.run(steps);
    let f = sim.fields();
    let decay = (-nu * k * k * steps as f64).exp();
    let mut sum2 = 0.0;
    for y in 0..n {
        for x in 0..n {
            let want = u0 * (k * y as f64).sin() * decay;
            let e = f.vx[(x, y)] - want;
            sum2 += e * e;
        }
    }
    (sum2 / (n * n) as f64).sqrt() / u0
}

/// E-conv: both methods converge quadratically in space (section 7's
/// statement for the Hagen–Poiseuille problem; we use a decaying shear wave,
/// whose error is not annihilated by the stencils, as the convergence probe).
pub fn e_conv(quick: bool) -> ExperimentResult {
    let mut r = ExperimentResult::new("conv", "Quadratic spatial convergence of both methods");
    let ns: Vec<usize> = if quick {
        vec![16, 32]
    } else {
        vec![16, 32, 64]
    };
    let mut table = Table::new(
        "Relative L2 error of a decaying shear wave",
        &["n", "LB error", "FD error"],
    );
    let mut errs = [Vec::new(), Vec::new()];
    for &n in &ns {
        let lb = shear_wave_error(MethodKind::LatticeBoltzmann, n, 0.01);
        let fd = shear_wave_error(MethodKind::FiniteDifference, n, 0.01);
        errs[0].push(lb);
        errs[1].push(fd);
        table.push_row(vec![
            n.to_string(),
            format!("{lb:.3e}"),
            format!("{fd:.3e}"),
        ]);
    }
    r.tables.push(table);
    let hs: Vec<f64> = ns.iter().map(|&n| 1.0 / n as f64).collect();
    let p_lb = convergence_order(&hs, &errs[0]);
    let p_fd = convergence_order(&hs, &errs[1]);
    r.checks.push(Check::new(
        "LB converges ~quadratically",
        p_lb > 1.6 && p_lb < 3.0,
        format!("order {p_lb:.2}"),
    ));
    r.checks.push(Check::new(
        "FD converges ~quadratically",
        p_fd > 1.6 && p_fd < 3.0,
        format!("order {p_fd:.2}"),
    ));
    r.notes.push(
        "The paper demonstrates quadratic convergence on Hagen-Poiseuille \
         flow; a parabolic profile is reproduced exactly by centred stencils, \
         so we use a sinusoidal shear wave instead (same order, non-trivial \
         error). The filter's fourth-order dissipation accumulated over \
         diffusively-scaled step counts is itself second order, consistently."
            .into(),
    );
    r
}

/// E-acoustic: density pulses propagate at the speed of sound `c_s` and the
/// integration resolves them (the eq. 4 argument for explicit methods).
pub fn e_acoustic(quick: bool) -> ExperimentResult {
    let mut r = ExperimentResult::new("acoustic", "Acoustic pulse propagates at c_s");
    let nx = if quick { 160 } else { 240 };
    let ny = 16;
    let steps = if quick { 60 } else { 100 };
    let x0 = nx / 4;
    let sigma = 6.0;
    let amp = 1.0e-3;
    let mut table = Table::new(
        "Measured acoustic speed",
        &["method", "expected c_s", "measured", "rel. error"],
    );
    let mut ok = true;
    for method in [MethodKind::LatticeBoltzmann, MethodKind::FiniteDifference] {
        let params = FluidParams::lattice_units(0.02);
        let cs = params.cs;
        let mut sim = Simulation2::builder()
            .geometry(Geometry2::open(nx, ny, true, true))
            .method(method)
            .params(params)
            .init(move |x, _| {
                let d = x as f64 - x0 as f64;
                (1.0 + amp * (-d * d / (2.0 * sigma * sigma)).exp(), 0.0, 0.0)
            })
            .build();
        sim.run(steps);
        let f = sim.fields();
        // locate the right-going half-pulse with parabolic sub-cell fit
        let row = ny / 2;
        let mut best = (x0 + 1, f64::MIN);
        for x in (x0 + 8)..nx {
            let v = f.rho[(x, row)];
            if v > best.1 {
                best = (x, v);
            }
        }
        let (xc, _) = best;
        let (ym, y0, yp) = (f.rho[(xc - 1, row)], f.rho[(xc, row)], f.rho[(xc + 1, row)]);
        let denom = ym - 2.0 * y0 + yp;
        let frac = if denom.abs() > 1e-300 {
            0.5 * (ym - yp) / denom
        } else {
            0.0
        };
        let peak = xc as f64 + frac;
        let speed = (peak - x0 as f64) / steps as f64;
        let rel = (speed - cs).abs() / cs;
        ok &= rel < 0.05;
        table.push_row(vec![
            method.label().into(),
            format!("{cs:.4}"),
            format!("{speed:.4}"),
            format!("{:.2}%", rel * 100.0),
        ]);
    }
    r.tables.push(table);
    r.checks.push(Check::new(
        "pulse speed within 5% of c_s for both methods",
        ok,
        "peak of the right-going half-pulse, parabolic sub-cell fit",
    ));
    r
}

/// E-pipe: the flue-pipe jet oscillates and produces a tone (section 2).
pub fn e_pipe(quick: bool) -> ExperimentResult {
    let mut r = ExperimentResult::new("pipe", "Flue-pipe jet oscillation");
    let (nx, ny, steps) = if quick {
        (120, 72, 900)
    } else {
        (200, 120, 6000)
    };
    let scenario = FluePipeScenario::new(nx, ny, 0.12, false);
    let geom = scenario.geometry();
    let mut sim = Simulation2::builder()
        .geometry(geom)
        .method(MethodKind::LatticeBoltzmann)
        .params(scenario.params)
        .decompose(2, 2)
        .build();
    let (px, py) = scenario.probe;
    // a second probe on the jet axis halfway to the labium: the jet front
    // reaches it early, giving a robust "the jet formed" signal even in
    // short quick-mode runs
    let mid = (scenario.spec.edge_x() / 2, scenario.spec.jet_axis());
    let mut probe = ProbeSeries::new(scenario.params.dt);
    let sample_every = 3usize;
    let mut max_vx: f64 = 0.0;
    for s in 0..steps {
        sim.step();
        if s % sample_every == 0 {
            let (_, vx_mid, _) = sim.probe(mid.0, mid.1);
            max_vx = max_vx.max(vx_mid.abs());
            let (_, _, vy) = sim.probe(px, py);
            probe.push(vy);
        }
    }
    let mut probe_scaled = probe.clone();
    probe_scaled.dt = scenario.params.dt * sample_every as f64;
    let jet_u = scenario.params.inlet_velocity[0];
    r.checks.push(Check::new(
        "the jet forms and penetrates the cavity",
        max_vx > 0.3 * jet_u,
        format!("max |vx| on the jet axis = {max_vx:.4} vs jet {jet_u:.4}"),
    ));
    let rms = probe_scaled.rms();
    r.checks.push(Check::new(
        "transverse jet oscillation develops",
        rms > 0.02 * jet_u,
        format!("probe vy rms = {rms:.5}"),
    ));
    let mut table = Table::new("Jet diagnostics", &["quantity", "value"]);
    table.push_row(vec!["probe vy rms".into(), format!("{rms:.5}")]);
    if !quick {
        if let Some(freq) = probe_scaled.dominant_frequency() {
            let scale = scenario.expected_frequency_scale();
            table.push_row(vec![
                "dominant frequency (1/steps)".into(),
                format!("{freq:.5}"),
            ]);
            table.push_row(vec![
                "jet-drive scale 0.3 U/W".into(),
                format!("{scale:.5}"),
            ]);
            r.checks.push(Check::new(
                "oscillation frequency is of the jet-drive order",
                freq > scale / 10.0 && freq < scale * 10.0,
                format!("f = {freq:.5}, scale = {scale:.5}"),
            ));
        }
    }
    let f = sim.fields();
    let mass: f64 = (0..f.rho.ny())
        .flat_map(|y| (0..f.rho.nx()).map(move |x| (x, y)))
        .map(|(x, y)| f.rho[(x, y)])
        .sum();
    r.checks.push(Check::new(
        "simulation remains stable (finite fields)",
        mass.is_finite(),
        format!("total gathered density {mass:.1}"),
    ));
    r.tables.push(table);
    r.notes.push(format!(
        "Scaled-down domain {nx}x{ny} for {steps} steps (the paper used \
         800x500 for 70,000 steps over 12 wall-clock hours on 20 \
         workstations)."
    ));
    r
}

/// E-real: the real threaded runner on this machine — demonstrates the full
/// data plane (threads, channels, halo packing) and reports the measured
/// `T_calc`/`T_com` split.
pub fn e_real(quick: bool) -> ExperimentResult {
    let mut r = ExperimentResult::new("real", "Real thread-per-subregion execution");
    let side = if quick { 48 } else { 128 };
    let steps: u64 = if quick { 10 } else { 60 };
    let mut params = FluidParams::lattice_units(0.05);
    params.body_force[0] = 1e-5;
    let mut table = Table::new(
        "Threaded runner on this machine",
        &["P", "wall s/step", "mean utilisation g"],
    );
    let mut ok_bitwise = true;
    let mut utils = Vec::new();
    for (px, py) in [(1usize, 1usize), (2, 1), (2, 2)] {
        let build = || {
            Simulation2::builder()
                .geometry(Geometry2::channel(side, side, 2))
                .params(params)
                .decompose(px, py)
                .build()
        };
        let sim = build();
        let t0 = Instant::now();
        let (threaded, timing) = sim.run_threaded(steps);
        let wall = t0.elapsed().as_secs_f64() / steps as f64;
        let mut serial = build();
        serial.run(steps as usize);
        ok_bitwise &= serial.fields().first_difference(&threaded).is_none();
        let g = timing.iter().map(|(_, t)| t.utilization()).sum::<f64>() / timing.len() as f64;
        utils.push(g);
        table.push_row(vec![
            format!("{}", px * py),
            format!("{wall:.4}"),
            format!("{g:.3}"),
        ]);
    }
    r.tables.push(table);
    r.checks.push(Check::new(
        "threaded results are bitwise identical to serial",
        ok_bitwise,
        "gathered fields compared bit-for-bit",
    ));
    r.checks.push(Check::new(
        "per-tile T_calc/T_com instrumentation recorded",
        utils.iter().all(|g| (0.0..=1.0).contains(g)),
        format!("utilisations {utils:?}"),
    ));
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    r.notes.push(format!(
        "This machine exposes {cores} core(s); wall-clock speedup is only \
         meaningful when cores >= P, so the headline speedup figures are \
         reproduced on the simulated cluster instead (fig5-fig11)."
    ));
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acoustic_quick_passes() {
        let r = e_acoustic(true);
        assert!(r.all_pass(), "{:#?}", r.checks);
    }

    #[test]
    fn real_quick_passes() {
        let r = e_real(true);
        assert!(r.all_pass(), "{:#?}", r.checks);
    }
}
