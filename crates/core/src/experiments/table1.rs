//! T1 — the section-7 speed table.
//!
//! Two halves: (a) the *calibration* table the simulated cluster uses (the
//! paper's measured relative speeds, reproduced by construction), and (b) a
//! *real measurement* of this Rust implementation's node rates for the same
//! four (method, dimension) combinations on the present machine, with the
//! same normalisation (LB 2D ≡ 1.0).

use crate::report::{Check, ExperimentResult, Table};
use crate::simulation::{Simulation2, Simulation3};
use std::time::Instant;
use subsonic_grid::{Geometry2, Geometry3};
use subsonic_model::PaperConstants;
use subsonic_solvers::{FluidParams, MethodKind};

fn rate_2d(method: MethodKind, side: usize, steps: usize) -> f64 {
    let mut params = FluidParams::lattice_units(0.05);
    params.body_force[0] = 1e-6;
    let mut sim = Simulation2::builder()
        .geometry(Geometry2::channel(side, side, 2))
        .method(method)
        .params(params)
        .build();
    sim.run(3); // warm-up
    let t0 = Instant::now();
    sim.run(steps);
    let dt = t0.elapsed().as_secs_f64();
    (side * side * steps) as f64 / dt
}

fn rate_3d(method: MethodKind, side: usize, steps: usize) -> f64 {
    let mut params = FluidParams::lattice_units(0.05);
    params.body_force[0] = 1e-6;
    let mut sim = Simulation3::builder()
        .geometry(Geometry3::duct(side, side, side, 2))
        .method(method)
        .params(params)
        .build();
    sim.run(2);
    let t0 = Instant::now();
    sim.run(steps);
    let dt = t0.elapsed().as_secs_f64();
    (side * side * side * steps) as f64 / dt
}

/// Runs the T1 experiment.
pub fn t1(quick: bool) -> ExperimentResult {
    let mut r = ExperimentResult::new("t1", "Workstation speeds (section-7 table)");
    let c = PaperConstants::default();

    // (a) calibration table (paper numbers, used by the simulated hosts)
    let mut cal = Table::new(
        "Paper calibration (relative speeds; 1.0 = 39132 nodes/s)",
        &["method", "715/50", "710", "720"],
    );
    for (label, row) in [
        ("LB 2D", c.rel_speed_lb2d),
        ("LB 3D", c.rel_speed_lb3d),
        ("FD 2D", c.rel_speed_fd2d),
        ("FD 3D", c.rel_speed_fd3d),
    ] {
        cal.push_row(vec![
            label.into(),
            format!("{:.2}", row[0]),
            format!("{:.2}", row[1]),
            format!("{:.2}", row[2]),
        ]);
    }
    r.tables.push(cal);

    // (b) real node rates of this implementation
    let (side2, side3, steps) = if quick { (64, 16, 10) } else { (192, 40, 40) };
    let lb2 = rate_2d(MethodKind::LatticeBoltzmann, side2, steps);
    let fd2 = rate_2d(MethodKind::FiniteDifference, side2, steps);
    let lb3 = rate_3d(MethodKind::LatticeBoltzmann, side3, steps);
    let fd3 = rate_3d(MethodKind::FiniteDifference, side3, steps);

    let mut meas = Table::new(
        "This implementation (this machine; normalised to LB 2D = 1.0)",
        &["method", "nodes/s", "relative", "paper relative (715/50)"],
    );
    for (label, rate, paper) in [
        ("LB 2D", lb2, 1.0),
        ("LB 3D", lb3, c.rel_speed_lb3d[0]),
        ("FD 2D", fd2, c.rel_speed_fd2d[0]),
        ("FD 3D", fd3, c.rel_speed_fd3d[0]),
    ] {
        meas.push_row(vec![
            label.into(),
            format!("{:.0}", rate),
            format!("{:.2}", rate / lb2),
            format!("{:.2}", paper),
        ]);
    }
    r.tables.push(meas);

    r.checks.push(Check::new(
        "3D LB costs more per node than 2D LB (paper ratio 0.51)",
        lb3 < lb2,
        format!("LB3D/LB2D = {:.2}", lb3 / lb2),
    ));
    r.checks.push(Check::new(
        "FD and LB per-node costs are the same order of magnitude",
        (0.2..5.0).contains(&(fd2 / lb2)),
        format!("FD2D/LB2D = {:.2} (paper: 1.24)", fd2 / lb2),
    ));
    r.checks.push(Check::new(
        "modern hardware far exceeds the 715/50's 39132 nodes/s (LB 2D)",
        lb2 > 39_132.0,
        format!("measured {lb2:.0} nodes/s"),
    ));
    r.notes.push(
        "Absolute rates measure this machine, not the HP9000/700; the \
         simulated cluster uses the paper's calibration table (a). The \
         FD/LB cost ratio depends on implementation details (our LBM \
         carries 9/15 populations with a halo-3 exchange), so only its \
         order of magnitude is checked."
            .into(),
    );
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t1_quick_passes() {
        let r = t1(true);
        // the hardware-speed check may fail on debug builds; only verify the
        // structural checks here
        assert!(r.checks[0].pass, "{:?}", r.checks[0]);
        assert_eq!(r.tables.len(), 2);
        assert_eq!(r.tables[0].rows.len(), 4);
    }
}
