//! Figures 12–13: the closed-form efficiency model (exact reproduction),
//! plus the section-7 heterogeneous-pool validation.

use crate::report::{Check, ExperimentResult, Series, Table};
use subsonic_cluster::{measure_efficiency, MeasureConfig, WorkloadSpec};
use subsonic_model::{efficiency_2d_bus, efficiency_3d_bus, EfficiencyModel};
use subsonic_solvers::MethodKind;

/// Figure 12: model efficiency vs `N^(1/2)` for `(P, m)` =
/// `(4, 2), (9, 3), (16, 4), (20, 4)` with `U_calc/V_com = 2/3` (eq. 20).
pub fn fig12() -> ExperimentResult {
    let mut r = ExperimentResult::new(
        "fig12",
        "Theoretical model of parallel efficiency, 2D (eq. 20)",
    );
    let cases = [
        (4usize, 2.0, "(2x2)"),
        (9, 3.0, "(3x3)"),
        (16, 4.0, "(4x4)"),
        (20, 4.0, "(5x4)"),
    ];
    let mut series = Vec::new();
    for (p, m, label) in cases {
        let mut s = Series::new(format!("P={p} {label}"));
        for side in (20..=300).step_by(20) {
            let n = (side * side) as f64;
            s.push(side as f64, efficiency_2d_bus(n, p, m, 2.0 / 3.0));
        }
        series.push(s);
    }
    // checks straight from the formula's shape
    let f20_small = efficiency_2d_bus(40.0 * 40.0, 20, 4.0, 2.0 / 3.0);
    let f20_large = efficiency_2d_bus(300.0 * 300.0, 20, 4.0, 2.0 / 3.0);
    let f4_large = efficiency_2d_bus(300.0 * 300.0, 4, 2.0, 2.0 / 3.0);
    // eq. 20 at the paper's constants: f(150², P=20, m=4) ≈ 0.75, rising to
    // ≈ 0.86 at the 300² memory limit — bracketing the ~80% headline.
    r.checks.push(Check::new(
        "P=20 brackets the ~80% headline between 150^2 and 300^2",
        efficiency_2d_bus(150.0 * 150.0, 20, 4.0, 2.0 / 3.0) > 0.7
            && efficiency_2d_bus(300.0 * 300.0, 20, 4.0, 2.0 / 3.0) > 0.8,
        format!(
            "f(150^2) = {:.3}, f(300^2) = {:.3}",
            efficiency_2d_bus(150.0 * 150.0, 20, 4.0, 2.0 / 3.0),
            efficiency_2d_bus(300.0 * 300.0, 20, 4.0, 2.0 / 3.0)
        ),
    ));
    r.checks.push(Check::new(
        "efficiency grows with subregion size",
        f20_large > f20_small + 0.2,
        format!("f(40^2) = {f20_small:.3}, f(300^2) = {f20_large:.3}"),
    ));
    r.checks.push(Check::new(
        "fewer processors -> higher efficiency at equal N",
        f4_large > f20_large,
        format!("P=4: {f4_large:.3} vs P=20: {f20_large:.3}"),
    ));
    r.tables
        .push(Table::from_series("Figure 12 series", "sqrt(N)", &series));
    r
}

/// Figure 13: model efficiency vs P — 2D at `N = 125²` vs 3D at `N = 25³`,
/// `m = 2` (eqs. 20–21).
pub fn fig13() -> ExperimentResult {
    let mut r = ExperimentResult::new(
        "fig13",
        "Theoretical model: 2D vs 3D efficiency vs number of processors",
    );
    let mut s2 = Series::new("2D N=125^2 m=2");
    let mut s3 = Series::new("3D N=25^3 m=2");
    for p in 2..=20usize {
        s2.push(
            p as f64,
            efficiency_2d_bus(125.0 * 125.0, p, 2.0, 2.0 / 3.0),
        );
        s3.push(
            p as f64,
            efficiency_3d_bus(25.0f64.powi(3), p, 2.0, 2.0 / 3.0),
        );
    }
    let f2_20 = s2.y_last().unwrap();
    let f3_20 = s3.y_last().unwrap();
    r.checks.push(Check::new(
        "2D stays high at P=20",
        f2_20 > 0.8,
        format!("f_2D(P=20) = {f2_20:.3}"),
    ));
    r.checks.push(Check::new(
        "3D decays much faster (paper: 'decreases quickly')",
        f3_20 < 0.6,
        format!("f_3D(P=20) = {f3_20:.3}"),
    ));
    r.checks.push(Check::new(
        "comparable subregions: 125^2 ~ 25^3 ~ 14.5k nodes",
        (125.0f64 * 125.0 - 25.0f64.powi(3)).abs() < 1000.0,
        "both about 14,500-15,600 nodes per processor",
    ));
    r.tables
        .push(Table::from_series("Figure 13 series", "P", &[s2, s3]));
    r
}

/// Section-7 heterogeneity validation: simulated 16- vs 20-process step
/// times against the heterogeneous model `T_p = T_calc/rel_min + T_com`.
///
/// The sixteen-way run fits on the 715/50s (`rel_min = 1`); the twenty-way
/// run drafts the 0.86-relative 720s, and the per-step dependency coupling
/// pins the step to them. The paper's measured operating point is
/// t16 ≈ 0.73 s and t20 ≈ 0.86 s at 150² nodes per process.
pub fn hetero(quick: bool) -> ExperimentResult {
    let mut r = ExperimentResult::new(
        "hetero",
        "Heterogeneous pool: step time tracks the slowest machine (section 7)",
    );
    let sides: &[usize] = if quick { &[150] } else { &[150, 250] };
    let mut sim16 = Series::new("simulated t16 (4x4)");
    let mut sim20 = Series::new("simulated t20 (5x4)");
    let mut mod16 = Series::new("model t16");
    let mut mod20 = Series::new("model t20");
    for &side in sides {
        let w16 = WorkloadSpec::new_2d(MethodKind::LatticeBoltzmann, side * 4, side * 4, 4, 4);
        let w20 = WorkloadSpec::new_2d(MethodKind::LatticeBoltzmann, side * 5, side * 4, 5, 4);
        let m16 = measure_efficiency(MeasureConfig::paper(w16));
        let m20 = measure_efficiency(MeasureConfig::paper(w20));
        let n = (side * side) as f64;
        let t16 = EfficiencyModel::paper_2d(16, 4.0).t_step_hetero(n, 1.0);
        let t20 = EfficiencyModel::paper_2d(20, 4.0).t_step_hetero(n, 0.86);
        sim16.push(side as f64, m16.t_step);
        sim20.push(side as f64, m20.t_step);
        mod16.push(side as f64, t16);
        mod20.push(side as f64, t20);
        r.checks.push(Check::new(
            format!("t16 within 8% of the model at side {side}"),
            (m16.t_step - t16).abs() / t16 < 0.08,
            format!("sim {:.4} vs model {t16:.4}", m16.t_step),
        ));
        r.checks.push(Check::new(
            format!("t20 within 8% of the model at side {side}"),
            (m20.t_step - t20).abs() / t20 < 0.08,
            format!("sim {:.4} vs model {t20:.4}", m20.t_step),
        ));
        let ratio = m20.t_step / m16.t_step;
        r.checks.push(Check::new(
            format!("t20/t16 in [1.10, 1.25] at side {side}"),
            (1.10..1.25).contains(&ratio),
            format!("ratio {ratio:.4} (analytic compute bound 1/0.86 = 1.163)"),
        ));
        // the per-step decomposition attributes the stretch to blocked time
        r.checks.push(Check::new(
            format!("extra time is blocked-on-recv, not bus, at side {side}"),
            m20.t_step_blocked > m16.t_step_blocked
                && (m20.t_step_bus - m16.t_step_bus) < (m20.t_step - m16.t_step),
            format!(
                "blocked {:.4} -> {:.4}, bus {:.4} -> {:.4}",
                m16.t_step_blocked, m20.t_step_blocked, m16.t_step_bus, m20.t_step_bus
            ),
        ));
    }
    r.tables.push(Table::from_series(
        "Section-7 heterogeneity validation",
        "sqrt(N)",
        &[sim16, sim20, mod16, mod20],
    ));
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig12_checks_pass() {
        let r = fig12();
        assert!(r.all_pass(), "{:?}", r.checks);
        assert_eq!(r.tables.len(), 1);
        assert_eq!(r.tables[0].columns.len(), 5);
    }

    #[test]
    fn fig13_checks_pass() {
        let r = fig13();
        assert!(r.all_pass(), "{:?}", r.checks);
        // 19 P values
        assert_eq!(r.tables[0].rows.len(), 19);
    }

    #[test]
    fn hetero_checks_pass() {
        let r = hetero(true);
        assert!(r.all_pass(), "{:#?}", r.checks);
    }
}
