//! `chaos` — soak the real runtime under seeded, randomized fault schedules.
//!
//! Each schedule composes SIGKILLs, datagram loss/duplication/reordering
//! windows, network partitions and live migrations from one seed, runs the
//! same 2D channel job over reliable UDP with thread-hosted workers, and
//! demands the final fields be *bitwise* identical to an unfaulted
//! single-process `ThreadedRunner2` run. The soak also asserts the two
//! properties that make chaos testing trustworthy: regenerating a schedule
//! from its seed yields an identical fault plan, and re-running a faulted
//! seed end-to-end reproduces the identical fault sequence and committed
//! wire-fault counts. Loss-only plans must cause zero spurious respawns —
//! the measured false-positive rate feeds the [`RecoveryModel`]'s fp term,
//! which must then reduce to Young's interval. A dedicated clean-vs-kill
//! pair checks measured recovery cost against the model's single-fault
//! prediction.
//!
//! When `SUBSONIC_CHAOS_ARTIFACTS` names a directory, every schedule's
//! summary lands in `schedules.csv`, and a failing schedule leaves behind
//! `failed_<idx>.seed` plus its `RunRecord` for offline replay.

use super::ObsSession;
use crate::report::{Check, ExperimentResult, Table};
use rand::{rngs::SmallRng, Rng, SeedableRng};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;
use subsonic_cluster::fault::FaultPlan;
use subsonic_exec::{GlobalFields2, Problem2, ThreadedRunner2};
use subsonic_grid::Geometry2;
use subsonic_model::RecoveryModel;
use subsonic_net::{
    run_problem, ChaosSpec, NetConfig, NetKill, NetMigration, NetOutcome, ThreadHost, TransportKind,
};
use subsonic_obs::FlightRecorder;
use subsonic_solvers::{FluidParams, LatticeBoltzmann2, Solver2};

const NWORKERS: u32 = 4;
/// Schedule classes, cycled by index: every soak covers all of them.
const CLASSES: [&str; 5] = [
    "wire only",
    "kill + loss",
    "partition + kill",
    "migration + wire",
    "everything",
];

/// splitmix64 finaliser — schedule seeds out of the master seed.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn chaos_problem(nx: usize, ny: usize) -> Problem2 {
    let geom = Geometry2::channel(nx, ny, 2);
    let mut params = FluidParams::lattice_units(0.05);
    params.body_force[0] = 1.5e-5;
    Problem2::new(geom, 2, 2, params)
        .with_init(|x, y| (1.0 + 1e-3 * (x as f64) + 2e-3 * (y as f64), 0.0, 0.0))
}

fn run_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("subsonic-chaos-{}-{tag}", std::process::id()))
}

fn artifacts_dir() -> Option<PathBuf> {
    let dir = PathBuf::from(std::env::var("SUBSONIC_CHAOS_ARTIFACTS").ok()?);
    std::fs::create_dir_all(&dir).ok()?;
    Some(dir)
}

/// Builds schedule `idx` from the master seed: same `(master, idx)` in,
/// same fault plan out, always.
fn build_schedule(idx: usize, master: u64, steps: u64, interval: u64) -> NetConfig {
    let seed = mix(master ^ (idx as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut cfg = NetConfig::new(
        TransportKind::Udp,
        steps,
        interval,
        run_dir(&format!("s{idx}")),
    );
    cfg.record = true;
    cfg.chaos_seed = seed;

    let span = steps as f64;
    let mut wire_window = |plan: FaultPlan, loss: bool| -> FaultPlan {
        let at = rng.gen_range(0.0..span - 2.0);
        let duration = rng.gen_range(2.0..span);
        plan.msg_fault(
            None,
            None,
            at,
            duration,
            if loss { rng.gen_range(0.05..0.30) } else { 0.0 },
            rng.gen_range(0.0..0.5),
            rng.gen_range(0.0..0.5),
        )
    };
    let kill = |rng: &mut SmallRng| NetKill {
        worker: rng.gen_range(0..NWORKERS as usize) as u32,
        at_step: rng.gen_range(1..steps as usize - 1) as u64,
        attempt: 0,
    };
    let partition = |plan: FaultPlan, rng: &mut SmallRng| -> FaultPlan {
        let split = rng.gen_range(1..NWORKERS as usize);
        let (a, b): (Vec<usize>, Vec<usize>) = (0..NWORKERS as usize).partition(|&w| w < split);
        let at = rng.gen_range(0.0..0.06);
        let heal = rng.gen_range(0.08..0.20);
        plan.partition(vec![a, b], at, Some(heal))
    };
    // a commit boundary >= after_step must exist before the run ends, or
    // the migration never fires
    let migration = |rng: &mut SmallRng| NetMigration {
        worker: rng.gen_range(0..NWORKERS as usize) as u32,
        after_step: rng.gen_range(1..(steps - interval + 1) as usize) as u64,
    };

    let mut plan = FaultPlan::empty();
    match idx % CLASSES.len() {
        0 => {
            // wire only: loss + dup + reorder, no process faults
            plan = wire_window(plan, true);
            plan = wire_window(plan, false);
        }
        1 => {
            plan = wire_window(plan, true);
            cfg.kills = vec![kill(&mut rng)];
        }
        2 => {
            plan = partition(plan, &mut rng);
            cfg.kills = vec![kill(&mut rng)];
        }
        3 => {
            plan = wire_window(plan, false);
            cfg.migrations = vec![migration(&mut rng)];
        }
        _ => {
            plan = wire_window(plan, true);
            plan = partition(plan, &mut rng);
            cfg.kills = vec![kill(&mut rng)];
            cfg.migrations = vec![migration(&mut rng)];
        }
    }
    cfg.faults = plan;
    cfg
}

struct SoakRun {
    idx: usize,
    class: &'static str,
    seed: u64,
    outcome: NetOutcome,
    wall_s: f64,
    bitwise: bool,
}

fn run_udp(
    problem: &Problem2,
    cfg: &NetConfig,
    recorder: &FlightRecorder,
) -> Result<(NetOutcome, f64), subsonic_net::NetError> {
    let t0 = Instant::now();
    let mut host = ThreadHost::new();
    let outcome = run_problem(problem, cfg, &mut host, recorder)?;
    Ok((outcome, t0.elapsed().as_secs_f64()))
}

/// The `chaos` experiment (see module docs).
pub fn e_chaos(quick: bool) -> ExperimentResult {
    e_chaos_obs(quick, None)
}

/// [`e_chaos`] with an observability session.
pub fn e_chaos_obs(quick: bool, obs: Option<&ObsSession>) -> ExperimentResult {
    let mut r = ExperimentResult::new(
        "chaos",
        "soak the runtime under seeded kill/loss/reorder/partition/migration schedules",
    );
    let disabled = FlightRecorder::disabled();
    let recorder = obs.map(|o| &o.recorder).unwrap_or(&disabled);

    let (nx, ny, steps, interval) = (24, 16, 12, 4);
    let nsched = if quick { 20 } else { 25 };
    let master = 0x00c4_a05c_4a05_u64;
    let problem = chaos_problem(nx, ny);
    let solver: Arc<dyn Solver2> = Arc::new(LatticeBoltzmann2);
    let reference: GlobalFields2 = match ThreadedRunner2::new(solver, problem.clone()).run(steps) {
        Ok(res) => res.gather(nx, ny, 1.0),
        Err(e) => {
            r.checks
                .push(Check::new("reference run completes", false, e.to_string()));
            return r;
        }
    };

    // every schedule must regenerate identically from its seed — the fault
    // plan compiles to the same wire spec both times
    let mut regen_ok = true;
    for idx in 0..nsched {
        let a = build_schedule(idx, master, steps, interval);
        let b = build_schedule(idx, master, steps, interval);
        let same = ChaosSpec::compile(&a.faults, a.chaos_seed, NWORKERS)
            == ChaosSpec::compile(&b.faults, b.chaos_seed, NWORKERS)
            && a.kills.len() == b.kills.len()
            && a.migrations.len() == b.migrations.len();
        regen_ok &= same;
    }

    // the soak
    let mut runs: Vec<SoakRun> = Vec::new();
    let mut failures: Vec<String> = Vec::new();
    for idx in 0..nsched {
        let cfg = build_schedule(idx, master, steps, interval);
        let class = CLASSES[idx % CLASSES.len()];
        match run_udp(&problem, &cfg, recorder) {
            Ok((outcome, wall_s)) => {
                let bitwise = reference.first_difference(&outcome.fields).is_none();
                if !bitwise {
                    failures.push(format!("schedule {idx} ({class}) diverged"));
                    if let Some(dir) = artifacts_dir() {
                        let _ = std::fs::write(
                            dir.join(format!("failed_{idx}.seed")),
                            format!("master={master:#x} idx={idx} seed={:#x}\n", cfg.chaos_seed),
                        );
                        if let Some(record) = &outcome.record {
                            let _ = record.save(&dir.join(format!("failed_{idx}.record")));
                        }
                    }
                }
                runs.push(SoakRun {
                    idx,
                    class,
                    seed: cfg.chaos_seed,
                    outcome,
                    wall_s,
                    bitwise,
                });
            }
            Err(e) => {
                failures.push(format!("schedule {idx} ({class}): {e}"));
                if let Some(dir) = artifacts_dir() {
                    let _ = std::fs::write(
                        dir.join(format!("failed_{idx}.seed")),
                        format!(
                            "master={master:#x} idx={idx} seed={:#x} error={e}\n",
                            cfg.chaos_seed
                        ),
                    );
                }
            }
        }
    }

    // determinism under faults: re-run one kill+loss schedule end-to-end
    // and demand the identical fault sequence and committed wire counts
    let rerun_ok = {
        let idx = 1; // class "kill + loss"
        let cfg = build_schedule(idx, master, steps, interval);
        match (
            runs.iter().find(|s| s.idx == idx),
            run_udp(&problem, &cfg, recorder),
        ) {
            (Some(first), Ok((again, _))) => {
                let faults_same = first.outcome.faults == again.faults;
                // the partition slot is wall-clock gated; loss/dup/reorder
                // committed totals must be exact
                let chaos_same = first.outcome.chaos[..3] == again.chaos[..3];
                let fields_same = first
                    .outcome
                    .fields
                    .first_difference(&again.fields)
                    .is_none();
                if !(faults_same && chaos_same && fields_same) {
                    failures.push(format!(
                        "re-run of schedule {idx} diverged (faults {faults_same}, wire counts {chaos_same}, fields {fields_same})"
                    ));
                }
                faults_same && chaos_same && fields_same
            }
            (_, Err(e)) => {
                failures.push(format!("re-run of schedule 1: {e}"));
                false
            }
            _ => false,
        }
    };

    // recovery-cost model check on a dedicated clean-vs-kill pair (the soak
    // walls are too noisy: wire faults stretch them on purpose)
    let mut model_check: Option<Check> = None;
    let mut fp_check: Option<Check> = None;
    {
        let clean_cfg = NetConfig::new(TransportKind::Udp, steps, interval, run_dir("clean"));
        let mut kill_cfg = NetConfig::new(TransportKind::Udp, steps, interval, run_dir("kill"));
        kill_cfg.kills = vec![NetKill {
            worker: 1,
            at_step: interval + interval / 2,
            attempt: 0,
        }];
        match (
            run_udp(&problem, &clean_cfg, recorder),
            run_udp(&problem, &kill_cfg, recorder),
        ) {
            (Ok((_, clean_wall)), Ok((killed, killed_wall))) => {
                let step_s = clean_wall / steps as f64;
                let steps_lost = killed
                    .faults
                    .first()
                    .map(|f| f.at_step - f.rollback_step)
                    .unwrap_or(0);
                let restart_s: f64 = killed
                    .recovery_latency
                    .iter()
                    .map(|d| d.as_secs_f64())
                    .sum();
                // the measured false-positive rate: spurious respawns per
                // wire-only soak second (must be zero)
                let wire_only: Vec<&SoakRun> =
                    runs.iter().filter(|s| s.class == "wire only").collect();
                let spurious: u32 = wire_only.iter().map(|s| s.outcome.restarts).sum();
                let wire_wall: f64 = wire_only.iter().map(|s| s.wall_s).sum();
                let fp_rate = if wire_wall > 0.0 {
                    f64::from(spurious) / wire_wall
                } else {
                    f64::NAN
                };
                let model = RecoveryModel {
                    checkpoint_cost_s: 0.01,
                    detection_s: 0.0, // the pause fence reports synchronously
                    restart_s,
                    mtbf_s: 100.0,
                    fp_rate_per_s: fp_rate,
                };
                let predicted_s = model.single_fault_cost_s(steps_lost as f64 * step_s);
                let measured_s = (killed_wall - clean_wall).max(0.0);
                let ratio = if predicted_s > 0.0 {
                    measured_s / predicted_s
                } else {
                    f64::NAN
                };
                model_check = Some(Check::new(
                    "measured kill recovery within 5x of the RecoveryModel prediction",
                    ratio.is_finite() && (0.2..=5.0).contains(&ratio),
                    format!(
                        "measured {measured_s:.3}s vs predicted {predicted_s:.3}s (ratio {ratio:.2})"
                    ),
                ));
                // with fp measured at zero the model's optimal interval must
                // reduce to Young's sqrt(2*C*MTBF)
                let young = (2.0 * model.checkpoint_cost_s * model.mtbf_s).sqrt();
                let opt = model.optimal_interval_s();
                fp_check = Some(Check::new(
                    "zero measured false positives: model fp term reduces to Young's interval",
                    fp_rate == 0.0 && (opt - young).abs() < 1e-9,
                    format!(
                        "fp rate {fp_rate:.4}/s over {wire_wall:.2}s wire-only soak; optimal {opt:.3}s vs Young {young:.3}s"
                    ),
                ));
            }
            (a, b) => {
                let mut msgs = Vec::new();
                if let Err(e) = a {
                    msgs.push(format!("clean: {e}"));
                }
                if let Err(e) = b {
                    msgs.push(format!("killed: {e}"));
                }
                failures.push(format!("model pair: {}", msgs.join("; ")));
            }
        }
    }

    // schedule table + CSV artifact
    let mut table = Table::new(
        "soak schedules (UDP, 4 thread-hosted workers, 2×2)",
        &[
            "idx", "class", "seed", "restarts", "migr", "soft", "loss", "dup", "reord", "part",
            "bitwise",
        ],
    );
    let mut csv = String::from(
        "idx,seed,class,restarts,migrations,window_retries,chaos_loss,chaos_dup,chaos_reorder,chaos_partition,bitwise\n",
    );
    for s in &runs {
        let o = &s.outcome;
        table.push_row(vec![
            s.idx.to_string(),
            s.class.to_string(),
            format!("{:08x}", s.seed as u32),
            o.restarts.to_string(),
            o.migrations.to_string(),
            o.window_retries.to_string(),
            o.chaos[0].to_string(),
            o.chaos[1].to_string(),
            o.chaos[2].to_string(),
            o.chaos[3].to_string(),
            if s.bitwise { "yes" } else { "NO" }.to_string(),
        ]);
        csv.push_str(&format!(
            "{},{:#x},{},{},{},{},{},{},{},{},{}\n",
            s.idx,
            s.seed,
            s.class.replace(' ', "_"),
            o.restarts,
            o.migrations,
            o.window_retries,
            o.chaos[0],
            o.chaos[1],
            o.chaos[2],
            o.chaos[3],
            s.bitwise
        ));
    }
    r.tables.push(table);
    if let Some(dir) = artifacts_dir() {
        let _ = std::fs::write(dir.join("schedules.csv"), csv);
        r.notes
            .push(format!("schedule summaries in {}", dir.display()));
    }

    let wire_injected: u64 = runs
        .iter()
        .map(|s| s.outcome.chaos[..3].iter().sum::<u64>())
        .sum();
    let kills_recovered: u32 = runs.iter().map(|s| s.outcome.restarts).sum();
    let migrations_done: u32 = runs.iter().map(|s| s.outcome.migrations).sum();
    r.notes.push(format!(
        "{} schedules: {wire_injected} wire faults injected, {kills_recovered} restarts, {migrations_done} migrations",
        runs.len()
    ));

    r.checks.push(Check::new(
        "every fault schedule reproduces the unfaulted fields bitwise",
        runs.len() == nsched && runs.iter().all(|s| s.bitwise),
        format!(
            "{}/{} schedules bitwise-identical to the single-process reference",
            runs.iter().filter(|s| s.bitwise).count(),
            nsched
        ),
    ));
    let wire_only_spurious: u32 = runs
        .iter()
        .filter(|s| s.class == "wire only")
        .map(|s| s.outcome.restarts)
        .sum();
    r.checks.push(Check::new(
        "wire-only plans cause zero spurious worker respawns",
        runs.iter().any(|s| s.class == "wire only") && wire_only_spurious == 0,
        format!("{wire_only_spurious} spurious respawns across wire-only schedules"),
    ));
    r.checks.push(Check::new(
        "regenerating every schedule from its seed yields an identical fault plan",
        regen_ok,
        "compiled wire specs and process-fault schedules compared",
    ));
    r.checks.push(Check::new(
        "re-running a faulted seed reproduces the identical fault sequence",
        rerun_ok,
        "fault records, committed loss/dup/reorder counts and fields all equal",
    ));
    if let Some(c) = model_check {
        r.checks.push(c);
    }
    if let Some(c) = fp_check {
        r.checks.push(c);
    }
    if !failures.is_empty() {
        r.checks.push(Check::new(
            "all soak schedules completed",
            false,
            failures.join("; "),
        ));
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_regenerate_identically_and_cover_all_classes() {
        let steps = 12;
        let mut seen = [false; CLASSES.len()];
        for idx in 0..20 {
            let a = build_schedule(idx, 0xfeed, steps, 4);
            let b = build_schedule(idx, 0xfeed, steps, 4);
            assert_eq!(
                ChaosSpec::compile(&a.faults, a.chaos_seed, NWORKERS),
                ChaosSpec::compile(&b.faults, b.chaos_seed, NWORKERS),
                "schedule {idx} did not regenerate"
            );
            assert_eq!(a.kills.len(), b.kills.len());
            assert_eq!(a.migrations.len(), b.migrations.len());
            for (x, y) in a.kills.iter().zip(&b.kills) {
                assert_eq!(
                    (x.worker, x.at_step, x.attempt),
                    (y.worker, y.at_step, y.attempt)
                );
            }
            seen[idx % CLASSES.len()] = true;
            // kills must land strictly inside the run so the fence can fire
            for k in &a.kills {
                assert!(k.at_step >= 1 && k.at_step < steps);
                assert!(k.worker < NWORKERS);
            }
            for m in &a.migrations {
                assert!(m.after_step >= 1 && m.after_step < steps);
                assert!(m.worker < NWORKERS);
            }
        }
        assert!(seen.iter().all(|&s| s), "a schedule class never appeared");
        // different master seed, different plans (wire specs keyed off seed)
        let a = build_schedule(0, 0xfeed, steps, 4);
        let c = build_schedule(0, 0xbeef, steps, 4);
        assert_ne!(a.chaos_seed, c.chaos_seed);
    }
}
