//! E-faults: recovery cost vs checkpoint interval, event simulation vs the
//! analytic model.
//!
//! The paper's runtime survives workstation loss by restarting the dead
//! subprocess from the last coordinated checkpoint (section 4.1). That makes
//! the checkpoint interval a tunable with a classic trade: tight intervals
//! pay frequent save pauses, loose intervals pay long recomputation after a
//! crash. [`subsonic_model::RecoveryModel`] prices the trade in closed form
//! (Young's formula); this experiment validates the closed form against the
//! discrete-event cluster simulation with one injected host crash, sweeping
//! the checkpoint interval and comparing the simulated extra wall-clock
//! against the prediction.
//!
//! Calibration protocol (all runs are seeded and deterministic):
//!
//! 1. a faultless, checkpoint-free run measures the baseline `T0` and the
//!    per-step time;
//! 2. a faultless checkpointing run at a calibration interval measures the
//!    cost `C` of one coordinated round;
//! 3. a crashed run at the same interval measures the restart cost `R`
//!    (host search + dump reload + handshake) after subtracting the known
//!    detection latency `D` and the recomputation;
//! 4. the sweep then *predicts* each interval's recovery cost as
//!    `(lost · t_step + D + R) / (1 − C/I)` — the denominator prices the
//!    checkpoint rounds the recomputation itself pays — and compares against
//!    the simulated cost. The acceptance bar is 15% agreement.

use super::ObsSession;
use crate::report::{Check, ExperimentResult, Table};
use subsonic_cluster::{ClusterConfig, ClusterSim, ClusterStats, FaultPlan, WorkloadSpec};
use subsonic_model::RecoveryModel;
use subsonic_obs::FlightRecorder;
use subsonic_solvers::MethodKind;

/// Nominal pool MTBF used for the availability / optimal-interval columns:
/// 25 hosts at a 50-hour per-host crash MTBF, i.e. one crash somewhere every
/// two hours. (The sweep injects exactly one crash per run; the MTBF only
/// scales the model's availability mapping, not the validated costs.)
const NOMINAL_MTBF_S: f64 = 2.0 * 3600.0;

/// One swept checkpoint interval.
#[derive(Debug, Clone, Copy)]
pub struct SweepPoint {
    /// Checkpoint interval, seconds.
    pub interval_s: f64,
    /// Coordinated rounds completed in the faultless checkpointing run.
    pub rounds: u64,
    /// Simulated checkpointing overhead: faultless-with-checkpoints runtime
    /// minus the checkpoint-free baseline, seconds.
    pub ckpt_overhead_s: f64,
    /// Steps the victim had computed past the rollback checkpoint.
    pub lost_steps: u64,
    /// Simulated recovery cost: crashed runtime minus the faultless
    /// checkpointing runtime at the same interval, seconds.
    pub sim_extra_s: f64,
    /// The model's predicted recovery cost, seconds.
    pub model_extra_s: f64,
    /// Model availability at this interval under the nominal MTBF.
    pub availability: f64,
    /// Recoveries observed in the crashed run (must be exactly 1).
    pub recoveries: usize,
    /// Whether the recovery was a detector false positive (must be false).
    pub false_positive: bool,
}

/// The full sweep plus its calibrated model.
pub struct RecoverySweep {
    /// The calibrated recovery-cost model.
    pub model: RecoveryModel,
    /// Checkpoint-free, fault-free baseline runtime, seconds.
    pub baseline_s: f64,
    /// Mean wall-clock per integration step in the baseline run.
    pub t_step_s: f64,
    /// The swept intervals, tightest first.
    pub points: Vec<SweepPoint>,
}

impl RecoverySweep {
    /// Largest relative disagreement between simulated and predicted
    /// recovery cost over the sweep.
    pub fn max_rel_err(&self) -> f64 {
        self.points
            .iter()
            .map(|p| (p.sim_extra_s - p.model_extra_s).abs() / p.sim_extra_s.max(1e-9))
            .fold(0.0, f64::max)
    }
}

/// Runs the calibration and the interval sweep. `quick` shrinks the run
/// length; the intervals scale with the measured baseline so both modes
/// exercise the same tight-to-loose range.
pub fn recovery_sweep(quick: bool) -> RecoverySweep {
    recovery_sweep_obs(quick, None)
}

/// [`recovery_sweep`] with observability attached: the tightest-interval
/// crashed run records its timeline (compute, halo waits, checkpoint saves,
/// detection, recovery) into `obs.recorder`, and the sweep publishes its
/// calibration and headline numbers into `obs.metrics`.
pub fn recovery_sweep_obs(quick: bool, obs: Option<&ObsSession>) -> RecoverySweep {
    let steps: u64 = if quick { 1200 } else { 3000 };
    let workload = || WorkloadSpec::new_2d(MethodKind::LatticeBoltzmann, 3 * 60, 2 * 60, 3, 2);
    let cfg_with = |period: Option<f64>, faults: FaultPlan| -> ClusterConfig {
        let mut cfg = ClusterConfig::measurement(workload());
        cfg.checkpoint_period_s = period;
        cfg.checkpoint_gap_s = 2.0;
        cfg.faults = faults;
        cfg
    };
    let run_with = |cfg: ClusterConfig, rec: Option<&FlightRecorder>| -> ClusterStats {
        let mut sim = ClusterSim::new(cfg);
        if let Some(rec) = rec {
            sim = sim.with_recorder(rec);
        }
        sim.run(1.0e9, Some(steps))
    };
    let run = |cfg: ClusterConfig| -> ClusterStats { run_with(cfg, None) };

    // 1. checkpoint-free, fault-free baseline
    let base = run(cfg_with(None, FaultPlan::empty()));
    let t0 = base.finished_at;
    let t_step = t0 / steps as f64;
    let detection_s = cfg_with(None, FaultPlan::empty())
        .detector
        .detection_latency();

    // the crash always lands on process 2's host, late enough that even the
    // loosest swept interval has completed a coordinated round
    let victim_host = ClusterSim::new(cfg_with(None, FaultPlan::empty())).placements()[2];
    let fault_at = 0.7 * t0;
    let crash = || FaultPlan::empty().crash(victim_host, fault_at, None);

    // 2. calibrate the per-round checkpoint cost C
    let i_cal = t0 / 6.0;
    let cal = run(cfg_with(Some(i_cal), FaultPlan::empty()));
    let checkpoint_cost_s = (cal.finished_at - t0) / cal.checkpoint_rounds.max(1) as f64;

    // 3. calibrate the restart cost R from one crashed run at the same
    //    interval: what is left of the extra wall-clock after subtracting
    //    the recomputation, the detection latency and the extra checkpoint
    //    rounds the longer run paid
    let cal_f = run(cfg_with(Some(i_cal), crash()));
    let cal_rec = cal_f.recoveries.first().copied();
    let restart_s = match cal_rec {
        Some(r) => {
            let extra = cal_f.finished_at - cal.finished_at;
            let extra_rounds = cal_f
                .checkpoint_rounds
                .saturating_sub(cal.checkpoint_rounds);
            (extra
                - r.lost_steps as f64 * t_step
                - detection_s
                - extra_rounds as f64 * checkpoint_cost_s)
                .max(0.0)
        }
        None => 0.0,
    };

    let model = RecoveryModel {
        checkpoint_cost_s,
        detection_s,
        restart_s,
        mtbf_s: NOMINAL_MTBF_S,
        // the sweep injects real crashes only; the partition experiment is
        // where detector false positives enter the picture
        fp_rate_per_s: 0.0,
    };

    // 4. the sweep: tight, medium, loose (fractions of the baseline so the
    //    loosest interval still completes a round before the crash)
    let mut points = Vec::new();
    for (idx, interval) in [t0 / 8.0, t0 / 4.0, t0 / 2.0].into_iter().enumerate() {
        let ck = run(cfg_with(Some(interval), FaultPlan::empty()));
        // the tightest-interval crashed run is the one worth a timeline: it
        // shows checkpoint rounds, the crash, detection and the recovery
        let recorder = if idx == 0 {
            obs.map(|o| &o.recorder)
        } else {
            None
        };
        let fl = run_with(cfg_with(Some(interval), crash()), recorder);
        if let (Some(o), Some(_)) = (obs, recorder) {
            fl.publish(&o.metrics, "faults.crashed_run");
        }
        let rec = fl.recoveries.first().copied();
        let lost_steps = rec.map(|r| r.lost_steps).unwrap_or(0);
        let sim_extra_s = fl.finished_at - ck.finished_at;
        let gross = lost_steps as f64 * t_step + detection_s + restart_s;
        let model_extra_s = gross / (1.0 - (checkpoint_cost_s / interval).min(0.5));
        points.push(SweepPoint {
            interval_s: interval,
            rounds: ck.checkpoint_rounds,
            ckpt_overhead_s: ck.finished_at - t0,
            lost_steps,
            sim_extra_s,
            model_extra_s,
            availability: model.availability(interval),
            recoveries: fl.recoveries.len(),
            false_positive: rec.map(|r| r.false_positive).unwrap_or(false),
        });
    }

    let sweep = RecoverySweep {
        model,
        baseline_s: t0,
        t_step_s: t_step,
        points,
    };
    if let Some(o) = obs {
        let m = &o.metrics;
        m.gauge_set("faults.baseline_s", sweep.baseline_s, "s");
        m.gauge_set("faults.t_step", sweep.t_step_s, "s");
        m.gauge_set("faults.checkpoint_cost", sweep.model.checkpoint_cost_s, "s");
        m.gauge_set("faults.detection", sweep.model.detection_s, "s");
        m.gauge_set("faults.restart", sweep.model.restart_s, "s");
        m.gauge_set(
            "faults.optimal_interval",
            sweep.model.optimal_interval_s(),
            "s",
        );
        m.gauge_set("faults.max_rel_err", sweep.max_rel_err(), "ratio");
        for p in &sweep.points {
            m.histogram_observe("faults.sim_extra", p.sim_extra_s, "s");
            m.histogram_observe("faults.model_extra", p.model_extra_s, "s");
        }
    }
    sweep
}

/// E-faults: the recovery-cost/availability figure (see module docs).
pub fn e_faults(quick: bool) -> ExperimentResult {
    e_faults_obs(quick, None)
}

/// [`e_faults`] with observability: see [`recovery_sweep_obs`].
pub fn e_faults_obs(quick: bool, obs: Option<&ObsSession>) -> ExperimentResult {
    let mut r = ExperimentResult::new(
        "faults",
        "Recovery cost vs checkpoint interval: simulation vs analytic model",
    );
    let sweep = recovery_sweep_obs(quick, obs);
    let m = &sweep.model;

    let mut calib = Table::new(
        "Calibrated recovery-model parameters",
        &["parameter", "value", "unit"],
    );
    calib.push_row(vec![
        "baseline runtime T0".into(),
        format!("{:.1}", sweep.baseline_s),
        "s".into(),
    ]);
    calib.push_row(vec![
        "step time".into(),
        format!("{:.4}", sweep.t_step_s),
        "s".into(),
    ]);
    calib.push_row(vec![
        "checkpoint round C".into(),
        format!("{:.2}", m.checkpoint_cost_s),
        "s".into(),
    ]);
    calib.push_row(vec![
        "detection D".into(),
        format!("{:.1}", m.detection_s),
        "s".into(),
    ]);
    calib.push_row(vec![
        "restart R".into(),
        format!("{:.2}", m.restart_s),
        "s".into(),
    ]);
    calib.push_row(vec![
        "nominal pool MTBF".into(),
        format!("{:.0}", m.mtbf_s),
        "s".into(),
    ]);
    calib.push_row(vec![
        "Young optimum I*".into(),
        format!("{:.0}", m.optimal_interval_s()),
        "s".into(),
    ]);
    r.tables.push(calib);

    let mut sw = Table::new(
        "Recovery cost vs checkpoint interval (one injected host crash)",
        &[
            "interval (s)",
            "ckpt rounds",
            "ckpt overhead (s)",
            "lost steps",
            "recovery cost sim (s)",
            "recovery cost model (s)",
            "err %",
            "availability (model)",
        ],
    );
    for p in &sweep.points {
        let err = 100.0 * (p.sim_extra_s - p.model_extra_s).abs() / p.sim_extra_s.max(1e-9);
        sw.push_row(vec![
            format!("{:.0}", p.interval_s),
            p.rounds.to_string(),
            format!("{:.1}", p.ckpt_overhead_s),
            p.lost_steps.to_string(),
            format!("{:.1}", p.sim_extra_s),
            format!("{:.1}", p.model_extra_s),
            format!("{:.1}", err),
            format!("{:.4}", p.availability),
        ]);
    }
    r.tables.push(sw);

    r.checks.push(Check::new(
        "calibration is sane (C > 0, R >= 0, every interval checkpoints)",
        m.checkpoint_cost_s > 0.0
            && m.restart_s >= 0.0
            && sweep.points.iter().all(|p| p.rounds >= 1),
        format!("C {:.2} s, R {:.2} s", m.checkpoint_cost_s, m.restart_s),
    ));
    r.checks.push(Check::new(
        "one injected crash triggers exactly one true-positive recovery",
        sweep
            .points
            .iter()
            .all(|p| p.recoveries == 1 && !p.false_positive),
        format!(
            "recoveries per interval: {:?}",
            sweep
                .points
                .iter()
                .map(|p| p.recoveries)
                .collect::<Vec<_>>()
        ),
    ));
    let max_err = sweep.max_rel_err();
    r.checks.push(Check::new(
        "simulated recovery cost matches the analytic model within 15%",
        max_err <= 0.15,
        format!("max relative error {:.1}%", 100.0 * max_err),
    ));
    let first = sweep.points.first().map(|p| p.lost_steps).unwrap_or(0);
    let last = sweep.points.last().map(|p| p.lost_steps).unwrap_or(0);
    r.checks.push(Check::new(
        "tighter checkpoints lose less recomputation",
        first < last,
        format!("lost steps {first} (tight) vs {last} (loose)"),
    ));

    r.notes.push(
        "One deterministic host crash per run at 0.7 T0; intervals swept as T0/8, T0/4, T0/2. \
         The MTBF is nominal (one pool crash per 2 h) and only scales the availability column."
            .into(),
    );
    r
}
