//! Runtime-protocol experiments: migration, skew, ordering, solid
//! subregions, and the network ablation.

use crate::report::{Check, ExperimentResult, Series, Table};
use subsonic_cluster::{
    measure_efficiency, ClusterConfig, ClusterSim, CommOrdering, MeasureConfig, WorkloadSpec,
};
use subsonic_grid::geometry::FluePipeSpec;
use subsonic_grid::Decomp2;
use subsonic_model::{max_skew_full_stencil, max_skew_star_stencil};
use subsonic_solvers::MethodKind;

/// E-mig: section-5 migration statistics over a simulated half-day run
/// with the stochastic user model on.
///
/// Paper: "there is typically one migration every 45 minutes for a
/// distributed computation that uses 20 workstations from a pool of 25 ...
/// each migration lasts about 30 seconds. Thus, the cost of migration is
/// insignificant."
pub fn e_mig(quick: bool) -> ExperimentResult {
    let mut r = ExperimentResult::new("mig", "Automatic process migration statistics");
    let span_h = if quick { 4.0 } else { 12.0 };
    let w = WorkloadSpec::new_2d(MethodKind::LatticeBoltzmann, 150 * 5, 150 * 4, 5, 4);
    let mut total_migrations = 0usize;
    let mut pause_sum = 0.0;
    let mut pause_max: f64 = 0.0;
    let mut paused_fraction_sum = 0.0;
    let seeds: &[u64] = if quick {
        &[11, 12]
    } else {
        &[11, 12, 13, 14, 15]
    };
    let mut table = Table::new(
        "Migration statistics per simulated run",
        &[
            "seed",
            "hours",
            "migrations",
            "interval (min)",
            "mean pause (s)",
            "paused %",
        ],
    );
    for &seed in seeds {
        let cfg = ClusterConfig::production(w.clone(), seed);
        let mut sim = ClusterSim::new(cfg);
        let stats = sim.run(span_h * 3600.0, None);
        let n = stats.migrations.len();
        total_migrations += n;
        let mean_pause = if n > 0 {
            stats
                .migrations
                .iter()
                .map(|m| m.pause_duration())
                .sum::<f64>()
                / n as f64
        } else {
            0.0
        };
        for m in &stats.migrations {
            pause_max = pause_max.max(m.pause_duration());
        }
        pause_sum += mean_pause * n as f64;
        let paused: f64 = stats.procs.iter().map(|p| p.t_paused).sum::<f64>()
            / (stats.procs.len() as f64 * span_h * 3600.0);
        paused_fraction_sum += paused;
        table.push_row(vec![
            seed.to_string(),
            format!("{span_h:.0}"),
            n.to_string(),
            if n > 0 {
                format!("{:.0}", span_h * 60.0 / n as f64)
            } else {
                "-".into()
            },
            format!("{mean_pause:.1}"),
            format!("{:.2}", 100.0 * paused),
        ]);
    }
    r.tables.push(table);
    let runs = seeds.len() as f64;
    let interval_min = span_h * 60.0 * runs / total_migrations.max(1) as f64;
    let mean_pause = pause_sum / total_migrations.max(1) as f64;
    let paused_pct = 100.0 * paused_fraction_sum / runs;
    r.checks.push(Check::new(
        "migrations happen but are infrequent (paper: ~every 45 min)",
        total_migrations > 0 && (10.0..240.0).contains(&interval_min),
        format!(
            "mean interval {interval_min:.0} min over {} runs",
            seeds.len()
        ),
    ));
    r.checks.push(Check::new(
        "each migration pauses the computation ~tens of seconds (paper: ~30 s)",
        mean_pause > 3.0 && pause_max < 180.0,
        format!("mean pause {mean_pause:.1} s, max {pause_max:.1} s"),
    ));
    r.checks.push(Check::new(
        "migration cost is insignificant",
        paused_pct < 5.0,
        format!("processes paused {paused_pct:.2}% of the run"),
    ));

    // Ablation (section 1.1's design argument): migrating away from busy
    // hosts vs simply staying put under the same stochastic user workload.
    // A full-time competitor throttles the nice'd subprocess to a fraction
    // of the CPU, and the whole computation is only as fast as its slowest
    // subregion — so staying put stalls everyone.
    let abl_seeds: &[u64] = if quick { &[21] } else { &[21, 22, 23] };
    let mut with_mig = 0u64;
    let mut without_mig = 0u64;
    let mut abl = Table::new(
        "Ablation: steps completed with and without automatic migration",
        &["seed", "with migration", "without (stay put)"],
    );
    for &seed in abl_seeds {
        let progress = |enabled: bool| -> u64 {
            let mut cfg = ClusterConfig::production(w.clone(), seed);
            cfg.monitor.enabled = enabled;
            let mut sim = ClusterSim::new(cfg);
            let stats = sim.run(span_h * 3600.0, None);
            stats.procs.iter().map(|p| p.steps).min().unwrap_or(0)
        };
        let on = progress(true);
        let off = progress(false);
        with_mig += on;
        without_mig += off;
        abl.push_row(vec![seed.to_string(), on.to_string(), off.to_string()]);
    }
    r.tables.push(abl);
    r.checks.push(Check::new(
        "automatic migration outperforms staying on busy hosts",
        with_mig > without_mig,
        format!("steps: {with_mig} with vs {without_mig} without"),
    ));
    r
}

/// E-skew: Appendix-A un-synchronization bound, measured by freezing one
/// workstation and watching how far its neighbours can run ahead.
pub fn e_skew() -> ExperimentResult {
    let mut r = ExperimentResult::new("skew", "Un-synchronization bound (Appendix A)");
    let mut table = Table::new(
        "Observed vs predicted max step skew (eqs. 22-23)",
        &["decomposition", "stencil", "observed", "bound"],
    );
    let mut all_ok = true;
    let measure = |px: usize, py: usize, diagonals: bool| -> u64 {
        let d = subsonic_grid::Decomp2::new(60 * px, 60 * py, px, py);
        let all: Vec<usize> = (0..d.tiles()).collect();
        let mut w = WorkloadSpec::from_decomp2(MethodKind::LatticeBoltzmann, &d, &all);
        if diagonals {
            w = w.with_diagonals_2d(&d, 3);
        }
        let cfg = ClusterConfig::measurement(w);
        let mut sim = ClusterSim::new(cfg);
        // freeze the workstation running process 0 almost completely
        let host0 = sim.placements()[0];
        sim.set_competitors(host0, 10_000);
        sim.run(3.0e4, None).max_observed_skew
    };
    for (px, py) in [(4usize, 1usize), (3, 3), (5, 4)] {
        // star stencil: face neighbours only -> Manhattan diameter (eq. 23)
        let observed = measure(px, py, false);
        let bound = max_skew_star_stencil(px, py) as u64;
        all_ok &= observed == bound;
        table.push_row(vec![
            format!("({px}x{py})"),
            "star".into(),
            observed.to_string(),
            bound.to_string(),
        ]);
        // full stencil: diagonal dependence tightens the coupling to the
        // Chebyshev diameter (eq. 22)
        let observed = measure(px, py, true);
        let bound = max_skew_full_stencil(px, py) as u64;
        all_ok &= observed == bound;
        table.push_row(vec![
            format!("({px}x{py})"),
            "full".into(),
            observed.to_string(),
            bound.to_string(),
        ]);
    }
    r.tables.push(table);
    r.checks.push(Check::new(
        "observed skew saturates exactly at the Appendix-A bounds",
        all_ok,
        "frozen process at step s; distance-d processes reach s+d in the stencil metric",
    ));
    r
}

/// E-order: Appendix-C communication ordering — FCFS vs strict pipelining
/// under timing jitter.
///
/// The paper reports both halves of the story: strict ordering was *intended*
/// "to pipeline the messages through the shared-bus network ... in an attempt
/// to improve performance", but "small delays are inevitable in time-sharing
/// UNIX systems, and strict ordering amplifies them to global delays", so
/// asynchronous FCFS "achieved better performance overall". Our simulation
/// reproduces the full trade-off: on a perfectly quiet cluster the pipelining
/// wins (staggered sends decongest the bus), and as per-phase jitter grows
/// the advantage inverts.
pub fn e_order() -> ExperimentResult {
    let mut r = ExperimentResult::new("order", "FCFS vs strict communication ordering");
    let mut table = Table::new(
        "strict/FCFS time-per-step ratio (<1: pipelining wins; >1: amplification)",
        &[
            "jitter",
            "FCFS t/step (s)",
            "strict t/step (s)",
            "strict/FCFS",
        ],
    );
    let seeds: [u64; 4] = [1, 2, 3, 4];
    let run = |ordering: CommOrdering, jitter: f64, seed: u64| -> f64 {
        let w = WorkloadSpec::new_2d(MethodKind::LatticeBoltzmann, 60 * 8, 60, 8, 1);
        let mut cfg = ClusterConfig::measurement(w);
        cfg.ordering = ordering;
        cfg.compute_jitter = jitter;
        cfg.seed = seed;
        let mut sim = ClusterSim::new(cfg);
        sim.run(f64::INFINITY, Some(60)).finished_at / 60.0
    };
    let mut ratios = Vec::new();
    for jitter in [0.0, 0.5, 1.0, 2.0] {
        let fcfs: f64 = seeds
            .iter()
            .map(|&s| run(CommOrdering::Fcfs, jitter, s))
            .sum();
        let strict: f64 = seeds
            .iter()
            .map(|&s| run(CommOrdering::Strict, jitter, s))
            .sum();
        let ratio = strict / fcfs;
        ratios.push((jitter, ratio));
        table.push_row(vec![
            format!("{jitter:.1}"),
            format!("{:.4}", fcfs / seeds.len() as f64),
            format!("{:.4}", strict / seeds.len() as f64),
            format!("{ratio:.3}"),
        ]);
    }
    r.tables.push(table);
    let quiet = ratios[0].1;
    let noisy = ratios.last().unwrap().1;
    r.checks.push(Check::new(
        "quiet cluster: strict pipelining achieves its intent (ratio <= 1)",
        quiet <= 1.0,
        format!("strict/FCFS at jitter 0: {quiet:.3}"),
    ));
    r.checks.push(Check::new(
        "time-sharing delays invert the advantage (paper: FCFS better overall)",
        noisy > 1.0,
        format!("strict/FCFS at jitter 2.0: {noisy:.3}"),
    ));
    r.checks.push(Check::new(
        "amplification grows with jitter",
        noisy > quiet,
        format!("ratios: {ratios:?}"),
    ));
    r
}

/// E-solid: Figure-2 all-solid subregions need no workstation.
pub fn e_solid() -> ExperimentResult {
    let mut r = ExperimentResult::new("solid", "All-solid subregions are not assigned (Figure 2)");
    let (nx, ny) = (1107, 700); // the paper's Figure-2 grid
    let geom = FluePipeSpec::figure2(nx, ny).build();
    let d = Decomp2::new(nx, ny, 6, 4);
    let active = geom.active_tiles(&d);
    let active_nodes: usize = active.iter().map(|&id| d.tile_box(id).nodes()).sum();
    let frac = active_nodes as f64 / (nx * ny) as f64;
    let mut table = Table::new(
        "Figure-2 decomposition accounting",
        &["quantity", "paper", "ours"],
    );
    table.push_row(vec![
        "decomposition".into(),
        "(6x4) = 24".into(),
        format!("(6x4) = {}", d.tiles()),
    ]);
    table.push_row(vec![
        "workstations used".into(),
        "15".into(),
        active.len().to_string(),
    ]);
    table.push_row(vec![
        "fraction of nodes simulated".into(),
        "15/24 = 0.63".into(),
        format!("{frac:.2}"),
    ]);
    r.tables.push(table);
    r.checks.push(Check::new(
        "a substantial fraction of subregions is all-solid",
        active.len() <= 20 && active.len() >= 12,
        format!("{} of 24 tiles active", active.len()),
    ));
    r.checks.push(Check::new(
        "compute saved proportionally",
        frac < 0.9,
        format!("simulating {frac:.2} of the full rectangle"),
    ));
    // and the cluster only needs that many hosts
    let w = WorkloadSpec::from_decomp2(MethodKind::LatticeBoltzmann, &d, &active);
    let m = measure_efficiency(MeasureConfig::paper(w));
    r.checks.push(Check::new(
        "the reduced workload runs on as many hosts as active tiles",
        m.p == active.len(),
        format!("{} parallel processes", m.p),
    ));
    r
}

/// E-udp: Appendix D — TCP/IP sockets vs UDP datagrams with
/// application-level resends.
///
/// "The UDP/IP protocol is similar to TCP/IP with one major difference:
/// there is no guaranteed delivery of messages. ... However, the benefit is
/// that the distributed program has more control of the communication. ...
/// Also, another advantage is robustness in the case of network errors that
/// occur under very high network traffic. ... Despite these advantages of
/// UDP/IP over TCP/IP, we have chosen to work with TCP/IP because of its
/// simplicity."
pub fn e_udp(quick: bool) -> ExperimentResult {
    let mut r = ExperimentResult::new("udp", "TCP vs UDP transports (Appendix D)");
    let ps: Vec<usize> = if quick { vec![8] } else { vec![4, 8, 12, 16] };
    let mut table = Table::new(
        "3D workload, saturated shared bus",
        &["P", "TCP f", "TCP give-ups", "UDP f", "UDP losses (resent)"],
    );
    let mut ok_small = true;
    let mut tcp_errs = 0u64;
    let mut udp_errs = 0u64;
    for &p in &ps {
        let w = WorkloadSpec::new_3d(MethodKind::LatticeBoltzmann, (20 * p, 20, 20), (p, 1, 1));
        let tcp = measure_efficiency(MeasureConfig::paper(w.clone()));
        let mut cfg = MeasureConfig::paper(w);
        cfg.cluster.net = cfg.cluster.net.udp();
        let udp = measure_efficiency(cfg);
        tcp_errs += tcp.net_errors;
        udp_errs += udp.net_errors;
        ok_small &= (udp.efficiency - tcp.efficiency).abs() < 0.15;
        table.push_row(vec![
            p.to_string(),
            format!("{:.3}", tcp.efficiency),
            tcp.net_errors.to_string(),
            format!("{:.3}", udp.efficiency),
            udp.stats.net_losses.to_string(),
        ]);
    }
    r.tables.push(table);
    r.checks.push(Check::new(
        "UDP never reports unrecoverable errors (the app resends precisely)",
        udp_errs == 0,
        format!("TCP give-ups {tcp_errs}, UDP give-ups {udp_errs}"),
    ));
    r.checks.push(Check::new(
        "both transports deliver comparable efficiency (paper kept TCP for simplicity)",
        ok_small,
        "efficiency difference below 0.15 at every P",
    ));
    r
}

/// E-net: shared bus vs switched network for the 3D problem (the paper's
/// concluding outlook).
pub fn e_net(quick: bool) -> ExperimentResult {
    let mut r = ExperimentResult::new("net", "Shared bus vs switched network, 3D");
    let ps: Vec<usize> = if quick {
        vec![6, 12]
    } else {
        vec![2, 4, 6, 8, 10, 12, 16, 20]
    };
    let mut bus = Series::new("shared bus");
    let mut sw = Series::new("switched");
    for &p in &ps {
        let w = WorkloadSpec::new_3d(MethodKind::LatticeBoltzmann, (25 * p, 25, 25), (p, 1, 1));
        bus.push(
            p as f64,
            measure_efficiency(MeasureConfig::paper(w.clone())).efficiency,
        );
        let mut cfg = MeasureConfig::paper(w);
        cfg.cluster.net = cfg.cluster.net.switched();
        sw.push(p as f64, measure_efficiency(cfg).efficiency);
    }
    // Judge the network at the largest P that still runs entirely on 715/50s
    // (16): beyond that the slower 710/720 models cap the efficiency for
    // reasons unrelated to the network.
    let judge_idx = ps
        .iter()
        .rposition(|&p| p <= 16)
        .expect("at least one P <= 16 in the sweep");
    let sw_j = sw.points[judge_idx].1;
    let bus_j = bus.points[judge_idx].1;
    r.checks.push(Check::new(
        "a switched network makes 3D practical (paper section 9)",
        sw_j > 0.85 && sw_j - bus_j > 0.15,
        format!(
            "switched {sw_j:.3} vs bus {bus_j:.3} at P={}",
            ps[judge_idx]
        ),
    ));
    r.tables
        .push(Table::from_series("E-net series", "P", &[bus, sw]));
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skew_saturates_bound() {
        let r = e_skew();
        assert!(r.all_pass(), "{:#?}", r.checks);
    }

    #[test]
    fn solid_subregions_detected() {
        let r = e_solid();
        assert!(r.all_pass(), "{:#?}", r.checks);
    }

    #[test]
    fn net_quick() {
        let r = e_net(true);
        assert!(r.all_pass(), "{:#?}", r.checks);
    }
}
