//! High-level simulation API.
//!
//! [`Simulation2`] wraps a decomposed problem and a solver behind a
//! build-and-run interface. The default backend steps all tiles in the
//! calling thread (bitwise identical to a serial run); [`Simulation2::run_threaded`]
//! executes the same problem with one OS thread per subregion and reports the
//! measured `T_calc`/`T_com` split.

use std::sync::Arc;
use subsonic_exec::timing::StepTiming;
use subsonic_exec::{
    GlobalFields2, GlobalFields3, LocalRunner2, LocalRunner3, Problem2, Problem3, ThreadedRunner2,
    ThreadedRunner3,
};
use subsonic_grid::{Geometry2, Geometry3};
use subsonic_solvers::{
    FiniteDifference2, FiniteDifference3, FluidParams, LatticeBoltzmann2, LatticeBoltzmann3,
    MethodKind, Solver2, Solver3,
};

/// Builder for [`Simulation2`].
pub struct Simulation2Builder {
    geometry: Option<Geometry2>,
    params: FluidParams,
    method: MethodKind,
    px: usize,
    py: usize,
    #[allow(clippy::type_complexity)]
    init: Option<Box<dyn Fn(usize, usize) -> (f64, f64, f64) + Send + Sync>>,
}

impl Simulation2Builder {
    /// Sets the geometry (required).
    pub fn geometry(mut self, g: Geometry2) -> Self {
        self.geometry = Some(g);
        self
    }

    /// Sets the fluid parameters.
    pub fn params(mut self, p: FluidParams) -> Self {
        self.params = p;
        self
    }

    /// Picks the numerical method (default: lattice Boltzmann).
    pub fn method(mut self, m: MethodKind) -> Self {
        self.method = m;
        self
    }

    /// Decomposes the domain into `px × py` subregions (default `1 × 1`).
    pub fn decompose(mut self, px: usize, py: usize) -> Self {
        self.px = px;
        self.py = py;
        self
    }

    /// Sets the initial condition (global node → `(ρ, vx, vy)`).
    pub fn init(
        mut self,
        f: impl Fn(usize, usize) -> (f64, f64, f64) + Send + Sync + 'static,
    ) -> Self {
        self.init = Some(Box::new(f));
        self
    }

    /// Builds the simulation.
    ///
    /// # Panics
    /// Panics if no geometry was provided or the parameters are unstable.
    pub fn build(self) -> Simulation2 {
        let geometry = self.geometry.expect("Simulation2 requires a geometry");
        let violations = self.params.stability_report(false);
        assert!(violations.is_empty(), "unstable parameters: {violations:?}");
        let mut problem = Problem2::new(geometry, self.px, self.py, self.params);
        if let Some(f) = self.init {
            problem.init = Arc::from(f);
        }
        let solver: Arc<dyn Solver2> = match self.method {
            MethodKind::FiniteDifference => Arc::new(FiniteDifference2),
            MethodKind::LatticeBoltzmann => Arc::new(LatticeBoltzmann2),
        };
        let runner = LocalRunner2::new(Arc::clone(&solver), problem.clone());
        Simulation2 {
            solver,
            problem,
            runner,
            steps_done: 0,
        }
    }
}

/// A 2D subsonic-flow simulation.
pub struct Simulation2 {
    solver: Arc<dyn Solver2>,
    problem: Problem2,
    runner: LocalRunner2,
    steps_done: u64,
}

impl Simulation2 {
    /// Starts a builder.
    pub fn builder() -> Simulation2Builder {
        Simulation2Builder {
            geometry: None,
            params: FluidParams::lattice_units(0.05),
            method: MethodKind::LatticeBoltzmann,
            px: 1,
            py: 1,
            init: None,
        }
    }

    /// Runs `n` integration steps (in-thread, tile by tile).
    pub fn run(&mut self, n: usize) {
        self.runner.run(n);
        self.steps_done += n as u64;
    }

    /// One integration step.
    pub fn step(&mut self) {
        self.run(1);
    }

    /// Completed steps.
    pub fn steps_done(&self) -> u64 {
        self.steps_done
    }

    /// Simulated time `steps × Δt`.
    pub fn time(&self) -> f64 {
        self.steps_done as f64 * self.problem.params.dt
    }

    /// Gathers the global fields.
    pub fn fields(&self) -> GlobalFields2 {
        self.runner.gather()
    }

    /// Density and velocity at a global node.
    pub fn probe(&self, x: usize, y: usize) -> (f64, f64, f64) {
        let f = self.fields();
        (f.rho[(x, y)], f.vx[(x, y)], f.vy[(x, y)])
    }

    /// The problem's geometry.
    pub fn geometry(&self) -> &Geometry2 {
        &self.problem.geom
    }

    /// The fluid parameters.
    pub fn params(&self) -> &FluidParams {
        &self.problem.params
    }

    /// Active subregions (all-solid ones are skipped).
    pub fn active_tiles(&self) -> Vec<usize> {
        self.problem.active_tiles()
    }

    /// Runs the same problem from its initial state with one thread per
    /// subregion, returning the gathered fields and per-tile timing.
    ///
    /// Note: this restarts from step 0 — it is a measurement companion, not a
    /// continuation of [`Simulation2::run`].
    pub fn run_threaded(&self, steps: u64) -> (GlobalFields2, Vec<(usize, StepTiming)>) {
        let out = ThreadedRunner2::new(Arc::clone(&self.solver), self.problem.clone())
            .run(steps)
            .expect("threaded 2D run failed");
        let fields = out.gather(
            self.problem.geom.nx(),
            self.problem.geom.ny(),
            self.problem.params.rho0,
        );
        (fields, out.timing)
    }
}

/// Builder for [`Simulation3`].
pub struct Simulation3Builder {
    geometry: Option<Geometry3>,
    params: FluidParams,
    method: MethodKind,
    parts: (usize, usize, usize),
    #[allow(clippy::type_complexity)]
    init: Option<Box<dyn Fn(usize, usize, usize) -> (f64, f64, f64, f64) + Send + Sync>>,
}

impl Simulation3Builder {
    /// Sets the geometry (required).
    pub fn geometry(mut self, g: Geometry3) -> Self {
        self.geometry = Some(g);
        self
    }

    /// Sets the fluid parameters.
    pub fn params(mut self, p: FluidParams) -> Self {
        self.params = p;
        self
    }

    /// Picks the numerical method.
    pub fn method(mut self, m: MethodKind) -> Self {
        self.method = m;
        self
    }

    /// Decomposes into `px × py × pz` subregions.
    pub fn decompose(mut self, px: usize, py: usize, pz: usize) -> Self {
        self.parts = (px, py, pz);
        self
    }

    /// Sets the initial condition.
    pub fn init(
        mut self,
        f: impl Fn(usize, usize, usize) -> (f64, f64, f64, f64) + Send + Sync + 'static,
    ) -> Self {
        self.init = Some(Box::new(f));
        self
    }

    /// Builds the simulation.
    pub fn build(self) -> Simulation3 {
        let geometry = self.geometry.expect("Simulation3 requires a geometry");
        let violations = self.params.stability_report(true);
        assert!(violations.is_empty(), "unstable parameters: {violations:?}");
        let mut problem = Problem3::new(
            geometry,
            self.parts.0,
            self.parts.1,
            self.parts.2,
            self.params,
        );
        if let Some(f) = self.init {
            problem.init = Arc::from(f);
        }
        let solver: Arc<dyn Solver3> = match self.method {
            MethodKind::FiniteDifference => Arc::new(FiniteDifference3),
            MethodKind::LatticeBoltzmann => Arc::new(LatticeBoltzmann3),
        };
        let runner = LocalRunner3::new(Arc::clone(&solver), problem.clone());
        Simulation3 {
            solver,
            problem,
            runner,
            steps_done: 0,
        }
    }
}

/// A 3D subsonic-flow simulation.
pub struct Simulation3 {
    solver: Arc<dyn Solver3>,
    problem: Problem3,
    runner: LocalRunner3,
    steps_done: u64,
}

impl Simulation3 {
    /// Starts a builder.
    pub fn builder() -> Simulation3Builder {
        Simulation3Builder {
            geometry: None,
            params: FluidParams::lattice_units(0.05),
            method: MethodKind::LatticeBoltzmann,
            parts: (1, 1, 1),
            init: None,
        }
    }

    /// Runs `n` integration steps.
    pub fn run(&mut self, n: usize) {
        self.runner.run(n);
        self.steps_done += n as u64;
    }

    /// Completed steps.
    pub fn steps_done(&self) -> u64 {
        self.steps_done
    }

    /// Gathers the global fields.
    pub fn fields(&self) -> GlobalFields3 {
        self.runner.gather()
    }

    /// The fluid parameters.
    pub fn params(&self) -> &FluidParams {
        &self.problem.params
    }

    /// Runs the same problem from its initial state with one thread per
    /// subregion (see [`Simulation2::run_threaded`]).
    pub fn run_threaded(&self, steps: u64) -> (GlobalFields3, Vec<(usize, StepTiming)>) {
        let out = ThreadedRunner3::new(Arc::clone(&self.solver), self.problem.clone())
            .run(steps)
            .expect("threaded 3D run failed");
        let fields = out.gather(self.problem.geom.dims(), self.problem.params.rho0);
        (fields, out.timing)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_runs_poiseuille() {
        let mut params = FluidParams::lattice_units(0.05);
        params.body_force[0] = 1e-5;
        let mut sim = Simulation2::builder()
            .geometry(Geometry2::channel(32, 16, 2))
            .params(params)
            .decompose(2, 1)
            .build();
        sim.run(50);
        assert_eq!(sim.steps_done(), 50);
        let (_, vx, _) = sim.probe(16, 8);
        assert!(vx > 0.0, "channel flow did not start");
    }

    #[test]
    fn decomposition_is_transparent_via_facade() {
        let build = |px, py| {
            let mut params = FluidParams::lattice_units(0.05);
            params.body_force[0] = 1e-5;
            Simulation2::builder()
                .geometry(Geometry2::channel(24, 12, 2))
                .method(MethodKind::FiniteDifference)
                .params(params)
                .decompose(px, py)
                .build()
        };
        let mut a = build(1, 1);
        let mut b = build(3, 2);
        a.run(10);
        b.run(10);
        assert_eq!(a.fields().first_difference(&b.fields()), None);
    }

    #[test]
    fn threaded_matches_local_via_facade() {
        let mut params = FluidParams::lattice_units(0.05);
        params.body_force[0] = 1e-5;
        let mut sim = Simulation2::builder()
            .geometry(Geometry2::channel(24, 12, 2))
            .params(params)
            .decompose(2, 2)
            .build();
        let (threaded, timing) = sim.run_threaded(8);
        sim.run(8);
        assert_eq!(sim.fields().first_difference(&threaded), None);
        assert_eq!(timing.len(), 4);
    }

    #[test]
    fn sim3_runs() {
        let mut params = FluidParams::lattice_units(0.05);
        params.body_force[0] = 1e-5;
        let mut sim = Simulation3::builder()
            .geometry(Geometry3::duct(10, 9, 9, 2))
            .params(params)
            .decompose(2, 1, 1)
            .build();
        sim.run(10);
        let f = sim.fields();
        let c = f.idx(5, 4, 4);
        assert!(f.vx[c] > 0.0);
    }

    #[test]
    fn sim3_threaded_matches_local() {
        let mut params = FluidParams::lattice_units(0.05);
        params.body_force[0] = 1e-5;
        let mut sim = Simulation3::builder()
            .geometry(Geometry3::duct(10, 9, 9, 2))
            .params(params)
            .decompose(2, 1, 1)
            .build();
        let (threaded, timing) = sim.run_threaded(6);
        sim.run(6);
        assert_eq!(sim.fields().first_difference(&threaded), None);
        assert_eq!(timing.len(), 2);
    }

    #[test]
    #[should_panic(expected = "unstable parameters")]
    fn unstable_parameters_rejected() {
        let mut params = FluidParams::lattice_units(0.05);
        params.dt = 5.0;
        let _ = Simulation2::builder()
            .geometry(Geometry2::channel(16, 8, 2))
            .params(params)
            .build();
    }
}
