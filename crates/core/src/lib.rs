//! `subsonic` — parallel simulation of subsonic fluid dynamics on a
//! (simulated) cluster of workstations.
//!
//! A Rust reproduction of P. A. Skordos, *"Parallel simulation of subsonic
//! fluid dynamics on a cluster of workstations"* (MIT AI Memo 1485, 1994 /
//! HPDC 1995). This crate is the public facade over the workspace:
//!
//! * [`Simulation2`]/[`Simulation3`] — build-and-run API for flow problems:
//!   pick a geometry, a numerical method (explicit finite differences or the
//!   lattice Boltzmann method), a decomposition, and step it serially, over
//!   tiles, or with one thread per subregion;
//! * [`experiments`] — drivers that regenerate every table and figure of the
//!   paper's evaluation (see `DESIGN.md` for the experiment index and
//!   `EXPERIMENTS.md` for paper-vs-measured numbers);
//! * [`report`] — small table/series types with CSV and Markdown emitters
//!   used by the `reproduce` binary.
//!
//! ```no_run
//! use subsonic::prelude::*;
//!
//! // 2D Poiseuille channel, lattice Boltzmann, 2x2 subregions, threaded.
//! let mut params = FluidParams::lattice_units(0.05);
//! params.body_force[0] = 1e-5;
//! let mut sim = Simulation2::builder()
//!     .geometry(Geometry2::channel(128, 64, 2))
//!     .method(MethodKind::LatticeBoltzmann)
//!     .params(params)
//!     .decompose(2, 2)
//!     .build();
//! sim.run(1000);
//! let fields = sim.fields();
//! println!("centreline vx = {}", fields.vx[(64, 32)]);
//! ```

pub mod experiments;
pub mod report;
pub mod simulation;

pub use report::{Check, ExperimentResult, Series, Table};
pub use simulation::{Simulation2, Simulation3};

/// Convenient glob-import surface for examples and downstream users.
pub mod prelude {
    pub use crate::report::{Check, ExperimentResult, Series, Table};
    pub use crate::simulation::{Simulation2, Simulation3};
    pub use subsonic_cluster::{
        measure_efficiency, ClusterConfig, ClusterSim, MeasureConfig, WorkloadSpec,
    };
    pub use subsonic_exec::{
        GlobalFields2, GlobalFields3, LocalRunner2, LocalRunner3, Problem2, Problem3, RayonRunner2,
        ThreadedRunner2, ThreadedRunner3,
    };
    pub use subsonic_grid::{geometry::FluePipeSpec, Cell, Decomp2, Decomp3, Geometry2, Geometry3};
    pub use subsonic_model::{EfficiencyModel, PaperConstants};
    pub use subsonic_solvers::{
        analytic, diagnostics, fluepipe::FluePipeScenario, FluidParams, MethodKind,
    };
}
