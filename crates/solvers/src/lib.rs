//! Fluid solvers for the `subsonic` simulator.
//!
//! Implements the two explicit ("local interaction") numerical methods of the
//! paper, in two and three dimensions:
//!
//! * **Explicit finite differences** (section 6): centred second-order spatial
//!   differences and forward-Euler time integration of the isothermal
//!   compressible Navier–Stokes equations (eqs. 1–3), with the density
//!   equation updated *after* the velocities using the new velocity values.
//! * **The lattice Boltzmann method** (D2Q9 / D3Q15 with BGK relaxation): the
//!   population count per face matches the paper's communication accounting —
//!   3 populations cross a face per node in 2D, 5 in 3D.
//!
//! Both methods share the fourth-order numerical-viscosity filter that the
//! paper calls "crucial for simulating subsonic flow at high Reynolds number",
//! and both are expressed as a *step plan* — an alternating sequence of local
//! compute phases and halo exchanges that mirrors the paper's cycle structure
//! (FD sends two messages per step, LB one). Runners in `subsonic-exec`
//! execute the plan serially or in parallel; tiles are bitwise identical
//! either way, which the integration tests assert.

pub mod analytic;
pub mod diagnostics;
pub mod fd2;
pub mod fd3;
pub mod fields;
pub mod filter;
pub mod fluepipe;
pub mod init;
pub mod kernels;
pub mod lbm2;
pub mod lbm3;
pub mod params;
pub mod plan;
pub mod qlattice;
pub mod solver;

pub use fd2::FiniteDifference2;
pub use fd3::FiniteDifference3;
pub use fields::{Macro2, Macro3, TileState2, TileState3};
pub use init::{InitialState2, InitialState3};
pub use lbm2::LatticeBoltzmann2;
pub use lbm3::LatticeBoltzmann3;
pub use params::{FluidParams, MethodKind};
pub use plan::StepOp;
pub use solver::{ScalarReference2, ScalarReference3, Solver2, Solver3};
