//! Velocity sets and equilibrium distributions for the lattice Boltzmann
//! method: D2Q9 in two dimensions, D3Q15 in three.
//!
//! The population counts match the communication accounting of the paper
//! (end of section 6): of the D2Q9 set, **3** populations cross a given face
//! per node; of the D3Q15 set, **5** populations cross a given face — "LB
//! communicates 5 variables per fluid node in three dimensional problems ...
//! In two dimensional problems, both methods communicate 3 variables per
//! fluid node."

/// Number of populations in the 2D lattice.
pub const Q2: usize = 9;

/// D2Q9 lattice velocities: rest, 4 axis, 4 diagonal.
pub const E2: [(isize, isize); Q2] = [
    (0, 0),
    (1, 0),
    (-1, 0),
    (0, 1),
    (0, -1),
    (1, 1),
    (-1, -1),
    (-1, 1),
    (1, -1),
];

/// D2Q9 weights.
pub const W2: [f64; Q2] = [
    4.0 / 9.0,
    1.0 / 9.0,
    1.0 / 9.0,
    1.0 / 9.0,
    1.0 / 9.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
];

/// Index of the opposite D2Q9 velocity (for bounce-back).
pub const OPP2: [usize; Q2] = [0, 2, 1, 4, 3, 6, 5, 8, 7];

/// Number of populations in the 3D lattice.
pub const Q3: usize = 15;

/// D3Q15 lattice velocities: rest, 6 axis, 8 cube-diagonal.
pub const E3: [(isize, isize, isize); Q3] = [
    (0, 0, 0),
    (1, 0, 0),
    (-1, 0, 0),
    (0, 1, 0),
    (0, -1, 0),
    (0, 0, 1),
    (0, 0, -1),
    (1, 1, 1),
    (-1, -1, -1),
    (1, 1, -1),
    (-1, -1, 1),
    (1, -1, 1),
    (-1, 1, -1),
    (1, -1, -1),
    (-1, 1, 1),
];

/// D3Q15 weights.
pub const W3: [f64; Q3] = [
    2.0 / 9.0,
    1.0 / 9.0,
    1.0 / 9.0,
    1.0 / 9.0,
    1.0 / 9.0,
    1.0 / 9.0,
    1.0 / 9.0,
    1.0 / 72.0,
    1.0 / 72.0,
    1.0 / 72.0,
    1.0 / 72.0,
    1.0 / 72.0,
    1.0 / 72.0,
    1.0 / 72.0,
    1.0 / 72.0,
];

/// Index of the opposite D3Q15 velocity.
pub const OPP3: [usize; Q3] = [0, 2, 1, 4, 3, 6, 5, 8, 7, 10, 9, 12, 11, 14, 13];

/// BGK equilibrium for the D2Q9 lattice at `(rho, ux, uy)` for population `q`.
///
/// `f_eq = w_q ρ (1 + 3 e·u + 9/2 (e·u)² − 3/2 u²)`, lattice units
/// (`c_s² = 1/3`).
#[inline(always)]
pub fn feq2(q: usize, rho: f64, ux: f64, uy: f64) -> f64 {
    let (ex, ey) = E2[q];
    let eu = ex as f64 * ux + ey as f64 * uy;
    let usq = ux * ux + uy * uy;
    W2[q] * rho * (1.0 + 3.0 * eu + 4.5 * eu * eu - 1.5 * usq)
}

/// The equilibrium polynomial `1 + 3 e·u + 9/2 (e·u)² − 3/2 u²` with the
/// `3/2 u²` term pre-computed (`hsq`), in exactly the association order of
/// [`feq2`]/[`feq3`]. The unrolled solver kernels call this with `e·u`
/// written out per lattice direction, with the `0.0 * u` terms of the dot
/// product dropped: that can only flip the sign of a zero `eu`, and both
/// `1.0 + 3.0*eu` and `(4.5*eu)*eu` map `+0.0` and `-0.0` to the same
/// result, so the specialization is invisible even under bitwise comparison.
#[inline(always)]
pub fn eq_poly(eu: f64, hsq: f64) -> f64 {
    (1.0 + 3.0 * eu) + (4.5 * eu) * eu - hsq
}

/// BGK equilibrium for the D3Q15 lattice.
#[inline(always)]
pub fn feq3(q: usize, rho: f64, ux: f64, uy: f64, uz: f64) -> f64 {
    let (ex, ey, ez) = E3[q];
    let eu = ex as f64 * ux + ey as f64 * uy + ez as f64 * uz;
    let usq = ux * ux + uy * uy + uz * uz;
    W3[q] * rho * (1.0 + 3.0 * eu + 4.5 * eu * eu - 1.5 * usq)
}

/// Number of D2Q9 populations with a positive component along a given axis —
/// the populations that cross a face per node. Equals 3, the paper's 2D
/// "variables per fluid node" for the lattice Boltzmann method.
pub fn crossing_populations_2d() -> usize {
    E2.iter().filter(|&&(ex, _)| ex > 0).count()
}

/// Number of D3Q15 populations with a positive component along a given axis.
/// Equals 5, the paper's 3D "variables per fluid node".
pub fn crossing_populations_3d() -> usize {
    E3.iter().filter(|&&(ex, _, _)| ex > 0).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_sum_to_one() {
        assert!((W2.iter().sum::<f64>() - 1.0).abs() < 1e-14);
        assert!((W3.iter().sum::<f64>() - 1.0).abs() < 1e-14);
    }

    #[test]
    fn opposites_negate_velocities() {
        for q in 0..Q2 {
            let (ex, ey) = E2[q];
            let (ox, oy) = E2[OPP2[q]];
            assert_eq!((ex, ey), (-ox, -oy));
        }
        for q in 0..Q3 {
            let (ex, ey, ez) = E3[q];
            let (ox, oy, oz) = E3[OPP3[q]];
            assert_eq!((ex, ey, ez), (-ox, -oy, -oz));
        }
    }

    #[test]
    fn equilibrium_recovers_moments_2d() {
        let (rho, ux, uy) = (1.1, 0.05, -0.03);
        let mut m0 = 0.0;
        let (mut mx, mut my) = (0.0, 0.0);
        for (q, e) in E2.iter().enumerate() {
            let f = feq2(q, rho, ux, uy);
            m0 += f;
            mx += f * e.0 as f64;
            my += f * e.1 as f64;
        }
        assert!((m0 - rho).abs() < 1e-12);
        assert!((mx - rho * ux).abs() < 1e-12);
        assert!((my - rho * uy).abs() < 1e-12);
    }

    #[test]
    fn equilibrium_recovers_moments_3d() {
        let (rho, ux, uy, uz) = (0.9, 0.02, 0.04, -0.01);
        let mut m0 = 0.0;
        let (mut mx, mut my, mut mz) = (0.0, 0.0, 0.0);
        for (q, e) in E3.iter().enumerate() {
            let f = feq3(q, rho, ux, uy, uz);
            m0 += f;
            mx += f * e.0 as f64;
            my += f * e.1 as f64;
            mz += f * e.2 as f64;
        }
        assert!((m0 - rho).abs() < 1e-12);
        assert!((mx - rho * ux).abs() < 1e-12);
        assert!((my - rho * uy).abs() < 1e-12);
        assert!((mz - rho * uz).abs() < 1e-12);
    }

    #[test]
    fn second_moment_is_isotropic_at_rest() {
        // sum_q w_q e_a e_b = c_s^2 delta_ab with c_s^2 = 1/3
        for (a, b) in [(0, 0), (0, 1), (1, 1)] {
            let mut s = 0.0;
            for q in 0..Q2 {
                let e = [E2[q].0 as f64, E2[q].1 as f64];
                s += W2[q] * e[a] * e[b];
            }
            let want = if a == b { 1.0 / 3.0 } else { 0.0 };
            assert!((s - want).abs() < 1e-14, "2D second moment ({a},{b})");
        }
        for (a, b) in [(0, 0), (0, 1), (0, 2), (1, 1), (1, 2), (2, 2)] {
            let mut s = 0.0;
            for q in 0..Q3 {
                let e = [E3[q].0 as f64, E3[q].1 as f64, E3[q].2 as f64];
                s += W3[q] * e[a] * e[b];
            }
            let want = if a == b { 1.0 / 3.0 } else { 0.0 };
            assert!((s - want).abs() < 1e-14, "3D second moment ({a},{b})");
        }
    }

    #[test]
    fn crossing_population_counts_match_paper() {
        assert_eq!(crossing_populations_2d(), 3);
        assert_eq!(crossing_populations_3d(), 5);
    }
}
