//! Shared infrastructure for the vectorized, band-parallel solver kernels.
//!
//! Three things live here, used by every solver's fast path:
//!
//! * **Run scanning** ([`fluid_segs`], [`active_segs`]): the mask of a row is
//!   decomposed into maximal runs of like cells plus single "other" cells.
//!   Runs are handed to branch-free straight-line kernels operating on
//!   trimmed sub-slices (so LLVM hoists the bounds checks and vectorizes the
//!   loop body across x); the leftover cells fall back to the per-cell scalar
//!   kernel. Both paths evaluate the same floating-point expressions in the
//!   same association order, so the decomposition is bitwise invisible.
//! * **Intra-tile threading** ([`intra_threads`]): how many row bands a
//!   single tile's sweep is split into. Defaults to 1 (band splitting off);
//!   set `SUBSONIC_INTRA_THREADS` or call [`set_intra_threads`]. Bands are
//!   disjoint row ranges of the *same* grids (see `PaddedGrid2::row_bands_mut`),
//!   so the split never changes results — each cell is computed by exactly
//!   one band with identical inputs.
//! * **SIMD reporting** ([`simd_lanes`]): the f64 lane width the build
//!   targets, recorded in bench metadata so rates from differently-shaped
//!   containers stay comparable.

use std::sync::atomic::{AtomicUsize, Ordering};
use subsonic_grid::Cell;

/// 0 = not yet initialised from the environment.
static INTRA_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Number of worker bands used *inside* one tile's sweeps.
///
/// Lazily initialised from `SUBSONIC_INTRA_THREADS` (default 1 — kernels run
/// serially and spawn no scope). This is deliberately independent of the
/// tile-level parallelism of the runners: a k-tile run on an n-core machine
/// wants `n / k` bands per tile, not `n`.
pub fn intra_threads() -> usize {
    match INTRA_THREADS.load(Ordering::Relaxed) {
        0 => {
            let n = std::env::var("SUBSONIC_INTRA_THREADS")
                .ok()
                .and_then(|s| s.trim().parse::<usize>().ok())
                .filter(|&n| n >= 1)
                .unwrap_or(1);
            INTRA_THREADS.store(n, Ordering::Relaxed);
            n
        }
        n => n,
    }
}

/// Overrides the band count (tests and benches; `n` is clamped to ≥ 1).
pub fn set_intra_threads(n: usize) {
    INTRA_THREADS.store(n.max(1), Ordering::Relaxed);
}

/// Number of f64 SIMD lanes the build targets (compile-time feature flags,
/// i.e. what the autovectorizer actually emits — not runtime detection).
pub const fn simd_lanes() -> usize {
    #[cfg(target_feature = "avx512f")]
    {
        8
    }
    #[cfg(all(target_feature = "avx", not(target_feature = "avx512f")))]
    {
        4
    }
    #[cfg(all(target_feature = "sse2", not(target_feature = "avx")))]
    {
        2
    }
    #[cfg(not(target_feature = "sse2"))]
    {
        1
    }
}

/// Number of bands for a sweep over rows `[lo, hi)`: the configured
/// [`intra_threads`], capped so no band is empty.
pub fn bands_for(lo: isize, hi: isize) -> usize {
    if hi <= lo {
        return 1;
    }
    intra_threads().min((hi - lo) as usize)
}

/// Band boundaries splitting rows `[lo, hi)` into `nbands` near-equal ranges:
/// `nbands + 1` increasing cut points starting at `lo` and ending at `hi`,
/// in the form `PaddedGrid2::row_bands_mut` consumes.
pub fn band_cuts(lo: isize, hi: isize, nbands: usize) -> Vec<isize> {
    assert!(hi > lo, "band_cuts: empty row range");
    let rows = (hi - lo) as usize;
    let nb = nbands.clamp(1, rows);
    (0..=nb).map(|b| lo + (rows * b / nb) as isize).collect()
}

/// One segment of a scanned mask row: either a maximal run of cells matching
/// the predicate (handed to a vector kernel) or a single non-matching cell
/// (handed to the scalar fallback).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Seg {
    /// Half-open index run `[start, end)` where every cell matches.
    Run(usize, usize),
    /// A single cell that does not match.
    One(usize),
}

/// Iterator over the [`Seg`]s of a mask row (see [`fluid_segs`]).
pub struct Segs<'a> {
    row: &'a [Cell],
    at: usize,
    pred: fn(&Cell) -> bool,
}

impl Iterator for Segs<'_> {
    type Item = Seg;

    fn next(&mut self) -> Option<Seg> {
        let a = self.at;
        if a >= self.row.len() {
            return None;
        }
        if !(self.pred)(&self.row[a]) {
            self.at = a + 1;
            return Some(Seg::One(a));
        }
        let mut b = a + 1;
        while b < self.row.len() && (self.pred)(&self.row[b]) {
            b += 1;
        }
        self.at = b;
        Some(Seg::Run(a, b))
    }
}

fn is_fluid(c: &Cell) -> bool {
    c.is_fluid()
}

fn is_active(c: &Cell) -> bool {
    !c.is_wall()
}

/// Segments `row` into maximal [`Cell::Fluid`] runs and single other cells.
pub fn fluid_segs(row: &[Cell]) -> Segs<'_> {
    Segs {
        row,
        at: 0,
        pred: is_fluid,
    }
}

/// Segments `row` into maximal non-wall runs and single wall cells.
pub fn active_segs(row: &[Cell]) -> Segs<'_> {
    Segs {
        row,
        at: 0,
        pred: is_active,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use Cell::{Fluid, Wall};

    #[test]
    fn fluid_segs_decompose_a_mixed_row() {
        let row = [Wall, Fluid, Fluid, Fluid, Wall, Wall, Fluid];
        let segs: Vec<Seg> = fluid_segs(&row).collect();
        assert_eq!(
            segs,
            vec![
                Seg::One(0),
                Seg::Run(1, 4),
                Seg::One(4),
                Seg::One(5),
                Seg::Run(6, 7)
            ]
        );
    }

    #[test]
    fn segs_cover_every_index_exactly_once() {
        let row = [Fluid, Wall, Fluid, Cell::Inlet, Fluid, Fluid];
        let mut seen = vec![0u32; row.len()];
        for seg in fluid_segs(&row) {
            match seg {
                Seg::Run(a, b) => (a..b).for_each(|x| seen[x] += 1),
                Seg::One(x) => seen[x] += 1,
            }
        }
        assert!(seen.iter().all(|&c| c == 1));
        // active_segs treats Inlet as part of a run
        let active: Vec<Seg> = active_segs(&row).collect();
        assert_eq!(active, vec![Seg::Run(0, 1), Seg::One(1), Seg::Run(2, 6)]);
    }

    #[test]
    fn band_cuts_partition_the_range() {
        let cuts = band_cuts(-3, 10, 4);
        assert_eq!(cuts.first(), Some(&-3));
        assert_eq!(cuts.last(), Some(&10));
        assert!(cuts.windows(2).all(|w| w[0] < w[1]));
        let total: isize = cuts.windows(2).map(|w| w[1] - w[0]).sum();
        assert_eq!(total, 13);
        // more bands than rows collapses to one band per row
        assert_eq!(band_cuts(0, 2, 8).len(), 3);
    }

    #[test]
    fn lane_width_is_a_power_of_two() {
        let l = simd_lanes();
        assert!(l.is_power_of_two() && l <= 8);
    }
}
