//! Field storage for one subregion ("tile") of the decomposed problem.

use crate::params::FluidParams;
use crate::qlattice::{E2, E3, Q2, Q3};
use serde::{Deserialize, Serialize};
use subsonic_grid::{Cell, PaddedGrid2, PaddedGrid3};

/// Cached boundary links for the 2D LB streaming step.
///
/// The geometry mask is immutable after tile creation, so the lattice links
/// that need special handling during streaming — destinations on wall nodes
/// (population held) and links whose upstream node is a wall (half-way
/// bounce-back) — form a fixed set. Caching it turns the streaming interior
/// into plain offset row copies with an O(boundary) fix-up pass. The cache is
/// never serialized; it is rebuilt lazily after checkpoint reload or
/// migration.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ShiftLinks2 {
    /// `(q, i, j)`: destination is a wall node, population is held in place.
    pub hold: Vec<(u8, i32, i32)>,
    /// `(q, i, j)`: upstream node is a wall, population bounces back.
    pub bounce: Vec<(u8, i32, i32)>,
}

impl ShiftLinks2 {
    /// Scans the streamed region `[-2, n+2)` of `mask` for boundary links.
    pub fn build(mask: &PaddedGrid2<Cell>) -> Self {
        let nx = mask.nx() as isize;
        let ny = mask.ny() as isize;
        let mut links = Self::default();
        for (q, &(ex, ey)) in E2.iter().enumerate().take(Q2) {
            for j in -2..(ny + 2) {
                for i in -2..(nx + 2) {
                    if mask[(i, j)].is_wall() {
                        links.hold.push((q as u8, i as i32, j as i32));
                    } else if mask[(i - ex, j - ey)].is_wall() {
                        links.bounce.push((q as u8, i as i32, j as i32));
                    }
                }
            }
        }
        links
    }
}

/// Cached boundary links for the 3D LB streaming step (see [`ShiftLinks2`]).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ShiftLinks3 {
    /// `(q, i, j, k)`: destination is a wall node.
    pub hold: Vec<(u8, i32, i32, i32)>,
    /// `(q, i, j, k)`: upstream node is a wall.
    pub bounce: Vec<(u8, i32, i32, i32)>,
}

impl ShiftLinks3 {
    /// Scans the streamed region `[-2, n+2)` of `mask` for boundary links.
    pub fn build(mask: &PaddedGrid3<Cell>) -> Self {
        let nx = mask.nx() as isize;
        let ny = mask.ny() as isize;
        let nz = mask.nz() as isize;
        let mut links = Self::default();
        for (q, &(ex, ey, ez)) in E3.iter().enumerate().take(Q3) {
            for k in -2..(nz + 2) {
                for j in -2..(ny + 2) {
                    for i in -2..(nx + 2) {
                        if mask[(i, j, k)].is_wall() {
                            links.hold.push((q as u8, i as i32, j as i32, k as i32));
                        } else if mask[(i - ex, j - ey, k - ez)].is_wall() {
                            links.bounce.push((q as u8, i as i32, j as i32, k as i32));
                        }
                    }
                }
            }
        }
        links
    }
}

/// Macroscopic fields of a 2D tile: density and velocity components.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Macro2 {
    /// Fluid density ρ.
    pub rho: PaddedGrid2<f64>,
    /// x-velocity Vx.
    pub vx: PaddedGrid2<f64>,
    /// y-velocity Vy.
    pub vy: PaddedGrid2<f64>,
}

impl Macro2 {
    /// Uniform state at rest with density `rho0`.
    pub fn uniform(nx: usize, ny: usize, halo: usize, rho0: f64) -> Self {
        Self {
            rho: PaddedGrid2::new(nx, ny, halo, rho0),
            vx: PaddedGrid2::new(nx, ny, halo, 0.0),
            vy: PaddedGrid2::new(nx, ny, halo, 0.0),
        }
    }
}

/// Macroscopic fields of a 3D tile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Macro3 {
    /// Fluid density ρ.
    pub rho: PaddedGrid3<f64>,
    /// x-velocity Vx.
    pub vx: PaddedGrid3<f64>,
    /// y-velocity Vy.
    pub vy: PaddedGrid3<f64>,
    /// z-velocity Vz.
    pub vz: PaddedGrid3<f64>,
}

impl Macro3 {
    /// Uniform state at rest with density `rho0`.
    pub fn uniform(nx: usize, ny: usize, nz: usize, halo: usize, rho0: f64) -> Self {
        Self {
            rho: PaddedGrid3::new(nx, ny, nz, halo, rho0),
            vx: PaddedGrid3::new(nx, ny, nz, halo, 0.0),
            vy: PaddedGrid3::new(nx, ny, nz, halo, 0.0),
            vz: PaddedGrid3::new(nx, ny, nz, halo, 0.0),
        }
    }
}

/// The full state of one 2D subregion: fields, geometry, scratch buffers.
///
/// A tile knows its own interior size, its global offset inside the problem
/// (for initial conditions and gathering), and carries everything a parallel
/// subprocess needs — this is exactly the content of the paper's "dump files"
/// ("these files contain all the information that is needed by a workstation
/// to participate in a distributed computation", section 4.1).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TileState2 {
    /// Current macroscopic fields.
    pub mac: Macro2,
    /// Next-step macroscopic fields (finite-difference double buffer; also
    /// reused as filter output).
    pub mac_new: Macro2,
    /// Lattice Boltzmann populations, one padded grid per velocity
    /// (empty for finite differences). Streaming shifts these in place
    /// (ordered row copies plus the [`ShiftLinks2`] fix-ups), so no second
    /// population buffer is carried — halving LB tile state and checkpoints.
    pub f: Vec<PaddedGrid2<f64>>,
    /// Padded geometry mask (ghosts carry the *global* geometry).
    pub mask: PaddedGrid2<Cell>,
    /// Two scratch fields for the per-axis filter passes.
    pub scratch: Vec<PaddedGrid2<f64>>,
    /// Solver parameters.
    pub params: FluidParams,
    /// Global offset of this tile's interior node (0,0).
    pub offset: (usize, usize),
    /// Completed integration steps.
    pub step: u64,
    /// Lazily built streaming boundary-link cache (LB only; derived from
    /// `mask`, never serialized).
    #[serde(skip)]
    pub shift_links: Option<ShiftLinks2>,
}

impl TileState2 {
    /// Interior width.
    pub fn nx(&self) -> usize {
        self.mac.rho.nx()
    }

    /// Interior height.
    pub fn ny(&self) -> usize {
        self.mac.rho.ny()
    }

    /// Ghost-layer width.
    pub fn halo(&self) -> usize {
        self.mac.rho.halo()
    }

    /// Interior node count (the `N` of the efficiency model).
    pub fn nodes(&self) -> usize {
        self.nx() * self.ny()
    }
}

/// The full state of one 3D subregion.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TileState3 {
    /// Current macroscopic fields.
    pub mac: Macro3,
    /// Next-step macroscopic fields (FD double buffer / filter output).
    pub mac_new: Macro3,
    /// Lattice Boltzmann populations (empty for finite differences).
    /// Shifted in place during streaming; see [`TileState2::f`].
    pub f: Vec<PaddedGrid3<f64>>,
    /// Padded geometry mask.
    pub mask: PaddedGrid3<Cell>,
    /// Scratch fields for the per-axis filter passes.
    pub scratch: Vec<PaddedGrid3<f64>>,
    /// Solver parameters.
    pub params: FluidParams,
    /// Global offset of this tile's interior node (0,0,0).
    pub offset: (usize, usize, usize),
    /// Completed integration steps.
    pub step: u64,
    /// Lazily built streaming boundary-link cache (LB only; derived from
    /// `mask`, never serialized).
    #[serde(skip)]
    pub shift_links: Option<ShiftLinks3>,
}

impl TileState3 {
    /// Interior extent along x.
    pub fn nx(&self) -> usize {
        self.mac.rho.nx()
    }

    /// Interior extent along y.
    pub fn ny(&self) -> usize {
        self.mac.rho.ny()
    }

    /// Interior extent along z.
    pub fn nz(&self) -> usize {
        self.mac.rho.nz()
    }

    /// Ghost-layer width.
    pub fn halo(&self) -> usize {
        self.mac.rho.halo()
    }

    /// Interior node count.
    pub fn nodes(&self) -> usize {
        self.nx() * self.ny() * self.nz()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_macro_is_at_rest() {
        let m = Macro2::uniform(5, 4, 2, 1.25);
        assert_eq!(m.rho[(0, 0)], 1.25);
        assert_eq!(m.vx[(2, 3)], 0.0);
        assert_eq!(m.rho[(-2, -2)], 1.25);
    }

    #[test]
    fn uniform_macro3() {
        let m = Macro3::uniform(3, 4, 5, 1, 0.5);
        assert_eq!(m.rho[(2, 3, 4)], 0.5);
        assert_eq!(m.vz[(0, 0, 0)], 0.0);
    }
}
