//! Step plans: the alternating compute/communicate structure of a cycle.
//!
//! Section 4.1 of the paper: "The parallel program consists of two steps:
//! 'compute locally', and 'communicate with neighbors'." Each method's cycle
//! is a fixed sequence of local compute phases and halo exchanges — for
//! finite differences (section 6):
//!
//! ```text
//! Calculate Vx, Vy (inner)   -> Compute(0)
//! Communicate Vx, Vy         -> Exchange(0)
//! Calculate rho (inner)      -> Compute(1)
//! Communicate rho            -> Exchange(1)
//! Filter rho, Vx, Vy (inner) -> Compute(2)
//! ```
//!
//! and for the lattice Boltzmann method:
//!
//! ```text
//! Communicate F_i            -> Exchange(0)   (start-of-cycle phasing)
//! Relax + shift F_i (inner)  -> Compute(0)
//! Calculate rho, V from F_i  -> Compute(1)
//! Filter rho, Vx, Vy (inner) -> Compute(2)
//! ```
//!
//! Runners execute the ops in order; an `Exchange(k)` op moves the packed
//! strips of exchange id `k` between neighbouring tiles (or applies the
//! periodic wrap in a serial run). The LB exchange is phased at the start of
//! the cycle rather than mid-cycle; over a run the wire traffic is identical
//! (one message per neighbour per step) and the phasing makes every tile's
//! ghost ring carry fully settled (post-filter) state, which is what gives
//! bitwise serial/parallel equivalence.

use serde::{Deserialize, Serialize};

/// One operation of a method's cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StepOp {
    /// Run local compute phase `k` on the tile.
    Compute(usize),
    /// Exchange halo data of exchange id `k` with all neighbours.
    Exchange(usize),
}

/// Returns the number of `Exchange` ops in a plan (messages per neighbour per
/// integration step — 2 for FD, 1 for LB, the distinction the paper uses to
/// explain Figure 5 vs Figure 7).
pub fn exchanges_per_step(plan: &[StepOp]) -> usize {
    plan.iter()
        .filter(|op| matches!(op, StepOp::Exchange(_)))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_exchanges() {
        let plan = [
            StepOp::Compute(0),
            StepOp::Exchange(0),
            StepOp::Compute(1),
            StepOp::Exchange(1),
            StepOp::Compute(2),
        ];
        assert_eq!(exchanges_per_step(&plan), 2);
    }
}
