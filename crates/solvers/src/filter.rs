//! The fourth-order numerical-viscosity filter (section 6 of the paper).
//!
//! "The filter ... is crucial for simulating subsonic flow at high Reynolds
//! number. ... The filter prevents the instabilities by dissipating high
//! spatial frequencies whose wavelength is comparable to the grid mesh size.
//! Our filter is based on a fourth order numerical viscosity
//! (Peyret&Taylor). We use the same filter both for the finite difference
//! method and for the lattice Boltzmann method."
//!
//! Per axis: `u ← u − ε (u₋₂ − 4u₋₁ + 6u₀ − 4u₊₁ + u₊₂)`. The biharmonic
//! stencil damps the Nyquist mode by `1 − 16ε` and leaves smooth modes nearly
//! untouched (O(k⁴) attenuation). Axes are applied as sequential passes
//! through scratch storage. Stencils touching non-fluid cells are skipped
//! (the value passes through unchanged), so the filter never reads across a
//! wall, an inlet or an outlet.
//!
//! The `ring` argument widens the output region into the ghost band by that
//! many layers; the finite-difference scheme filters a two-deep ghost ring so
//! that the next cycle's stencils read post-filter values (see `fd2`), while
//! the lattice Boltzmann scheme (which exchanges at the start of its cycle)
//! filters the interior only.
//!
//! ## Fast vs scalar path
//!
//! [`filter_field2`]/[`filter_field3`] are the production kernels: each row
//! is first copied through, then the cells whose whole 5-wide window lies in
//! a fluid run are overwritten by a branch-free stencil loop over trimmed
//! sub-slices (which autovectorizes); with
//! [`crate::kernels::intra_threads`] > 1 the 2D passes split into row bands
//! and the 3D passes into plane bands. The 3D serial sweep is additionally
//! cache-blocked: the three axis passes are interleaved along k so the x- and
//! y-filtered slabs are consumed while still cache-resident instead of three
//! full-volume round trips (the z-pass trails the pipeline by two slabs, the
//! stencil reach). [`filter_field2_scalar`]/[`filter_field3_scalar`] keep the
//! original per-cell formulation; both paths evaluate the identical stencil
//! expression, and the equivalence tests pin them bitwise equal.

use crate::kernels;
use rayon;
use subsonic_grid::{Cell, PaddedGrid2, PaddedGrid3};

/// Damping factor applied to the Nyquist (grid-scale) mode by one pass.
pub fn nyquist_gain(eps: f64) -> f64 {
    1.0 - 16.0 * eps
}

#[inline(always)]
fn fluid5(m: impl Fn(isize) -> Cell) -> bool {
    (-2..=2).all(|d| m(d).is_fluid())
}

/// One row of the along-row (x) filter pass, per-cell reference form. `src`
/// spans `[x0-2, x0+n+2)` of the input row, `msk` the same range of the mask
/// row, `dst` spans `[x0, x0+n)` of the output row.
#[inline(always)]
fn filter_row_x(dst: &mut [f64], src: &[f64], msk: &[Cell], eps: f64) {
    for (x, d) in dst.iter_mut().enumerate() {
        let v = src[x + 2];
        let ok = fluid5(|o| msk[(x as isize + 2 + o) as usize]);
        *d = if ok {
            v - eps * (src[x] - 4.0 * src[x + 1] + 6.0 * v - 4.0 * src[x + 3] + src[x + 4])
        } else {
            v
        };
    }
}

/// One row of an across-row filter pass, per-cell reference form: the five
/// stencil inputs come from five parallel rows (offsets −2..+2 along the
/// filtered axis) at the same x.
#[inline(always)]
fn filter_row_across(dst: &mut [f64], s: [&[f64]; 5], m: [&[Cell]; 5], eps: f64) {
    for (x, d) in dst.iter_mut().enumerate() {
        let v = s[2][x];
        let ok = fluid5(|o| m[(o + 2) as usize][x]);
        *d = if ok {
            v - eps * (s[0][x] - 4.0 * s[1][x] + 6.0 * v - 4.0 * s[3][x] + s[4][x])
        } else {
            v
        };
    }
}

/// Fast along-row pass: passthrough copy, then a branch-free stencil over
/// every maximal all-fluid window run. A cell `x` gets the stencil iff its
/// window `msk[x..x+5]` lies inside a maximal fluid run `[a, b)`, i.e.
/// `x ∈ [a, b-4)` — exactly the cells [`filter_row_x`] stencils.
#[inline(always)]
fn filter_row_x_fast(dst: &mut [f64], src: &[f64], msk: &[Cell], eps: f64) {
    let n = dst.len();
    dst.copy_from_slice(&src[2..n + 2]);
    let mut a = 0;
    while a < n + 4 {
        if !msk[a].is_fluid() {
            a += 1;
            continue;
        }
        let mut b = a + 1;
        while b < n + 4 && msk[b].is_fluid() {
            b += 1;
        }
        let lo = a;
        let hi = b.saturating_sub(4).min(n);
        if lo < hi {
            let s0 = &src[lo..hi];
            let s1 = &src[lo + 1..hi + 1];
            let s2 = &src[lo + 2..hi + 2];
            let s3 = &src[lo + 3..hi + 3];
            let s4 = &src[lo + 4..hi + 4];
            let d = &mut dst[lo..hi];
            for x in 0..hi - lo {
                let v = s2[x];
                d[x] = v - eps * (s0[x] - 4.0 * s1[x] + 6.0 * v - 4.0 * s3[x] + s4[x]);
            }
        }
        a = b;
    }
}

/// Fast across-row pass (see [`filter_row_x_fast`]); the window here is the
/// same x in five parallel rows.
#[inline(always)]
fn filter_row_across_fast(dst: &mut [f64], s: [&[f64]; 5], m: [&[Cell]; 5], eps: f64) {
    let n = dst.len();
    dst.copy_from_slice(s[2]);
    let all_fluid = |x: usize| {
        m[0][x].is_fluid()
            && m[1][x].is_fluid()
            && m[2][x].is_fluid()
            && m[3][x].is_fluid()
            && m[4][x].is_fluid()
    };
    let mut a = 0;
    while a < n {
        if !all_fluid(a) {
            a += 1;
            continue;
        }
        let mut b = a + 1;
        while b < n && all_fluid(b) {
            b += 1;
        }
        let s0 = &s[0][a..b];
        let s1 = &s[1][a..b];
        let s2 = &s[2][a..b];
        let s3 = &s[3][a..b];
        let s4 = &s[4][a..b];
        let d = &mut dst[a..b];
        for x in 0..b - a {
            let v = s2[x];
            d[x] = v - eps * (s0[x] - 4.0 * s1[x] + 6.0 * v - 4.0 * s3[x] + s4[x]);
        }
        a = b;
    }
}

/// Applies the two-pass 2D filter to `u` in place, using `sx` as scratch
/// (fast path: run-specialized rows, row-banded when intra-tile threads are
/// configured; bitwise identical to [`filter_field2_scalar`]).
///
/// Output region: `[-ring, n+ring)` on both axes. Requires `u` valid on
/// `[-ring-2, n+ring+2)` and the grids' halo to be at least `ring + 2`.
pub fn filter_field2(
    u: &mut PaddedGrid2<f64>,
    sx: &mut PaddedGrid2<f64>,
    mask: &PaddedGrid2<Cell>,
    eps: f64,
    ring: isize,
) {
    let nx = u.nx() as isize;
    let ny = u.ny() as isize;
    debug_assert!(
        u.halo() as isize >= ring + 2,
        "halo too small for filter ring"
    );
    let span = (nx + 2 * ring) as usize;

    // Pass 1 (x): scratch <- filtered-in-x, over a y-range widened by 2 so
    // pass 2 has valid inputs.
    let (p1lo, p1hi) = (-ring - 2, ny + ring + 2);
    let nb1 = kernels::bands_for(p1lo, p1hi);
    if nb1 <= 1 {
        for j in p1lo..p1hi {
            filter_row_x_fast(
                sx.row_segment_mut(j, -ring, span),
                u.row_segment(j, -ring - 2, span + 4),
                mask.row_segment(j, -ring - 2, span + 4),
                eps,
            );
        }
    } else {
        let cuts = kernels::band_cuts(p1lo, p1hi, nb1);
        let mut bands = sx.row_bands_mut(&cuts).into_iter();
        let u_in = &*u;
        rayon::scope(|s| {
            for w in cuts.windows(2) {
                let (ja, jb) = (w[0], w[1]);
                let mut band = bands.next().unwrap();
                s.spawn(move |_| {
                    for j in ja..jb {
                        filter_row_x_fast(
                            band.row_segment_mut(j, -ring, span),
                            u_in.row_segment(j, -ring - 2, span + 4),
                            mask.row_segment(j, -ring - 2, span + 4),
                            eps,
                        );
                    }
                });
            }
        });
    }

    // Pass 2 (y): u <- filtered-in-y of scratch.
    let (p2lo, p2hi) = (-ring, ny + ring);
    let nb2 = kernels::bands_for(p2lo, p2hi);
    if nb2 <= 1 {
        for j in p2lo..p2hi {
            filter_row_across_fast(
                u.row_segment_mut(j, -ring, span),
                std::array::from_fn(|o| sx.row_segment(j + o as isize - 2, -ring, span)),
                std::array::from_fn(|o| mask.row_segment(j + o as isize - 2, -ring, span)),
                eps,
            );
        }
    } else {
        let cuts = kernels::band_cuts(p2lo, p2hi, nb2);
        let mut bands = u.row_bands_mut(&cuts).into_iter();
        let sx_in = &*sx;
        rayon::scope(|s| {
            for w in cuts.windows(2) {
                let (ja, jb) = (w[0], w[1]);
                let mut band = bands.next().unwrap();
                s.spawn(move |_| {
                    for j in ja..jb {
                        filter_row_across_fast(
                            band.row_segment_mut(j, -ring, span),
                            std::array::from_fn(|o| {
                                sx_in.row_segment(j + o as isize - 2, -ring, span)
                            }),
                            std::array::from_fn(|o| {
                                mask.row_segment(j + o as isize - 2, -ring, span)
                            }),
                            eps,
                        );
                    }
                });
            }
        });
    }
}

/// The original per-cell 2D filter — scalar reference for the equivalence
/// tests and the `compute_scalar` solver path.
pub fn filter_field2_scalar(
    u: &mut PaddedGrid2<f64>,
    sx: &mut PaddedGrid2<f64>,
    mask: &PaddedGrid2<Cell>,
    eps: f64,
    ring: isize,
) {
    let nx = u.nx() as isize;
    let ny = u.ny() as isize;
    debug_assert!(
        u.halo() as isize >= ring + 2,
        "halo too small for filter ring"
    );
    let span = (nx + 2 * ring) as usize;
    for j in (-ring - 2)..(ny + ring + 2) {
        filter_row_x(
            sx.row_segment_mut(j, -ring, span),
            u.row_segment(j, -ring - 2, span + 4),
            mask.row_segment(j, -ring - 2, span + 4),
            eps,
        );
    }
    for j in -ring..(ny + ring) {
        filter_row_across(
            u.row_segment_mut(j, -ring, span),
            std::array::from_fn(|o| sx.row_segment(j + o as isize - 2, -ring, span)),
            std::array::from_fn(|o| mask.row_segment(j + o as isize - 2, -ring, span)),
            eps,
        );
    }
}

/// Applies the three-pass 3D filter to `u` in place, using `sx`/`sy` scratch.
/// Serial: a k-pipelined cache-blocked sweep (see module docs). With
/// intra-tile threads: three plane-banded passes. Bitwise identical to
/// [`filter_field3_scalar`] either way.
///
/// Output region: `[-ring, n+ring)` on all axes. Requires `u` valid on
/// `[-ring-2, n+ring+2)` and halo at least `ring + 2`.
pub fn filter_field3(
    u: &mut PaddedGrid3<f64>,
    sx: &mut PaddedGrid3<f64>,
    sy: &mut PaddedGrid3<f64>,
    mask: &PaddedGrid3<Cell>,
    eps: f64,
    ring: isize,
) {
    let nx = u.nx() as isize;
    let ny = u.ny() as isize;
    let nz = u.nz() as isize;
    debug_assert!(
        u.halo() as isize >= ring + 2,
        "halo too small for filter ring"
    );
    let span = (nx + 2 * ring) as usize;
    let (klo, khi) = (-ring - 2, nz + ring + 2);
    let nb = kernels::bands_for(klo, khi);

    if nb <= 1 {
        // Pipelined sweep: slab kk runs the x- and y-pass, then the z-pass
        // emits slab kk-2 (whose sy inputs kk-4..kk are now all ready). The
        // x-pass at kk still reads pristine u[kk]: the z-pass only overwrites
        // u two slabs behind.
        for kk in klo..khi {
            for j in (-ring - 2)..(ny + ring + 2) {
                filter_row_x_fast(
                    sx.row_segment_mut(j, kk, -ring, span),
                    u.row_segment(j, kk, -ring - 2, span + 4),
                    mask.row_segment(j, kk, -ring - 2, span + 4),
                    eps,
                );
            }
            for j in -ring..(ny + ring) {
                filter_row_across_fast(
                    sy.row_segment_mut(j, kk, -ring, span),
                    std::array::from_fn(|o| sx.row_segment(j + o as isize - 2, kk, -ring, span)),
                    std::array::from_fn(|o| mask.row_segment(j + o as isize - 2, kk, -ring, span)),
                    eps,
                );
            }
            let k = kk - 2;
            if k >= -ring {
                for j in -ring..(ny + ring) {
                    filter_row_across_fast(
                        u.row_segment_mut(j, k, -ring, span),
                        std::array::from_fn(|o| sy.row_segment(j, k + o as isize - 2, -ring, span)),
                        std::array::from_fn(|o| {
                            mask.row_segment(j, k + o as isize - 2, -ring, span)
                        }),
                        eps,
                    );
                }
            }
        }
        return;
    }

    // Plane-banded passes (each pass is a barrier; reads of the previous
    // pass's output may cross band boundaries, which is fine — it is only
    // read).
    let cuts = kernels::band_cuts(klo, khi, nb);
    {
        let mut bands = sx.plane_bands_mut(&cuts).into_iter();
        let u_in = &*u;
        rayon::scope(|s| {
            for w in cuts.windows(2) {
                let (ka, kb) = (w[0], w[1]);
                let mut band = bands.next().unwrap();
                s.spawn(move |_| {
                    for k in ka..kb {
                        for j in (-ring - 2)..(ny + ring + 2) {
                            filter_row_x_fast(
                                band.row_segment_mut(j, k, -ring, span),
                                u_in.row_segment(j, k, -ring - 2, span + 4),
                                mask.row_segment(j, k, -ring - 2, span + 4),
                                eps,
                            );
                        }
                    }
                });
            }
        });
    }
    {
        let mut bands = sy.plane_bands_mut(&cuts).into_iter();
        let sx_in = &*sx;
        rayon::scope(|s| {
            for w in cuts.windows(2) {
                let (ka, kb) = (w[0], w[1]);
                let mut band = bands.next().unwrap();
                s.spawn(move |_| {
                    for k in ka..kb {
                        for j in -ring..(ny + ring) {
                            filter_row_across_fast(
                                band.row_segment_mut(j, k, -ring, span),
                                std::array::from_fn(|o| {
                                    sx_in.row_segment(j + o as isize - 2, k, -ring, span)
                                }),
                                std::array::from_fn(|o| {
                                    mask.row_segment(j + o as isize - 2, k, -ring, span)
                                }),
                                eps,
                            );
                        }
                    }
                });
            }
        });
    }
    {
        let cuts3 = kernels::band_cuts(-ring, nz + ring, kernels::bands_for(-ring, nz + ring));
        let mut bands = u.plane_bands_mut(&cuts3).into_iter();
        let sy_in = &*sy;
        rayon::scope(|s| {
            for w in cuts3.windows(2) {
                let (ka, kb) = (w[0], w[1]);
                let mut band = bands.next().unwrap();
                s.spawn(move |_| {
                    for k in ka..kb {
                        for j in -ring..(ny + ring) {
                            filter_row_across_fast(
                                band.row_segment_mut(j, k, -ring, span),
                                std::array::from_fn(|o| {
                                    sy_in.row_segment(j, k + o as isize - 2, -ring, span)
                                }),
                                std::array::from_fn(|o| {
                                    mask.row_segment(j, k + o as isize - 2, -ring, span)
                                }),
                                eps,
                            );
                        }
                    }
                });
            }
        });
    }
}

/// The original three-full-pass per-cell 3D filter — scalar reference.
pub fn filter_field3_scalar(
    u: &mut PaddedGrid3<f64>,
    sx: &mut PaddedGrid3<f64>,
    sy: &mut PaddedGrid3<f64>,
    mask: &PaddedGrid3<Cell>,
    eps: f64,
    ring: isize,
) {
    let nx = u.nx() as isize;
    let ny = u.ny() as isize;
    let nz = u.nz() as isize;
    debug_assert!(
        u.halo() as isize >= ring + 2,
        "halo too small for filter ring"
    );
    let span = (nx + 2 * ring) as usize;

    for k in (-ring - 2)..(nz + ring + 2) {
        for j in (-ring - 2)..(ny + ring + 2) {
            filter_row_x(
                sx.row_segment_mut(j, k, -ring, span),
                u.row_segment(j, k, -ring - 2, span + 4),
                mask.row_segment(j, k, -ring - 2, span + 4),
                eps,
            );
        }
    }

    for k in (-ring - 2)..(nz + ring + 2) {
        for j in -ring..(ny + ring) {
            filter_row_across(
                sy.row_segment_mut(j, k, -ring, span),
                std::array::from_fn(|o| sx.row_segment(j + o as isize - 2, k, -ring, span)),
                std::array::from_fn(|o| mask.row_segment(j + o as isize - 2, k, -ring, span)),
                eps,
            );
        }
    }

    for k in -ring..(nz + ring) {
        for j in -ring..(ny + ring) {
            filter_row_across(
                u.row_segment_mut(j, k, -ring, span),
                std::array::from_fn(|o| sy.row_segment(j, k + o as isize - 2, -ring, span)),
                std::array::from_fn(|o| mask.row_segment(j, k + o as isize - 2, -ring, span)),
                eps,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subsonic_grid::Cell;

    fn all_fluid2(nx: usize, ny: usize, halo: usize) -> PaddedGrid2<Cell> {
        PaddedGrid2::new(nx, ny, halo, Cell::Fluid)
    }

    #[test]
    fn constant_field_is_invariant() {
        let mask = all_fluid2(8, 8, 4);
        let mut u = PaddedGrid2::new(8, 8, 4, 3.25f64);
        let mut sx = u.clone();
        filter_field2(&mut u, &mut sx, &mask, 0.02, 2);
        for j in -2..10 {
            for i in -2..10 {
                assert!((u[(i, j)] - 3.25).abs() < 1e-14);
            }
        }
    }

    #[test]
    fn linear_field_is_invariant() {
        // The 5-point biharmonic stencil annihilates polynomials up to
        // degree 3, so a linear ramp passes through unchanged.
        let mask = all_fluid2(8, 8, 4);
        let mut u = PaddedGrid2::from_fn(8, 8, 4, |i, j| 2.0 * i as f64 - 0.5 * j as f64);
        let want = u.clone();
        let mut sx = u.clone();
        filter_field2(&mut u, &mut sx, &mask, 0.03, 2);
        for j in 0..8 {
            for i in 0..8 {
                assert!((u[(i, j)] - want[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn nyquist_mode_is_damped() {
        let mask = all_fluid2(16, 16, 4);
        let eps = 0.02;
        let mut u = PaddedGrid2::from_fn(16, 16, 4, |i, _| if i % 2 == 0 { 1.0 } else { -1.0 });
        let mut sx = u.clone();
        filter_field2(&mut u, &mut sx, &mask, eps, 2);
        // (-1)^i mode in x is an eigenvector with gain 1-16eps; uniform in y.
        let g = nyquist_gain(eps);
        for j in 0..16 {
            for i in 0..16 {
                let want = if i % 2 == 0 { g } else { -g };
                assert!((u[(i as isize, j as isize)] - want).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn wall_adjacent_cells_pass_through() {
        let mut mask = all_fluid2(8, 8, 4);
        mask[(3, 3)] = Cell::Wall;
        let mut u = PaddedGrid2::from_fn(8, 8, 4, |i, j| ((i * i) as f64) * 0.1 + j as f64);
        let want = u.clone();
        let mut sx = u.clone();
        filter_field2(&mut u, &mut sx, &mask, 0.02, 0);
        // cells whose 5-point stencils contain (3,3) keep their raw value in
        // the corresponding pass; the wall cell itself is fully unchanged
        assert_eq!(u[(3, 3)], want[(3, 3)]);
    }

    #[test]
    fn filter3_constant_invariant() {
        let mask = PaddedGrid3::new(6, 6, 6, 4, Cell::Fluid);
        let mut u = PaddedGrid3::new(6, 6, 6, 4, 1.5f64);
        let mut sx = u.clone();
        let mut sy = u.clone();
        filter_field3(&mut u, &mut sx, &mut sy, &mask, 0.02, 2);
        for k in -2..8 {
            for j in -2..8 {
                for i in -2..8 {
                    assert!((u[(i, j, k)] - 1.5).abs() < 1e-14);
                }
            }
        }
    }

    #[test]
    fn filter3_nyquist_damped() {
        let mask = PaddedGrid3::new(8, 8, 8, 3, Cell::Fluid);
        let eps = 0.01;
        let mut u = PaddedGrid3::from_fn(8, 8, 8, 3, |_, j, _| if j % 2 == 0 { 1.0 } else { -1.0 });
        let mut sx = u.clone();
        let mut sy = u.clone();
        filter_field3(&mut u, &mut sx, &mut sy, &mask, eps, 0);
        let g = nyquist_gain(eps);
        assert!((u[(4, 4, 4)] - g).abs() < 1e-12);
        assert!((u[(4, 3, 4)] + g).abs() < 1e-12);
    }

    #[test]
    fn gain_bounds() {
        assert!((nyquist_gain(1.0 / 16.0)).abs() < 1e-14);
        assert_eq!(nyquist_gain(0.0), 1.0);
    }

    /// A mask with scattered obstacles so runs, run edges and fallbacks all
    /// get exercised.
    fn obstacle_mask2() -> PaddedGrid2<Cell> {
        let mut mask = all_fluid2(19, 13, 4);
        for (i, j) in [(2, 3), (3, 3), (4, 3), (9, 7), (14, 1), (0, 11), (18, 5)] {
            mask[(i, j)] = Cell::Wall;
        }
        mask[(7, 0)] = Cell::Inlet;
        mask[(12, 12)] = Cell::Outlet;
        mask
    }

    #[test]
    fn fast_filter2_matches_scalar_bitwise() {
        let mask = obstacle_mask2();
        for ring in [0, 2] {
            let mut a =
                PaddedGrid2::from_fn(19, 13, 4, |i, j| (i as f64 * 0.37).sin() + j as f64 * 0.11);
            let mut b = a.clone();
            let mut sa = PaddedGrid2::new(19, 13, 4, 0.0f64);
            let mut sb = sa.clone();
            filter_field2(&mut a, &mut sa, &mask, 0.0175, ring);
            filter_field2_scalar(&mut b, &mut sb, &mask, 0.0175, ring);
            assert_eq!(a, b, "ring {ring}");
        }
    }

    #[test]
    fn fast_filter3_matches_scalar_bitwise() {
        let mut mask = PaddedGrid3::new(9, 8, 7, 4, Cell::Fluid);
        for (i, j, k) in [(2, 3, 1), (3, 3, 1), (6, 6, 5), (0, 0, 0), (8, 7, 6)] {
            mask[(i, j, k)] = Cell::Wall;
        }
        for ring in [0, 2] {
            let mut a = PaddedGrid3::from_fn(9, 8, 7, 4, |i, j, k| {
                (i as f64 * 0.7).cos() + j as f64 * 0.2 - k as f64 * 0.13
            });
            let mut b = a.clone();
            let mut sxa = PaddedGrid3::new(9, 8, 7, 4, 0.0f64);
            let mut sya = sxa.clone();
            let mut sxb = sxa.clone();
            let mut syb = sxa.clone();
            filter_field3(&mut a, &mut sxa, &mut sya, &mask, 0.02, ring);
            filter_field3_scalar(&mut b, &mut sxb, &mut syb, &mask, 0.02, ring);
            assert_eq!(a, b, "ring {ring}");
        }
    }

    #[test]
    fn banded_filter_matches_serial_bitwise() {
        let mask = obstacle_mask2();
        let mut a = PaddedGrid2::from_fn(19, 13, 4, |i, j| i as f64 * 0.3 + (j as f64).cos());
        let mut b = a.clone();
        let mut sa = PaddedGrid2::new(19, 13, 4, 0.0f64);
        let mut sb = sa.clone();
        crate::kernels::set_intra_threads(1);
        filter_field2(&mut a, &mut sa, &mask, 0.02, 2);
        crate::kernels::set_intra_threads(4);
        filter_field2(&mut b, &mut sb, &mask, 0.02, 2);
        crate::kernels::set_intra_threads(1);
        assert_eq!(a, b);
    }
}
