//! The fourth-order numerical-viscosity filter (section 6 of the paper).
//!
//! "The filter ... is crucial for simulating subsonic flow at high Reynolds
//! number. ... The filter prevents the instabilities by dissipating high
//! spatial frequencies whose wavelength is comparable to the grid mesh size.
//! Our filter is based on a fourth order numerical viscosity
//! (Peyret&Taylor). We use the same filter both for the finite difference
//! method and for the lattice Boltzmann method."
//!
//! Per axis: `u ← u − ε (u₋₂ − 4u₋₁ + 6u₀ − 4u₊₁ + u₊₂)`. The biharmonic
//! stencil damps the Nyquist mode by `1 − 16ε` and leaves smooth modes nearly
//! untouched (O(k⁴) attenuation). Axes are applied as sequential passes
//! through scratch storage. Stencils touching non-fluid cells are skipped
//! (the value passes through unchanged), so the filter never reads across a
//! wall, an inlet or an outlet.
//!
//! The `ring` argument widens the output region into the ghost band by that
//! many layers; the finite-difference scheme filters a two-deep ghost ring so
//! that the next cycle's stencils read post-filter values (see `fd2`), while
//! the lattice Boltzmann scheme (which exchanges at the start of its cycle)
//! filters the interior only.

use subsonic_grid::{Cell, PaddedGrid2, PaddedGrid3};

/// Damping factor applied to the Nyquist (grid-scale) mode by one pass.
pub fn nyquist_gain(eps: f64) -> f64 {
    1.0 - 16.0 * eps
}

#[inline(always)]
fn fluid5(m: impl Fn(isize) -> Cell) -> bool {
    (-2..=2).all(|d| m(d).is_fluid())
}

/// One row of the along-row (x) filter pass. `src` spans `[x0-2, x0+n+2)` of
/// the input row, `msk` the same range of the mask row, `dst` spans
/// `[x0, x0+n)` of the output row.
#[inline(always)]
fn filter_row_x(dst: &mut [f64], src: &[f64], msk: &[Cell], eps: f64) {
    for (x, d) in dst.iter_mut().enumerate() {
        let v = src[x + 2];
        let ok = fluid5(|o| msk[(x as isize + 2 + o) as usize]);
        *d = if ok {
            v - eps * (src[x] - 4.0 * src[x + 1] + 6.0 * v - 4.0 * src[x + 3] + src[x + 4])
        } else {
            v
        };
    }
}

/// One row of an across-row filter pass: the five stencil inputs come from
/// five parallel rows (offsets −2..+2 along the filtered axis) at the same x.
#[inline(always)]
fn filter_row_across(dst: &mut [f64], s: [&[f64]; 5], m: [&[Cell]; 5], eps: f64) {
    for (x, d) in dst.iter_mut().enumerate() {
        let v = s[2][x];
        let ok = fluid5(|o| m[(o + 2) as usize][x]);
        *d = if ok {
            v - eps * (s[0][x] - 4.0 * s[1][x] + 6.0 * v - 4.0 * s[3][x] + s[4][x])
        } else {
            v
        };
    }
}

/// Applies the two-pass 2D filter to `u` in place, using `sx` as scratch.
///
/// Output region: `[-ring, n+ring)` on both axes. Requires `u` valid on
/// `[-ring-2, n+ring+2)` and the grids' halo to be at least `ring + 2`.
pub fn filter_field2(
    u: &mut PaddedGrid2<f64>,
    sx: &mut PaddedGrid2<f64>,
    mask: &PaddedGrid2<Cell>,
    eps: f64,
    ring: isize,
) {
    let nx = u.nx() as isize;
    let ny = u.ny() as isize;
    debug_assert!(
        u.halo() as isize >= ring + 2,
        "halo too small for filter ring"
    );
    let span = (nx + 2 * ring) as usize;

    // Pass 1 (x): scratch <- filtered-in-x, over a y-range widened by 2 so
    // pass 2 has valid inputs.
    for j in (-ring - 2)..(ny + ring + 2) {
        filter_row_x(
            sx.row_segment_mut(j, -ring, span),
            u.row_segment(j, -ring - 2, span + 4),
            mask.row_segment(j, -ring - 2, span + 4),
            eps,
        );
    }

    // Pass 2 (y): u <- filtered-in-y of scratch.
    for j in -ring..(ny + ring) {
        filter_row_across(
            u.row_segment_mut(j, -ring, span),
            std::array::from_fn(|o| sx.row_segment(j + o as isize - 2, -ring, span)),
            std::array::from_fn(|o| mask.row_segment(j + o as isize - 2, -ring, span)),
            eps,
        );
    }
}

/// Applies the three-pass 3D filter to `u` in place, using `sx`/`sy` scratch.
///
/// Output region: `[-ring, n+ring)` on all axes. Requires `u` valid on
/// `[-ring-2, n+ring+2)` and halo at least `ring + 2`.
pub fn filter_field3(
    u: &mut PaddedGrid3<f64>,
    sx: &mut PaddedGrid3<f64>,
    sy: &mut PaddedGrid3<f64>,
    mask: &PaddedGrid3<Cell>,
    eps: f64,
    ring: isize,
) {
    let nx = u.nx() as isize;
    let ny = u.ny() as isize;
    let nz = u.nz() as isize;
    debug_assert!(
        u.halo() as isize >= ring + 2,
        "halo too small for filter ring"
    );
    let span = (nx + 2 * ring) as usize;

    for k in (-ring - 2)..(nz + ring + 2) {
        for j in (-ring - 2)..(ny + ring + 2) {
            filter_row_x(
                sx.row_segment_mut(j, k, -ring, span),
                u.row_segment(j, k, -ring - 2, span + 4),
                mask.row_segment(j, k, -ring - 2, span + 4),
                eps,
            );
        }
    }

    for k in (-ring - 2)..(nz + ring + 2) {
        for j in -ring..(ny + ring) {
            filter_row_across(
                sy.row_segment_mut(j, k, -ring, span),
                std::array::from_fn(|o| sx.row_segment(j + o as isize - 2, k, -ring, span)),
                std::array::from_fn(|o| mask.row_segment(j + o as isize - 2, k, -ring, span)),
                eps,
            );
        }
    }

    for k in -ring..(nz + ring) {
        for j in -ring..(ny + ring) {
            filter_row_across(
                u.row_segment_mut(j, k, -ring, span),
                std::array::from_fn(|o| sy.row_segment(j, k + o as isize - 2, -ring, span)),
                std::array::from_fn(|o| mask.row_segment(j, k + o as isize - 2, -ring, span)),
                eps,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subsonic_grid::Cell;

    fn all_fluid2(nx: usize, ny: usize, halo: usize) -> PaddedGrid2<Cell> {
        PaddedGrid2::new(nx, ny, halo, Cell::Fluid)
    }

    #[test]
    fn constant_field_is_invariant() {
        let mask = all_fluid2(8, 8, 4);
        let mut u = PaddedGrid2::new(8, 8, 4, 3.25f64);
        let mut sx = u.clone();
        filter_field2(&mut u, &mut sx, &mask, 0.02, 2);
        for j in -2..10 {
            for i in -2..10 {
                assert!((u[(i, j)] - 3.25).abs() < 1e-14);
            }
        }
    }

    #[test]
    fn linear_field_is_invariant() {
        // The 5-point biharmonic stencil annihilates polynomials up to
        // degree 3, so a linear ramp passes through unchanged.
        let mask = all_fluid2(8, 8, 4);
        let mut u = PaddedGrid2::from_fn(8, 8, 4, |i, j| 2.0 * i as f64 - 0.5 * j as f64);
        let want = u.clone();
        let mut sx = u.clone();
        filter_field2(&mut u, &mut sx, &mask, 0.03, 2);
        for j in 0..8 {
            for i in 0..8 {
                assert!((u[(i, j)] - want[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn nyquist_mode_is_damped() {
        let mask = all_fluid2(16, 16, 4);
        let eps = 0.02;
        let mut u = PaddedGrid2::from_fn(16, 16, 4, |i, _| if i % 2 == 0 { 1.0 } else { -1.0 });
        let mut sx = u.clone();
        filter_field2(&mut u, &mut sx, &mask, eps, 2);
        // (-1)^i mode in x is an eigenvector with gain 1-16eps; uniform in y.
        let g = nyquist_gain(eps);
        for j in 0..16 {
            for i in 0..16 {
                let want = if i % 2 == 0 { g } else { -g };
                assert!((u[(i as isize, j as isize)] - want).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn wall_adjacent_cells_pass_through() {
        let mut mask = all_fluid2(8, 8, 4);
        mask[(3, 3)] = Cell::Wall;
        let mut u = PaddedGrid2::from_fn(8, 8, 4, |i, j| ((i * i) as f64) * 0.1 + j as f64);
        let want = u.clone();
        let mut sx = u.clone();
        filter_field2(&mut u, &mut sx, &mask, 0.02, 0);
        // cells whose 5-point stencils contain (3,3) keep their raw value in
        // the corresponding pass; the wall cell itself is fully unchanged
        assert_eq!(u[(3, 3)], want[(3, 3)]);
    }

    #[test]
    fn filter3_constant_invariant() {
        let mask = PaddedGrid3::new(6, 6, 6, 4, Cell::Fluid);
        let mut u = PaddedGrid3::new(6, 6, 6, 4, 1.5f64);
        let mut sx = u.clone();
        let mut sy = u.clone();
        filter_field3(&mut u, &mut sx, &mut sy, &mask, 0.02, 2);
        for k in -2..8 {
            for j in -2..8 {
                for i in -2..8 {
                    assert!((u[(i, j, k)] - 1.5).abs() < 1e-14);
                }
            }
        }
    }

    #[test]
    fn filter3_nyquist_damped() {
        let mask = PaddedGrid3::new(8, 8, 8, 3, Cell::Fluid);
        let eps = 0.01;
        let mut u = PaddedGrid3::from_fn(8, 8, 8, 3, |_, j, _| if j % 2 == 0 { 1.0 } else { -1.0 });
        let mut sx = u.clone();
        let mut sy = u.clone();
        filter_field3(&mut u, &mut sx, &mut sy, &mask, eps, 0);
        let g = nyquist_gain(eps);
        assert!((u[(4, 4, 4)] - g).abs() < 1e-12);
        assert!((u[(4, 3, 4)] + g).abs() < 1e-12);
    }

    #[test]
    fn gain_bounds() {
        assert!((nyquist_gain(1.0 / 16.0)).abs() < 1e-14);
        assert_eq!(nyquist_gain(0.0), 1.0);
    }
}
