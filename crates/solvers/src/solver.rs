//! The solver interface executed by runners.
//!
//! A solver turns the paper's per-cycle structure into data: a [`StepOp`]
//! plan, local compute phases, and pack/unpack routines for each exchange id.
//! Runners (serial, threaded, or the discrete-event cluster simulation) never
//! look inside a phase — they only schedule compute ops and move packed
//! strips, which is exactly the modularity the paper attributes to padding:
//! "the computation does not need to know anything about the communication of
//! the boundary" (section 4.2).

use crate::fields::{TileState2, TileState3};
use crate::init::{InitialState2, InitialState3};
use crate::params::{FluidParams, MethodKind};
use crate::plan::StepOp;
use subsonic_grid::{Cell, Face2, Face3, PaddedGrid2, PaddedGrid3};

/// A 2D explicit method decomposed into compute phases and halo exchanges.
pub trait Solver2: Send + Sync {
    /// Which method this is (for reports).
    fn kind(&self) -> MethodKind;

    /// Ghost-layer width tiles must carry (also the exchange width).
    fn halo(&self) -> usize;

    /// The per-cycle plan.
    fn plan(&self) -> &'static [StepOp];

    /// Runs local compute phase `phase` on a tile.
    fn compute(&self, t: &mut TileState2, phase: usize);

    /// Reference variant of [`Solver2::compute`]: the original per-cell
    /// row-slice loops, serial, no run specialization. The vectorized fast
    /// paths are pinned bitwise to this by the equivalence tests; benches use
    /// it (via [`ScalarReference2`]) as the speedup baseline. Default: the
    /// solver has a single implementation.
    fn compute_scalar(&self, t: &mut TileState2, phase: usize) {
        self.compute(t, phase);
    }

    /// If `Some(p)`, compute phase `p` directly follows exchange `xch` in the
    /// plan and splits into an interior part whose inputs include no ghost
    /// data written by `xch` — so a runner may execute
    /// [`Solver2::compute_interior`] while halo messages are still in flight —
    /// and a boundary remainder ([`Solver2::compute_boundary`]) run after
    /// unpacking. The two parts together must be bitwise identical to
    /// [`Solver2::compute`] of that phase. Default: no overlap.
    fn overlapped_phase(&self, _xch: usize) -> Option<usize> {
        None
    }

    /// Interior part of an overlapped phase (default: nothing — the whole
    /// phase then runs in [`Solver2::compute_boundary`]).
    fn compute_interior(&self, t: &mut TileState2, phase: usize) {
        let _ = (t, phase);
    }

    /// Boundary remainder of an overlapped phase (default: the full phase,
    /// matching the default empty interior).
    fn compute_boundary(&self, t: &mut TileState2, phase: usize) {
        self.compute(t, phase);
    }

    /// Packs the strip for exchange `xch` across the tile's own face `face`.
    fn pack(&self, t: &TileState2, xch: usize, face: Face2, out: &mut Vec<f64>);

    /// Unpacks a strip received across `face` for exchange `xch`.
    fn unpack(&self, t: &mut TileState2, xch: usize, face: Face2, data: &[f64]);

    /// Number of `f64`s a message for exchange `xch` across `face` carries.
    fn message_doubles(&self, t: &TileState2, xch: usize, face: Face2) -> usize;

    /// Builds a tile from a padded geometry mask and an initial state given
    /// in local padded coordinates.
    fn make_tile(
        &self,
        mask: PaddedGrid2<Cell>,
        params: FluidParams,
        offset: (usize, usize),
        init: &InitialState2,
    ) -> TileState2;
}

/// A 3D explicit method decomposed into compute phases and halo exchanges.
pub trait Solver3: Send + Sync {
    /// Which method this is (for reports).
    fn kind(&self) -> MethodKind;

    /// Ghost-layer width tiles must carry (also the exchange width).
    fn halo(&self) -> usize;

    /// The per-cycle plan.
    fn plan(&self) -> &'static [StepOp];

    /// Runs local compute phase `phase` on a tile.
    fn compute(&self, t: &mut TileState3, phase: usize);

    /// Reference variant of [`Solver3::compute`]; see [`Solver2::compute_scalar`].
    fn compute_scalar(&self, t: &mut TileState3, phase: usize) {
        self.compute(t, phase);
    }

    /// Overlap split point for exchange `xch`; see [`Solver2::overlapped_phase`].
    fn overlapped_phase(&self, _xch: usize) -> Option<usize> {
        None
    }

    /// Interior part of an overlapped phase; see [`Solver2::compute_interior`].
    fn compute_interior(&self, t: &mut TileState3, phase: usize) {
        let _ = (t, phase);
    }

    /// Boundary remainder of an overlapped phase; see
    /// [`Solver2::compute_boundary`].
    fn compute_boundary(&self, t: &mut TileState3, phase: usize) {
        self.compute(t, phase);
    }

    /// Packs the strip for exchange `xch` across the tile's own face `face`.
    fn pack(&self, t: &TileState3, xch: usize, face: Face3, out: &mut Vec<f64>);

    /// Unpacks a strip received across `face` for exchange `xch`.
    fn unpack(&self, t: &mut TileState3, xch: usize, face: Face3, data: &[f64]);

    /// Number of `f64`s a message for exchange `xch` across `face` carries.
    fn message_doubles(&self, t: &TileState3, xch: usize, face: Face3) -> usize;

    /// Builds a tile from a padded geometry mask and an initial state.
    fn make_tile(
        &self,
        mask: PaddedGrid3<Cell>,
        params: FluidParams,
        offset: (usize, usize, usize),
        init: &InitialState3,
    ) -> TileState3;
}

/// Adapter that routes [`Solver2::compute`] through the wrapped solver's
/// scalar-reference kernels, so the original row-slice loops can be driven
/// through any runner unchanged (equivalence tests, `node_rate_*_scalar`
/// ablation benches). Overlap is intentionally not forwarded: the scalar
/// reference is the plain non-overlapped schedule.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScalarReference2<S>(pub S);

impl<S: Solver2> Solver2 for ScalarReference2<S> {
    fn kind(&self) -> MethodKind {
        self.0.kind()
    }

    fn halo(&self) -> usize {
        self.0.halo()
    }

    fn plan(&self) -> &'static [StepOp] {
        self.0.plan()
    }

    fn compute(&self, t: &mut TileState2, phase: usize) {
        self.0.compute_scalar(t, phase);
    }

    fn pack(&self, t: &TileState2, xch: usize, face: Face2, out: &mut Vec<f64>) {
        self.0.pack(t, xch, face, out);
    }

    fn unpack(&self, t: &mut TileState2, xch: usize, face: Face2, data: &[f64]) {
        self.0.unpack(t, xch, face, data);
    }

    fn message_doubles(&self, t: &TileState2, xch: usize, face: Face2) -> usize {
        self.0.message_doubles(t, xch, face)
    }

    fn make_tile(
        &self,
        mask: PaddedGrid2<Cell>,
        params: FluidParams,
        offset: (usize, usize),
        init: &InitialState2,
    ) -> TileState2 {
        self.0.make_tile(mask, params, offset, init)
    }
}

/// 3D counterpart of [`ScalarReference2`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ScalarReference3<S>(pub S);

impl<S: Solver3> Solver3 for ScalarReference3<S> {
    fn kind(&self) -> MethodKind {
        self.0.kind()
    }

    fn halo(&self) -> usize {
        self.0.halo()
    }

    fn plan(&self) -> &'static [StepOp] {
        self.0.plan()
    }

    fn compute(&self, t: &mut TileState3, phase: usize) {
        self.0.compute_scalar(t, phase);
    }

    fn pack(&self, t: &TileState3, xch: usize, face: Face3, out: &mut Vec<f64>) {
        self.0.pack(t, xch, face, out);
    }

    fn unpack(&self, t: &mut TileState3, xch: usize, face: Face3, data: &[f64]) {
        self.0.unpack(t, xch, face, data);
    }

    fn message_doubles(&self, t: &TileState3, xch: usize, face: Face3) -> usize {
        self.0.message_doubles(t, xch, face)
    }

    fn make_tile(
        &self,
        mask: PaddedGrid3<Cell>,
        params: FluidParams,
        offset: (usize, usize, usize),
        init: &InitialState3,
    ) -> TileState3 {
        self.0.make_tile(mask, params, offset, init)
    }
}
