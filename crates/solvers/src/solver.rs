//! The solver interface executed by runners.
//!
//! A solver turns the paper's per-cycle structure into data: a [`StepOp`]
//! plan, local compute phases, and pack/unpack routines for each exchange id.
//! Runners (serial, threaded, or the discrete-event cluster simulation) never
//! look inside a phase — they only schedule compute ops and move packed
//! strips, which is exactly the modularity the paper attributes to padding:
//! "the computation does not need to know anything about the communication of
//! the boundary" (section 4.2).

use crate::fields::{TileState2, TileState3};
use crate::init::{InitialState2, InitialState3};
use crate::params::{FluidParams, MethodKind};
use crate::plan::StepOp;
use subsonic_grid::{Cell, Face2, Face3, PaddedGrid2, PaddedGrid3};

/// A 2D explicit method decomposed into compute phases and halo exchanges.
pub trait Solver2: Send + Sync {
    /// Which method this is (for reports).
    fn kind(&self) -> MethodKind;

    /// Ghost-layer width tiles must carry (also the exchange width).
    fn halo(&self) -> usize;

    /// The per-cycle plan.
    fn plan(&self) -> &'static [StepOp];

    /// Runs local compute phase `phase` on a tile.
    fn compute(&self, t: &mut TileState2, phase: usize);

    /// Packs the strip for exchange `xch` across the tile's own face `face`.
    fn pack(&self, t: &TileState2, xch: usize, face: Face2, out: &mut Vec<f64>);

    /// Unpacks a strip received across `face` for exchange `xch`.
    fn unpack(&self, t: &mut TileState2, xch: usize, face: Face2, data: &[f64]);

    /// Number of `f64`s a message for exchange `xch` across `face` carries.
    fn message_doubles(&self, t: &TileState2, xch: usize, face: Face2) -> usize;

    /// Builds a tile from a padded geometry mask and an initial state given
    /// in local padded coordinates.
    fn make_tile(
        &self,
        mask: PaddedGrid2<Cell>,
        params: FluidParams,
        offset: (usize, usize),
        init: &InitialState2,
    ) -> TileState2;
}

/// A 3D explicit method decomposed into compute phases and halo exchanges.
pub trait Solver3: Send + Sync {
    /// Which method this is (for reports).
    fn kind(&self) -> MethodKind;

    /// Ghost-layer width tiles must carry (also the exchange width).
    fn halo(&self) -> usize;

    /// The per-cycle plan.
    fn plan(&self) -> &'static [StepOp];

    /// Runs local compute phase `phase` on a tile.
    fn compute(&self, t: &mut TileState3, phase: usize);

    /// Packs the strip for exchange `xch` across the tile's own face `face`.
    fn pack(&self, t: &TileState3, xch: usize, face: Face3, out: &mut Vec<f64>);

    /// Unpacks a strip received across `face` for exchange `xch`.
    fn unpack(&self, t: &mut TileState3, xch: usize, face: Face3, data: &[f64]);

    /// Number of `f64`s a message for exchange `xch` across `face` carries.
    fn message_doubles(&self, t: &TileState3, xch: usize, face: Face3) -> usize;

    /// Builds a tile from a padded geometry mask and an initial state.
    fn make_tile(
        &self,
        mask: PaddedGrid3<Cell>,
        params: FluidParams,
        offset: (usize, usize, usize),
        init: &InitialState3,
    ) -> TileState3;
}
