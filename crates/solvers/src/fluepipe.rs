//! Flue-pipe simulation setup and jet diagnostics (section 2 of the paper).
//!
//! "When a jet of air impinges a sharp obstacle in the vicinity of a resonant
//! cavity, the jet begins to oscillate strongly, and it produces audible
//! musical tones." This module wires the flue-pipe geometry builders of
//! `subsonic-grid` to solver parameters and provides the probe placement and
//! frequency estimation used by the `E-pipe` experiment and the `flue_pipe`
//! example.

use crate::params::FluidParams;
use serde::{Deserialize, Serialize};
use subsonic_grid::geometry::FluePipeSpec;
use subsonic_grid::Geometry2;

/// A ready-to-run flue-pipe scenario: geometry, parameters, probe location.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FluePipeScenario {
    /// Geometry specification (Figure-1 or Figure-2 style).
    pub spec: FluePipeSpec,
    /// Fluid parameters with the jet inlet velocity set.
    pub params: FluidParams,
    /// Probe node: just above the labium tip, where the jet flaps.
    pub probe: (usize, usize),
}

impl FluePipeScenario {
    /// A scenario scaled to `nx × ny` nodes with a jet at the given lattice
    /// Mach number (fraction of the speed of sound; the paper's flows are
    /// subsonic, Ma ≲ 0.1).
    pub fn new(nx: usize, ny: usize, mach: f64, figure2: bool) -> Self {
        let spec = if figure2 {
            FluePipeSpec::figure2(nx, ny)
        } else {
            FluePipeSpec::figure1(nx, ny)
        };
        // a lively jet needs a respectable Reynolds number; the fourth-order
        // filter keeps the run stable (the paper's high-Re recipe)
        let mut params = FluidParams::lattice_units(0.008);
        params.inlet_velocity = [mach * params.cs, 0.0, 0.0];
        params.filter_eps = 0.03;
        let probe = (spec.edge_x().saturating_sub(2), spec.jet_axis() + 2);
        Self {
            spec,
            params,
            probe,
        }
    }

    /// Builds the geometry mask.
    pub fn geometry(&self) -> Geometry2 {
        self.spec.build()
    }

    /// Expected order of magnitude of the jet oscillation frequency, from the
    /// semi-empirical jet-drive scaling f ≈ 0.3 · U_jet / W where `W` is the
    /// jet-to-labium distance (see e.g. Verge et al. 1994). Used only as a
    /// sanity band for tests, not as a physical claim.
    pub fn expected_frequency_scale(&self) -> f64 {
        let ujet = self.params.inlet_velocity[0];
        let w = (self.spec.edge_x() as f64) * self.params.dx / 2.5;
        0.3 * ujet / w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_is_stable_parameter_set() {
        let sc = FluePipeScenario::new(120, 80, 0.08, false);
        assert!(sc.params.stability_report(false).is_empty());
        let g = sc.geometry();
        assert!(g.fluid_nodes() > 0);
        // probe is in fluid
        let (px, py) = sc.probe;
        assert!(g.at(px, py).is_fluid(), "probe at ({px},{py}) not in fluid");
    }

    #[test]
    fn frequency_scale_is_positive_and_subsonic_period() {
        let sc = FluePipeScenario::new(200, 120, 0.1, true);
        let f = sc.expected_frequency_scale();
        assert!(f > 0.0);
        // oscillation period should be many time steps (resolved)
        assert!(1.0 / f > 20.0, "period {} steps is unresolved", 1.0 / f);
    }
}
